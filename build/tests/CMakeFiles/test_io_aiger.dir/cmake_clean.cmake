file(REMOVE_RECURSE
  "CMakeFiles/test_io_aiger.dir/test_io_aiger.cpp.o"
  "CMakeFiles/test_io_aiger.dir/test_io_aiger.cpp.o.d"
  "test_io_aiger"
  "test_io_aiger.pdb"
  "test_io_aiger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_aiger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

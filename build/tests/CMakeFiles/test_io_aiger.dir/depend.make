# Empty dependencies file for test_io_aiger.
# This may be replaced when dependencies are built.

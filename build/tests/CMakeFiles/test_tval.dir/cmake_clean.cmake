file(REMOVE_RECURSE
  "CMakeFiles/test_tval.dir/test_tval.cpp.o"
  "CMakeFiles/test_tval.dir/test_tval.cpp.o.d"
  "test_tval"
  "test_tval.pdb"
  "test_tval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

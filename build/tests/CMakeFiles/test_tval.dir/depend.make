# Empty dependencies file for test_tval.
# This may be replaced when dependencies are built.

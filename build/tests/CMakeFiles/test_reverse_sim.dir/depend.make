# Empty dependencies file for test_reverse_sim.
# This may be replaced when dependencies are built.

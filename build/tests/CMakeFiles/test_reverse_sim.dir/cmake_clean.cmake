file(REMOVE_RECURSE
  "CMakeFiles/test_reverse_sim.dir/test_reverse_sim.cpp.o"
  "CMakeFiles/test_reverse_sim.dir/test_reverse_sim.cpp.o.d"
  "test_reverse_sim"
  "test_reverse_sim.pdb"
  "test_reverse_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reverse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_implication.dir/test_implication.cpp.o"
  "CMakeFiles/test_implication.dir/test_implication.cpp.o.d"
  "test_implication"
  "test_implication.pdb"
  "test_implication[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_implication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_implication.
# This may be replaced when dependencies are built.

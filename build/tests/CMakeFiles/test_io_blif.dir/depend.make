# Empty dependencies file for test_io_blif.
# This may be replaced when dependencies are built.

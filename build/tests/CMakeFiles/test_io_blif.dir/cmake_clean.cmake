file(REMOVE_RECURSE
  "CMakeFiles/test_io_blif.dir/test_io_blif.cpp.o"
  "CMakeFiles/test_io_blif.dir/test_io_blif.cpp.o.d"
  "test_io_blif"
  "test_io_blif.pdb"
  "test_io_blif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_blif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_outgold.dir/test_outgold.cpp.o"
  "CMakeFiles/test_outgold.dir/test_outgold.cpp.o.d"
  "test_outgold"
  "test_outgold.pdb"
  "test_outgold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outgold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

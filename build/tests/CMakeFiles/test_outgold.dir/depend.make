# Empty dependencies file for test_outgold.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_io_bench.
# This may be replaced when dependencies are built.

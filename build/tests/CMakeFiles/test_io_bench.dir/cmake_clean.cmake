file(REMOVE_RECURSE
  "CMakeFiles/test_io_bench.dir/test_io_bench.cpp.o"
  "CMakeFiles/test_io_bench.dir/test_io_bench.cpp.o.d"
  "test_io_bench"
  "test_io_bench.pdb"
  "test_io_bench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

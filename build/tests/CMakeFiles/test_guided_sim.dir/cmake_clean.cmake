file(REMOVE_RECURSE
  "CMakeFiles/test_guided_sim.dir/test_guided_sim.cpp.o"
  "CMakeFiles/test_guided_sim.dir/test_guided_sim.cpp.o.d"
  "test_guided_sim"
  "test_guided_sim.pdb"
  "test_guided_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guided_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

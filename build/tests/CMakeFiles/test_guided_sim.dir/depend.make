# Empty dependencies file for test_guided_sim.
# This may be replaced when dependencies are built.

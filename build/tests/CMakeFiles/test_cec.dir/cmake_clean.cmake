file(REMOVE_RECURSE
  "CMakeFiles/test_cec.dir/test_cec.cpp.o"
  "CMakeFiles/test_cec.dir/test_cec.cpp.o.d"
  "test_cec"
  "test_cec.pdb"
  "test_cec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_putontop.dir/test_putontop.cpp.o"
  "CMakeFiles/test_putontop.dir/test_putontop.cpp.o.d"
  "test_putontop"
  "test_putontop.pdb"
  "test_putontop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_putontop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_putontop.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_encoder.cpp" "tests/CMakeFiles/test_encoder.dir/test_encoder.cpp.o" "gcc" "tests/CMakeFiles/test_encoder.dir/test_encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simgen_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_simgen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_aig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

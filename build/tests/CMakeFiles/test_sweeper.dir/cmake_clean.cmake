file(REMOVE_RECURSE
  "CMakeFiles/test_sweeper.dir/test_sweeper.cpp.o"
  "CMakeFiles/test_sweeper.dir/test_sweeper.cpp.o.d"
  "test_sweeper"
  "test_sweeper.pdb"
  "test_sweeper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

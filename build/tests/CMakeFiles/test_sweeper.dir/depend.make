# Empty dependencies file for test_sweeper.
# This may be replaced when dependencies are built.

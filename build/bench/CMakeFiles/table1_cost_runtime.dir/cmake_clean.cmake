file(REMOVE_RECURSE
  "CMakeFiles/table1_cost_runtime.dir/table1_cost_runtime.cpp.o"
  "CMakeFiles/table1_cost_runtime.dir/table1_cost_runtime.cpp.o.d"
  "table1_cost_runtime"
  "table1_cost_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cost_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

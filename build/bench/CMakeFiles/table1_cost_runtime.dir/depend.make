# Empty dependencies file for table1_cost_runtime.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_outgold.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_outgold.dir/ablation_outgold.cpp.o"
  "CMakeFiles/ablation_outgold.dir/ablation_outgold.cpp.o.d"
  "ablation_outgold"
  "ablation_outgold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_outgold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for simgen_bench_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsimgen_bench_common.a"
)

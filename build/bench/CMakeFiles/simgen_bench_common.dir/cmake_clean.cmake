file(REMOVE_RECURSE
  "CMakeFiles/simgen_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/simgen_bench_common.dir/bench_common.cpp.o.d"
  "libsimgen_bench_common.a"
  "libsimgen_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

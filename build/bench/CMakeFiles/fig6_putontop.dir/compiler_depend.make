# Empty compiler generated dependencies file for fig6_putontop.
# This may be replaced when dependencies are built.

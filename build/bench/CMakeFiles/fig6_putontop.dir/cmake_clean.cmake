file(REMOVE_RECURSE
  "CMakeFiles/fig6_putontop.dir/fig6_putontop.cpp.o"
  "CMakeFiles/fig6_putontop.dir/fig6_putontop.cpp.o.d"
  "fig6_putontop"
  "fig6_putontop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_putontop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

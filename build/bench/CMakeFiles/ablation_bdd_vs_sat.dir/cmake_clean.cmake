file(REMOVE_RECURSE
  "CMakeFiles/ablation_bdd_vs_sat.dir/ablation_bdd_vs_sat.cpp.o"
  "CMakeFiles/ablation_bdd_vs_sat.dir/ablation_bdd_vs_sat.cpp.o.d"
  "ablation_bdd_vs_sat"
  "ablation_bdd_vs_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bdd_vs_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

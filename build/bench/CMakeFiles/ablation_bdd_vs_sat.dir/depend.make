# Empty dependencies file for ablation_bdd_vs_sat.
# This may be replaced when dependencies are built.

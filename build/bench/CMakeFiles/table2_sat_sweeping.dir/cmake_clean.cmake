file(REMOVE_RECURSE
  "CMakeFiles/table2_sat_sweeping.dir/table2_sat_sweeping.cpp.o"
  "CMakeFiles/table2_sat_sweeping.dir/table2_sat_sweeping.cpp.o.d"
  "table2_sat_sweeping"
  "table2_sat_sweeping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sat_sweeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table2_sat_sweeping.
# This may be replaced when dependencies are built.

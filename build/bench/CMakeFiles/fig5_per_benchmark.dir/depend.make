# Empty dependencies file for fig5_per_benchmark.
# This may be replaced when dependencies are built.

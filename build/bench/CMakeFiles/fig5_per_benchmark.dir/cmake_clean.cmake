file(REMOVE_RECURSE
  "CMakeFiles/fig5_per_benchmark.dir/fig5_per_benchmark.cpp.o"
  "CMakeFiles/fig5_per_benchmark.dir/fig5_per_benchmark.cpp.o.d"
  "fig5_per_benchmark"
  "fig5_per_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_per_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig7_iterations.dir/fig7_iterations.cpp.o"
  "CMakeFiles/fig7_iterations.dir/fig7_iterations.cpp.o.d"
  "fig7_iterations"
  "fig7_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

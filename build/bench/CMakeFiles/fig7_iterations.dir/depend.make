# Empty dependencies file for fig7_iterations.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for table2_putontop.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_putontop.dir/table2_putontop.cpp.o"
  "CMakeFiles/table2_putontop.dir/table2_putontop.cpp.o.d"
  "table2_putontop"
  "table2_putontop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_putontop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

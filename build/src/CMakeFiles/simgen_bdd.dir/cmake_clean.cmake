file(REMOVE_RECURSE
  "CMakeFiles/simgen_bdd.dir/bdd/bdd.cpp.o"
  "CMakeFiles/simgen_bdd.dir/bdd/bdd.cpp.o.d"
  "CMakeFiles/simgen_bdd.dir/bdd/network_bdd.cpp.o"
  "CMakeFiles/simgen_bdd.dir/bdd/network_bdd.cpp.o.d"
  "libsimgen_bdd.a"
  "libsimgen_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsimgen_bdd.a"
)

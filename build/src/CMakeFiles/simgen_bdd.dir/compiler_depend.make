# Empty compiler generated dependencies file for simgen_bdd.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/bdd.cpp" "src/CMakeFiles/simgen_bdd.dir/bdd/bdd.cpp.o" "gcc" "src/CMakeFiles/simgen_bdd.dir/bdd/bdd.cpp.o.d"
  "/root/repo/src/bdd/network_bdd.cpp" "src/CMakeFiles/simgen_bdd.dir/bdd/network_bdd.cpp.o" "gcc" "src/CMakeFiles/simgen_bdd.dir/bdd/network_bdd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simgen_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

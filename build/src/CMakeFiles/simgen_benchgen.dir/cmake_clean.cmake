file(REMOVE_RECURSE
  "CMakeFiles/simgen_benchgen.dir/benchgen/arith.cpp.o"
  "CMakeFiles/simgen_benchgen.dir/benchgen/arith.cpp.o.d"
  "CMakeFiles/simgen_benchgen.dir/benchgen/generator.cpp.o"
  "CMakeFiles/simgen_benchgen.dir/benchgen/generator.cpp.o.d"
  "CMakeFiles/simgen_benchgen.dir/benchgen/suite.cpp.o"
  "CMakeFiles/simgen_benchgen.dir/benchgen/suite.cpp.o.d"
  "libsimgen_benchgen.a"
  "libsimgen_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

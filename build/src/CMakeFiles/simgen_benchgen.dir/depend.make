# Empty dependencies file for simgen_benchgen.
# This may be replaced when dependencies are built.

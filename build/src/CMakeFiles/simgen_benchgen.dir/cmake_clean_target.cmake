file(REMOVE_RECURSE
  "libsimgen_benchgen.a"
)

file(REMOVE_RECURSE
  "libsimgen_mapping.a"
)

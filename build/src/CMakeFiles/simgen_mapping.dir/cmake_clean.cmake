file(REMOVE_RECURSE
  "CMakeFiles/simgen_mapping.dir/mapping/cuts.cpp.o"
  "CMakeFiles/simgen_mapping.dir/mapping/cuts.cpp.o.d"
  "CMakeFiles/simgen_mapping.dir/mapping/lut_mapper.cpp.o"
  "CMakeFiles/simgen_mapping.dir/mapping/lut_mapper.cpp.o.d"
  "libsimgen_mapping.a"
  "libsimgen_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

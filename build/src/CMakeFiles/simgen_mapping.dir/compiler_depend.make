# Empty compiler generated dependencies file for simgen_mapping.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/simgen_tt.dir/tt/cube.cpp.o"
  "CMakeFiles/simgen_tt.dir/tt/cube.cpp.o.d"
  "CMakeFiles/simgen_tt.dir/tt/isop.cpp.o"
  "CMakeFiles/simgen_tt.dir/tt/isop.cpp.o.d"
  "CMakeFiles/simgen_tt.dir/tt/truth_table.cpp.o"
  "CMakeFiles/simgen_tt.dir/tt/truth_table.cpp.o.d"
  "libsimgen_tt.a"
  "libsimgen_tt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

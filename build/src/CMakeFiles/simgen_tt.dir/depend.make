# Empty dependencies file for simgen_tt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsimgen_tt.a"
)

# Empty dependencies file for simgen_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsimgen_sweep.a"
)

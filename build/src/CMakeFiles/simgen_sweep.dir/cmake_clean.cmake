file(REMOVE_RECURSE
  "CMakeFiles/simgen_sweep.dir/sweep/cec.cpp.o"
  "CMakeFiles/simgen_sweep.dir/sweep/cec.cpp.o.d"
  "CMakeFiles/simgen_sweep.dir/sweep/fraig.cpp.o"
  "CMakeFiles/simgen_sweep.dir/sweep/fraig.cpp.o.d"
  "CMakeFiles/simgen_sweep.dir/sweep/reduce.cpp.o"
  "CMakeFiles/simgen_sweep.dir/sweep/reduce.cpp.o.d"
  "CMakeFiles/simgen_sweep.dir/sweep/sweeper.cpp.o"
  "CMakeFiles/simgen_sweep.dir/sweep/sweeper.cpp.o.d"
  "libsimgen_sweep.a"
  "libsimgen_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

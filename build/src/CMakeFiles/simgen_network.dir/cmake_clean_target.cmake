file(REMOVE_RECURSE
  "libsimgen_network.a"
)

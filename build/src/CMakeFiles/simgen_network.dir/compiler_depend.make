# Empty compiler generated dependencies file for simgen_network.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/analysis.cpp" "src/CMakeFiles/simgen_network.dir/network/analysis.cpp.o" "gcc" "src/CMakeFiles/simgen_network.dir/network/analysis.cpp.o.d"
  "/root/repo/src/network/mffc.cpp" "src/CMakeFiles/simgen_network.dir/network/mffc.cpp.o" "gcc" "src/CMakeFiles/simgen_network.dir/network/mffc.cpp.o.d"
  "/root/repo/src/network/network.cpp" "src/CMakeFiles/simgen_network.dir/network/network.cpp.o" "gcc" "src/CMakeFiles/simgen_network.dir/network/network.cpp.o.d"
  "/root/repo/src/network/scoap.cpp" "src/CMakeFiles/simgen_network.dir/network/scoap.cpp.o" "gcc" "src/CMakeFiles/simgen_network.dir/network/scoap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simgen_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

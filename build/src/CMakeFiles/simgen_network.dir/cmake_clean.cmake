file(REMOVE_RECURSE
  "CMakeFiles/simgen_network.dir/network/analysis.cpp.o"
  "CMakeFiles/simgen_network.dir/network/analysis.cpp.o.d"
  "CMakeFiles/simgen_network.dir/network/mffc.cpp.o"
  "CMakeFiles/simgen_network.dir/network/mffc.cpp.o.d"
  "CMakeFiles/simgen_network.dir/network/network.cpp.o"
  "CMakeFiles/simgen_network.dir/network/network.cpp.o.d"
  "CMakeFiles/simgen_network.dir/network/scoap.cpp.o"
  "CMakeFiles/simgen_network.dir/network/scoap.cpp.o.d"
  "libsimgen_network.a"
  "libsimgen_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for simgen_util.
# This may be replaced when dependencies are built.

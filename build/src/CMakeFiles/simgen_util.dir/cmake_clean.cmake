file(REMOVE_RECURSE
  "CMakeFiles/simgen_util.dir/util/logging.cpp.o"
  "CMakeFiles/simgen_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/simgen_util.dir/util/rng.cpp.o"
  "CMakeFiles/simgen_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/simgen_util.dir/util/stopwatch.cpp.o"
  "CMakeFiles/simgen_util.dir/util/stopwatch.cpp.o.d"
  "libsimgen_util.a"
  "libsimgen_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

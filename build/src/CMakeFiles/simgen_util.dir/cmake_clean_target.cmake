file(REMOVE_RECURSE
  "libsimgen_util.a"
)

# Empty compiler generated dependencies file for simgen_io.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsimgen_io.a"
)

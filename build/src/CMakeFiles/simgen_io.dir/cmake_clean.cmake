file(REMOVE_RECURSE
  "CMakeFiles/simgen_io.dir/io/aiger.cpp.o"
  "CMakeFiles/simgen_io.dir/io/aiger.cpp.o.d"
  "CMakeFiles/simgen_io.dir/io/bench.cpp.o"
  "CMakeFiles/simgen_io.dir/io/bench.cpp.o.d"
  "CMakeFiles/simgen_io.dir/io/blif.cpp.o"
  "CMakeFiles/simgen_io.dir/io/blif.cpp.o.d"
  "CMakeFiles/simgen_io.dir/io/verilog.cpp.o"
  "CMakeFiles/simgen_io.dir/io/verilog.cpp.o.d"
  "libsimgen_io.a"
  "libsimgen_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/simgen_simgen_core.dir/simgen/decision.cpp.o"
  "CMakeFiles/simgen_simgen_core.dir/simgen/decision.cpp.o.d"
  "CMakeFiles/simgen_simgen_core.dir/simgen/generator.cpp.o"
  "CMakeFiles/simgen_simgen_core.dir/simgen/generator.cpp.o.d"
  "CMakeFiles/simgen_simgen_core.dir/simgen/guided_sim.cpp.o"
  "CMakeFiles/simgen_simgen_core.dir/simgen/guided_sim.cpp.o.d"
  "CMakeFiles/simgen_simgen_core.dir/simgen/implication.cpp.o"
  "CMakeFiles/simgen_simgen_core.dir/simgen/implication.cpp.o.d"
  "CMakeFiles/simgen_simgen_core.dir/simgen/outgold.cpp.o"
  "CMakeFiles/simgen_simgen_core.dir/simgen/outgold.cpp.o.d"
  "CMakeFiles/simgen_simgen_core.dir/simgen/reverse_sim.cpp.o"
  "CMakeFiles/simgen_simgen_core.dir/simgen/reverse_sim.cpp.o.d"
  "CMakeFiles/simgen_simgen_core.dir/simgen/rows.cpp.o"
  "CMakeFiles/simgen_simgen_core.dir/simgen/rows.cpp.o.d"
  "CMakeFiles/simgen_simgen_core.dir/simgen/tval.cpp.o"
  "CMakeFiles/simgen_simgen_core.dir/simgen/tval.cpp.o.d"
  "libsimgen_simgen_core.a"
  "libsimgen_simgen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_simgen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

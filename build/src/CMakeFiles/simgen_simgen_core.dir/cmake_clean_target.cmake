file(REMOVE_RECURSE
  "libsimgen_simgen_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgen/decision.cpp" "src/CMakeFiles/simgen_simgen_core.dir/simgen/decision.cpp.o" "gcc" "src/CMakeFiles/simgen_simgen_core.dir/simgen/decision.cpp.o.d"
  "/root/repo/src/simgen/generator.cpp" "src/CMakeFiles/simgen_simgen_core.dir/simgen/generator.cpp.o" "gcc" "src/CMakeFiles/simgen_simgen_core.dir/simgen/generator.cpp.o.d"
  "/root/repo/src/simgen/guided_sim.cpp" "src/CMakeFiles/simgen_simgen_core.dir/simgen/guided_sim.cpp.o" "gcc" "src/CMakeFiles/simgen_simgen_core.dir/simgen/guided_sim.cpp.o.d"
  "/root/repo/src/simgen/implication.cpp" "src/CMakeFiles/simgen_simgen_core.dir/simgen/implication.cpp.o" "gcc" "src/CMakeFiles/simgen_simgen_core.dir/simgen/implication.cpp.o.d"
  "/root/repo/src/simgen/outgold.cpp" "src/CMakeFiles/simgen_simgen_core.dir/simgen/outgold.cpp.o" "gcc" "src/CMakeFiles/simgen_simgen_core.dir/simgen/outgold.cpp.o.d"
  "/root/repo/src/simgen/reverse_sim.cpp" "src/CMakeFiles/simgen_simgen_core.dir/simgen/reverse_sim.cpp.o" "gcc" "src/CMakeFiles/simgen_simgen_core.dir/simgen/reverse_sim.cpp.o.d"
  "/root/repo/src/simgen/rows.cpp" "src/CMakeFiles/simgen_simgen_core.dir/simgen/rows.cpp.o" "gcc" "src/CMakeFiles/simgen_simgen_core.dir/simgen/rows.cpp.o.d"
  "/root/repo/src/simgen/tval.cpp" "src/CMakeFiles/simgen_simgen_core.dir/simgen/tval.cpp.o" "gcc" "src/CMakeFiles/simgen_simgen_core.dir/simgen/tval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/simgen_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/simgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

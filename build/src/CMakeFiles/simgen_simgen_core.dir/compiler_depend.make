# Empty compiler generated dependencies file for simgen_simgen_core.
# This may be replaced when dependencies are built.

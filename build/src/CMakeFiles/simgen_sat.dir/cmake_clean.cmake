file(REMOVE_RECURSE
  "CMakeFiles/simgen_sat.dir/sat/dimacs.cpp.o"
  "CMakeFiles/simgen_sat.dir/sat/dimacs.cpp.o.d"
  "CMakeFiles/simgen_sat.dir/sat/encoder.cpp.o"
  "CMakeFiles/simgen_sat.dir/sat/encoder.cpp.o.d"
  "CMakeFiles/simgen_sat.dir/sat/solver.cpp.o"
  "CMakeFiles/simgen_sat.dir/sat/solver.cpp.o.d"
  "libsimgen_sat.a"
  "libsimgen_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

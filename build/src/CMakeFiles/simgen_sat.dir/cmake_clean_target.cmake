file(REMOVE_RECURSE
  "libsimgen_sat.a"
)

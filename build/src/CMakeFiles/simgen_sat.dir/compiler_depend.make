# Empty compiler generated dependencies file for simgen_sat.
# This may be replaced when dependencies are built.

# Empty dependencies file for simgen_aig.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/simgen_aig.dir/aig/aig.cpp.o"
  "CMakeFiles/simgen_aig.dir/aig/aig.cpp.o.d"
  "CMakeFiles/simgen_aig.dir/aig/aig_to_network.cpp.o"
  "CMakeFiles/simgen_aig.dir/aig/aig_to_network.cpp.o.d"
  "CMakeFiles/simgen_aig.dir/aig/putontop.cpp.o"
  "CMakeFiles/simgen_aig.dir/aig/putontop.cpp.o.d"
  "libsimgen_aig.a"
  "libsimgen_aig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_aig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsimgen_aig.a"
)

file(REMOVE_RECURSE
  "libsimgen_sim.a"
)

# Empty dependencies file for simgen_sim.
# This may be replaced when dependencies are built.

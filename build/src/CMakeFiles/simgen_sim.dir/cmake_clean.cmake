file(REMOVE_RECURSE
  "CMakeFiles/simgen_sim.dir/sim/eqclass.cpp.o"
  "CMakeFiles/simgen_sim.dir/sim/eqclass.cpp.o.d"
  "CMakeFiles/simgen_sim.dir/sim/random_sim.cpp.o"
  "CMakeFiles/simgen_sim.dir/sim/random_sim.cpp.o.d"
  "CMakeFiles/simgen_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/simgen_sim.dir/sim/simulator.cpp.o.d"
  "libsimgen_sim.a"
  "libsimgen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

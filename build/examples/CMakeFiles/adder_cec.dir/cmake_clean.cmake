file(REMOVE_RECURSE
  "CMakeFiles/adder_cec.dir/adder_cec.cpp.o"
  "CMakeFiles/adder_cec.dir/adder_cec.cpp.o.d"
  "adder_cec"
  "adder_cec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_cec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

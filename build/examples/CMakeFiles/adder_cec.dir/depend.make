# Empty dependencies file for adder_cec.
# This may be replaced when dependencies are built.

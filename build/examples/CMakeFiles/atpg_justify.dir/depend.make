# Empty dependencies file for atpg_justify.
# This may be replaced when dependencies are built.

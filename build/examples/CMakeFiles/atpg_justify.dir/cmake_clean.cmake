file(REMOVE_RECURSE
  "CMakeFiles/atpg_justify.dir/atpg_justify.cpp.o"
  "CMakeFiles/atpg_justify.dir/atpg_justify.cpp.o.d"
  "atpg_justify"
  "atpg_justify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_justify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sweep_flow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sweep_flow.dir/sweep_flow.cpp.o"
  "CMakeFiles/sweep_flow.dir/sweep_flow.cpp.o.d"
  "sweep_flow"
  "sweep_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

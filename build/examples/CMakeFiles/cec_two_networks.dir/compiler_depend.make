# Empty compiler generated dependencies file for cec_two_networks.
# This may be replaced when dependencies are built.

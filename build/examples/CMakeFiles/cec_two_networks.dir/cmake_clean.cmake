file(REMOVE_RECURSE
  "CMakeFiles/cec_two_networks.dir/cec_two_networks.cpp.o"
  "CMakeFiles/cec_two_networks.dir/cec_two_networks.cpp.o.d"
  "cec_two_networks"
  "cec_two_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cec_two_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cec_two_networks.

/// \file ablation_bdd_vs_sat.cpp
/// \brief Measures the verification-backend trade-off the paper's Section
/// 2.2 cites: CEC "initially based on BDDs" moved to SAT "due to their
/// large memory consumption". Adders are friendly to both backends;
/// multiplier outputs are exponential for BDDs while SAT handles the
/// identity/equivalence queries easily.
#include <cstdio>

#include "bench_common.hpp"

using namespace simgen;

namespace {

void run_pair(const char* label, const net::Network& a, const net::Network& b,
              std::size_t bdd_limit,
              std::span<const unsigned> order = {}) {
  util::Stopwatch watch;

  watch.start();
  const bdd::BddCecResult bdd_result =
      bdd::bdd_check_equivalence(a, b, bdd_limit, order);
  watch.stop();
  const double bdd_ms = watch.milliseconds();

  watch.start();
  sweep::CecOptions options;
  options.use_guided_simulation = false;  // isolate the prover backends
  const sweep::CecResult sat_result = sweep::check_equivalence(a, b, options);
  watch.stop();
  const double sat_ms = watch.milliseconds();

  char bdd_cell[64];
  if (bdd_result.completed) {
    std::snprintf(bdd_cell, sizeof(bdd_cell), "%-8s %8.1fms %9zu nodes",
                  bdd_result.equivalent ? "EQ" : "NEQ", bdd_ms,
                  bdd_result.peak_nodes);
  } else {
    std::snprintf(bdd_cell, sizeof(bdd_cell), "BLOW-UP  %8.1fms >%8zu nodes",
                  bdd_ms, bdd_result.peak_nodes);
  }
  std::printf("%-18s | BDD: %s | SAT: %-3s %8.1fms (%llu calls)\n", label,
              bdd_cell, sat_result.equivalent ? "EQ" : "NEQ", sat_ms,
              static_cast<unsigned long long>(sat_result.output_sat_calls +
                                              sat_result.sweep_stats.sat_calls));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  (void)argc;
  (void)argv;
  constexpr std::size_t kLimit = 1u << 20;
  std::printf("Verification backends: BDD (node limit %zu) vs SAT sweeping\n\n",
              static_cast<std::size_t>(kLimit));

  // Adders with the BLOCK order (a..a b..b): exponential carry BDDs.
  // The same adders with the INTERLEAVED order (a0 b0 a1 b1 ...): linear.
  // Variable order is the make-or-break knob for BDDs; SAT needs none.
  for (const unsigned width : {8u, 16u, 24u}) {
    const net::Network rca =
        mapping::map_to_luts(benchgen::build_ripple_carry_adder(width));
    const net::Network csa =
        mapping::map_to_luts(benchgen::build_carry_select_adder(width, 4));
    char label[48];
    std::snprintf(label, sizeof(label), "adder %u (block)", width);
    run_pair(label, rca, csa, kLimit);
    const auto order = bdd::interleaved_order(rca.num_pis(), width);
    std::snprintf(label, sizeof(label), "adder %u (interleave)", width);
    run_pair(label, rca, csa, kLimit, order);
  }
  // Multipliers are exponential under EVERY variable order (Bryant 1986):
  // interleaving does not save them.
  for (const unsigned width : {6u, 10u, 14u}) {
    char label[48];
    const net::Network mul =
        mapping::map_to_luts(benchgen::build_array_multiplier(width));
    const auto order = bdd::interleaved_order(mul.num_pis(), width);
    std::snprintf(label, sizeof(label), "multiplier id %u", width);
    run_pair(label, mul, mul, kLimit, order);
  }
  for (const char* name : {"alu4", "cps"}) {
    char label[32];
    std::snprintf(label, sizeof(label), "suite %s id", name);
    const net::Network network = bench::prepare_benchmark(name);
    run_pair(label, network, network, kLimit);
  }

  std::printf("\nReading: both backends agree on every verdict; the BDD\n");
  std::printf("backend hits its node limit on multipliers (the classical\n");
  std::printf("memory blow-up), while SAT completes — the paper's Section\n");
  std::printf("2.2 rationale for SAT-based sweeping, reproduced.\n");
  return 0;
}

#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/pool_obs.hpp"
#include "obs/resource.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace simgen::bench {

namespace {

std::string& json_dir_storage() {
  static std::string dir = [] {
    const char* env = std::getenv("SIMGEN_BENCH_JSON_DIR");
    return std::string(env != nullptr ? env : "");
  }();
  return dir;
}

/// Filename-safe strategy tag: "AI+DC+MFFC" -> "AI_DC_MFFC".
std::string strategy_tag(core::Strategy strategy) {
  std::string tag(core::strategy_name(strategy));
  for (char& c : tag)
    if (c == '+' || c == '/' || c == ' ') c = '_';
  return tag;
}

double& progress_interval_storage() {
  static double seconds = 0.0;
  return seconds;
}

unsigned& num_threads_storage() {
  static unsigned threads = 1;
  return threads;
}

bool& inprocess_storage() {
  static bool enabled = true;
  return enabled;
}

}  // namespace

void set_progress_interval(double seconds) {
  progress_interval_storage() = seconds;
}

double progress_interval() { return progress_interval_storage(); }

void set_num_threads(unsigned num_threads) {
  num_threads_storage() = num_threads;
}

unsigned num_threads() { return num_threads_storage(); }

void set_inprocess(bool enabled) { inprocess_storage() = enabled; }

bool inprocess() { return inprocess_storage(); }

void for_each_cell(std::size_t count,
                   const std::function<void(std::size_t)>& fn) {
  const unsigned threads = util::resolve_num_threads(num_threads());
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  util::ThreadPool pool(threads);
  const obs::PoolProfileScope pool_scope(pool);
  pool.run_tasks(count, [&](std::size_t index, unsigned worker) {
    util::Stopwatch cell_watch;
    if (obs::journal_enabled()) cell_watch.start();
    fn(index);
    if (obs::journal_enabled()) {
      // Code 2 = bench cell; the payload is the cell index again (cells
      // have no node identity).
      obs::journal_emit(obs::EventKind::kTaskRun, 2, index, worker,
                        /*round=*/0, index, 0, 0,
                        obs::saturate_us(cell_watch.seconds()));
    }
  });
}

void set_bench_json_dir(std::string dir) { json_dir_storage() = std::move(dir); }

const std::string& bench_json_dir() { return json_dir_storage(); }

bool write_flow_metrics_json(const FlowMetrics& metrics) {
  const std::string& dir = bench_json_dir();
  if (dir.empty()) return true;
  const std::string path = dir + "/BENCH_" + metrics.benchmark + "__" +
                           strategy_tag(metrics.strategy) + ".json";
  std::ofstream out(path);
  if (!out) return false;
  out.precision(15);
  out << "{\n"
      << "  \"benchmark\": \"" << obs::detail::json_escape(metrics.benchmark)
      << "\",\n"
      << "  \"strategy\": \"" << core::strategy_name(metrics.strategy)
      << "\",\n"
      << "  \"cost_after_random\": " << metrics.cost_after_random << ",\n"
      << "  \"cost\": " << metrics.cost << ",\n"
      << "  \"sim_seconds\": " << metrics.sim_seconds << ",\n"
      << "  \"sim_wall_seconds\": " << metrics.sim_wall_seconds << ",\n"
      << "  \"sat_calls\": " << metrics.sat_calls << ",\n"
      << "  \"sat_seconds\": " << metrics.sat_seconds << ",\n"
      << "  \"sat_wall_seconds\": " << metrics.sat_wall_seconds << ",\n"
      << "  \"sat_conflicts\": " << metrics.sat_conflicts << ",\n"
      << "  \"sat_propagations\": " << metrics.sat_propagations << ",\n"
      << "  \"sat_restarts\": " << metrics.sat_restarts << ",\n"
      << "  \"inprocess_runs\": " << metrics.inprocess_runs << ",\n"
      << "  \"proven\": " << metrics.proven << ",\n"
      << "  \"disproven\": " << metrics.disproven << ",\n"
      << "  \"unresolved\": " << metrics.unresolved << ",\n"
      << "  \"num_threads\": " << metrics.num_threads << ",\n"
      << "  \"wall_seconds\": " << metrics.wall_seconds << ",\n"
      << "  \"peak_rss_mb\": " << metrics.peak_rss_mb << ",\n"
      << "  \"pool_tasks\": " << metrics.pool_tasks << ",\n"
      << "  \"pool_steal_successes\": " << metrics.pool_steal_successes
      << ",\n"
      << "  \"pool_utilization\": " << metrics.pool_utilization << "\n"
      << "}\n";
  return out.good();
}

TelemetryCli::TelemetryCli(int& argc, char** argv) : cli_(argc, argv) {
  // The generic flags are already stripped; pick off --bench-json-dir and
  // forward the heartbeat interval into the flow runner.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json-dir") == 0 && i + 1 < argc) {
      set_bench_json_dir(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  set_progress_interval(cli_.progress_interval());
  set_num_threads(cli_.num_threads());
  set_inprocess(cli_.inprocess());
}

FlowMetrics run_strategy_flow(const net::Network& network, core::Strategy strategy,
                              const FlowConfig& config) {
  util::Stopwatch flow_watch;
  flow_watch.start();
  FlowMetrics metrics;
  metrics.benchmark = network.name();
  metrics.strategy = strategy;

  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);

  sim::RandomSimOptions random_options;
  random_options.max_rounds = config.random_rounds;
  random_options.seed = config.seed;
  sim::run_random_simulation(simulator, classes, random_options);
  metrics.cost_after_random = classes.cost();

  core::GuidedSimOptions guided;
  guided.strategy = strategy;
  guided.iterations = config.guided_iterations;
  guided.seed = config.seed;
  guided.max_targets_per_class = config.max_targets_per_class;
  const core::GuidedSimResult guided_result =
      core::run_guided_simulation(simulator, classes, guided);
  metrics.cost = classes.cost();
  metrics.sim_seconds = guided_result.runtime_seconds;

  metrics.num_threads = num_threads();
  if (config.run_sweep) {
    sweep::SweepOptions sweep_options;
    sweep_options.seed = config.seed;
    sweep_options.conflict_limit = config.sat_conflict_limit;
    sweep_options.progress_interval = progress_interval();
    sweep_options.inprocess = inprocess();
    // Benches parallelize across cells (see for_each_cell), so each flow
    // keeps the sequential engine: metrics stay byte-identical to a
    // single-thread run and workers are never nested.
    sweep::Sweeper sweeper(network, sweep_options);
    const sweep::SweepResult sweep_result = sweeper.run(classes, simulator);
    metrics.sat_calls = sweep_result.sat_calls;
    metrics.sat_seconds = sweep_result.sat_seconds;
    metrics.proven = sweep_result.proven_equivalent;
    metrics.disproven = sweep_result.disproven;
    metrics.unresolved = sweep_result.unresolved;
    // SAT hardness rollups from this flow's own solver instance — the
    // registry totals would mix in concurrently sharded cells.
    const sat::SolverStats& solver_stats = sweeper.solver().stats();
    metrics.sat_wall_seconds = sweep_result.sat_seconds;
    metrics.sat_conflicts = solver_stats.conflicts.value();
    metrics.sat_propagations = solver_stats.propagations.value();
    metrics.sat_restarts = solver_stats.restarts.value();
    metrics.inprocess_runs = sweep_result.inprocess_runs;
  }
  flow_watch.stop();
  metrics.wall_seconds = flow_watch.seconds();
  // Kernel-only simulation wall time accumulated across every phase that
  // touched this flow's simulator (random, guided, cex resimulation).
  metrics.sim_wall_seconds = simulator.kernel_seconds();
  // Resource/scheduler context at flow end. All of these read 0 under
  // SIMGEN_NO_TELEMETRY (dummy instruments), keeping the JSON schema
  // identical in both builds.
  metrics.peak_rss_mb =
      static_cast<double>(obs::sample_resources().peak_rss_kb) / 1024.0;
  metrics.pool_tasks = obs::counter("pool.tasks").value();
  metrics.pool_steal_successes = obs::counter("pool.steal_successes").value();
  metrics.pool_utilization = obs::gauge_value("pool.utilization");
  if (!write_flow_metrics_json(metrics))
    std::fprintf(stderr, "warning: cannot write BENCH json for %s\n",
                 metrics.benchmark.c_str());
  return metrics;
}

net::Network prepare_benchmark(const std::string& name) {
  const benchgen::CircuitSpec* spec = benchgen::find_benchmark(name);
  if (spec == nullptr) throw std::invalid_argument("unknown benchmark " + name);
  return benchgen::generate_mapped(*spec);
}

net::Network prepare_stacked(const benchgen::StackedSpec& spec,
                             double gate_scale) {
  const benchgen::CircuitSpec* base = benchgen::find_benchmark(std::string(spec.base));
  if (base == nullptr)
    throw std::invalid_argument("unknown benchmark " + std::string(spec.base));
  benchgen::CircuitSpec scaled = *base;
  scaled.num_gates = std::max<unsigned>(
      64, static_cast<unsigned>(static_cast<double>(base->num_gates) * gate_scale));
  net::Network network = mapping::map_to_luts(
      aig::put_on_top(benchgen::generate_circuit(scaled), spec.copies));
  network.set_name(std::string(spec.base) + "x" + std::to_string(spec.copies));
  return network;
}

double ratio(double value, double baseline) {
  if (baseline == 0.0) return value == 0.0 ? 1.0 : 0.0;
  return value / baseline;
}

}  // namespace simgen::bench

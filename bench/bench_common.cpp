#include "bench_common.hpp"

#include <stdexcept>

namespace simgen::bench {

FlowMetrics run_strategy_flow(const net::Network& network, core::Strategy strategy,
                              const FlowConfig& config) {
  FlowMetrics metrics;
  metrics.benchmark = network.name();
  metrics.strategy = strategy;

  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);

  sim::RandomSimOptions random_options;
  random_options.max_rounds = config.random_rounds;
  random_options.seed = config.seed;
  sim::run_random_simulation(simulator, classes, random_options);
  metrics.cost_after_random = classes.cost();

  core::GuidedSimOptions guided;
  guided.strategy = strategy;
  guided.iterations = config.guided_iterations;
  guided.seed = config.seed;
  guided.max_targets_per_class = config.max_targets_per_class;
  const core::GuidedSimResult guided_result =
      core::run_guided_simulation(simulator, classes, guided);
  metrics.cost = classes.cost();
  metrics.sim_seconds = guided_result.runtime_seconds;

  if (config.run_sweep) {
    sweep::SweepOptions sweep_options;
    sweep_options.seed = config.seed;
    sweep_options.conflict_limit = config.sat_conflict_limit;
    sweep::Sweeper sweeper(network, sweep_options);
    const sweep::SweepResult sweep_result = sweeper.run(classes, simulator);
    metrics.sat_calls = sweep_result.sat_calls;
    metrics.sat_seconds = sweep_result.sat_seconds;
    metrics.proven = sweep_result.proven_equivalent;
    metrics.disproven = sweep_result.disproven;
    metrics.unresolved = sweep_result.unresolved;
  }
  return metrics;
}

net::Network prepare_benchmark(const std::string& name) {
  const benchgen::CircuitSpec* spec = benchgen::find_benchmark(name);
  if (spec == nullptr) throw std::invalid_argument("unknown benchmark " + name);
  return benchgen::generate_mapped(*spec);
}

net::Network prepare_stacked(const benchgen::StackedSpec& spec,
                             double gate_scale) {
  const benchgen::CircuitSpec* base = benchgen::find_benchmark(std::string(spec.base));
  if (base == nullptr)
    throw std::invalid_argument("unknown benchmark " + std::string(spec.base));
  benchgen::CircuitSpec scaled = *base;
  scaled.num_gates = std::max<unsigned>(
      64, static_cast<unsigned>(static_cast<double>(base->num_gates) * gate_scale));
  net::Network network = mapping::map_to_luts(
      aig::put_on_top(benchgen::generate_circuit(scaled), spec.copies));
  network.set_name(std::string(spec.base) + "x" + std::to_string(spec.copies));
  return network;
}

double ratio(double value, double baseline) {
  if (baseline == 0.0) return value == 0.0 ? 1.0 : 0.0;
  return value / baseline;
}

}  // namespace simgen::bench

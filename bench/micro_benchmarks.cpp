/// \file micro_benchmarks.cpp
/// \brief google-benchmark microbenchmarks for the performance-critical
/// primitives: word-parallel simulation, ISOP extraction, implication
/// fixpoints, pattern generation, and the SAT solver.
#include <benchmark/benchmark.h>

#include <array>
#include <map>
#include <string>

#include "bench_common.hpp"

using namespace simgen;

namespace {

const net::Network& cached_network(const char* name) {
  static std::map<std::string, net::Network> cache;
  auto it = cache.find(name);
  if (it == cache.end())
    it = cache.emplace(name, bench::prepare_benchmark(name)).first;
  return it->second;
}

void BM_SimulateWord(benchmark::State& state, const char* name) {
  const net::Network& network = cached_network(name);
  sim::Simulator simulator(network, /*block_words=*/1);
  std::uint64_t word = 0;
  for (auto _ : state) {
    simulator.simulate_random_word(1, word++);
    benchmark::DoNotOptimize(simulator.value(network.pos()[0]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(network.num_luts()));
  state.counters["luts"] = static_cast<double>(network.num_luts());
}
BENCHMARK_CAPTURE(BM_SimulateWord, alu4, "alu4");
BENCHMARK_CAPTURE(BM_SimulateWord, b17_C, "b17_C");

/// Throughput of one full wide block per kernel; patterns/s comparable
/// with BM_SimulateWord (items = patterns * LUTs in both).
void BM_SimulateBlock(benchmark::State& state, const char* name,
                      sim::SimKernel kernel, std::size_t block_words) {
  if (!sim::sim_kernel_available(kernel)) {
    state.SkipWithError("kernel not available on this CPU/build");
    return;
  }
  const net::Network& network = cached_network(name);
  sim::Simulator simulator(network, block_words, kernel);
  std::uint64_t round = 0;
  for (auto _ : state) {
    simulator.simulate_random_block(1, round, block_words);
    round += block_words;
    benchmark::DoNotOptimize(simulator.value_word(network.pos()[0], 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block_words) * 64 *
                          static_cast<std::int64_t>(network.num_luts()));
  state.counters["luts"] = static_cast<double>(network.num_luts());
  state.counters["block_words"] = static_cast<double>(block_words);
}
BENCHMARK_CAPTURE(BM_SimulateBlock, alu4_scalar, "alu4",
                  sim::SimKernel::kScalar, 8);
BENCHMARK_CAPTURE(BM_SimulateBlock, alu4_avx2, "alu4", sim::SimKernel::kAvx2,
                  8);
BENCHMARK_CAPTURE(BM_SimulateBlock, alu4_avx512, "alu4",
                  sim::SimKernel::kAvx512, 8);
BENCHMARK_CAPTURE(BM_SimulateBlock, b17_C_scalar, "b17_C",
                  sim::SimKernel::kScalar, 8);
BENCHMARK_CAPTURE(BM_SimulateBlock, b17_C_avx2, "b17_C", sim::SimKernel::kAvx2,
                  8);
BENCHMARK_CAPTURE(BM_SimulateBlock, b17_C_avx512, "b17_C",
                  sim::SimKernel::kAvx512, 8);

void BM_Isop(benchmark::State& state) {
  const auto num_vars = static_cast<unsigned>(state.range(0));
  util::Rng rng(33);
  std::vector<tt::TruthTable> functions;
  for (int i = 0; i < 64; ++i) {
    tt::TruthTable f(num_vars);
    for (std::uint64_t m = 0; m < f.num_bits(); ++m) f.set_bit(m, rng.flip());
    functions.push_back(std::move(f));
  }
  std::size_t index = 0;
  for (auto _ : state) {
    const tt::Cover cover = tt::isop(functions[index++ & 63]);
    benchmark::DoNotOptimize(cover.cubes.data());
  }
}
BENCHMARK(BM_Isop)->Arg(4)->Arg(6)->Arg(8);

void BM_ImplicationFixpoint(benchmark::State& state) {
  const net::Network& network = cached_network("apex2");
  const core::RowDatabase rows(network);
  core::ImplicationEngine engine(network, rows);
  core::NodeValues values(network.num_nodes());
  std::vector<net::NodeId> luts;
  network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });
  util::Rng rng(5);
  for (auto _ : state) {
    values.reset();
    const net::NodeId target = luts[rng.below(luts.size())];
    values.assign(target, core::TVal::kOne);
    const auto outcome =
        engine.run(values, std::span(&target, 1),
                   core::ImplicationStrategy::kAdvanced);
    benchmark::DoNotOptimize(outcome.assignments);
  }
}
BENCHMARK(BM_ImplicationFixpoint);

void BM_PatternGeneration(benchmark::State& state, const char* name) {
  const net::Network& network = cached_network(name);
  core::PatternGenerator generator(
      network, core::generator_options_for(core::Strategy::kAiDcMffc), 3);
  std::vector<net::NodeId> luts;
  network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });
  util::Rng rng(9);
  for (auto _ : state) {
    std::array<core::Target, 4> targets;
    for (std::size_t t = 0; t < 4; ++t)
      targets[t] = core::Target{luts[rng.below(luts.size())], (t & 1) != 0};
    const auto result = generator.generate(targets);
    benchmark::DoNotOptimize(result.pi_values.data());
  }
}
BENCHMARK_CAPTURE(BM_PatternGeneration, alu4, "alu4");
BENCHMARK_CAPTURE(BM_PatternGeneration, m_ctrl, "m_ctrl");

void BM_ReverseSimulation(benchmark::State& state) {
  const net::Network& network = cached_network("alu4");
  core::ReverseSimulator reverse(network, 3);
  std::vector<net::NodeId> luts;
  network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });
  util::Rng rng(9);
  for (auto _ : state) {
    const net::NodeId a = luts[rng.below(luts.size())];
    const net::NodeId b = luts[rng.below(luts.size())];
    const auto result =
        reverse.generate(core::Target{a, true}, core::Target{b, false});
    benchmark::DoNotOptimize(result.success);
  }
}
BENCHMARK(BM_ReverseSimulation);

void BM_SatRandom3Sat(benchmark::State& state) {
  const auto num_vars = static_cast<unsigned>(state.range(0));
  util::Rng rng(17);
  for (auto _ : state) {
    sat::Solver solver;
    std::vector<sat::Var> vars;
    for (unsigned i = 0; i < num_vars; ++i) vars.push_back(solver.new_var());
    const unsigned num_clauses = num_vars * 4;  // near-threshold density
    for (unsigned c = 0; c < num_clauses; ++c) {
      const sat::Lit clause[3] = {
          sat::Lit(vars[rng.below(num_vars)], rng.flip()),
          sat::Lit(vars[rng.below(num_vars)], rng.flip()),
          sat::Lit(vars[rng.below(num_vars)], rng.flip())};
      solver.add_clause(clause);
    }
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(150);

void BM_SweepPairProof(benchmark::State& state) {
  // Incremental pairwise equivalence checks, the sweeping inner loop.
  const net::Network& network = cached_network("apex2");
  sweep::Sweeper sweeper(network, sweep::SweepOptions{});
  std::vector<net::NodeId> luts;
  network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });
  util::Rng rng(21);
  for (auto _ : state) {
    const net::NodeId a = luts[rng.below(luts.size())];
    const net::NodeId b = luts[rng.below(luts.size())];
    benchmark::DoNotOptimize(sweeper.check_pair(a, b));
  }
}
BENCHMARK(BM_SweepPairProof);

void BM_LutMapping(benchmark::State& state) {
  const benchgen::CircuitSpec* spec = benchgen::find_benchmark("apex2");
  const aig::Aig graph = benchgen::generate_circuit(*spec);
  for (auto _ : state) {
    const net::Network network = mapping::map_to_luts(graph);
    benchmark::DoNotOptimize(network.num_luts());
  }
  state.counters["ands"] = static_cast<double>(graph.num_ands());
}
BENCHMARK(BM_LutMapping);

}  // namespace

BENCHMARK_MAIN();

/// \file bench_common.hpp
/// \brief Shared driver code for the experiment harnesses (one binary per
/// paper table/figure; see DESIGN.md section 4 for the experiment index).
///
/// Every harness runs the paper's Figure 2 flow: generate + 6-LUT-map a
/// named benchmark, one round of random simulation, N iterations of a
/// guided strategy, then (optionally) SAT sweeping to fixpoint, with the
/// paper's metrics recorded: Eq. 5 cost, simulation runtime, SAT calls,
/// SAT time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/telemetry_cli.hpp"
#include "simgen_all.hpp"

namespace simgen::bench {

/// Metrics of one (benchmark, strategy) flow run.
struct FlowMetrics {
  std::string benchmark;
  core::Strategy strategy = core::Strategy::kRevS;
  std::uint64_t cost_after_random = 0;
  std::uint64_t cost = 0;          ///< Eq. 5 cost after the guided phase.
  double sim_seconds = 0.0;        ///< Guided-simulation runtime.
  /// Wall time inside the simulation kernels (random + guided + cex
  /// resimulation), from Simulator::kernel_seconds(). A timing field like
  /// sat_wall_seconds — perf_trend.py gates it via --gate
  /// sim_wall_seconds; compare_bench_json.py never count-gates it.
  double sim_wall_seconds = 0.0;
  std::uint64_t sat_calls = 0;     ///< Sweeping SAT calls (if swept).
  double sat_seconds = 0.0;        ///< Time inside the SAT solver.
  /// SAT hardness rollups for the trend radar (perf_trend.py gates
  /// sat_wall_seconds via its generic --gate flag). sat_wall_seconds is
  /// the flow's wall time inside Solver::solve — a timing field, never
  /// count-gated; the counts come from the flow's own solver instance
  /// (not the process registry), so they stay byte-identical under cell
  /// sharding like the other counts. All 0 when the flow did not sweep.
  double sat_wall_seconds = 0.0;
  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_propagations = 0;
  std::uint64_t sat_restarts = 0;
  /// Solver inprocessing runs during the sweep (0 with --no-inprocess).
  std::uint64_t inprocess_runs = 0;
  std::uint64_t proven = 0;
  std::uint64_t disproven = 0;
  std::uint64_t unresolved = 0;  ///< Conflict-limited pairs (if capped).
  /// Bench worker threads active when this flow ran (1 = sequential).
  /// Recorded in the BENCH_*.json: counts stay byte-identical under cell
  /// sharding, but wall-clock fields pick up scheduling noise, so
  /// compare_bench_json.py widens its timing tolerance for multithreaded
  /// candidates.
  unsigned num_threads = 1;
  /// Whole-flow wall time (generate-to-JSON), for tools/perf_trend.py.
  /// Like sim/sat_seconds this is a timing field, never count-gated.
  double wall_seconds = 0.0;
  /// Process peak RSS when the flow finished (0 without telemetry).
  double peak_rss_mb = 0.0;
  /// Process-cumulative pool.* rollups at flow end (0 without telemetry
  /// or when no profiled pool ran). Cumulative — not per-flow deltas —
  /// so trend tooling diffs consecutive runs, not consecutive cells.
  std::uint64_t pool_tasks = 0;
  std::uint64_t pool_steal_successes = 0;
  double pool_utilization = 0.0;  ///< Last exported busy/(busy+idle).
};

struct FlowConfig {
  std::size_t random_rounds = 1;     ///< Paper Section 6.2: one round.
  std::size_t guided_iterations = 20;
  bool run_sweep = false;
  std::uint64_t seed = 1;
  /// Per-class OUTgold target cap forwarded to the guided phase (0 =
  /// whole class). The large stacked circuits use a small cap to bound
  /// vector-generation time; see DESIGN.md.
  std::size_t max_targets_per_class = 0;
  /// Per-call conflict budget for sweeping SAT calls (0 = unlimited).
  /// The harnesses cap pathological proofs so a single hard miter cannot
  /// dominate a 42-benchmark sweep; unresolved pairs are counted.
  std::uint64_t sat_conflict_limit = 0;
};

/// Heartbeat interval (seconds) forwarded to every sweep run_strategy_flow
/// starts; 0 disables. Set by TelemetryCli's --progress so existing bench
/// drivers pick it up without threading a new parameter through.
void set_progress_interval(double seconds);
[[nodiscard]] double progress_interval();

/// Worker threads for the bench drivers (same storage pattern as the
/// progress interval): 1 = sequential, 0 = one per hardware thread. Set
/// by TelemetryCli's --threads. Bench drivers parallelize at *cell*
/// granularity — whole (benchmark, strategy) flows sharded across
/// workers via for_each_cell — because a flow's wall time is dominated
/// by word-parallel simulation, not sweeping; each flow keeps the
/// sequential sweep engine inside, so every FlowMetrics value (and thus
/// every table row and BENCH json count) is byte-identical to a
/// single-thread run. Only the wall-clock fields see scheduling noise.
void set_num_threads(unsigned num_threads);
[[nodiscard]] unsigned num_threads();

/// Solver inprocessing toggle for the bench drivers (same storage pattern
/// as the progress interval); set false by TelemetryCli's --no-inprocess.
/// Forwarded into SweepOptions::inprocess by run_strategy_flow, so an
/// inprocessing-on vs -off A/B needs only the flag, no rebuild.
void set_inprocess(bool enabled);
[[nodiscard]] bool inprocess();

/// Runs fn(0), ..., fn(count - 1), sharding the calls across the
/// --threads worker pool when more than one thread is requested. Cells
/// must be independent (each is typically one benchmark's whole flow);
/// the caller collects results by index and prints them afterwards, so
/// output order never depends on the schedule. With one thread this is
/// a plain sequential loop.
void for_each_cell(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

/// Runs the flow for one strategy on a prepared LUT network.
FlowMetrics run_strategy_flow(const net::Network& network, core::Strategy strategy,
                              const FlowConfig& config);

/// Generates and 6-LUT-maps a suite benchmark by name (throws on unknown).
net::Network prepare_benchmark(const std::string& name);

/// Generates, stacks (putontop), and maps a stacked-suite entry.
/// \p gate_scale shrinks the base circuit's gate budget before stacking
/// (the experiment harnesses use 0.6 to keep the 9-entry sweep at
/// laptop runtimes; the stack heights stay exactly the paper's).
net::Network prepare_stacked(const benchgen::StackedSpec& spec,
                             double gate_scale = 1.0);

/// Ratio helper: a/b with the paper's convention that 0/0 compares equal.
double ratio(double value, double baseline);

/// Directory for per-run BENCH_<benchmark>__<strategy>.json files. When
/// set (via TelemetryCli's --bench-json-dir or the SIMGEN_BENCH_JSON_DIR
/// environment variable), run_strategy_flow writes one machine-readable
/// JSON file per (benchmark, strategy) run. Empty disables emission.
void set_bench_json_dir(std::string dir);
[[nodiscard]] const std::string& bench_json_dir();

/// Writes \p metrics as BENCH_<benchmark>__<strategy>.json under
/// bench_json_dir(); no-op (returning true) when the dir is unset.
bool write_flow_metrics_json(const FlowMetrics& metrics);

/// Shared telemetry command-line handling for the bench drivers: the
/// generic obs::TelemetryCli flags (--trace-out, --metrics-out,
/// --journal-out, --progress, --timeout; see obs/telemetry_cli.hpp) plus
/// the bench-specific
///   --bench-json-dir DIR   per-run BENCH_*.json output directory
/// (SIMGEN_BENCH_JSON_DIR in the environment also sets the JSON dir.)
/// --progress is forwarded into set_progress_interval and --threads into
/// set_num_threads so every run_strategy_flow sweep picks them up. A driver needs only
///   int main(int argc, char** argv) { bench::TelemetryCli telemetry(argc, argv); ... }
class TelemetryCli {
 public:
  TelemetryCli(int& argc, char** argv);
  TelemetryCli(const TelemetryCli&) = delete;
  TelemetryCli& operator=(const TelemetryCli&) = delete;

 private:
  obs::TelemetryCli cli_;
};

}  // namespace simgen::bench

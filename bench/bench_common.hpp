/// \file bench_common.hpp
/// \brief Shared driver code for the experiment harnesses (one binary per
/// paper table/figure; see DESIGN.md section 4 for the experiment index).
///
/// Every harness runs the paper's Figure 2 flow: generate + 6-LUT-map a
/// named benchmark, one round of random simulation, N iterations of a
/// guided strategy, then (optionally) SAT sweeping to fixpoint, with the
/// paper's metrics recorded: Eq. 5 cost, simulation runtime, SAT calls,
/// SAT time.
#pragma once

#include <cstdint>
#include <string>

#include "obs/telemetry_cli.hpp"
#include "simgen_all.hpp"

namespace simgen::bench {

/// Metrics of one (benchmark, strategy) flow run.
struct FlowMetrics {
  std::string benchmark;
  core::Strategy strategy = core::Strategy::kRevS;
  std::uint64_t cost_after_random = 0;
  std::uint64_t cost = 0;          ///< Eq. 5 cost after the guided phase.
  double sim_seconds = 0.0;        ///< Guided-simulation runtime.
  std::uint64_t sat_calls = 0;     ///< Sweeping SAT calls (if swept).
  double sat_seconds = 0.0;        ///< Time inside the SAT solver.
  std::uint64_t proven = 0;
  std::uint64_t disproven = 0;
  std::uint64_t unresolved = 0;  ///< Conflict-limited pairs (if capped).
};

struct FlowConfig {
  std::size_t random_rounds = 1;     ///< Paper Section 6.2: one round.
  std::size_t guided_iterations = 20;
  bool run_sweep = false;
  std::uint64_t seed = 1;
  /// Per-class OUTgold target cap forwarded to the guided phase (0 =
  /// whole class). The large stacked circuits use a small cap to bound
  /// vector-generation time; see DESIGN.md.
  std::size_t max_targets_per_class = 0;
  /// Per-call conflict budget for sweeping SAT calls (0 = unlimited).
  /// The harnesses cap pathological proofs so a single hard miter cannot
  /// dominate a 42-benchmark sweep; unresolved pairs are counted.
  std::uint64_t sat_conflict_limit = 0;
};

/// Heartbeat interval (seconds) forwarded to every sweep run_strategy_flow
/// starts; 0 disables. Set by TelemetryCli's --progress so existing bench
/// drivers pick it up without threading a new parameter through.
void set_progress_interval(double seconds);
[[nodiscard]] double progress_interval();

/// Runs the flow for one strategy on a prepared LUT network.
FlowMetrics run_strategy_flow(const net::Network& network, core::Strategy strategy,
                              const FlowConfig& config);

/// Generates and 6-LUT-maps a suite benchmark by name (throws on unknown).
net::Network prepare_benchmark(const std::string& name);

/// Generates, stacks (putontop), and maps a stacked-suite entry.
/// \p gate_scale shrinks the base circuit's gate budget before stacking
/// (the experiment harnesses use 0.6 to keep the 9-entry sweep at
/// laptop runtimes; the stack heights stay exactly the paper's).
net::Network prepare_stacked(const benchgen::StackedSpec& spec,
                             double gate_scale = 1.0);

/// Ratio helper: a/b with the paper's convention that 0/0 compares equal.
double ratio(double value, double baseline);

/// Directory for per-run BENCH_<benchmark>__<strategy>.json files. When
/// set (via TelemetryCli's --bench-json-dir or the SIMGEN_BENCH_JSON_DIR
/// environment variable), run_strategy_flow writes one machine-readable
/// JSON file per (benchmark, strategy) run. Empty disables emission.
void set_bench_json_dir(std::string dir);
[[nodiscard]] const std::string& bench_json_dir();

/// Writes \p metrics as BENCH_<benchmark>__<strategy>.json under
/// bench_json_dir(); no-op (returning true) when the dir is unset.
bool write_flow_metrics_json(const FlowMetrics& metrics);

/// Shared telemetry command-line handling for the bench drivers: the
/// generic obs::TelemetryCli flags (--trace-out, --metrics-out,
/// --journal-out, --progress, --timeout; see obs/telemetry_cli.hpp) plus
/// the bench-specific
///   --bench-json-dir DIR   per-run BENCH_*.json output directory
/// (SIMGEN_BENCH_JSON_DIR in the environment also sets the JSON dir.)
/// --progress is forwarded into set_progress_interval so every
/// run_strategy_flow sweep picks it up. A driver needs only
///   int main(int argc, char** argv) { bench::TelemetryCli telemetry(argc, argv); ... }
class TelemetryCli {
 public:
  TelemetryCli(int& argc, char** argv);
  TelemetryCli(const TelemetryCli&) = delete;
  TelemetryCli& operator=(const TelemetryCli&) = delete;

 private:
  obs::TelemetryCli cli_;
};

}  // namespace simgen::bench

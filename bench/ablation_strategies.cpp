/// \file ablation_strategies.cpp
/// \brief Ablation of SimGen's internals beyond the paper's arms: target
/// success/conflict rates, implication and decision counts per strategy,
/// including a no-implication arm (decisions only) that isolates how much
/// of the win comes from implication versus decision policy.
#include <cstdio>

#include "bench_common.hpp"

using namespace simgen;

namespace {

struct ArmSpec {
  const char* name;
  core::ImplicationStrategy implication;
  core::DecisionStrategy decision;
};

constexpr ArmSpec kArms[] = {
    {"NOIMP+RD", core::ImplicationStrategy::kNone, core::DecisionStrategy::kRandom},
    {"SI+RD", core::ImplicationStrategy::kSimple, core::DecisionStrategy::kRandom},
    {"AI+RD", core::ImplicationStrategy::kAdvanced, core::DecisionStrategy::kRandom},
    {"AI+DC", core::ImplicationStrategy::kAdvanced, core::DecisionStrategy::kDontCare},
    {"AI+DC+MFFC", core::ImplicationStrategy::kAdvanced,
     core::DecisionStrategy::kDontCareMffc},
    {"AI+DC+SCOAP", core::ImplicationStrategy::kAdvanced,
     core::DecisionStrategy::kDontCareScoap},
};

}  // namespace

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  (void)argc;
  (void)argv;
  std::printf("Ablation: Algorithm 1 internals per strategy arm\n");
  std::printf("(all LUT nodes of each benchmark targeted once, gold by parity)\n\n");

  for (const char* bmk : {"alu4", "apex2", "cps", "m_ctrl"}) {
    const net::Network network = bench::prepare_benchmark(bmk);
    std::vector<net::NodeId> luts;
    network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });

    std::printf("%s (%zu LUTs):\n", bmk, luts.size());
    std::printf("  %-11s %9s %9s %9s %12s %10s %11s\n", "arm", "attempted",
                "satisfied", "conflicts", "implications", "decisions",
                "impl/decis");
    for (const ArmSpec& arm : kArms) {
      core::GeneratorOptions options;
      options.implication = arm.implication;
      options.decision = arm.decision;
      core::PatternGenerator generator(network, options, 7);
      // One vector per 8-target group over all LUTs.
      std::vector<core::Target> targets;
      for (std::size_t i = 0; i < luts.size(); ++i) {
        targets.push_back(core::Target{luts[i], (i & 1) != 0});
        if (targets.size() == 8 || i + 1 == luts.size()) {
          generator.generate(targets);
          targets.clear();
        }
      }
      const core::GeneratorStats& stats = generator.stats();
      const double ratio =
          stats.decisions.value() == 0
              ? 0.0
              : static_cast<double>(stats.implications.value()) /
                    static_cast<double>(stats.decisions.value());
      std::printf("  %-11s %9llu %9llu %9llu %12llu %10llu %11.2f\n", arm.name,
                  static_cast<unsigned long long>(stats.targets_attempted.value()),
                  static_cast<unsigned long long>(stats.targets_satisfied.value()),
                  static_cast<unsigned long long>(stats.conflicts.value()),
                  static_cast<unsigned long long>(stats.implications.value()),
                  static_cast<unsigned long long>(stats.decisions.value()), ratio);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Reading: conflicts should fall monotonically from NOIMP+RD\n");
  std::printf("to AI+DC+MFFC — each technique exists to avoid conflicts.\n");
  return 0;
}

/// \file lint_main.cpp
/// \brief Standalone structural lint driver.
///
/// Usage:
///   ./lint_main --list                 (print the check registry)
///   ./lint_main alu4 apex2             (lint generated seed benchmarks)
///   ./lint_main circuit.blif           (lint a circuit file)
///
/// Accepts BLIF (.blif), BENCH (.bench), AIGER (.aig/.aag) files or the
/// name of any seed benchmark (benchgen suite). AIGER inputs additionally
/// run the AIG strash-canonicity checks before LUT mapping. Exits 0 when
/// every input is clean (warnings allowed), 1 on any error finding.
#include <cstdio>
#include <cstring>
#include <string>

#include "simgen_all.hpp"

using namespace simgen;

namespace {

void print_registry() {
  std::printf("network checks:\n");
  for (const check::NetworkLint& lint : check::network_lints())
    std::printf("  %-22.*s %.*s\n", static_cast<int>(lint.name.size()),
                lint.name.data(), static_cast<int>(lint.description.size()),
                lint.description.data());
}

/// Lints one file or benchmark name; returns the number of error findings.
std::size_t lint_one(const std::string& arg) {
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return arg.size() >= n && arg.compare(arg.size() - n, n, suffix) == 0;
  };

  net::Network network;
  check::LintReport aig_report;
  if (ends_with(".blif")) {
    network = io::read_blif_file(arg);
  } else if (ends_with(".bench")) {
    network = io::read_bench_file(arg);
  } else if (ends_with(".aig") || ends_with(".aag")) {
    const aig::Aig graph = io::read_aiger_file(arg);
    aig_report = check::lint_aig(graph);
    network = mapping::map_to_luts(graph);
  } else if (const benchgen::CircuitSpec* spec = benchgen::find_benchmark(arg)) {
    const aig::Aig graph = benchgen::generate_circuit(*spec);
    aig_report = check::lint_aig(graph);
    network = mapping::map_to_luts(graph);
  } else {
    std::fprintf(stderr, "error: '%s' is neither a circuit file nor a "
                         "known benchmark name\n", arg.c_str());
    return 1;
  }

  const check::LintReport report = check::lint_network(network);
  const std::size_t errors = report.num_errors() + aig_report.num_errors();
  std::printf("%s: %zu nodes, %zu issues (%zu errors)\n", arg.c_str(),
              network.num_nodes(), report.issues.size() + aig_report.issues.size(),
              errors);
  if (!aig_report.ok()) std::printf("%s", aig_report.to_string().c_str());
  if (!report.ok()) std::printf("%s", report.to_string().c_str());
  return errors;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
    print_registry();
    return 0;
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s [--list] <file.blif|file.bench|file.aig|name>...\n",
                 argv[0]);
    return 2;
  }
  std::size_t errors = 0;
  try {
    for (int i = 1; i < argc; ++i) errors += lint_one(argv[i]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  return errors == 0 ? 0 : 1;
}

/// \file fig7_iterations.cpp
/// \brief Regenerates paper Figure 7: cost and cumulative runtime per
/// iteration for (1) pure random simulation, (2) random then RevS, and
/// (3) random then SimGen, on apex2 and cps.
///
/// As in the paper, the guided phase takes over once random simulation
/// achieves the same cost in three consecutive iterations; the switch
/// point is marked in the output. Each iteration is one batch of 64
/// patterns (random) or one guided pass over the classes.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace simgen;

namespace {

constexpr std::size_t kTotalIterations = 48;
constexpr std::size_t kStagnation = 3;

struct Trace {
  std::vector<std::uint64_t> cost;
  std::vector<double> cumulative_seconds;
  std::size_t switch_iteration = 0;  ///< First guided iteration (0 = none).
};

enum class Mode { kRandomOnly, kSwitchToRevS, kSwitchToSimGen };

Trace run_trace(const net::Network& network, Mode mode) {
  Trace trace;
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  util::Stopwatch watch;
  watch.start();

  std::size_t flat = 0;
  std::uint64_t last_cost = ~std::uint64_t{0};
  std::size_t iteration = 0;
  // Phase 1: random simulation until stagnation (or the whole budget for
  // the RandS-only arm).
  for (; iteration < kTotalIterations; ++iteration) {
    // Attribute this batch's splits (journal + refine telemetry); without
    // the scope every split would be logged as PatternSource::kNone and
    // sweep_inspect --check would reject the journal.
    const obs::PatternScope scope(obs::PatternSource::kRandom, /*patterns=*/0);
    simulator.simulate_random_word(1, iteration);
    classes.refine(simulator);
    const std::uint64_t cost = classes.cost();
    trace.cost.push_back(cost);
    trace.cumulative_seconds.push_back(watch.seconds());
    flat = (cost == last_cost) ? flat + 1 : 0;
    last_cost = cost;
    if (mode != Mode::kRandomOnly && flat >= kStagnation) {
      ++iteration;
      break;
    }
  }

  if (mode == Mode::kRandomOnly || iteration >= kTotalIterations)
    return trace;

  // Phase 2: guided simulation, one iteration at a time so the trace has
  // per-iteration cost/runtime points.
  trace.switch_iteration = iteration;
  core::GuidedSimOptions guided;
  guided.strategy = mode == Mode::kSwitchToRevS ? core::Strategy::kRevS
                                                : core::Strategy::kAiDcMffc;
  guided.iterations = 1;
  guided.max_backoff = 0;  // every class, every iteration: the raw dynamic
  for (; iteration < kTotalIterations; ++iteration) {
    guided.seed = 1 + iteration;  // fresh pair/row choices per iteration
    core::run_guided_simulation(simulator, classes, guided);
    trace.cost.push_back(classes.cost());
    trace.cumulative_seconds.push_back(watch.seconds());
  }
  return trace;
}

void print_traces(const std::string& name, const Trace& rand_only,
                  const Trace& rand_revs, const Trace& rand_sgen) {
  std::printf("---- %s ----\n", name.c_str());
  std::printf("%4s | %9s %9s | %9s %9s | %9s %9s\n", "iter", "RandS", "t(ms)",
              "+RevS", "t(ms)", "+SimGen", "t(ms)");
  for (std::size_t i = 0; i < kTotalIterations; ++i) {
    const auto cell = [&](const Trace& trace, char* cost_buf, char* time_buf) {
      if (i < trace.cost.size()) {
        std::snprintf(cost_buf, 16, "%llu",
                      static_cast<unsigned long long>(trace.cost[i]));
        std::snprintf(time_buf, 16, "%.2f", trace.cumulative_seconds[i] * 1e3);
      } else {
        std::snprintf(cost_buf, 16, "-");
        std::snprintf(time_buf, 16, "-");
      }
    };
    char c0[16], t0[16], c1[16], t1[16], c2[16], t2[16];
    cell(rand_only, c0, t0);
    cell(rand_revs, c1, t1);
    cell(rand_sgen, c2, t2);
    const char* marker = "";
    if (rand_sgen.switch_iteration != 0 && i == rand_sgen.switch_iteration)
      marker = "  <- switch to guided";
    std::printf("%4zu | %9s %9s | %9s %9s | %9s %9s%s\n", i, c0, t0, c1, t1, c2,
                t2, marker);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  (void)argc;
  (void)argv;
  std::printf("Figure 7: cost/runtime per iteration — RandS vs RandS+RevS vs "
              "RandS+SimGen\n\n");
  for (const char* name : {"apex2", "cps"}) {
    const net::Network network = bench::prepare_benchmark(name);
    const Trace rand_only = run_trace(network, Mode::kRandomOnly);
    const Trace rand_revs = run_trace(network, Mode::kSwitchToRevS);
    const Trace rand_sgen = run_trace(network, Mode::kSwitchToSimGen);
    print_traces(name, rand_only, rand_revs, rand_sgen);

    const std::uint64_t final_rand = rand_only.cost.back();
    const std::uint64_t final_revs = rand_revs.cost.back();
    const std::uint64_t final_sgen = rand_sgen.cost.back();
    std::printf("final cost: RandS %llu, RandS+RevS %llu, RandS+SimGen %llu\n\n",
                static_cast<unsigned long long>(final_rand),
                static_cast<unsigned long long>(final_revs),
                static_cast<unsigned long long>(final_sgen));
  }
  std::printf("Paper reference: RandS plateaus after a few iterations; the\n");
  std::printf("guided continuations keep splitting classes, SimGen reaching\n");
  std::printf("the lowest final cost at some runtime expense.\n");
  return 0;
}

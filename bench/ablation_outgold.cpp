/// \file ablation_outgold.cpp
/// \brief Ablation of OUTgold selection policies (paper Section 3 names
/// topology-aware and runtime-adaptive OUTgold generation as future work;
/// this bench measures both against the published alternating policy).
///
/// Flow per benchmark/policy: 1 random round, 20 guided iterations with
/// AI+DC+MFFC, then the Eq. 5 cost and the usable-vector yield.
#include <cstdio>

#include "bench_common.hpp"

using namespace simgen;

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  (void)argc;
  (void)argv;
  constexpr core::OutGoldPolicy kPolicies[] = {
      core::OutGoldPolicy::kAlternating,
      core::OutGoldPolicy::kDepthAlternating,
      core::OutGoldPolicy::kAdaptiveComplement,
  };

  std::printf("OUTgold policy ablation (strategy AI+DC+MFFC)\n\n");
  std::printf("%-10s %-20s %10s %10s %10s\n", "benchmark", "policy", "cost",
              "vectors", "skipped");

  double totals[3] = {0, 0, 0};
  std::size_t rows = 0;
  for (const char* name :
       {"alu4", "apex2", "cps", "seq", "m_ctrl", "b14_C", "b20_C", "dec"}) {
    const net::Network network = bench::prepare_benchmark(name);
    double baseline = 0.0;
    for (std::size_t p = 0; p < 3; ++p) {
      sim::Simulator simulator(network);
      sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
      sim::RandomSimOptions random_options;
      random_options.max_rounds = 1;
      sim::run_random_simulation(simulator, classes, random_options);

      core::GuidedSimOptions guided;
      guided.strategy = core::Strategy::kAiDcMffc;
      guided.outgold_policy = kPolicies[p];
      const core::GuidedSimResult result =
          core::run_guided_simulation(simulator, classes, guided);

      const auto cost = static_cast<double>(classes.cost());
      if (p == 0) baseline = cost;
      totals[p] += bench::ratio(cost, baseline);
      std::printf("%-10s %-20s %10.0f %10llu %10llu\n", name,
                  std::string(core::outgold_policy_name(kPolicies[p])).c_str(),
                  cost,
                  static_cast<unsigned long long>(result.vectors_generated),
                  static_cast<unsigned long long>(result.vectors_skipped));
      std::fflush(stdout);
    }
    ++rows;
    std::printf("\n");
  }

  std::printf("==== mean cost ratio vs alternating ====\n");
  for (std::size_t p = 0; p < 3; ++p)
    std::printf("%-20s %.3f\n",
                std::string(core::outgold_policy_name(kPolicies[p])).c_str(),
                totals[p] / static_cast<double>(rows));
  return 0;
}

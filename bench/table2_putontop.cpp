/// \file table2_putontop.cpp
/// \brief Regenerates paper Table 2 (bottom): SAT calls and SAT time of
/// RevS vs SimGen on the stacked (&putontop) benchmarks — alu4 x15,
/// square x7, arbiter x15, b15_C2 x8, b17_C x5, b17_C2 x5, b20_C2 x8,
/// b21_C2 x8, b22_C x6 (paper Section 6.4).
///
/// Deviation from the paper (documented in DESIGN.md/EXPERIMENTS.md): the
/// base circuits are generated at 60% of their suite gate budget before
/// stacking, and the guided phase caps OUTgold targets at 8 per class, so
/// the 9-entry sweep stays at laptop runtimes. Stack heights are exactly
/// the paper's.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace simgen;

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  (void)argc;
  (void)argv;
  constexpr double kGateScale = 0.6;
  std::printf("Table 2 (bottom): stacked benchmarks (&putontop)\n\n");
  std::printf("%-13s %7s | %9s %9s | %10s %10s\n", "bmk(copies)", "luts", "RevS",
              "SGen", "RevS s", "SGen s");

  const auto suite = benchgen::stacked_suite();
  struct Cell {
    std::string name;
    std::size_t luts = 0;
    bench::FlowMetrics revs;
    bench::FlowMetrics sgen;
  };
  std::vector<Cell> cells(suite.size());
  bench::for_each_cell(suite.size(), [&](std::size_t i) {
    const net::Network network = bench::prepare_stacked(suite[i], kGateScale);
    bench::FlowConfig config;
    config.run_sweep = true;
    config.max_targets_per_class = 8;
    cells[i].name = network.name();
    cells[i].luts = network.num_luts();
    cells[i].revs =
        bench::run_strategy_flow(network, core::Strategy::kRevS, config);
    cells[i].sgen =
        bench::run_strategy_flow(network, core::Strategy::kAiDcMffc, config);
  });

  std::uint64_t total_calls_revs = 0, total_calls_sgen = 0;
  double total_time_revs = 0.0, total_time_sgen = 0.0;

  for (const Cell& cell : cells) {
    const bench::FlowMetrics& revs = cell.revs;
    const bench::FlowMetrics& sgen = cell.sgen;
    std::printf("%-13s %7zu | %9llu %9llu | %10.2f %10.2f\n",
                cell.name.c_str(), cell.luts,
                static_cast<unsigned long long>(revs.sat_calls),
                static_cast<unsigned long long>(sgen.sat_calls),
                revs.sat_seconds, sgen.sat_seconds);

    total_calls_revs += revs.sat_calls;
    total_calls_sgen += sgen.sat_calls;
    total_time_revs += revs.sat_seconds;
    total_time_sgen += sgen.sat_seconds;
  }

  std::printf("\n==== stacked summary ====\n");
  std::printf("total SAT calls : RevS %llu, SimGen %llu\n",
              static_cast<unsigned long long>(total_calls_revs),
              static_cast<unsigned long long>(total_calls_sgen));
  std::printf("total SAT time  : RevS %.2f s, SimGen %.2f s\n", total_time_revs,
              total_time_sgen);
  std::printf("\nPaper reference: the stacked results follow the same trend\n");
  std::printf("as the flat ones (SimGen reduces SAT calls and SAT time).\n");
  return 0;
}

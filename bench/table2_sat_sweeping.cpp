/// \file table2_sat_sweeping.cpp
/// \brief Regenerates paper Table 2 (top): SAT calls and SAT time of the
/// sweeping tool under RevS vs SimGen (AI+DC+MFFC) guidance, for all 42
/// benchmarks.
///
/// Flow per benchmark and arm: 6-LUT map, 1 random round, 20 guided
/// iterations, then SAT sweeping to fixpoint. SAT calls and SAT time
/// count exactly the solver work of the sweeping phase. With --threads N
/// the per-benchmark cells run on N workers (results and row order are
/// identical to the sequential run; see bench_common.hpp). Positional
/// arguments restrict the run to the named benchmarks.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

using namespace simgen;

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  std::vector<benchgen::CircuitSpec> suite;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      const benchgen::CircuitSpec* spec = benchgen::find_benchmark(argv[i]);
      if (spec == nullptr) {
        std::fprintf(stderr, "unknown benchmark: %s\n", argv[i]);
        return 1;
      }
      suite.push_back(*spec);
    }
  } else {
    const auto full = benchgen::benchmark_suite();
    suite.assign(full.begin(), full.end());
  }
  std::printf("Table 2 (top): SAT calls and SAT time, RevS vs SimGen\n\n");
  std::printf("%-10s | %9s %9s | %12s %12s | %8s\n", "bmk", "RevS", "SGen",
              "RevS ms", "SGen ms", "dCalls%");
  struct Cell {
    bench::FlowMetrics revs;
    bench::FlowMetrics sgen;
  };
  std::vector<Cell> cells(suite.size());
  util::Stopwatch wall;
  wall.start();
  bench::for_each_cell(suite.size(), [&](std::size_t i) {
    const net::Network network = bench::prepare_benchmark(suite[i].name);
    bench::FlowConfig config;
    config.run_sweep = true;
    cells[i].revs =
        bench::run_strategy_flow(network, core::Strategy::kRevS, config);
    cells[i].sgen =
        bench::run_strategy_flow(network, core::Strategy::kAiDcMffc, config);
  });
  wall.stop();

  std::uint64_t total_calls_revs = 0, total_calls_sgen = 0;
  double total_time_revs = 0.0, total_time_sgen = 0.0;
  std::size_t sgen_fewer_calls = 0, rows = 0;

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const bench::FlowMetrics& revs = cells[i].revs;
    const bench::FlowMetrics& sgen = cells[i].sgen;
    const double delta_calls =
        revs.sat_calls == 0
            ? 0.0
            : 100.0 * (static_cast<double>(revs.sat_calls) -
                       static_cast<double>(sgen.sat_calls)) /
                  static_cast<double>(revs.sat_calls);
    std::printf("%-10s | %9llu %9llu | %12.2f %12.2f | %+8.1f\n",
                suite[i].name.c_str(),
                static_cast<unsigned long long>(revs.sat_calls),
                static_cast<unsigned long long>(sgen.sat_calls),
                revs.sat_seconds * 1e3, sgen.sat_seconds * 1e3, delta_calls);

    total_calls_revs += revs.sat_calls;
    total_calls_sgen += sgen.sat_calls;
    total_time_revs += revs.sat_seconds;
    total_time_sgen += sgen.sat_seconds;
    ++rows;
    if (sgen.sat_calls <= revs.sat_calls) ++sgen_fewer_calls;
  }

  std::printf("\n==== Table 2 summary ====\n");
  std::printf("total SAT calls : RevS %llu, SimGen %llu (%.1f%% reduction)\n",
              static_cast<unsigned long long>(total_calls_revs),
              static_cast<unsigned long long>(total_calls_sgen),
              total_calls_revs == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(total_calls_sgen) /
                                       static_cast<double>(total_calls_revs)));
  std::printf("total SAT time  : RevS %.2f s, SimGen %.2f s\n", total_time_revs,
              total_time_sgen);
  std::printf("SimGen <= RevS SAT calls on %zu / %zu benchmarks\n",
              sgen_fewer_calls, rows);
  const unsigned workers = util::resolve_num_threads(bench::num_threads());
  std::printf("wall time       : %.2f s (%u worker thread%s)\n", wall.seconds(),
              workers, workers == 1 ? "" : "s");
  std::printf("\nPaper reference: SimGen reduces SAT calls on the large\n");
  std::printf("majority of the 42 benchmarks (e.g. b21_C 1369 -> 271).\n");
  return 0;
}

/// \file table2_sat_sweeping.cpp
/// \brief Regenerates paper Table 2 (top): SAT calls and SAT time of the
/// sweeping tool under RevS vs SimGen (AI+DC+MFFC) guidance, for all 42
/// benchmarks.
///
/// Flow per benchmark and arm: 6-LUT map, 1 random round, 20 guided
/// iterations, then SAT sweeping to fixpoint. SAT calls and SAT time
/// count exactly the solver work of the sweeping phase.
#include <cstdio>

#include "bench_common.hpp"

using namespace simgen;

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  (void)argc;
  (void)argv;
  std::printf("Table 2 (top): SAT calls and SAT time, RevS vs SimGen\n\n");
  std::printf("%-10s | %9s %9s | %12s %12s | %8s\n", "bmk", "RevS", "SGen",
              "RevS ms", "SGen ms", "dCalls%");

  std::uint64_t total_calls_revs = 0, total_calls_sgen = 0;
  double total_time_revs = 0.0, total_time_sgen = 0.0;
  std::size_t sgen_fewer_calls = 0, rows = 0;

  for (const benchgen::CircuitSpec& spec : benchgen::benchmark_suite()) {
    const net::Network network = bench::prepare_benchmark(spec.name);
    bench::FlowConfig config;
    config.run_sweep = true;

    const bench::FlowMetrics revs =
        bench::run_strategy_flow(network, core::Strategy::kRevS, config);
    const bench::FlowMetrics sgen =
        bench::run_strategy_flow(network, core::Strategy::kAiDcMffc, config);

    const double delta_calls =
        revs.sat_calls == 0
            ? 0.0
            : 100.0 * (static_cast<double>(revs.sat_calls) -
                       static_cast<double>(sgen.sat_calls)) /
                  static_cast<double>(revs.sat_calls);
    std::printf("%-10s | %9llu %9llu | %12.2f %12.2f | %+8.1f\n",
                spec.name.c_str(), static_cast<unsigned long long>(revs.sat_calls),
                static_cast<unsigned long long>(sgen.sat_calls),
                revs.sat_seconds * 1e3, sgen.sat_seconds * 1e3, delta_calls);
    std::fflush(stdout);

    total_calls_revs += revs.sat_calls;
    total_calls_sgen += sgen.sat_calls;
    total_time_revs += revs.sat_seconds;
    total_time_sgen += sgen.sat_seconds;
    ++rows;
    if (sgen.sat_calls <= revs.sat_calls) ++sgen_fewer_calls;
  }

  std::printf("\n==== Table 2 summary ====\n");
  std::printf("total SAT calls : RevS %llu, SimGen %llu (%.1f%% reduction)\n",
              static_cast<unsigned long long>(total_calls_revs),
              static_cast<unsigned long long>(total_calls_sgen),
              total_calls_revs == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(total_calls_sgen) /
                                       static_cast<double>(total_calls_revs)));
  std::printf("total SAT time  : RevS %.2f s, SimGen %.2f s\n", total_time_revs,
              total_time_sgen);
  std::printf("SimGen <= RevS SAT calls on %zu / %zu benchmarks\n",
              sgen_fewer_calls, rows);
  std::printf("\nPaper reference: SimGen reduces SAT calls on the large\n");
  std::printf("majority of the 42 benchmarks (e.g. b21_C 1369 -> 271).\n");
  return 0;
}

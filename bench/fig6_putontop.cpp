/// \file fig6_putontop.cpp
/// \brief Regenerates paper Figure 6: the Figure 5 metrics (cost, sim
/// runtime, SAT calls, SAT runtime of SimGen normalized to RevS) on the
/// stacked (&putontop) benchmark variants of Section 6.4.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace simgen;

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  (void)argc;
  (void)argv;
  constexpr double kGateScale = 0.6;  // see table2_putontop.cpp
  std::printf("Figure 6: SimGen vs RevS on stacked benchmarks\n\n");
  std::printf("%-13s %10s %10s %10s %10s\n", "bmk(copies)", "cost", "sim",
              "sat_calls", "sat_time");

  const auto suite = benchgen::stacked_suite();
  std::vector<std::array<double, 4>> ratios(suite.size());
  std::vector<std::string> names(suite.size());
  std::printf("\n");
  bench::for_each_cell(suite.size(), [&](std::size_t i) {
    const net::Network network = bench::prepare_stacked(suite[i], kGateScale);
    bench::FlowConfig config;
    config.run_sweep = true;
    config.max_targets_per_class = 8;

    const bench::FlowMetrics revs =
        bench::run_strategy_flow(network, core::Strategy::kRevS, config);
    const bench::FlowMetrics sgen =
        bench::run_strategy_flow(network, core::Strategy::kAiDcMffc, config);

    names[i] = network.name();
    ratios[i] = {bench::ratio(static_cast<double>(sgen.cost),
                              static_cast<double>(revs.cost)),
                 bench::ratio(sgen.sim_seconds, revs.sim_seconds),
                 bench::ratio(static_cast<double>(sgen.sat_calls),
                              static_cast<double>(revs.sat_calls)),
                 bench::ratio(sgen.sat_seconds, revs.sat_seconds)};
  });
  for (std::size_t i = 0; i < suite.size(); ++i)
    std::printf("%-13s %10.3f %10.2f %10.3f %10.3f\n", names[i].c_str(),
                ratios[i][0], ratios[i][1], ratios[i][2], ratios[i][3]);

  std::array<double, 4> mean{};
  for (const auto& row : ratios)
    for (std::size_t i = 0; i < 4; ++i) mean[i] += row[i];
  for (auto& value : mean) value /= static_cast<double>(ratios.size());
  std::printf("\nmeans (RevS = 1.0): cost %.3f, sim %.2f, sat_calls %.3f, "
              "sat_time %.3f\n",
              mean[0], mean[1], mean[2], mean[3]);
  std::printf("\nPaper reference: same trends as Figure 5 — SimGen reduces\n");
  std::printf("cost, SAT calls and SAT runtime at a simulation-time cost.\n");
  return 0;
}

/// \file table1_cost_runtime.cpp
/// \brief Regenerates paper Table 1: average normalized Cost and
/// Simulation Runtime of SI+RD, AI+RD, AI+DC, and AI+DC+MFFC relative to
/// reverse simulation (RevS), over the 42-benchmark suite.
///
/// Methodology (paper Section 6.1-6.2): each benchmark is 6-LUT-mapped,
/// gets one round of random simulation, then 20 iterations of the guided
/// strategy; Cost is Equation 5 over the resulting classes. Values are
/// normalized per benchmark against RevS and averaged.
#include <array>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"

using namespace simgen;

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  (void)argc;
  (void)argv;
  const auto suite = benchgen::benchmark_suite();
  std::map<core::Strategy, std::vector<double>> cost_ratios;
  std::map<core::Strategy, std::vector<double>> runtime_ratios;
  constexpr std::array<core::Strategy, 4> kArms{
      core::Strategy::kSiRd, core::Strategy::kAiRd, core::Strategy::kAiDc,
      core::Strategy::kAiDcMffc};

  std::printf("Table 1: cost and simulation runtime, normalized to RevS\n");
  std::printf("(42 benchmarks, 1 random round, 20 guided iterations)\n\n");
  std::printf("%-10s %10s %10s | %-7s", "benchmark", "RevS cost", "RevS sim(s)",
              "arm");
  std::printf("  %10s %12s\n", "cost/RevS", "sim/RevS");

  struct Cell {
    bench::FlowMetrics baseline;
    std::array<bench::FlowMetrics, 4> arms;
  };
  std::vector<Cell> cells(suite.size());
  bench::for_each_cell(suite.size(), [&](std::size_t i) {
    const net::Network network = bench::prepare_benchmark(suite[i].name);
    bench::FlowConfig config;
    cells[i].baseline =
        bench::run_strategy_flow(network, core::Strategy::kRevS, config);
    for (std::size_t a = 0; a < kArms.size(); ++a)
      cells[i].arms[a] = bench::run_strategy_flow(network, kArms[a], config);
  });

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const bench::FlowMetrics& baseline = cells[i].baseline;
    std::printf("%-10s %10llu %10.4f |\n", suite[i].name.c_str(),
                static_cast<unsigned long long>(baseline.cost),
                baseline.sim_seconds);

    for (std::size_t a = 0; a < kArms.size(); ++a) {
      const bench::FlowMetrics& metrics = cells[i].arms[a];
      const core::Strategy strategy = kArms[a];
      const double cost_ratio = bench::ratio(static_cast<double>(metrics.cost),
                                             static_cast<double>(baseline.cost));
      const double runtime_ratio =
          bench::ratio(metrics.sim_seconds, baseline.sim_seconds);
      cost_ratios[strategy].push_back(cost_ratio);
      runtime_ratios[strategy].push_back(runtime_ratio);
      std::printf("%34s | %-7s  %10.3f %12.3f\n", "",
                  std::string(core::strategy_name(strategy)).c_str(), cost_ratio,
                  runtime_ratio);
    }
  }

  const auto average = [](const std::vector<double>& values) {
    double total = 0.0;
    for (const double v : values) total += v;
    return values.empty() ? 0.0 : total / static_cast<double>(values.size());
  };

  std::printf("\n==== Table 1 (averages over %zu benchmarks, RevS = 1.000) ====\n",
              suite.size());
  std::printf("%-22s %10s %10s %10s %10s %10s\n", "", "RevS", "SI+RD", "AI+RD",
              "AI+DC", "AI+DC+MFFC");
  std::printf("%-22s %10.3f", "Cost", 1.0);
  for (const core::Strategy strategy :
       {core::Strategy::kSiRd, core::Strategy::kAiRd, core::Strategy::kAiDc,
        core::Strategy::kAiDcMffc})
    std::printf(" %10.3f", average(cost_ratios[strategy]));
  std::printf("\n%-22s %10.3f", "Simulation Runtime", 1.0);
  for (const core::Strategy strategy :
       {core::Strategy::kSiRd, core::Strategy::kAiRd, core::Strategy::kAiDc,
        core::Strategy::kAiDcMffc})
    std::printf(" %10.3f", average(runtime_ratios[strategy]));
  std::printf("\n\nPaper reference: cost 0.814 / 0.812 / 0.810 / 0.807;\n");
  std::printf("runtime 1.204 / 1.263 / 1.262 / 1.130 (see EXPERIMENTS.md).\n");
  return 0;
}

/// \file fig5_per_benchmark.cpp
/// \brief Regenerates paper Figure 5: per-benchmark normalized difference
/// of cost, simulation runtime, SAT calls, and SAT runtime of SimGen
/// (AI+DC+MFFC) with respect to reverse simulation.
///
/// Output is one row per benchmark with the four normalized series the
/// figure plots as bars: value/RevS for each metric (1.0 = parity,
/// < 1.0 = SimGen better). A trailing CSV block makes replotting easy.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace simgen;

namespace {

struct Row {
  std::string name;
  double cost = 1.0, sim = 1.0, calls = 1.0, sat = 1.0;
};

// Tiny ASCII bar for terminal reading: 20 chars = ratio 2.0.
std::string bar(double ratio) {
  const int width = std::min(20, static_cast<int>(ratio * 10.0 + 0.5));
  std::string out(static_cast<std::size_t>(std::max(0, width)), '#');
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  simgen::bench::TelemetryCli telemetry(argc, argv);
  (void)argc;
  (void)argv;
  std::printf("Figure 5: SimGen vs RevS, normalized per benchmark\n");
  std::printf("(ratio < 1.0 means SimGen better; '|' marks parity at 1.0)\n\n");

  const auto suite = benchgen::benchmark_suite();
  std::vector<Row> rows(suite.size());
  bench::for_each_cell(suite.size(), [&](std::size_t i) {
    const net::Network network = bench::prepare_benchmark(suite[i].name);
    bench::FlowConfig config;
    config.run_sweep = true;
    const bench::FlowMetrics revs =
        bench::run_strategy_flow(network, core::Strategy::kRevS, config);
    const bench::FlowMetrics sgen =
        bench::run_strategy_flow(network, core::Strategy::kAiDcMffc, config);

    Row& row = rows[i];
    row.name = suite[i].name;
    row.cost = bench::ratio(static_cast<double>(sgen.cost),
                            static_cast<double>(revs.cost));
    row.sim = bench::ratio(sgen.sim_seconds, revs.sim_seconds);
    row.calls = bench::ratio(static_cast<double>(sgen.sat_calls),
                             static_cast<double>(revs.sat_calls));
    row.sat = bench::ratio(sgen.sat_seconds, revs.sat_seconds);
  });

  for (const Row& row : rows) {
    std::printf("%-10s cost %6.3f %-20s\n", row.name.c_str(), row.cost,
                bar(row.cost).c_str());
    std::printf("%-10s sim  %6.2f\n", "", row.sim);
    std::printf("%-10s call %6.3f %-20s\n", "", row.calls, bar(row.calls).c_str());
    std::printf("%-10s sat  %6.3f %-20s\n", "", row.sat, bar(row.sat).c_str());
  }

  std::printf("\n==== Figure 5 data (CSV) ====\n");
  std::printf("benchmark,cost_ratio,sim_runtime_ratio,sat_calls_ratio,sat_time_ratio\n");
  double gm_cost = 0, gm_calls = 0, gm_sat = 0;
  for (const Row& row : rows) {
    std::printf("%s,%.4f,%.4f,%.4f,%.4f\n", row.name.c_str(), row.cost, row.sim,
                row.calls, row.sat);
    gm_cost += row.cost;
    gm_calls += row.calls;
    gm_sat += row.sat;
  }
  const double n = static_cast<double>(rows.size());
  std::printf("\nmeans: cost %.3f, sat_calls %.3f, sat_time %.3f (RevS = 1.0)\n",
              gm_cost / n, gm_calls / n, gm_sat / n);
  return 0;
}

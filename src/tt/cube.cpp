#include "tt/cube.hpp"

#include <bit>

namespace simgen::tt {

unsigned Cube::num_literals() const noexcept {
  return static_cast<unsigned>(std::popcount(mask));
}

unsigned Cube::num_dcs(unsigned num_vars) const noexcept {
  const std::uint32_t in_range = (num_vars >= 32) ? ~0u : ((1u << num_vars) - 1u);
  return static_cast<unsigned>(std::popcount(~mask & in_range));
}

TruthTable Cube::to_truth_table(unsigned num_vars) const {
  TruthTable result = TruthTable::constant(num_vars, true);
  for (unsigned v = 0; v < num_vars; ++v) {
    if (!has_literal(v)) continue;
    const TruthTable proj = TruthTable::projection(num_vars, v);
    result &= literal_value(v) ? proj : ~proj;
  }
  return result;
}

std::string Cube::to_string(unsigned num_vars) const {
  std::string out(num_vars, '-');
  for (unsigned v = 0; v < num_vars; ++v)
    if (has_literal(v)) out[v] = literal_value(v) ? '1' : '0';
  return out;
}

TruthTable Cover::to_truth_table(unsigned num_vars) const {
  TruthTable result = TruthTable::constant(num_vars, false);
  for (const Cube& cube : cubes) result |= cube.to_truth_table(num_vars);
  return result;
}

}  // namespace simgen::tt

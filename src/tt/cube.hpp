/// \file cube.hpp
/// \brief Cubes: conjunctions of input literals with don't-cares.
///
/// A cube over n inputs assigns each input one of {0, 1, -}. Cubes are the
/// "truth table rows" of the SimGen paper (Figure 3): a row lists required
/// input values, leaves don't-care inputs unassigned, and is associated
/// with an output value by the cover that owns it (ON-set or OFF-set).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"

namespace simgen::tt {

/// One product term over up to 16 inputs.
///
/// `mask` bit i set means input i is a literal of the cube (not a DC);
/// `bits` bit i gives the literal's polarity and is zero wherever `mask`
/// is zero, so cubes compare equal iff they are the same product term.
struct Cube {
  std::uint32_t mask = 0;
  std::uint32_t bits = 0;

  constexpr Cube() = default;
  constexpr Cube(std::uint32_t mask_, std::uint32_t bits_) noexcept
      : mask(mask_), bits(bits_ & mask_) {}

  /// Literal count (non-DC inputs).
  [[nodiscard]] unsigned num_literals() const noexcept;

  /// Number of don't-care inputs among the first \p num_vars inputs.
  /// This is the paper's dc_size(row) from Equation (1).
  [[nodiscard]] unsigned num_dcs(unsigned num_vars) const noexcept;

  /// True iff input \p var is a literal of the cube.
  [[nodiscard]] constexpr bool has_literal(unsigned var) const noexcept {
    return (mask >> var) & 1u;
  }
  /// Polarity of the literal on \p var; only meaningful if has_literal.
  [[nodiscard]] constexpr bool literal_value(unsigned var) const noexcept {
    return (bits >> var) & 1u;
  }

  /// Adds (or overwrites) the literal on \p var with \p value.
  constexpr void set_literal(unsigned var, bool value) noexcept {
    mask |= 1u << var;
    if (value)
      bits |= 1u << var;
    else
      bits &= ~(1u << var);
  }
  /// Turns the literal on \p var into a don't-care.
  constexpr void clear_literal(unsigned var) noexcept {
    mask &= ~(1u << var);
    bits &= ~(1u << var);
  }

  /// True iff the complete assignment \p input_bits satisfies the cube.
  [[nodiscard]] constexpr bool contains(std::uint32_t input_bits) const noexcept {
    return ((input_bits ^ bits) & mask) == 0;
  }

  /// Truth table of the cube as a function of \p num_vars inputs.
  [[nodiscard]] TruthTable to_truth_table(unsigned num_vars) const;

  /// Text form over \p num_vars inputs, input 0 first: e.g. "1-0".
  [[nodiscard]] std::string to_string(unsigned num_vars) const;

  bool operator==(const Cube&) const noexcept = default;
};

/// A sum of cubes together with the function value it asserts. RowCover
/// pairs (one for the ON-set, one for the OFF-set) are what SimGen's
/// implication and decision steps enumerate as candidate rows.
struct Cover {
  std::vector<Cube> cubes;

  /// Disjunction of all cubes as a truth table over \p num_vars inputs.
  [[nodiscard]] TruthTable to_truth_table(unsigned num_vars) const;

  [[nodiscard]] bool empty() const noexcept { return cubes.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return cubes.size(); }
};

}  // namespace simgen::tt

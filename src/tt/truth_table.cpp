#include "tt/truth_table.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace simgen::tt {
namespace {

constexpr std::size_t words_for(unsigned num_vars) noexcept {
  return num_vars <= 6 ? 1u : (std::size_t{1} << (num_vars - 6));
}

// Magic masks for variables 0..5 within a single 64-bit word: bit m of
// kVarMask[v] is 1 iff minterm m has input v set.
constexpr std::uint64_t kVarMask[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

}  // namespace

TruthTable::TruthTable(unsigned num_vars)
    : num_vars_(num_vars), words_(words_for(num_vars), 0) {
  if (num_vars > kMaxVars) throw std::invalid_argument("TruthTable: too many variables");
}

TruthTable TruthTable::from_words(unsigned num_vars, std::span<const std::uint64_t> words) {
  TruthTable table(num_vars);
  const std::size_t n = std::min(words.size(), table.words_.size());
  for (std::size_t i = 0; i < n; ++i) table.words_[i] = words[i];
  table.mask_tail();
  return table;
}

TruthTable TruthTable::from_word(unsigned num_vars, std::uint64_t word) {
  return from_words(num_vars, std::span(&word, 1));
}

TruthTable TruthTable::from_binary(std::string_view bits) {
  unsigned num_vars = 0;
  while ((std::uint64_t{1} << num_vars) < bits.size()) ++num_vars;
  if ((std::uint64_t{1} << num_vars) != bits.size())
    throw std::invalid_argument("TruthTable::from_binary: length must be a power of two");
  TruthTable table(num_vars);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[bits.size() - 1 - i];
    if (c != '0' && c != '1')
      throw std::invalid_argument("TruthTable::from_binary: invalid character");
    table.set_bit(i, c == '1');
  }
  return table;
}

TruthTable TruthTable::from_hex(unsigned num_vars, std::string_view hex) {
  TruthTable table(num_vars);
  const std::size_t nibbles = std::max<std::size_t>(1, table.num_bits() / 4);
  if (hex.size() != nibbles)
    throw std::invalid_argument("TruthTable::from_hex: wrong length");
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const char c = hex[hex.size() - 1 - i];
    unsigned value = 0;
    if (c >= '0' && c <= '9')
      value = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f')
      value = static_cast<unsigned>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F')
      value = static_cast<unsigned>(c - 'A') + 10;
    else
      throw std::invalid_argument("TruthTable::from_hex: invalid character");
    table.words_[i / 16] |= static_cast<std::uint64_t>(value) << (4 * (i % 16));
  }
  table.mask_tail();
  return table;
}

TruthTable TruthTable::constant(unsigned num_vars, bool value) {
  TruthTable table(num_vars);
  if (value) {
    for (auto& word : table.words_) word = ~0ull;
    table.mask_tail();
  }
  return table;
}

TruthTable TruthTable::projection(unsigned num_vars, unsigned var) {
  if (var >= num_vars) throw std::invalid_argument("TruthTable::projection: var out of range");
  TruthTable table(num_vars);
  if (var < 6) {
    for (auto& word : table.words_) word = kVarMask[var];
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < table.words_.size(); ++i)
      if (i & stride) table.words_[i] = ~0ull;
  }
  table.mask_tail();
  return table;
}

TruthTable TruthTable::and_gate(unsigned arity) {
  TruthTable table = constant(arity, true);
  for (unsigned v = 0; v < arity; ++v) table &= projection(arity, v);
  return table;
}

TruthTable TruthTable::or_gate(unsigned arity) {
  TruthTable table = constant(arity, false);
  for (unsigned v = 0; v < arity; ++v) table |= projection(arity, v);
  return table;
}

TruthTable TruthTable::xor_gate(unsigned arity) {
  TruthTable table = constant(arity, false);
  for (unsigned v = 0; v < arity; ++v) table ^= projection(arity, v);
  return table;
}

TruthTable TruthTable::nand_gate(unsigned arity) { return ~and_gate(arity); }
TruthTable TruthTable::nor_gate(unsigned arity) { return ~or_gate(arity); }
TruthTable TruthTable::not_gate() { return ~projection(1, 0); }
TruthTable TruthTable::buffer() { return projection(1, 0); }

TruthTable TruthTable::majority3() {
  const auto a = projection(3, 0), b = projection(3, 1), c = projection(3, 2);
  return (a & b) | (a & c) | (b & c);
}

TruthTable TruthTable::mux3() {
  const auto a = projection(3, 0), b = projection(3, 1), s = projection(3, 2);
  return (s & b) | (~s & a);
}

bool TruthTable::is_const0() const noexcept {
  for (auto word : words_)
    if (word != 0) return false;
  return true;
}

bool TruthTable::is_const1() const noexcept {
  return *this == constant(num_vars_, true);
}

std::uint64_t TruthTable::count_ones() const noexcept {
  std::uint64_t count = 0;
  for (auto word : words_) count += static_cast<std::uint64_t>(std::popcount(word));
  return count;
}

bool TruthTable::depends_on(unsigned var) const noexcept {
  if (var >= num_vars_) return false;
  if (var < 6) {
    const unsigned shift = 1u << var;
    for (auto word : words_)
      if (((word >> shift) ^ word) & ~kVarMask[var]) return true;
    return false;
  }
  const std::size_t stride = std::size_t{1} << (var - 6);
  for (std::size_t i = 0; i < words_.size(); i += 2 * stride)
    for (std::size_t j = 0; j < stride; ++j)
      if (words_[i + j] != words_[i + j + stride]) return true;
  return false;
}

std::uint32_t TruthTable::support_mask() const noexcept {
  std::uint32_t mask = 0;
  for (unsigned v = 0; v < num_vars_; ++v)
    if (depends_on(v)) mask |= 1u << v;
  return mask;
}

unsigned TruthTable::support_size() const noexcept {
  return static_cast<unsigned>(std::popcount(support_mask()));
}

TruthTable TruthTable::cofactor0(unsigned var) const {
  assert(var < num_vars_);
  TruthTable result = *this;
  if (var < 6) {
    const unsigned shift = 1u << var;
    for (auto& word : result.words_) {
      const std::uint64_t low = word & ~kVarMask[var];
      word = low | (low << shift);
    }
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < result.words_.size(); i += 2 * stride)
      for (std::size_t j = 0; j < stride; ++j)
        result.words_[i + j + stride] = result.words_[i + j];
  }
  result.mask_tail();
  return result;
}

TruthTable TruthTable::cofactor1(unsigned var) const {
  assert(var < num_vars_);
  TruthTable result = *this;
  if (var < 6) {
    const unsigned shift = 1u << var;
    for (auto& word : result.words_) {
      const std::uint64_t high = word & kVarMask[var];
      word = high | (high >> shift);
    }
  } else {
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < result.words_.size(); i += 2 * stride)
      for (std::size_t j = 0; j < stride; ++j)
        result.words_[i + j] = result.words_[i + j + stride];
  }
  result.mask_tail();
  return result;
}

TruthTable TruthTable::operator~() const {
  TruthTable result = *this;
  for (auto& word : result.words_) word = ~word;
  result.mask_tail();
  return result;
}

TruthTable TruthTable::operator&(const TruthTable& other) const {
  TruthTable result = *this;
  result &= other;
  return result;
}

TruthTable TruthTable::operator|(const TruthTable& other) const {
  TruthTable result = *this;
  result |= other;
  return result;
}

TruthTable TruthTable::operator^(const TruthTable& other) const {
  TruthTable result = *this;
  result ^= other;
  return result;
}

TruthTable& TruthTable::operator&=(const TruthTable& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

TruthTable& TruthTable::operator|=(const TruthTable& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

TruthTable& TruthTable::operator^=(const TruthTable& other) {
  check_compatible(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

bool TruthTable::implies(const TruthTable& other) const noexcept {
  assert(num_vars_ == other.num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] & ~other.words_[i]) return false;
  return true;
}

TruthTable TruthTable::extended_to(unsigned target_vars) const {
  if (target_vars < num_vars_)
    throw std::invalid_argument("TruthTable::extended_to: cannot shrink");
  TruthTable result(target_vars);
  if (num_vars_ <= 6) {
    // Replicate the (2^num_vars)-bit pattern to fill a full word, then
    // copy the word across the result.
    std::uint64_t word = words_[0];
    for (unsigned v = num_vars_; v < 6 && v < target_vars; ++v)
      word |= word << (1u << v);
    for (auto& out : result.words_) out = word;
  } else {
    for (std::size_t i = 0; i < result.words_.size(); ++i)
      result.words_[i] = words_[i % words_.size()];
  }
  result.mask_tail();
  return result;
}

std::uint64_t TruthTable::hash() const noexcept {
  std::uint64_t h = util::splitmix64(num_vars_);
  for (auto word : words_) h = util::splitmix64(h ^ word);
  return h;
}

std::string TruthTable::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::size_t nibbles = std::max<std::size_t>(1, num_bits() / 4);
  std::string out(nibbles, '0');
  for (std::size_t i = 0; i < nibbles; ++i) {
    const unsigned value =
        static_cast<unsigned>((words_[i / 16] >> (4 * (i % 16))) & 0xfu);
    out[nibbles - 1 - i] = kDigits[value];
  }
  if (num_vars_ == 0) out[0] = kDigits[words_[0] & 1u];
  if (num_vars_ == 1) out[0] = kDigits[words_[0] & 3u];
  return out;
}

std::string TruthTable::to_binary() const {
  std::string out(num_bits(), '0');
  for (std::uint64_t i = 0; i < num_bits(); ++i)
    if (get_bit(i)) out[num_bits() - 1 - i] = '1';
  return out;
}

void TruthTable::mask_tail() noexcept {
  if (num_vars_ < 6) words_[0] &= (1ull << num_bits()) - 1;
}

void TruthTable::check_compatible(const TruthTable& other) const {
  if (num_vars_ != other.num_vars_)
    throw std::invalid_argument("TruthTable: operand arity mismatch");
}

}  // namespace simgen::tt

/// \file isop.hpp
/// \brief Irredundant sum-of-products extraction (Minato-Morreale).
///
/// ISOP turns a node's exhaustive truth table into a compact cover of
/// cubes with don't-cares. SimGen treats these cubes as the "rows" of the
/// node's truth table (paper Figures 3-4): the implication engine filters
/// rows against the current ternary assignment and the decision heuristics
/// (DC count, MFFC rank) score them. The CNF encoder reuses the same
/// covers for Tseitin clauses, so one cover computation serves both.
#pragma once

#include "tt/cube.hpp"
#include "tt/truth_table.hpp"

namespace simgen::tt {

/// Computes an irredundant SOP cover of any function f with
/// on <= f <= on|dc (Minato-Morreale interval ISOP).
/// \p on and \p dc must not intersect. Passing dc = const0 yields an
/// irredundant cover of exactly \p on.
[[nodiscard]] Cover isop(const TruthTable& on, const TruthTable& dc);

/// Irredundant cover of exactly \p function (no external don't-cares).
[[nodiscard]] Cover isop(const TruthTable& function);

/// Row set of a node function as SimGen sees it: the ON-set cover, the
/// OFF-set cover, and per-row output values.
struct RowSet {
  Cover on;   ///< Rows whose output value is 1.
  Cover off;  ///< Rows whose output value is 0.

  [[nodiscard]] std::size_t num_rows() const noexcept {
    return on.size() + off.size();
  }
};

/// Computes both covers of \p function. Postcondition (checked by tests):
/// on.to_truth_table == function and off.to_truth_table == ~function.
[[nodiscard]] RowSet compute_rows(const TruthTable& function);

}  // namespace simgen::tt

/// \file truth_table.hpp
/// \brief Bit-parallel truth tables for node functions.
///
/// A TruthTable stores the complete function of an up-to-16-input node as
/// packed 64-bit words (one word for <= 6 inputs, the common case for the
/// 6-LUT networks this library sweeps). The class provides the Boolean
/// algebra needed by the LUT mapper, the CNF encoder, the simulator, and
/// the ISOP cover extraction that SimGen's implication engine operates on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace simgen::tt {

/// Maximum supported number of truth-table variables.
inline constexpr unsigned kMaxVars = 16;

/// Complete Boolean function of `num_vars()` inputs.
///
/// Bit `m` of the table is the function value on the minterm whose binary
/// encoding is `m` (input 0 is the least significant input). Unused high
/// bits of the last word are kept zero for tables with fewer than 6
/// variables, which makes word-wise equality and hashing exact.
class TruthTable {
 public:
  /// Constructs the constant-0 function of \p num_vars inputs.
  explicit TruthTable(unsigned num_vars = 0);

  /// Builds a table from raw words (lowest word first). Extra bits beyond
  /// 2^num_vars are masked off.
  static TruthTable from_words(unsigned num_vars, std::span<const std::uint64_t> words);

  /// Builds a <=6-input table from a single word.
  static TruthTable from_word(unsigned num_vars, std::uint64_t word);

  /// Builds a table from a binary string, most significant minterm first
  /// (e.g. "1000" is AND of two inputs). Length must be 2^num_vars.
  static TruthTable from_binary(std::string_view bits);

  /// Builds a table from a hexadecimal string, most significant nibble
  /// first (e.g. "8" is 2-input AND). Length must be max(1, 2^num_vars/4).
  static TruthTable from_hex(unsigned num_vars, std::string_view hex);

  /// The constant-0 / constant-1 function of \p num_vars inputs.
  static TruthTable constant(unsigned num_vars, bool value);

  /// The projection function x_i of \p num_vars inputs.
  static TruthTable projection(unsigned num_vars, unsigned var);

  // Common gate functions (of `arity` inputs where it makes sense).
  static TruthTable and_gate(unsigned arity);
  static TruthTable or_gate(unsigned arity);
  static TruthTable xor_gate(unsigned arity);
  static TruthTable nand_gate(unsigned arity);
  static TruthTable nor_gate(unsigned arity);
  static TruthTable not_gate();
  static TruthTable buffer();
  static TruthTable majority3();
  static TruthTable mux3();  ///< if x2 then x1 else x0.

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::uint64_t num_bits() const noexcept { return 1ull << num_vars_; }
  [[nodiscard]] std::size_t num_words() const noexcept { return words_.size(); }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Value of the function on minterm \p index.
  [[nodiscard]] bool get_bit(std::uint64_t index) const noexcept {
    return (words_[index >> 6] >> (index & 63u)) & 1u;
  }
  void set_bit(std::uint64_t index, bool value) noexcept {
    const std::uint64_t mask = 1ull << (index & 63u);
    if (value)
      words_[index >> 6] |= mask;
    else
      words_[index >> 6] &= ~mask;
  }

  [[nodiscard]] bool is_const0() const noexcept;
  [[nodiscard]] bool is_const1() const noexcept;

  /// Number of minterms on which the function is 1.
  [[nodiscard]] std::uint64_t count_ones() const noexcept;

  /// True iff the function depends on variable \p var.
  [[nodiscard]] bool depends_on(unsigned var) const noexcept;

  /// Bitmask of variables the function depends on.
  [[nodiscard]] std::uint32_t support_mask() const noexcept;

  /// Number of variables in the functional support.
  [[nodiscard]] unsigned support_size() const noexcept;

  /// Negative / positive cofactor with respect to \p var. The result has
  /// the same num_vars but no longer depends on \p var.
  [[nodiscard]] TruthTable cofactor0(unsigned var) const;
  [[nodiscard]] TruthTable cofactor1(unsigned var) const;

  // Boolean algebra. Operands must have identical num_vars.
  [[nodiscard]] TruthTable operator~() const;
  [[nodiscard]] TruthTable operator&(const TruthTable& other) const;
  [[nodiscard]] TruthTable operator|(const TruthTable& other) const;
  [[nodiscard]] TruthTable operator^(const TruthTable& other) const;
  TruthTable& operator&=(const TruthTable& other);
  TruthTable& operator|=(const TruthTable& other);
  TruthTable& operator^=(const TruthTable& other);

  bool operator==(const TruthTable& other) const noexcept = default;

  /// True iff this function implies \p other (this <= other pointwise).
  [[nodiscard]] bool implies(const TruthTable& other) const noexcept;

  /// Evaluates the function on a complete input assignment given as a
  /// bitmask (bit i = value of input i).
  [[nodiscard]] bool evaluate(std::uint32_t input_bits) const noexcept {
    return get_bit(input_bits);
  }

  /// Returns an equivalent table extended to \p num_vars inputs (the new
  /// high variables are don't-cares). Requires num_vars >= current.
  [[nodiscard]] TruthTable extended_to(unsigned target_vars) const;

  /// Stable 64-bit hash of (num_vars, contents).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  /// Hexadecimal rendering, most significant nibble first.
  [[nodiscard]] std::string to_hex() const;

  /// Binary rendering, most significant minterm first.
  [[nodiscard]] std::string to_binary() const;

 private:
  void mask_tail() noexcept;
  void check_compatible(const TruthTable& other) const;

  unsigned num_vars_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace simgen::tt

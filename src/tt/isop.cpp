#include "tt/isop.hpp"

#include <stdexcept>

namespace simgen::tt {
namespace {

// Minato-Morreale recursion. Computes an irredundant cover of some g with
// lower <= g <= upper and returns the function actually covered. Cubes are
// appended to `cubes`.
TruthTable isop_rec(const TruthTable& lower, const TruthTable& upper,
                    unsigned var_count, std::vector<Cube>& cubes) {
  if (lower.is_const0()) return lower;  // empty cover
  if (upper.is_const1()) {
    cubes.emplace_back();  // tautology cube (all DC)
    return upper;
  }

  // Pick the highest variable either bound still depends on.
  unsigned var = var_count;
  while (var-- > 0) {
    if (lower.depends_on(var) || upper.depends_on(var)) break;
  }
  // Since lower != 0 and upper != 1 and lower <= upper, some variable must
  // remain; otherwise both are constants with lower=1, upper=0 which would
  // violate the interval invariant.
  if (var >= var_count) throw std::logic_error("isop: interval invariant violated");

  const TruthTable lower0 = lower.cofactor0(var);
  const TruthTable lower1 = lower.cofactor1(var);
  const TruthTable upper0 = upper.cofactor0(var);
  const TruthTable upper1 = upper.cofactor1(var);

  // Cubes that must contain the literal !var: minterms required in the
  // 0-half that the 1-half cannot absorb.
  const std::size_t first_neg = cubes.size();
  const TruthTable cover0 =
      isop_rec(lower0 & ~upper1, upper0, var, cubes);
  for (std::size_t i = first_neg; i < cubes.size(); ++i)
    cubes[i].set_literal(var, false);

  // Cubes that must contain the literal var.
  const std::size_t first_pos = cubes.size();
  const TruthTable cover1 =
      isop_rec(lower1 & ~upper0, upper1, var, cubes);
  for (std::size_t i = first_pos; i < cubes.size(); ++i)
    cubes[i].set_literal(var, true);

  // Remaining required minterms are covered without a literal on var.
  const TruthTable rest_lower = (lower0 & ~cover0) | (lower1 & ~cover1);
  const TruthTable cover_rest =
      isop_rec(rest_lower, upper0 & upper1, var, cubes);

  const TruthTable proj = TruthTable::projection(lower.num_vars(), var);
  return (cover0 & ~proj) | (cover1 & proj) | cover_rest;
}

}  // namespace

Cover isop(const TruthTable& on, const TruthTable& dc) {
  if (on.num_vars() != dc.num_vars())
    throw std::invalid_argument("isop: arity mismatch");
  if (!(on & dc).is_const0())
    throw std::invalid_argument("isop: on-set and dc-set intersect");
  Cover cover;
  isop_rec(on, on | dc, on.num_vars(), cover.cubes);
  return cover;
}

Cover isop(const TruthTable& function) {
  return isop(function, TruthTable::constant(function.num_vars(), false));
}

RowSet compute_rows(const TruthTable& function) {
  RowSet rows;
  rows.on = isop(function);
  rows.off = isop(~function);
  return rows;
}

}  // namespace simgen::tt

#include "sat/proof.hpp"

#include <algorithm>

namespace simgen::sat {

namespace {

/// DIMACS rendering of a literal: 1-based, negative when complemented.
long dimacs_of(Lit lit) {
  const long var = static_cast<long>(lit.var()) + 1;
  return lit.negated() ? -var : var;
}

void write_clause_line(std::ostream& out, std::span<const Lit> clause) {
  for (Lit lit : clause) out << dimacs_of(lit) << ' ';
  out << "0\n";
}

}  // namespace

bool ProofRecorder::has_empty_lemma() const noexcept {
  return std::any_of(steps_.begin(), steps_.end(), [](const ProofStep& step) {
    return step.kind == ProofStep::Kind::kLemma && step.clause.empty();
  });
}

void ProofRecorder::write_drat(std::ostream& out) const {
  for (const ProofStep& step : steps_) {
    switch (step.kind) {
      case ProofStep::Kind::kAxiom:
        break;  // axioms belong to the CNF, not the proof
      case ProofStep::Kind::kLemma:
        write_clause_line(out, step.clause);
        break;
      case ProofStep::Kind::kDelete:
        out << "d ";
        write_clause_line(out, step.clause);
        break;
    }
  }
}

void ProofRecorder::write_dimacs(std::ostream& out) const {
  std::uint32_t max_var = 0;
  std::size_t num_clauses = 0;
  for (const ProofStep& step : steps_) {
    if (step.kind != ProofStep::Kind::kAxiom) continue;
    ++num_clauses;
    for (Lit lit : step.clause)
      max_var = std::max(max_var, lit.var().value() + 1);
  }
  out << "p cnf " << max_var << ' ' << num_clauses << '\n';
  for (const ProofStep& step : steps_)
    if (step.kind == ProofStep::Kind::kAxiom) write_clause_line(out, step.clause);
}

}  // namespace simgen::sat

/// \file dimacs.hpp
/// \brief DIMACS CNF import/export for the SAT solver.
///
/// Lets the bundled CDCL solver be used (and cross-checked against other
/// solvers) on standard .cnf files, and lets sweeping obligations be
/// dumped for external analysis: CnfEncoder + dump_dimacs turns any cone
/// equivalence query into a portable benchmark.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace simgen::sat {

/// A parsed DIMACS problem (clauses over variables 0..num_vars-1; the
/// file's 1-based literals are converted to Lit encoding).
struct DimacsProblem {
  std::size_t num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parses DIMACS CNF ("c" comments, "p cnf V C" header, clauses
/// terminated by 0). Tolerates a clause count that disagrees with the
/// header; throws std::runtime_error on structural errors.
[[nodiscard]] DimacsProblem read_dimacs(std::istream& in);
[[nodiscard]] DimacsProblem read_dimacs_string(const std::string& text);
[[nodiscard]] DimacsProblem read_dimacs_file(const std::string& path);

/// Loads a parsed problem into \p solver (creating variables as needed);
/// returns false if the problem is already unsatisfiable at level 0.
bool load_problem(Solver& solver, const DimacsProblem& problem);

/// Writes clauses in DIMACS format.
void write_dimacs(const DimacsProblem& problem, std::ostream& out);
[[nodiscard]] std::string write_dimacs_string(const DimacsProblem& problem);

}  // namespace simgen::sat

#include "sat/arena.hpp"

namespace simgen::sat {

ClauseRef ClauseArena::alloc(std::span<const Lit> lits, bool learnt) {
  assert(lits.size() >= 2);
  const auto ref = static_cast<ClauseRef>(mem_.size());
  mem_.push_back((static_cast<std::uint32_t>(lits.size()) << 3) |
                 (learnt ? 4u : 0u));
  mem_.push_back(0);  // activity / relocation slot
  for (const Lit lit : lits) mem_.push_back(lit.code());
  return ref;
}

void ClauseArena::copy_lits(ClauseRef ref, std::vector<Lit>& out) const {
  const std::uint32_t count = size(ref);
  out.reserve(out.size() + count);
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(lit(ref, i));
}

void ClauseArena::reloc(ClauseRef& ref, ClauseArena& to) {
  if ((mem_[ref] & 1u) != 0) {  // already moved: header word 1 holds the target
    ref = mem_[ref + 1];
    return;
  }
  assert(!garbage(ref));
  const std::uint32_t count = size(ref);
  const auto target = static_cast<ClauseRef>(to.mem_.size());
  to.mem_.push_back(mem_[ref]);
  for (std::uint32_t i = 0; i <= count; ++i)
    to.mem_.push_back(mem_[ref + 1 + i]);
  mem_[ref] |= 1u;
  mem_[ref + 1] = target;
  ref = target;
}

}  // namespace simgen::sat

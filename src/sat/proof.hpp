/// \file proof.hpp
/// \brief Proof-logging interface of the CDCL solver (DRAT events).
///
/// A ProofTracer observes the solver's clause lifecycle: every clause the
/// caller adds (an axiom of the formula), every clause the solver derives
/// (learned lemmas, including clauses it simplified while adding and the
/// empty clause on a level-0 refutation), and every learned clause it
/// deletes. The event stream is exactly a DRAT proof of the solver's
/// UNSAT answers: each derived clause is a reverse-unit-propagation (RUP)
/// consequence of the axioms plus the earlier derived clauses that are
/// still live. src/check/drat.hpp consumes this stream to certify UNSAT
/// verdicts independently of the solver.
#pragma once

#include <ostream>
#include <span>
#include <vector>

#include "sat/solver.hpp"

namespace simgen::sat {

/// One recorded proof event (see ProofTracer for the event kinds).
struct ProofStep {
  enum class Kind : std::uint8_t {
    kAxiom,   ///< Clause added by the caller; trusted, never checked.
    kLemma,   ///< Clause derived by the solver; must be RUP when checked.
    kDelete,  ///< Derived clause removed from the solver's database.
  };
  Kind kind = Kind::kLemma;
  std::vector<Lit> clause;
};

/// Observer of the solver's clause additions, derivations and deletions.
/// All spans are only valid for the duration of the call.
class ProofTracer {
 public:
  virtual ~ProofTracer() = default;

  /// A clause the caller added via Solver::add_clause (before any
  /// simplification). Axioms are part of the formula, not of the proof.
  virtual void on_axiom(std::span<const Lit> clause) = 0;

  /// A clause the solver derived: a learned conflict clause, a
  /// simplification of an added clause (level-0 false literals removed),
  /// or the empty clause when the formula is refuted outright.
  virtual void on_lemma(std::span<const Lit> clause) = 0;

  /// A previously derived clause leaving the solver's database.
  virtual void on_delete(std::span<const Lit> clause) = 0;
};

/// ProofTracer that records the event stream in memory. Useful directly
/// for tests and as the storage behind the DRAT file writer; the
/// incremental certifier in src/check has its own tracer.
class ProofRecorder final : public ProofTracer {
 public:
  void on_axiom(std::span<const Lit> clause) override {
    steps_.push_back({ProofStep::Kind::kAxiom, {clause.begin(), clause.end()}});
  }
  void on_lemma(std::span<const Lit> clause) override {
    steps_.push_back({ProofStep::Kind::kLemma, {clause.begin(), clause.end()}});
  }
  void on_delete(std::span<const Lit> clause) override {
    steps_.push_back({ProofStep::Kind::kDelete, {clause.begin(), clause.end()}});
  }

  [[nodiscard]] const std::vector<ProofStep>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] std::vector<ProofStep>& steps() noexcept { return steps_; }
  void clear() { steps_.clear(); }

  /// True iff a refutation (empty lemma) was derived.
  [[nodiscard]] bool has_empty_lemma() const noexcept;

  /// Writes the derivation steps (lemmas and deletions, not axioms) in
  /// the standard textual DRAT format: one clause per line, literals as
  /// signed 1-based DIMACS integers, deletions prefixed with "d".
  void write_drat(std::ostream& out) const;

  /// Writes the axioms as a DIMACS CNF header + clause lines, so a
  /// recorded run can be re-checked by external tools (drat-trim).
  void write_dimacs(std::ostream& out) const;

 private:
  std::vector<ProofStep> steps_;
};

}  // namespace simgen::sat

/// \file solver.hpp
/// \brief CDCL SAT solver (MiniSat-lineage architecture).
///
/// The verification tool of the sweeping flow (paper Figure 2). Features:
/// two-watched-literal propagation, first-UIP conflict analysis with
/// clause minimization, VSIDS branching with phase saving, Luby restarts,
/// activity-based learned-clause deletion, and incremental solving under
/// assumptions — the mode SAT sweeping uses to test one candidate pair of
/// nodes per call while keeping all previously loaded cone clauses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "util/strong_id.hpp"

namespace simgen::sat {

/// Variable index, 0-based. A strong type: a sat::Var is not a
/// net::NodeId (the CNF encoder owns the mapping between the two spaces),
/// and handing one across that boundary without going through the encoder
/// is a compile error.
struct VarTag {};
using Var = util::StrongId<VarTag>;

/// Literal: 2*var + sign (sign 1 = negated).
class Lit {
 public:
  constexpr Lit() = default;
  constexpr Lit(Var var, bool negated) noexcept
      : code_((var.value() << 1) | static_cast<std::uint32_t>(negated)) {}

  [[nodiscard]] constexpr Var var() const noexcept { return Var{code_ >> 1}; }
  [[nodiscard]] constexpr bool negated() const noexcept { return code_ & 1u; }
  [[nodiscard]] constexpr Lit operator~() const noexcept { return from_code(code_ ^ 1u); }
  [[nodiscard]] constexpr std::uint32_t code() const noexcept { return code_; }

  static constexpr Lit from_code(std::uint32_t code) noexcept {
    Lit lit;
    lit.code_ = code;
    return lit;
  }

  constexpr bool operator==(const Lit&) const noexcept = default;

 private:
  std::uint32_t code_ = 0;
};

/// Positive literal of \p var.
[[nodiscard]] constexpr Lit pos(Var var) noexcept { return Lit(var, false); }
/// Negative literal of \p var.
[[nodiscard]] constexpr Lit neg(Var var) noexcept { return Lit(var, true); }

enum class Result : std::uint8_t { kSat, kUnsat, kUnknown };

class ProofTracer;  // see sat/proof.hpp

/// Runtime counters, exposed for the paper's SAT-calls / SAT-time tables.
///
/// A registry-backed view: the Solver's instance (constructed with
/// obs::kRegister) owns obs counters named "sat.*", so the same values
/// are readable per-instance through stats() and globally through the
/// telemetry registry (obs::capture_snapshot / --metrics-out). Copies are
/// detached value snapshots.
struct SolverStats {
  SolverStats() = default;  ///< Detached (all zeros, unregistered).
  explicit SolverStats(obs::register_t);

  obs::Counter solve_calls;
  obs::Counter conflicts;
  obs::Counter decisions;
  obs::Counter propagations;
  obs::Counter restarts;
  obs::Counter learned_clauses;
  obs::Counter deleted_clauses;
  /// Learnt-clause DB reductions (reduce_learnt_db invocations).
  obs::Counter db_reductions;
  /// Log2-bucket size distribution of learned clauses.
  obs::Histogram learned_clause_size;
  /// Log2-bucket LBD (literal block distance: distinct decision levels in
  /// a learnt clause) distribution — the standard learnt-quality measure.
  /// Observed only when telemetry is compiled in.
  obs::Histogram learned_clause_lbd;
};

/// Incremental CDCL solver.
class Solver {
 public:
  Solver();

  /// Creates a fresh variable and returns it.
  Var new_var();
  [[nodiscard]] std::size_t num_vars() const noexcept { return assigns_.size(); }

  /// Adds a clause (permanently). Returns false if the solver is already
  /// in an unsatisfiable state at level 0 (the clause set is then UNSAT
  /// regardless of assumptions).
  bool add_clause(std::span<const Lit> literals);
  bool add_clause(std::initializer_list<Lit> literals) {
    return add_clause(std::span<const Lit>(literals.begin(), literals.size()));
  }

  /// Solves under \p assumptions. kUnknown is returned only if a conflict
  /// limit is set and exhausted.
  Result solve(std::span<const Lit> assumptions = {});
  Result solve(std::initializer_list<Lit> assumptions) {
    return solve(std::span<const Lit>(assumptions.begin(), assumptions.size()));
  }

  /// Model access after kSat.
  [[nodiscard]] bool model_value(Var var) const { return model_[var]; }
  [[nodiscard]] bool model_value(Lit lit) const {
    return model_[lit.var()] != lit.negated();
  }

  /// True if the clause set is UNSAT independent of assumptions.
  [[nodiscard]] bool in_conflict() const noexcept { return !ok_; }

  /// 0 disables the limit (default).
  void set_conflict_limit(std::uint64_t limit) noexcept { conflict_limit_ = limit; }

  /// Attaches a DRAT proof observer (nullptr detaches). The tracer sees
  /// every added clause, every derived clause, and every deletion from
  /// this point on; attach it before the first add_clause to obtain a
  /// checkable proof. The solver does not own the tracer.
  void set_proof_tracer(ProofTracer* tracer) noexcept { proof_ = tracer; }
  [[nodiscard]] ProofTracer* proof_tracer() const noexcept { return proof_; }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

#ifndef SIMGEN_NO_TELEMETRY
  /// Tags subsequent solves with the identity of the cone being solved —
  /// the same (a, b, output-proof) key the surrounding kSatCall event
  /// carries — so the solver-emitted introspection milestones
  /// (kSolverRestart / kSolverReduce / kSolverBudget) can be joined to
  /// their call post-mortem. Milestones are emitted only while a context
  /// is set and a journal is recording. The whole introspection surface
  /// (these methods, the emit helpers, the LBD computation) exists only
  /// in telemetry builds; CI nm-checks that NO_TELEMETRY binaries contain
  /// no symbol with "introspection" in its name.
  void set_introspection_context(std::uint64_t a, std::uint64_t b,
                                 bool output_proof) noexcept;
  void clear_introspection_context() noexcept;
#endif

 private:
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoReason = ~ClauseRef{0};

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };

  struct Watcher {
    ClauseRef clause = kNoReason;
    Lit blocker;  ///< Satisfied blocker shortcut.
  };

  enum class LBool : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  [[nodiscard]] LBool value(Lit lit) const noexcept {
    const LBool v = assigns_[lit.var()];
    if (v == LBool::kUndef) return LBool::kUndef;
    return (v == LBool::kTrue) != lit.negated() ? LBool::kTrue : LBool::kFalse;
  }

  [[nodiscard]] unsigned decision_level() const noexcept {
    return static_cast<unsigned>(trail_lim_.size());
  }

  ClauseRef alloc_clause(std::vector<Lit> literals, bool learnt);
  void free_clause(ClauseRef ref);
  void attach_clause(ClauseRef ref);
  void detach_clause(ClauseRef ref);

  void enqueue(Lit lit, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt_out, unsigned& backtrack_level);
  [[nodiscard]] bool literal_redundant(Lit lit, std::uint32_t abstract_levels);
  void backtrack(unsigned level);
  Lit pick_branch_literal();
  void reduce_learnt_db();
  Result search();

  // VSIDS heap operations.
  void bump_var(Var var);
  void decay_var_activity() { var_activity_increment_ /= kVarDecay; }
  void bump_clause(Clause& clause);
  void decay_clause_activity() { clause_activity_increment_ /= kClauseDecay; }
  void heap_insert(Var var);
  Var heap_pop();
  void heap_sift_up(std::size_t index);
  void heap_sift_down(std::size_t index);
  [[nodiscard]] bool heap_contains(Var var) const {
    return heap_position_[var] != kNotInHeap;
  }

  static constexpr double kVarDecay = 0.95;
  static constexpr double kClauseDecay = 0.999;
  static constexpr std::uint32_t kNotInHeap = ~std::uint32_t{0};

  // Clause storage with index reuse.
  std::vector<Clause> clauses_;
  std::vector<ClauseRef> free_list_;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;

  // Assignment state.
  std::vector<LBool> assigns_;       // per var
  std::vector<bool> phase_;          // per var: saved polarity
  std::vector<unsigned> level_;      // per var
  std::vector<ClauseRef> reason_;    // per var
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t propagate_head_ = 0;

  // Watches, indexed by literal code: clauses watching ~lit... see .cpp.
  std::vector<std::vector<Watcher>> watches_;

  // Branching.
  std::vector<double> activity_;
  std::vector<Var> heap_;
  std::vector<std::uint32_t> heap_position_;
  double var_activity_increment_ = 1.0;
  double clause_activity_increment_ = 1.0;

  // Conflict analysis scratch.
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;

  // Proof logging (optional, not owned).
  ProofTracer* proof_ = nullptr;

  // Search control.
  bool ok_ = true;
  std::uint64_t conflict_limit_ = 0;
  std::uint64_t conflicts_this_solve_ = 0;
  std::size_t max_learnt_ = 0;
  std::vector<Lit> assumptions_;
  std::vector<bool> model_;

#ifndef SIMGEN_NO_TELEMETRY
  // Solver introspection (journal milestones + LBD), telemetry-only.
  [[nodiscard]] unsigned compute_introspection_lbd(
      std::span<const Lit> learnt);
  void emit_introspection_restart(std::uint64_t ordinal);
  void emit_introspection_reduce(std::uint64_t deleted, std::uint64_t before,
                                 std::uint64_t after);
  void emit_introspection_budget();
  void emit_introspection_solve_stats();

  std::uint64_t probe_a_ = 0;
  std::uint64_t probe_b_ = 0;
  std::uint64_t restarts_this_solve_ = 0;
  std::uint64_t lbd_count_this_solve_ = 0;
  std::uint64_t lbd_sum_this_solve_ = 0;
  std::uint64_t lbd_max_this_solve_ = 0;
  std::uint16_t probe_flags_ = 0;
  bool probe_active_ = false;
  // Level -> stamp scratch for the LBD count (distinct levels in a
  // learnt clause) without clearing between conflicts.
  std::vector<std::uint32_t> lbd_mark_;
  std::uint32_t lbd_stamp_ = 0;
#endif

  SolverStats stats_{obs::kRegister};
};

}  // namespace simgen::sat

/// \file solver.hpp
/// \brief CDCL SAT solver (MiniSat-lineage architecture).
///
/// The verification tool of the sweeping flow (paper Figure 2). Features:
/// two-watched-literal propagation with blocking literals over a packed
/// clause arena (32-bit clause refs), implicit binary clauses kept in a
/// binary implication graph (per-literal binary watch lists; propagation
/// over them never touches clause memory), first-UIP conflict analysis
/// with clause minimization, VSIDS branching with phase saving, Luby
/// restarts, activity-based learned-clause deletion, an inprocessing
/// layer (see sat/inprocess.hpp) that runs between restarts, and
/// incremental solving under assumptions with a memoized assumption
/// prefix — the mode SAT sweeping uses to test one candidate pair of
/// nodes per call while keeping all previously loaded cone clauses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "sat/arena.hpp"
#include "sat/types.hpp"

namespace simgen::sat {

class ProofTracer;  // see sat/proof.hpp

/// Inprocessing configuration. Every pass is individually toggleable so
/// a differential failure names the guilty technique; the tick budgets
/// bound each pass by its dominant unit of work (literal visits or
/// propagations), keeping a run O(budget) regardless of database size.
struct InprocessConfig {
  bool enabled = true;
  bool scc = true;      ///< Equivalent-literal substitution (binary SCCs).
  bool probe = true;    ///< Failed-literal probing.
  bool subsume = true;  ///< Subsumption + self-subsumption strengthening.
  bool vivify = true;   ///< Clause vivification.
  bool bve = true;      ///< Bounded variable elimination.
  /// Conflicts between inprocessing runs (0 = run before every solve).
  std::uint64_t conflict_interval = 4000;
  std::uint64_t subsume_ticks = 2'000'000;  ///< Literal visits.
  std::uint64_t vivify_ticks = 200'000;     ///< Propagated literals.
  std::uint64_t probe_ticks = 200'000;      ///< Propagated literals.
  std::uint64_t bve_ticks = 1'000'000;      ///< Literal visits.
  /// BVE skips variables with more occurrences than this on either
  /// polarity (quadratic resolvent check guard).
  std::uint32_t bve_occurrence_limit = 20;
};

/// Runtime counters, exposed for the paper's SAT-calls / SAT-time tables.
///
/// A registry-backed view: the Solver's instance (constructed with
/// obs::kRegister) owns obs counters named "sat.*", so the same values
/// are readable per-instance through stats() and globally through the
/// telemetry registry (obs::capture_snapshot / --metrics-out). Copies are
/// detached value snapshots.
struct SolverStats {
  SolverStats() = default;  ///< Detached (all zeros, unregistered).
  explicit SolverStats(obs::register_t);

  obs::Counter solve_calls;
  obs::Counter conflicts;
  obs::Counter decisions;
  obs::Counter propagations;
  obs::Counter restarts;
  obs::Counter learned_clauses;
  obs::Counter deleted_clauses;
  /// Learnt-clause DB reductions (reduce_learnt_db invocations).
  obs::Counter db_reductions;
  // Inprocessing counters ("sat.inprocess.*"): one per technique so the
  // metrics dump attributes database hygiene to the pass that did it.
  obs::Counter inprocess_runs;
  obs::Counter inprocess_deleted;        ///< Clauses deleted (all passes).
  obs::Counter inprocess_strengthened;   ///< Self-subsumption strengthenings.
  obs::Counter inprocess_vivified;       ///< Vivification shortenings.
  obs::Counter inprocess_failed_literals;
  obs::Counter inprocess_substituted;    ///< SCC-substituted variables.
  obs::Counter inprocess_eliminated;     ///< BVE-eliminated variables.
  obs::Counter inprocess_resolvents;     ///< BVE resolvent clauses added.
  /// Log2-bucket size distribution of learned clauses.
  obs::Histogram learned_clause_size;
  /// Log2-bucket LBD (literal block distance: distinct decision levels in
  /// a learnt clause) distribution — the standard learnt-quality measure.
  /// Observed only when telemetry is compiled in.
  obs::Histogram learned_clause_lbd;
};

/// Incremental CDCL solver.
class Solver {
 public:
  Solver();

  /// Creates a fresh variable and returns it.
  Var new_var();
  [[nodiscard]] std::size_t num_vars() const noexcept { return assigns_.size(); }

  /// Adds a clause (permanently). Returns false if the solver is already
  /// in an unsatisfiable state at level 0 (the clause set is then UNSAT
  /// regardless of assumptions).
  bool add_clause(std::span<const Lit> literals);
  bool add_clause(std::initializer_list<Lit> literals) {
    return add_clause(std::span<const Lit>(literals.begin(), literals.size()));
  }

  /// Solves under \p assumptions. kUnknown is returned only if a conflict
  /// limit is set and exhausted.
  Result solve(std::span<const Lit> assumptions = {});
  Result solve(std::initializer_list<Lit> assumptions) {
    return solve(std::span<const Lit>(assumptions.begin(), assumptions.size()));
  }

  /// Model access after kSat. Valid until the next solve/add_clause.
  ///
  /// When no reconstruction is pending (nothing eliminated or
  /// substituted — the steady state of SAT sweeping, whose encoder
  /// freezes every variable), the model is read straight off the
  /// solver state instead of being materialized per call: phase saving
  /// records each variable's final value as it leaves the trail, so
  /// `assigns_` (still-assigned) plus `phase_` (backtracked or never
  /// decided) together ARE the satisfying assignment.
  [[nodiscard]] bool model_value(Var var) const {
    if (model_lazy_)
      return assigns_[var] == LBool::kUndef ? phase_[var]
                                            : assigns_[var] == LBool::kTrue;
    return model_[var];
  }
  [[nodiscard]] bool model_value(Lit lit) const {
    return model_value(lit.var()) != lit.negated();
  }

  /// True if the clause set is UNSAT independent of assumptions.
  [[nodiscard]] bool in_conflict() const noexcept { return !ok_; }

  /// 0 disables the limit (default).
  void set_conflict_limit(std::uint64_t limit) noexcept { conflict_limit_ = limit; }

  /// Marks \p var externally referenced: elimination-style inprocessing
  /// (BVE, equivalent-literal substitution) must leave it untouched
  /// because the caller may still add clauses over it, assume it, or read
  /// its model value. The CNF encoder freezes every variable it creates;
  /// equivalence-preserving passes (subsumption, vivification, probing)
  /// stay active on frozen variables.
  void set_frozen(Var var, bool frozen = true) noexcept;
  [[nodiscard]] bool is_frozen(Var var) const noexcept {
    return (var_flags_[var] & kFlagFrozen) != 0;
  }

  /// Inprocessing configuration (see InprocessConfig). Takes effect at
  /// the next inprocessing opportunity.
  void set_inprocess_config(const InprocessConfig& config) noexcept {
    inprocess_config_ = config;
  }
  [[nodiscard]] const InprocessConfig& inprocess_config() const noexcept {
    return inprocess_config_;
  }

  /// Attaches a DRAT proof observer (nullptr detaches). The tracer sees
  /// every added clause, every derived clause, and every deletion from
  /// this point on; attach it before the first add_clause to obtain a
  /// checkable proof. The solver does not own the tracer.
  void set_proof_tracer(ProofTracer* tracer) noexcept { proof_ = tracer; }
  [[nodiscard]] ProofTracer* proof_tracer() const noexcept { return proof_; }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

#ifndef SIMGEN_NO_TELEMETRY
  /// Tags subsequent solves with the identity of the cone being solved —
  /// the same (a, b, output-proof) key the surrounding kSatCall event
  /// carries — so the solver-emitted introspection milestones
  /// (kSolverRestart / kSolverReduce / kSolverBudget / kSolverInprocess)
  /// can be joined to their call post-mortem. Milestones are emitted only
  /// while a context is set and a journal is recording. The whole
  /// introspection surface (these methods, the emit helpers, the LBD
  /// computation) exists only in telemetry builds; CI nm-checks that
  /// NO_TELEMETRY binaries contain no symbol with "introspection" in its
  /// name.
  void set_introspection_context(std::uint64_t a, std::uint64_t b,
                                 bool output_proof) noexcept;
  void clear_introspection_context() noexcept;
#endif

 private:
  friend class Inprocessor;  // sat/inprocess.cpp: runs the passes in-place.

  static constexpr ClauseRef kNoReason = kInvalidClauseRef;

  /// Long-clause watcher (clauses of size >= 3).
  struct Watcher {
    ClauseRef clause = kNoReason;
    Lit blocker;  ///< Satisfied blocker shortcut.
  };

  /// Binary implication graph edge: when the list's key literal becomes
  /// true, \p other is implied. \p ref backs the edge with its arena
  /// clause for conflict analysis and proof deletion; propagation itself
  /// never dereferences it.
  struct BinWatcher {
    Lit other;
    ClauseRef ref = kNoReason;
  };

  enum class LBool : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  static constexpr std::uint8_t kFlagFrozen = 1;
  static constexpr std::uint8_t kFlagEliminated = 2;    // BVE
  static constexpr std::uint8_t kFlagSubstituted = 4;   // SCC
  // Representative of an SCC substitution. Its canonical binaries are the
  // only clauses left that mention the substituted variable; resolving on
  // the representative (BVE) would copy that variable into fresh
  // resolvents which no rewrite pass ever visits again, breaking the
  // reconstruction-stack ordering (substitution entries sit below later
  // BVE entries). Such variables are therefore permanently exempt from
  // elimination.
  static constexpr std::uint8_t kFlagCanonical = 8;

  /// Witness stack entry for model reconstruction (BVE) and substituted
  /// variables (SCC). Processed in reverse after every kSat model
  /// extraction; see Solver::extend_model.
  struct ReconstructionEntry {
    std::vector<Lit> clause;  ///< BVE: the removed clause. SCC: {lit, rep}.
    Lit witness;              ///< The literal of the eliminated/substituted var.
    bool substitution = false;
    bool dead = false;  ///< Entry neutralized by restore_eliminated.
  };

  [[nodiscard]] LBool value(Lit lit) const noexcept {
    const LBool v = assigns_[lit.var()];
    if (v == LBool::kUndef) return LBool::kUndef;
    return (v == LBool::kTrue) != lit.negated() ? LBool::kTrue : LBool::kFalse;
  }

  [[nodiscard]] unsigned decision_level() const noexcept {
    return static_cast<unsigned>(trail_lim_.size());
  }

  [[nodiscard]] bool decidable(Var var) const noexcept {
    return (var_flags_[var] & (kFlagEliminated | kFlagSubstituted)) == 0;
  }

  /// Allocates + registers + attaches a clause of size >= 2. The caller
  /// has already normalized the literals and emitted any proof lemma.
  ClauseRef install_clause(std::span<const Lit> literals, bool learnt);
  void attach_clause(ClauseRef ref);
  void detach_clause(ClauseRef ref);
  /// Proof on_delete + detach + arena free. The caller drops the ref from
  /// problem_clauses_/learnt_clauses_ (or leaves it for compaction).
  void delete_clause(ClauseRef ref);
  void compact_clause_lists();
  void garbage_collect();
  void garbage_collect_if_needed();

  void enqueue(Lit lit, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt_out, unsigned& backtrack_level);
  [[nodiscard]] bool literal_redundant(Lit lit, std::uint32_t abstract_levels);
  void backtrack(unsigned level);
  Lit pick_branch_literal();
  void reduce_learnt_db();
  Result search();

  /// Runs the inprocessing passes when due (level 0, interval elapsed).
  /// Returns false when they refute the clause set outright.
  bool maybe_inprocess();
  /// Reverts a BVE elimination: re-adds the removed clauses so \p var can
  /// be mentioned again (assumptions or new clauses referencing it).
  void restore_eliminated(Var var);
  /// Applies the reconstruction stack to model_ (witness flips for BVE,
  /// representative copies for substituted variables).
  void extend_model();

  // VSIDS heap operations.
  void bump_var(Var var);
  void decay_var_activity() { var_activity_increment_ /= kVarDecay; }
  void bump_clause(ClauseRef ref);
  void decay_clause_activity() { clause_activity_increment_ /= kClauseDecay; }
  void heap_insert(Var var);
  Var heap_pop();
  void heap_sift_up(std::size_t index);
  void heap_sift_down(std::size_t index);
  [[nodiscard]] bool heap_contains(Var var) const {
    return heap_position_[var] != kNotInHeap;
  }

  static constexpr double kVarDecay = 0.95;
  static constexpr double kClauseDecay = 0.999;
  static constexpr std::uint32_t kNotInHeap = ~std::uint32_t{0};

  // Clause storage: packed arena + ref lists.
  ClauseArena arena_;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;

  // Assignment state.
  std::vector<LBool> assigns_;       // per var
  std::vector<bool> phase_;          // per var: saved polarity
  std::vector<unsigned> level_;      // per var
  std::vector<ClauseRef> reason_;    // per var
  std::vector<std::uint8_t> var_flags_;  // per var: frozen/eliminated/...
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t propagate_head_ = 0;

  // Watches, indexed by literal code: clauses watching ~lit... see .cpp.
  // Binary clauses live only in bin_watches_ (plus their arena backing).
  std::vector<std::vector<Watcher>> watches_;
  std::vector<std::vector<BinWatcher>> bin_watches_;

  // Branching.
  std::vector<double> activity_;
  std::vector<Var> heap_;
  std::vector<std::uint32_t> heap_position_;
  double var_activity_increment_ = 1.0;
  double clause_activity_increment_ = 1.0;

  // Conflict analysis scratch.
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;
  std::vector<Lit> lits_scratch_;  // proof emission / clause copies

  // Proof logging (optional, not owned).
  ProofTracer* proof_ = nullptr;

  // Search control.
  bool ok_ = true;
  std::uint64_t conflict_limit_ = 0;
  std::uint64_t conflicts_this_solve_ = 0;
  std::size_t max_learnt_ = 0;
  std::vector<Lit> assumptions_;
  std::vector<bool> model_;
  /// True when the last kSat model lives in assigns_/phase_ (see
  /// model_value) and model_ was never materialized for it.
  bool model_lazy_ = false;

  // Inprocessing state.
  InprocessConfig inprocess_config_;
  std::uint64_t conflicts_since_inprocess_ = 0;
  std::vector<ReconstructionEntry> reconstruction_;

  // Memoized assumption prefix: the number of leading decision levels
  // still on the trail from the previous solve whose decisions are that
  // solve's assumptions, in order. A later solve with the same leading
  // assumptions skips re-establishing (and re-propagating) them; any
  // backtrack below the prefix — add_clause, inprocessing, conflict
  // analysis — invalidates the overlap automatically.
  unsigned assumption_prefix_intact_ = 0;

#ifndef SIMGEN_NO_TELEMETRY
  // Solver introspection (journal milestones + LBD), telemetry-only.
  [[nodiscard]] unsigned compute_introspection_lbd(
      std::span<const Lit> learnt);
  void emit_introspection_restart(std::uint64_t ordinal);
  void emit_introspection_reduce(std::uint64_t deleted, std::uint64_t before,
                                 std::uint64_t after);
  void emit_introspection_budget();
  void emit_introspection_solve_stats();
  void emit_introspection_inprocess(std::uint64_t deleted,
                                    std::uint64_t strengthened,
                                    std::uint64_t units,
                                    std::uint64_t substituted,
                                    std::uint64_t eliminated,
                                    std::uint64_t duration_us);

  std::uint64_t probe_a_ = 0;
  std::uint64_t probe_b_ = 0;
  std::uint64_t restarts_this_solve_ = 0;
  std::uint64_t lbd_count_this_solve_ = 0;
  std::uint64_t lbd_sum_this_solve_ = 0;
  std::uint64_t lbd_max_this_solve_ = 0;
  std::uint16_t probe_flags_ = 0;
  bool probe_active_ = false;
  // Level -> stamp scratch for the LBD count (distinct levels in a
  // learnt clause) without clearing between conflicts.
  std::vector<std::uint32_t> lbd_mark_;
  std::uint32_t lbd_stamp_ = 0;
#endif

  SolverStats stats_{obs::kRegister};
};

}  // namespace simgen::sat

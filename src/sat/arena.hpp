/// \file arena.hpp
/// \brief Packed clause arena for the CDCL solver.
///
/// All clauses live contiguously in one std::vector<uint32_t>, addressed
/// by 32-bit word offsets (ClauseRef) instead of pointers: half the
/// reference size of a pointer-based store, no per-clause heap
/// allocation, and sequential clause visits (conflict analysis, database
/// reduction, inprocessing sweeps) walk one cache-friendly buffer.
/// Layout per clause, in words:
///
///   [0] header: size << 3 | learnt << 2 | garbage << 1 | relocated
///   [1] learnt activity (float bits) — reused as the relocation target
///       while a garbage collection is in flight
///   [2 .. 2+size) literal codes (Lit::code)
///
/// Deletion marks the clause garbage and counts its words as wasted;
/// when the wasted fraction grows too large the solver copies the live
/// clauses into a fresh arena (copying GC) and rewrites every watch and
/// reason through reloc(). References outside src/sat are forbidden
/// (enforced by the simgen-arena-ref tidy check): the arena is a solver
/// internal, not a public clause API.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace simgen::sat {

/// Word offset of a clause header inside the arena.
using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kInvalidClauseRef = ~ClauseRef{0};

class ClauseArena {
 public:
  ClauseArena() = default;

  /// Allocates a clause; literals are copied verbatim (no normalization).
  ClauseRef alloc(std::span<const Lit> lits, bool learnt);

  [[nodiscard]] std::uint32_t size(ClauseRef ref) const noexcept {
    return mem_[ref] >> 3;
  }
  [[nodiscard]] bool learnt(ClauseRef ref) const noexcept {
    return (mem_[ref] & 4u) != 0;
  }
  [[nodiscard]] bool garbage(ClauseRef ref) const noexcept {
    return (mem_[ref] & 2u) != 0;
  }

  [[nodiscard]] Lit lit(ClauseRef ref, std::uint32_t index) const noexcept {
    return Lit::from_code(mem_[ref + 2 + index]);
  }
  void set_lit(ClauseRef ref, std::uint32_t index, Lit lit) noexcept {
    mem_[ref + 2 + index] = lit.code();
  }
  void swap_lits(ClauseRef ref, std::uint32_t i, std::uint32_t j) noexcept {
    std::swap(mem_[ref + 2 + i], mem_[ref + 2 + j]);
  }
  /// Appends the clause's literals to \p out (proof emission scratch).
  void copy_lits(ClauseRef ref, std::vector<Lit>& out) const;

  [[nodiscard]] float activity(ClauseRef ref) const noexcept {
    float value;
    static_assert(sizeof(float) == sizeof(std::uint32_t));
    __builtin_memcpy(&value, &mem_[ref + 1], sizeof(value));
    return value;
  }
  void set_activity(ClauseRef ref, float value) noexcept {
    __builtin_memcpy(&mem_[ref + 1], &value, sizeof(value));
  }

  /// Shrinks the clause to \p new_size literals (inprocessing
  /// strengthening); the dropped tail words become wasted space.
  void shrink(ClauseRef ref, std::uint32_t new_size) noexcept {
    assert(new_size >= 2 && new_size <= size(ref));
    wasted_ += size(ref) - new_size;
    mem_[ref] = (new_size << 3) | (mem_[ref] & 7u);
  }

  /// Marks the clause garbage; the storage is reclaimed by the next
  /// garbage_collect pass.
  void free(ClauseRef ref) noexcept {
    assert(!garbage(ref));
    mem_[ref] |= 2u;
    wasted_ += size(ref) + 2;
  }

  /// Copying-GC relocation: moves the clause into \p to on first call and
  /// rewrites \p ref; later calls for the same clause just rewrite.
  void reloc(ClauseRef& ref, ClauseArena& to);

  [[nodiscard]] std::size_t size_words() const noexcept { return mem_.size(); }
  [[nodiscard]] std::size_t wasted_words() const noexcept { return wasted_; }
  void reserve_words(std::size_t words) { mem_.reserve(words); }

 private:
  std::vector<std::uint32_t> mem_;
  std::size_t wasted_ = 0;
};

}  // namespace simgen::sat

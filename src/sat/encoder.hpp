/// \file encoder.hpp
/// \brief Incremental Tseitin encoding of LUT networks into CNF.
///
/// SAT sweeping proves candidate node pairs one at a time; the encoder
/// loads the CNF of each node's fanin cone on demand and only once, so
/// successive calls on overlapping cones reuse clauses and learned facts
/// (the "deep integration" that makes incremental sweeping cheap).
/// LUT semantics are encoded from the ISOP covers: every ON-set cube c
/// yields the clause (c -> y) and every OFF-set cube the clause (c -> !y),
/// which together are a complete and consistent definition of y.
#pragma once

#include <vector>

#include "network/network.hpp"
#include "sat/solver.hpp"

namespace simgen::sat {

/// Binds a Network to a Solver, creating variables and clauses lazily.
class CnfEncoder {
 public:
  CnfEncoder(const net::Network& network, Solver& solver);

  /// Encodes the transitive fanin cone of \p node (if not already done)
  /// and returns the solver variable carrying the node's value.
  Var ensure_encoded(net::NodeId node);

  /// Variable of an already encoded node.
  [[nodiscard]] Var var_of(net::NodeId node) const { return vars_[node]; }
  [[nodiscard]] bool is_encoded(net::NodeId node) const {
    return vars_[node] != kUnencoded;
  }

  /// Extracts a full-network input vector from the solver model: PIs that
  /// are encoded take their model value, unencoded PIs take \p fill.
  /// Returned in PI order (index i = value of PI i).
  [[nodiscard]] std::vector<bool> model_input_vector(bool fill = false) const;

  [[nodiscard]] const net::Network& network() const noexcept { return network_; }
  [[nodiscard]] Solver& solver() noexcept { return solver_; }

 private:
  void encode_node(net::NodeId node);

  static constexpr Var kUnencoded{~std::uint32_t{0}};
  const net::Network& network_;
  Solver& solver_;
  std::vector<Var> vars_;
};

}  // namespace simgen::sat

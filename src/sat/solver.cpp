#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/journal.hpp"
#include "sat/inprocess.hpp"
#include "sat/proof.hpp"
#ifndef SIMGEN_NO_TELEMETRY
#include "util/stopwatch.hpp"
#endif

namespace simgen::sat {
namespace {

// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::uint64_t{1} << seq;
}

constexpr std::uint64_t kRestartBase = 100;

}  // namespace

SolverStats::SolverStats(obs::register_t)
    : solve_calls("sat.solve_calls"),
      conflicts("sat.conflicts"),
      decisions("sat.decisions"),
      propagations("sat.propagations"),
      restarts("sat.restarts"),
      learned_clauses("sat.learned_clauses"),
      deleted_clauses("sat.deleted_clauses"),
      db_reductions("sat.db_reductions"),
      inprocess_runs("sat.inprocess.runs"),
      inprocess_deleted("sat.inprocess.deleted_clauses"),
      inprocess_strengthened("sat.inprocess.strengthened_clauses"),
      inprocess_vivified("sat.inprocess.vivified_clauses"),
      inprocess_failed_literals("sat.inprocess.failed_literals"),
      inprocess_substituted("sat.inprocess.substituted_vars"),
      inprocess_eliminated("sat.inprocess.eliminated_vars"),
      inprocess_resolvents("sat.inprocess.bve_resolvents"),
      learned_clause_size("sat.learned_clause_size"),
      learned_clause_lbd("sat.learned_clause_lbd") {}

Solver::Solver() = default;

Var Solver::new_var() {
  const Var var = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  phase_.push_back(false);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  var_flags_.push_back(0);
  activity_.push_back(0.0);
  heap_position_.push_back(kNotInHeap);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  heap_insert(var);
  return var;
}

void Solver::set_frozen(Var var, bool frozen) noexcept {
  if (frozen)
    var_flags_[var] |= kFlagFrozen;
  else
    var_flags_[var] &= static_cast<std::uint8_t>(~kFlagFrozen);
}

ClauseRef Solver::install_clause(std::span<const Lit> literals, bool learnt) {
  const ClauseRef ref = arena_.alloc(literals, learnt);
  (learnt ? learnt_clauses_ : problem_clauses_).push_back(ref);
  attach_clause(ref);
  return ref;
}

void Solver::attach_clause(ClauseRef ref) {
  const Lit l0 = arena_.lit(ref, 0);
  const Lit l1 = arena_.lit(ref, 1);
  if (arena_.size(ref) == 2) {
    bin_watches_[(~l0).code()].push_back(BinWatcher{l1, ref});
    bin_watches_[(~l1).code()].push_back(BinWatcher{l0, ref});
  } else {
    watches_[(~l0).code()].push_back(Watcher{ref, l1});
    watches_[(~l1).code()].push_back(Watcher{ref, l0});
  }
}

void Solver::detach_clause(ClauseRef ref) {
  const Lit l0 = arena_.lit(ref, 0);
  const Lit l1 = arena_.lit(ref, 1);
  if (arena_.size(ref) == 2) {
    for (const Lit watched : {l0, l1}) {
      auto& list = bin_watches_[(~watched).code()];
      const auto it = std::find_if(
          list.begin(), list.end(),
          [&](const BinWatcher& watcher) { return watcher.ref == ref; });
      assert(it != list.end());
      *it = list.back();
      list.pop_back();
    }
  } else {
    for (const Lit watched : {l0, l1}) {
      auto& list = watches_[(~watched).code()];
      const auto it = std::find_if(
          list.begin(), list.end(),
          [&](const Watcher& watcher) { return watcher.clause == ref; });
      assert(it != list.end());
      *it = list.back();
      list.pop_back();
    }
  }
}

void Solver::delete_clause(ClauseRef ref) {
  if (proof_) {
    lits_scratch_.clear();
    arena_.copy_lits(ref, lits_scratch_);
    proof_->on_delete(lits_scratch_);
  }
  detach_clause(ref);
  arena_.free(ref);
}

void Solver::compact_clause_lists() {
  const auto drop_garbage = [&](std::vector<ClauseRef>& list) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](ClauseRef ref) { return arena_.garbage(ref); }),
               list.end());
  };
  drop_garbage(problem_clauses_);
  drop_garbage(learnt_clauses_);
}

void Solver::garbage_collect() {
  compact_clause_lists();
  ClauseArena to;
  to.reserve_words(arena_.size_words() - arena_.wasted_words());
  for (auto& list : bin_watches_)
    for (auto& watcher : list) arena_.reloc(watcher.ref, to);
  for (auto& list : watches_)
    for (auto& watcher : list) arena_.reloc(watcher.clause, to);
  for (const Lit lit : trail_) {
    ClauseRef& reason = reason_[lit.var()];
    if (reason == kNoReason) continue;
    // Level-0 propagations can outlive their reason clause (inprocessing
    // may delete it); analyze never expands level 0, so just drop it.
    if (arena_.garbage(reason)) {
      reason = kNoReason;
      continue;
    }
    arena_.reloc(reason, to);
  }
  for (ClauseRef& ref : problem_clauses_) arena_.reloc(ref, to);
  for (ClauseRef& ref : learnt_clauses_) arena_.reloc(ref, to);
  arena_ = std::move(to);
}

void Solver::garbage_collect_if_needed() {
  if (arena_.size_words() > 4096 &&
      arena_.wasted_words() * 4 > arena_.size_words())
    garbage_collect();
}

bool Solver::add_clause(std::span<const Lit> literals) {
  if (!ok_) return false;
  backtrack(0);
  // A clause over a BVE-eliminated variable reverts that elimination
  // first (the saved clauses come back), so incremental callers never
  // see an inconsistent variable. Frozen variables are never eliminated,
  // which keeps this path cold in the sweeping flow.
  for (const Lit lit : literals)
    if ((var_flags_[lit.var()] & kFlagEliminated) != 0)
      restore_eliminated(lit.var());
  if (!ok_) return false;
  if (proof_) proof_->on_axiom(literals);

  // Normalize: sort, drop duplicates and level-0 false literals, detect
  // tautologies and level-0 satisfied clauses.
  std::vector<Lit> lits(literals.begin(), literals.end());
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> cleaned;
  cleaned.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit lit = lits[i];
    if (i > 0 && lit == lits[i - 1]) continue;
    if (i > 0 && lit == ~lits[i - 1]) return true;  // tautology
    const LBool lit_value = value(lit);
    if (lit_value == LBool::kTrue) return true;  // satisfied at level 0
    if (lit_value == LBool::kFalse) continue;    // falsified at level 0
    cleaned.push_back(lit);
  }

  // The clause the solver actually stores is the simplified one. When
  // simplification removed literals, the stored clause is a derived fact
  // (RUP over the axiom plus the level-0 units), so it goes in the proof.
  if (proof_ && cleaned.size() != literals.size()) proof_->on_lemma(cleaned);

  if (cleaned.empty()) {
    ok_ = false;
    return false;
  }
  if (cleaned.size() == 1) {
    enqueue(cleaned[0], kNoReason);
    ok_ = (propagate() == kNoReason);
    if (!ok_ && proof_) proof_->on_lemma({});
    return ok_;
  }
  install_clause(cleaned, /*learnt=*/false);
  return true;
}

void Solver::enqueue(Lit lit, ClauseRef reason) {
  assert(value(lit) == LBool::kUndef);
  assigns_[lit.var()] = lit.negated() ? LBool::kFalse : LBool::kTrue;
  level_[lit.var()] = decision_level();
  reason_[lit.var()] = reason;
  trail_.push_back(lit);
  // A literal propagated at level 0 is permanent, but its derivation is
  // only as durable as the reason clause — which inprocessing or learnt-DB
  // reduction may delete later. Materialize it as a unit lemma (RUP via
  // the reason clause plus earlier root units) so every later RUP check
  // sees it no matter what happens to the deriving clauses.
  if (proof_ != nullptr && reason != kNoReason && decision_level() == 0) {
    const Lit unit[1] = {lit};
    proof_->on_lemma(std::span<const Lit>(unit, 1));
  }
}

ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    stats_.propagations.inc();

    // Binary implication graph first: each edge is 8 bytes in the watch
    // list itself, so binary propagation (and binary conflicts) never
    // touch clause memory.
    for (const BinWatcher& watcher : bin_watches_[p.code()]) {
      const LBool v = value(watcher.other);
      if (v == LBool::kFalse) {
        propagate_head_ = trail_.size();
        return watcher.ref;
      }
      if (v == LBool::kUndef) enqueue(watcher.other, watcher.ref);
    }

    auto& watch_list = watches_[p.code()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher watcher = watch_list[i];
      // Blocker shortcut: clause already satisfied.
      if (value(watcher.blocker) == LBool::kTrue) {
        watch_list[keep++] = watcher;
        continue;
      }
      const ClauseRef ref = watcher.clause;
      // Put the falsified literal at position 1.
      const Lit false_lit = ~p;
      if (arena_.lit(ref, 0) == false_lit) arena_.swap_lits(ref, 0, 1);
      assert(arena_.lit(ref, 1) == false_lit);
      // First watch satisfied?
      const Lit first = arena_.lit(ref, 0);
      if (first != watcher.blocker && value(first) == LBool::kTrue) {
        watch_list[keep++] = Watcher{ref, first};
        continue;
      }
      // Look for a replacement watch.
      const std::uint32_t size = arena_.size(ref);
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        const Lit candidate = arena_.lit(ref, k);
        if (value(candidate) != LBool::kFalse) {
          arena_.swap_lits(ref, 1, k);
          watches_[(~candidate).code()].push_back(Watcher{ref, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      watch_list[keep++] = watcher;
      if (value(first) == LBool::kFalse) {
        // Conflict: salvage the remaining watchers and report.
        for (std::size_t k = i + 1; k < watch_list.size(); ++k)
          watch_list[keep++] = watch_list[k];
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return ref;
      }
      enqueue(first, ref);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt_out,
                     unsigned& backtrack_level) {
  learnt_out.clear();
  learnt_out.push_back(Lit{});  // slot for the asserting literal
  unsigned counter = 0;
  Lit p{};
  bool p_valid = false;
  std::size_t trail_index = trail_.size();

  ClauseRef reason = conflict;
  do {
    assert(reason != kNoReason);
    if (arena_.learnt(reason)) bump_clause(reason);
    const std::uint32_t size = arena_.size(reason);
    for (std::uint32_t i = 0; i < size; ++i) {
      const Lit q = arena_.lit(reason, i);
      // Skip the literal whose reason we are expanding (clause order in
      // the arena is arbitrary for binary reasons).
      if (p_valid && q.var() == p.var()) continue;
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      seen_[q.var()] = true;
      analyze_clear_.push_back(q);
      bump_var(q.var());
      if (level_[q.var()] >= decision_level()) {
        ++counter;
      } else {
        learnt_out.push_back(q);
      }
    }
    // Next literal on the trail that participates in the conflict.
    while (!seen_[trail_[trail_index - 1].var()]) --trail_index;
    p = trail_[--trail_index];
    p_valid = true;
    seen_[p.var()] = false;
    reason = reason_[p.var()];
    --counter;
  } while (counter > 0);
  learnt_out[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt_out.size(); ++i)
    abstract_levels |= 1u << (level_[learnt_out[i].var()] & 31u);
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt_out.size(); ++i) {
    if (reason_[learnt_out[i].var()] == kNoReason ||
        !literal_redundant(learnt_out[i], abstract_levels))
      learnt_out[kept++] = learnt_out[i];
  }
  learnt_out.resize(kept);

  // Compute the backtrack level and move its literal to position 1.
  if (learnt_out.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_index = 1;
    for (std::size_t i = 2; i < learnt_out.size(); ++i)
      if (level_[learnt_out[i].var()] > level_[learnt_out[max_index].var()])
        max_index = i;
    std::swap(learnt_out[1], learnt_out[max_index]);
    backtrack_level = level_[learnt_out[1].var()];
  }

  for (Lit lit : analyze_clear_) seen_[lit.var()] = false;
  analyze_clear_.clear();
}

bool Solver::literal_redundant(Lit lit, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(lit);
  const std::size_t clear_mark = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit current = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason_[current.var()] != kNoReason);
    const ClauseRef reason = reason_[current.var()];
    const std::uint32_t size = arena_.size(reason);
    for (std::uint32_t i = 0; i < size; ++i) {
      const Lit q = arena_.lit(reason, i);
      if (q.var() == current.var()) continue;
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      if (reason_[q.var()] == kNoReason ||
          ((1u << (level_[q.var()] & 31u)) & abstract_levels) == 0) {
        // Cannot be resolved away: undo the marks added by this check.
        for (std::size_t k = clear_mark; k < analyze_clear_.size(); ++k)
          seen_[analyze_clear_[k].var()] = false;
        analyze_clear_.resize(clear_mark);
        return false;
      }
      seen_[q.var()] = true;
      analyze_clear_.push_back(q);
      analyze_stack_.push_back(q);
    }
  }
  return true;
}

void Solver::backtrack(unsigned target_level) {
  // Any backtrack below the memoized assumption prefix invalidates the
  // part above the target (see assumption_prefix_intact_).
  if (target_level < assumption_prefix_intact_)
    assumption_prefix_intact_ = target_level;
  if (decision_level() <= target_level) return;
  const std::size_t lim = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > lim;) {
    const Var var = trail_[i].var();
    phase_[var] = assigns_[var] == LBool::kTrue;
    assigns_[var] = LBool::kUndef;
    reason_[var] = kNoReason;
    if (decidable(var) && !heap_contains(var)) heap_insert(var);
  }
  trail_.resize(lim);
  trail_lim_.resize(target_level);
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch_literal() {
  while (!heap_.empty()) {
    const Var var = heap_pop();
    if (assigns_[var] == LBool::kUndef && decidable(var))
      return Lit(var, !phase_[var]);
  }
  return Lit::from_code(~std::uint32_t{0} - 1);  // sentinel: all assigned
}

void Solver::reduce_learnt_db() {
  const std::size_t size_before = learnt_clauses_.size();
  // Delete the least active half of learnt clauses, sparing reasons of
  // current assignments and binary clauses.
  std::sort(learnt_clauses_.begin(), learnt_clauses_.end(),
            [&](ClauseRef a, ClauseRef b) {
              return arena_.activity(a) < arena_.activity(b);
            });
  const auto is_locked = [&](ClauseRef ref) {
    const Lit first = arena_.lit(ref, 0);
    return value(first) == LBool::kTrue && reason_[first.var()] == ref;
  };
  std::size_t kept = 0;
  const std::size_t target_deletions = learnt_clauses_.size() / 2;
  std::size_t deleted = 0;
  for (std::size_t i = 0; i < learnt_clauses_.size(); ++i) {
    const ClauseRef ref = learnt_clauses_[i];
    if (deleted < target_deletions && arena_.size(ref) > 2 &&
        !is_locked(ref)) {
      delete_clause(ref);
      ++deleted;
      stats_.deleted_clauses.inc();
    } else {
      learnt_clauses_[kept++] = ref;
    }
  }
  learnt_clauses_.resize(kept);
  stats_.db_reductions.inc();
  garbage_collect_if_needed();
#ifndef SIMGEN_NO_TELEMETRY
  emit_introspection_reduce(deleted, size_before, kept);
#else
  (void)size_before;
#endif
}

void Solver::bump_var(Var var) {
  activity_[var] += var_activity_increment_;
  if (activity_[var] > 1e100) {
    for (auto& activity : activity_) activity *= 1e-100;
    var_activity_increment_ *= 1e-100;
  }
  if (heap_contains(var)) heap_sift_up(heap_position_[var]);
}

void Solver::bump_clause(ClauseRef ref) {
  const float updated =
      arena_.activity(ref) + static_cast<float>(clause_activity_increment_);
  arena_.set_activity(ref, updated);
  if (updated > 1e20f) {
    for (ClauseRef learnt : learnt_clauses_)
      arena_.set_activity(learnt, arena_.activity(learnt) * 1e-20f);
    clause_activity_increment_ *= 1e-20;
  }
}

void Solver::heap_insert(Var var) {
  heap_position_[var] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(var);
  heap_sift_up(heap_.size() - 1);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_position_[top] = kNotInHeap;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_position_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(std::size_t index) {
  const Var var = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[index] = heap_[parent];
    heap_position_[heap_[index]] = static_cast<std::uint32_t>(index);
    index = parent;
  }
  heap_[index] = var;
  heap_position_[var] = static_cast<std::uint32_t>(index);
}

void Solver::heap_sift_down(std::size_t index) {
  const Var var = heap_[index];
  while (true) {
    std::size_t child = 2 * index + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]])
      ++child;
    if (activity_[heap_[child]] <= activity_[var]) break;
    heap_[index] = heap_[child];
    heap_position_[heap_[index]] = static_cast<std::uint32_t>(index);
    index = child;
  }
  heap_[index] = var;
  heap_position_[var] = static_cast<std::uint32_t>(index);
}

bool Solver::maybe_inprocess() {
  if (!inprocess_config_.enabled || !ok_) return ok_;
  if (conflicts_since_inprocess_ < inprocess_config_.conflict_interval)
    return true;
  if (problem_clauses_.empty() && learnt_clauses_.empty()) return true;
  backtrack(0);
#ifndef SIMGEN_NO_TELEMETRY
  util::Stopwatch watch;
  watch.start();
#endif
  Inprocessor inprocessor(*this);
  ok_ = inprocessor.run();
  conflicts_since_inprocess_ = 0;
  stats_.inprocess_runs.inc();
  compact_clause_lists();
  garbage_collect_if_needed();
#ifndef SIMGEN_NO_TELEMETRY
  watch.stop();
  const InprocessRunTally& tally = inprocessor.tally();
  emit_introspection_inprocess(
      tally.deleted_clauses, tally.strengthened_clauses + tally.vivified_clauses,
      tally.failed_literals, tally.substituted_vars, tally.eliminated_vars,
      static_cast<std::uint64_t>(watch.seconds() * 1e6));
#endif
  return ok_;
}

void Solver::restore_eliminated(Var var) {
  backtrack(0);
  var_flags_[var] &= static_cast<std::uint8_t>(~kFlagEliminated);
  if (decidable(var) && assigns_[var] == LBool::kUndef && !heap_contains(var))
    heap_insert(var);
  // Re-add the clauses BVE removed for this variable. add_clause re-emits
  // them as axioms (they were axioms of the original formula modulo
  // earlier equivalence-preserving rewrites) and recursively restores any
  // other eliminated variable they mention.
  for (auto& entry : reconstruction_) {
    if (entry.dead || entry.substitution) continue;
    if (entry.witness.var() != var) continue;
    entry.dead = true;
    if (!add_clause(entry.clause)) return;
  }
}

void Solver::extend_model() {
  // Witness reconstruction in reverse order: BVE entries flip the
  // eliminated variable when their saved clause came out unsatisfied
  // (at most one polarity can need the flip — see DESIGN.md section 15);
  // substitution entries copy the representative's value.
  for (auto it = reconstruction_.rbegin(); it != reconstruction_.rend(); ++it) {
    if (it->dead) continue;
    if (it->substitution) {
      const Lit target = it->witness;
      const Lit rep = it->clause[1];
      model_[target.var()] =
          (model_[rep.var()] != rep.negated()) != target.negated();
      continue;
    }
    bool satisfied = false;
    for (const Lit lit : it->clause) {
      if (model_[lit.var()] != lit.negated()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) model_[it->witness.var()] = !it->witness.negated();
  }
}

Result Solver::search() {
  std::uint64_t restart_count = 0;
  std::uint64_t conflicts_until_restart = kRestartBase * luby(restart_count);
  std::uint64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      stats_.conflicts.inc();
      ++conflicts_this_solve_;
      ++conflicts_since_restart;
      ++conflicts_since_inprocess_;
      if (decision_level() == 0) {
        // Refuted outright: the empty clause is propagation-derivable.
        if (proof_) proof_->on_lemma({});
        ok_ = false;
        return Result::kUnsat;
      }

      unsigned backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
#ifndef SIMGEN_NO_TELEMETRY
      // level_[] of the learnt literals is still valid here (backtrack
      // has not run), which is exactly when LBD is defined.
      const unsigned lbd = compute_introspection_lbd(learnt);
      stats_.learned_clause_lbd.observe(lbd);
      ++lbd_count_this_solve_;
      lbd_sum_this_solve_ += lbd;
      if (lbd > lbd_max_this_solve_) lbd_max_this_solve_ = lbd;
#endif
      if (proof_) proof_->on_lemma(learnt);
      // Never undo assumption levels beyond what the learnt clause allows:
      // backtrack_level may land inside the assumption prefix, which is
      // fine — assumptions are re-enqueued by the decision loop below.
      backtrack(backtrack_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        const ClauseRef ref = install_clause(learnt, /*learnt=*/true);
        bump_clause(ref);
        enqueue(learnt[0], ref);
      }
      stats_.learned_clauses.inc();
      stats_.learned_clause_size.observe(learnt.size());
      decay_var_activity();
      decay_clause_activity();
      // Budget check on the conflict path too: a chain of consecutive
      // conflicts (propagate -> conflict -> backjump -> propagate ->
      // conflict ...) never reaches the no-conflict check below and would
      // otherwise overshoot the limit unboundedly. The learnt clause is
      // still recorded first, so an interrupted solve leaves a consistent
      // proof log.
      if (conflict_limit_ != 0 && conflicts_this_solve_ >= conflict_limit_) {
#ifndef SIMGEN_NO_TELEMETRY
        emit_introspection_budget();
#endif
        return Result::kUnknown;
      }
      continue;
    }

    // No conflict.
    if (conflict_limit_ != 0 && conflicts_this_solve_ >= conflict_limit_) {
#ifndef SIMGEN_NO_TELEMETRY
      emit_introspection_budget();
#endif
      return Result::kUnknown;
    }
    if (conflicts_since_restart >= conflicts_until_restart) {
      stats_.restarts.inc();
      ++restart_count;
      conflicts_since_restart = 0;
      conflicts_until_restart = kRestartBase * luby(restart_count);
      backtrack(0);
      // Inprocessing slot: between restarts, at decision level 0.
      if (!maybe_inprocess()) {
        return Result::kUnsat;
      }
#ifndef SIMGEN_NO_TELEMETRY
      ++restarts_this_solve_;
      emit_introspection_restart(restarts_this_solve_);
#endif
      continue;
    }
    if (decision_level() == 0 && learnt_clauses_.size() >= max_learnt_)
      reduce_learnt_db();

    // Establish assumptions first, one decision level each.
    if (decision_level() < assumptions_.size()) {
      const Lit assumption = assumptions_[decision_level()];
      const LBool assumption_value = value(assumption);
      if (assumption_value == LBool::kFalse) return Result::kUnsat;
      trail_lim_.push_back(trail_.size());
      if (assumption_value == LBool::kUndef) enqueue(assumption, kNoReason);
      continue;
    }

    const Lit branch = pick_branch_literal();
    if (branch.code() == ~std::uint32_t{0} - 1) return Result::kSat;
    stats_.decisions.inc();
    trail_lim_.push_back(trail_.size());
    enqueue(branch, kNoReason);
  }
}

Result Solver::solve(std::span<const Lit> assumptions) {
  stats_.solve_calls.inc();
  if (!ok_) return Result::kUnsat;
  // Assumptions over BVE-eliminated variables revert the elimination (the
  // satellite case "eliminated variable appears in the query assumptions"
  // is prevented inside BVE itself, which skips the current assumption
  // set — this handles stale assumptions from earlier solves).
  for (const Lit assumption : assumptions)
    if ((var_flags_[assumption.var()] & kFlagEliminated) != 0)
      restore_eliminated(assumption.var());
  if (!ok_) return Result::kUnsat;

  // Memoized assumption prefix: keep the already-established leading
  // decision levels when the new assumption sequence starts the same way,
  // skipping their re-propagation entirely.
  unsigned reuse = 0;
  const auto comparable = static_cast<unsigned>(
      std::min(assumptions.size(), assumptions_.size()));
  const unsigned max_reuse = std::min(assumption_prefix_intact_, comparable);
  while (reuse < max_reuse && assumptions_[reuse] == assumptions[reuse])
    ++reuse;
  backtrack(reuse);
  assumption_prefix_intact_ = reuse;

  assumptions_.assign(assumptions.begin(), assumptions.end());
  conflicts_this_solve_ = 0;
#ifndef SIMGEN_NO_TELEMETRY
  restarts_this_solve_ = 0;
  lbd_count_this_solve_ = 0;
  lbd_sum_this_solve_ = 0;
  lbd_max_this_solve_ = 0;
#endif
  max_learnt_ = std::max<std::size_t>(1000, problem_clauses_.size() / 3);

  if (!maybe_inprocess()) return Result::kUnsat;

  const Result result = search();
#ifndef SIMGEN_NO_TELEMETRY
  emit_introspection_solve_stats();
#endif
  if (result == Result::kSat) {
    if (reconstruction_.empty()) {
      // No eliminated/substituted variables to reconstruct: serve the
      // model lazily from assigns_/phase_ (see model_value) and skip
      // the O(num_vars) materialization. SAT sweeping takes this path
      // on every call — its encoder freezes all variables, so the
      // reconstruction stack never grows.
      model_lazy_ = true;
    } else {
      model_lazy_ = false;
      model_.assign(num_vars(), false);
      for (Var var{0}; var < num_vars(); ++var)
        model_[var] = assigns_[var] == LBool::kUndef
                          ? phase_[var]
                          : assigns_[var] == LBool::kTrue;
      extend_model();
    }
  }
  // Keep the established assumption levels on the trail for the next
  // solve; everything deeper (search decisions) is undone.
  const unsigned keep = std::min(
      decision_level(), static_cast<unsigned>(assumptions_.size()));
  backtrack(keep);
  assumption_prefix_intact_ = keep;
  return result;
}

#ifndef SIMGEN_NO_TELEMETRY

void Solver::set_introspection_context(std::uint64_t a, std::uint64_t b,
                                       bool output_proof) noexcept {
  probe_a_ = a;
  probe_b_ = b;
  probe_flags_ = output_proof ? 1 : 0;
  probe_active_ = true;
}

void Solver::clear_introspection_context() noexcept { probe_active_ = false; }

unsigned Solver::compute_introspection_lbd(std::span<const Lit> learnt) {
  // Stamp-per-level distinct count: no clearing between conflicts, one
  // pass over the (small) learnt clause.
  ++lbd_stamp_;
  unsigned lbd = 0;
  for (const Lit lit : learnt) {
    const unsigned lvl = level_[lit.var()];
    if (lvl >= lbd_mark_.size()) lbd_mark_.resize(lvl + 1, 0);
    if (lbd_mark_[lvl] != lbd_stamp_) {
      lbd_mark_[lvl] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::emit_introspection_restart(std::uint64_t ordinal) {
  if (!probe_active_ || !obs::journal_enabled()) return;
  obs::journal_emit(obs::EventKind::kSolverRestart, 0, probe_a_, probe_b_,
                    ordinal, conflicts_this_solve_, learnt_clauses_.size(), 0,
                    0, probe_flags_);
}

void Solver::emit_introspection_reduce(std::uint64_t deleted,
                                       std::uint64_t before,
                                       std::uint64_t after) {
  if (!probe_active_ || !obs::journal_enabled()) return;
  obs::journal_emit(obs::EventKind::kSolverReduce, 0, probe_a_, probe_b_,
                    deleted, before, after, 0, 0, probe_flags_);
}

void Solver::emit_introspection_budget() {
  if (!probe_active_ || !obs::journal_enabled()) return;
  obs::journal_emit(obs::EventKind::kSolverBudget, 0, probe_a_, probe_b_,
                    conflict_limit_, conflicts_this_solve_, 0, 0, 0,
                    probe_flags_);
}

void Solver::emit_introspection_solve_stats() {
  if (!probe_active_ || !obs::journal_enabled()) return;
  obs::journal_emit(obs::EventKind::kSolverSolveStats, 0, probe_a_, probe_b_,
                    lbd_count_this_solve_, lbd_sum_this_solve_,
                    lbd_max_this_solve_, restarts_this_solve_, 0,
                    probe_flags_);
}

void Solver::emit_introspection_inprocess(std::uint64_t deleted,
                                          std::uint64_t strengthened,
                                          std::uint64_t units,
                                          std::uint64_t substituted,
                                          std::uint64_t eliminated,
                                          std::uint64_t duration_us) {
  if (!probe_active_ || !obs::journal_enabled()) return;
  obs::journal_emit(obs::EventKind::kSolverInprocess, 0, probe_a_, probe_b_,
                    deleted, strengthened, units,
                    (substituted << 32) | (eliminated & 0xffffffffull),
                    static_cast<std::uint32_t>(duration_us), probe_flags_);
}

#endif  // SIMGEN_NO_TELEMETRY

}  // namespace simgen::sat

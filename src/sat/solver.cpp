#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/journal.hpp"
#include "sat/proof.hpp"

namespace simgen::sat {
namespace {

// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::uint64_t{1} << seq;
}

constexpr std::uint64_t kRestartBase = 100;

}  // namespace

SolverStats::SolverStats(obs::register_t)
    : solve_calls("sat.solve_calls"),
      conflicts("sat.conflicts"),
      decisions("sat.decisions"),
      propagations("sat.propagations"),
      restarts("sat.restarts"),
      learned_clauses("sat.learned_clauses"),
      deleted_clauses("sat.deleted_clauses"),
      db_reductions("sat.db_reductions"),
      learned_clause_size("sat.learned_clause_size"),
      learned_clause_lbd("sat.learned_clause_lbd") {}

Solver::Solver() = default;

Var Solver::new_var() {
  const Var var = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  phase_.push_back(false);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  heap_position_.push_back(kNotInHeap);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(var);
  return var;
}

Solver::ClauseRef Solver::alloc_clause(std::vector<Lit> literals, bool learnt) {
  ClauseRef ref;
  if (!free_list_.empty()) {
    ref = free_list_.back();
    free_list_.pop_back();
    clauses_[ref].lits = std::move(literals);
    clauses_[ref].activity = 0.0;
    clauses_[ref].learnt = learnt;
    clauses_[ref].deleted = false;
  } else {
    ref = static_cast<ClauseRef>(clauses_.size());
    clauses_.push_back(Clause{std::move(literals), 0.0, learnt, false});
  }
  (learnt ? learnt_clauses_ : problem_clauses_).push_back(ref);
  return ref;
}

void Solver::free_clause(ClauseRef ref) {
  clauses_[ref].deleted = true;
  clauses_[ref].lits.clear();
  clauses_[ref].lits.shrink_to_fit();
  free_list_.push_back(ref);
}

void Solver::attach_clause(ClauseRef ref) {
  const auto& lits = clauses_[ref].lits;
  assert(lits.size() >= 2);
  watches_[(~lits[0]).code()].push_back(Watcher{ref, lits[1]});
  watches_[(~lits[1]).code()].push_back(Watcher{ref, lits[0]});
}

void Solver::detach_clause(ClauseRef ref) {
  const auto& lits = clauses_[ref].lits;
  for (int w = 0; w < 2; ++w) {
    auto& list = watches_[(~lits[w]).code()];
    const auto it = std::find_if(list.begin(), list.end(),
                                 [&](const Watcher& watcher) { return watcher.clause == ref; });
    assert(it != list.end());
    *it = list.back();
    list.pop_back();
  }
}

bool Solver::add_clause(std::span<const Lit> literals) {
  if (!ok_) return false;
  backtrack(0);
  if (proof_) proof_->on_axiom(literals);

  // Normalize: sort, drop duplicates and level-0 false literals, detect
  // tautologies and level-0 satisfied clauses.
  std::vector<Lit> lits(literals.begin(), literals.end());
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> cleaned;
  cleaned.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit lit = lits[i];
    if (i > 0 && lit == lits[i - 1]) continue;
    if (i > 0 && lit == ~lits[i - 1]) return true;  // tautology
    const LBool lit_value = value(lit);
    if (lit_value == LBool::kTrue) return true;  // satisfied at level 0
    if (lit_value == LBool::kFalse) continue;    // falsified at level 0
    cleaned.push_back(lit);
  }

  // The clause the solver actually stores is the simplified one. When
  // simplification removed literals, the stored clause is a derived fact
  // (RUP over the axiom plus the level-0 units), so it goes in the proof.
  if (proof_ && cleaned.size() != literals.size()) proof_->on_lemma(cleaned);

  if (cleaned.empty()) {
    ok_ = false;
    return false;
  }
  if (cleaned.size() == 1) {
    enqueue(cleaned[0], kNoReason);
    ok_ = (propagate() == kNoReason);
    if (!ok_ && proof_) proof_->on_lemma({});
    return ok_;
  }
  attach_clause(alloc_clause(std::move(cleaned), /*learnt=*/false));
  return true;
}

void Solver::enqueue(Lit lit, ClauseRef reason) {
  assert(value(lit) == LBool::kUndef);
  assigns_[lit.var()] = lit.negated() ? LBool::kFalse : LBool::kTrue;
  level_[lit.var()] = decision_level();
  reason_[lit.var()] = reason;
  trail_.push_back(lit);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    stats_.propagations.inc();
    auto& watch_list = watches_[p.code()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher watcher = watch_list[i];
      // Blocker shortcut: clause already satisfied.
      if (value(watcher.blocker) == LBool::kTrue) {
        watch_list[keep++] = watcher;
        continue;
      }
      Clause& clause = clauses_[watcher.clause];
      auto& lits = clause.lits;
      // Put the falsified literal at position 1.
      const Lit false_lit = ~p;
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      assert(lits[1] == false_lit);
      // First watch satisfied?
      if (lits[0] != watcher.blocker && value(lits[0]) == LBool::kTrue) {
        watch_list[keep++] = Watcher{watcher.clause, lits[0]};
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value(lits[k]) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).code()].push_back(Watcher{watcher.clause, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      watch_list[keep++] = watcher;
      if (value(lits[0]) == LBool::kFalse) {
        // Conflict: salvage the remaining watchers and report.
        for (std::size_t k = i + 1; k < watch_list.size(); ++k)
          watch_list[keep++] = watch_list[k];
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return watcher.clause;
      }
      enqueue(lits[0], watcher.clause);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt_out,
                     unsigned& backtrack_level) {
  learnt_out.clear();
  learnt_out.push_back(Lit{});  // slot for the asserting literal
  unsigned counter = 0;
  Lit p{};
  bool p_valid = false;
  std::size_t trail_index = trail_.size();

  ClauseRef reason = conflict;
  do {
    assert(reason != kNoReason);
    Clause& clause = clauses_[reason];
    if (clause.learnt) bump_clause(clause);
    // Skip lits[0] on the follow-up iterations: it is the literal p whose
    // reason we are expanding.
    for (std::size_t i = p_valid ? 1 : 0; i < clause.lits.size(); ++i) {
      const Lit q = clause.lits[i];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      seen_[q.var()] = true;
      analyze_clear_.push_back(q);
      bump_var(q.var());
      if (level_[q.var()] >= decision_level()) {
        ++counter;
      } else {
        learnt_out.push_back(q);
      }
    }
    // Next literal on the trail that participates in the conflict.
    while (!seen_[trail_[trail_index - 1].var()]) --trail_index;
    p = trail_[--trail_index];
    p_valid = true;
    seen_[p.var()] = false;
    reason = reason_[p.var()];
    --counter;
  } while (counter > 0);
  learnt_out[0] = ~p;

  // Conflict-clause minimization: drop literals implied by the rest.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt_out.size(); ++i)
    abstract_levels |= 1u << (level_[learnt_out[i].var()] & 31u);
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt_out.size(); ++i) {
    if (reason_[learnt_out[i].var()] == kNoReason ||
        !literal_redundant(learnt_out[i], abstract_levels))
      learnt_out[kept++] = learnt_out[i];
  }
  learnt_out.resize(kept);

  // Compute the backtrack level and move its literal to position 1.
  if (learnt_out.size() == 1) {
    backtrack_level = 0;
  } else {
    std::size_t max_index = 1;
    for (std::size_t i = 2; i < learnt_out.size(); ++i)
      if (level_[learnt_out[i].var()] > level_[learnt_out[max_index].var()])
        max_index = i;
    std::swap(learnt_out[1], learnt_out[max_index]);
    backtrack_level = level_[learnt_out[1].var()];
  }

  for (Lit lit : analyze_clear_) seen_[lit.var()] = false;
  analyze_clear_.clear();
}

bool Solver::literal_redundant(Lit lit, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(lit);
  const std::size_t clear_mark = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit current = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason_[current.var()] != kNoReason);
    const Clause& clause = clauses_[reason_[current.var()]];
    for (std::size_t i = 1; i < clause.lits.size(); ++i) {
      const Lit q = clause.lits[i];
      if (seen_[q.var()] || level_[q.var()] == 0) continue;
      if (reason_[q.var()] == kNoReason ||
          ((1u << (level_[q.var()] & 31u)) & abstract_levels) == 0) {
        // Cannot be resolved away: undo the marks added by this check.
        for (std::size_t k = clear_mark; k < analyze_clear_.size(); ++k)
          seen_[analyze_clear_[k].var()] = false;
        analyze_clear_.resize(clear_mark);
        return false;
      }
      seen_[q.var()] = true;
      analyze_clear_.push_back(q);
      analyze_stack_.push_back(q);
    }
  }
  return true;
}

void Solver::backtrack(unsigned target_level) {
  if (decision_level() <= target_level) return;
  const std::size_t lim = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > lim;) {
    const Var var = trail_[i].var();
    phase_[var] = assigns_[var] == LBool::kTrue;
    assigns_[var] = LBool::kUndef;
    reason_[var] = kNoReason;
    if (!heap_contains(var)) heap_insert(var);
  }
  trail_.resize(lim);
  trail_lim_.resize(target_level);
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch_literal() {
  while (!heap_.empty()) {
    const Var var = heap_pop();
    if (assigns_[var] == LBool::kUndef) return Lit(var, !phase_[var]);
  }
  return Lit::from_code(~std::uint32_t{0} - 1);  // sentinel: all assigned
}

void Solver::reduce_learnt_db() {
  const std::size_t size_before = learnt_clauses_.size();
  // Delete the least active half of learnt clauses, sparing reasons of
  // current assignments and binary clauses.
  std::sort(learnt_clauses_.begin(), learnt_clauses_.end(),
            [&](ClauseRef a, ClauseRef b) {
              return clauses_[a].activity < clauses_[b].activity;
            });
  const auto is_locked = [&](ClauseRef ref) {
    const auto& lits = clauses_[ref].lits;
    return value(lits[0]) == LBool::kTrue && reason_[lits[0].var()] == ref;
  };
  std::size_t kept = 0;
  const std::size_t target_deletions = learnt_clauses_.size() / 2;
  std::size_t deleted = 0;
  for (std::size_t i = 0; i < learnt_clauses_.size(); ++i) {
    const ClauseRef ref = learnt_clauses_[i];
    if (deleted < target_deletions && clauses_[ref].lits.size() > 2 &&
        !is_locked(ref)) {
      if (proof_) proof_->on_delete(clauses_[ref].lits);
      detach_clause(ref);
      free_clause(ref);
      ++deleted;
      stats_.deleted_clauses.inc();
    } else {
      learnt_clauses_[kept++] = ref;
    }
  }
  learnt_clauses_.resize(kept);
  stats_.db_reductions.inc();
#ifndef SIMGEN_NO_TELEMETRY
  emit_introspection_reduce(deleted, size_before, kept);
#else
  (void)size_before;
#endif
}

void Solver::bump_var(Var var) {
  activity_[var] += var_activity_increment_;
  if (activity_[var] > 1e100) {
    for (auto& activity : activity_) activity *= 1e-100;
    var_activity_increment_ *= 1e-100;
  }
  if (heap_contains(var)) heap_sift_up(heap_position_[var]);
}

void Solver::bump_clause(Clause& clause) {
  clause.activity += clause_activity_increment_;
  if (clause.activity > 1e20) {
    for (ClauseRef ref : learnt_clauses_) clauses_[ref].activity *= 1e-20;
    clause_activity_increment_ *= 1e-20;
  }
}

void Solver::heap_insert(Var var) {
  heap_position_[var] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(var);
  heap_sift_up(heap_.size() - 1);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_position_[top] = kNotInHeap;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_position_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(std::size_t index) {
  const Var var = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[index] = heap_[parent];
    heap_position_[heap_[index]] = static_cast<std::uint32_t>(index);
    index = parent;
  }
  heap_[index] = var;
  heap_position_[var] = static_cast<std::uint32_t>(index);
}

void Solver::heap_sift_down(std::size_t index) {
  const Var var = heap_[index];
  while (true) {
    std::size_t child = 2 * index + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]])
      ++child;
    if (activity_[heap_[child]] <= activity_[var]) break;
    heap_[index] = heap_[child];
    heap_position_[heap_[index]] = static_cast<std::uint32_t>(index);
    index = child;
  }
  heap_[index] = var;
  heap_position_[var] = static_cast<std::uint32_t>(index);
}

Result Solver::search() {
  std::uint64_t restart_count = 0;
  std::uint64_t conflicts_until_restart = kRestartBase * luby(restart_count);
  std::uint64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      stats_.conflicts.inc();
      ++conflicts_this_solve_;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        // Refuted outright: the empty clause is propagation-derivable.
        if (proof_) proof_->on_lemma({});
        ok_ = false;
        return Result::kUnsat;
      }

      unsigned backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
#ifndef SIMGEN_NO_TELEMETRY
      // level_[] of the learnt literals is still valid here (backtrack
      // has not run), which is exactly when LBD is defined.
      const unsigned lbd = compute_introspection_lbd(learnt);
      stats_.learned_clause_lbd.observe(lbd);
      ++lbd_count_this_solve_;
      lbd_sum_this_solve_ += lbd;
      if (lbd > lbd_max_this_solve_) lbd_max_this_solve_ = lbd;
#endif
      if (proof_) proof_->on_lemma(learnt);
      // Never undo assumption levels beyond what the learnt clause allows:
      // backtrack_level may land inside the assumption prefix, which is
      // fine — assumptions are re-enqueued by the decision loop below.
      backtrack(backtrack_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        const ClauseRef ref = alloc_clause(learnt, /*learnt=*/true);
        attach_clause(ref);
        bump_clause(clauses_[ref]);
        enqueue(learnt[0], ref);
      }
      stats_.learned_clauses.inc();
      stats_.learned_clause_size.observe(learnt.size());
      decay_var_activity();
      decay_clause_activity();
      // Budget check on the conflict path too: a chain of consecutive
      // conflicts (propagate -> conflict -> backjump -> propagate ->
      // conflict ...) never reaches the no-conflict check below and would
      // otherwise overshoot the limit unboundedly. The learnt clause is
      // still recorded first, so an interrupted solve leaves a consistent
      // proof log.
      if (conflict_limit_ != 0 && conflicts_this_solve_ >= conflict_limit_) {
#ifndef SIMGEN_NO_TELEMETRY
        emit_introspection_budget();
#endif
        return Result::kUnknown;
      }
      continue;
    }

    // No conflict.
    if (conflict_limit_ != 0 && conflicts_this_solve_ >= conflict_limit_) {
#ifndef SIMGEN_NO_TELEMETRY
      emit_introspection_budget();
#endif
      return Result::kUnknown;
    }
    if (conflicts_since_restart >= conflicts_until_restart) {
      stats_.restarts.inc();
      ++restart_count;
      conflicts_since_restart = 0;
      conflicts_until_restart = kRestartBase * luby(restart_count);
      backtrack(0);
#ifndef SIMGEN_NO_TELEMETRY
      ++restarts_this_solve_;
      emit_introspection_restart(restarts_this_solve_);
#endif
      continue;
    }
    if (decision_level() == 0 && learnt_clauses_.size() >= max_learnt_)
      reduce_learnt_db();

    // Establish assumptions first, one decision level each.
    if (decision_level() < assumptions_.size()) {
      const Lit assumption = assumptions_[decision_level()];
      const LBool assumption_value = value(assumption);
      if (assumption_value == LBool::kFalse) return Result::kUnsat;
      trail_lim_.push_back(trail_.size());
      if (assumption_value == LBool::kUndef) enqueue(assumption, kNoReason);
      continue;
    }

    const Lit branch = pick_branch_literal();
    if (branch.code() == ~std::uint32_t{0} - 1) return Result::kSat;
    stats_.decisions.inc();
    trail_lim_.push_back(trail_.size());
    enqueue(branch, kNoReason);
  }
}

Result Solver::solve(std::span<const Lit> assumptions) {
  stats_.solve_calls.inc();
  if (!ok_) return Result::kUnsat;
  backtrack(0);
  assumptions_.assign(assumptions.begin(), assumptions.end());
  conflicts_this_solve_ = 0;
#ifndef SIMGEN_NO_TELEMETRY
  restarts_this_solve_ = 0;
  lbd_count_this_solve_ = 0;
  lbd_sum_this_solve_ = 0;
  lbd_max_this_solve_ = 0;
#endif
  max_learnt_ = std::max<std::size_t>(1000, problem_clauses_.size() / 3);

  const Result result = search();
#ifndef SIMGEN_NO_TELEMETRY
  emit_introspection_solve_stats();
#endif
  if (result == Result::kSat) {
    model_.assign(num_vars(), false);
    for (Var var{0}; var < num_vars(); ++var)
      model_[var] = assigns_[var] == LBool::kUndef ? phase_[var]
                                                   : assigns_[var] == LBool::kTrue;
  }
  backtrack(0);
  return result;
}

#ifndef SIMGEN_NO_TELEMETRY

void Solver::set_introspection_context(std::uint64_t a, std::uint64_t b,
                                       bool output_proof) noexcept {
  probe_a_ = a;
  probe_b_ = b;
  probe_flags_ = output_proof ? 1 : 0;
  probe_active_ = true;
}

void Solver::clear_introspection_context() noexcept { probe_active_ = false; }

unsigned Solver::compute_introspection_lbd(std::span<const Lit> learnt) {
  // Stamp-per-level distinct count: no clearing between conflicts, one
  // pass over the (small) learnt clause.
  ++lbd_stamp_;
  unsigned lbd = 0;
  for (const Lit lit : learnt) {
    const unsigned lvl = level_[lit.var()];
    if (lvl >= lbd_mark_.size()) lbd_mark_.resize(lvl + 1, 0);
    if (lbd_mark_[lvl] != lbd_stamp_) {
      lbd_mark_[lvl] = lbd_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::emit_introspection_restart(std::uint64_t ordinal) {
  if (!probe_active_ || !obs::journal_enabled()) return;
  obs::journal_emit(obs::EventKind::kSolverRestart, 0, probe_a_, probe_b_,
                    ordinal, conflicts_this_solve_, learnt_clauses_.size(), 0,
                    0, probe_flags_);
}

void Solver::emit_introspection_reduce(std::uint64_t deleted,
                                       std::uint64_t before,
                                       std::uint64_t after) {
  if (!probe_active_ || !obs::journal_enabled()) return;
  obs::journal_emit(obs::EventKind::kSolverReduce, 0, probe_a_, probe_b_,
                    deleted, before, after, 0, 0, probe_flags_);
}

void Solver::emit_introspection_budget() {
  if (!probe_active_ || !obs::journal_enabled()) return;
  obs::journal_emit(obs::EventKind::kSolverBudget, 0, probe_a_, probe_b_,
                    conflict_limit_, conflicts_this_solve_, 0, 0, 0,
                    probe_flags_);
}

void Solver::emit_introspection_solve_stats() {
  if (!probe_active_ || !obs::journal_enabled()) return;
  obs::journal_emit(obs::EventKind::kSolverSolveStats, 0, probe_a_, probe_b_,
                    lbd_count_this_solve_, lbd_sum_this_solve_,
                    lbd_max_this_solve_, restarts_this_solve_, 0,
                    probe_flags_);
}

#endif  // SIMGEN_NO_TELEMETRY

}  // namespace simgen::sat

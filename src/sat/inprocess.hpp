/// \file inprocess.hpp
/// \brief Inprocessing passes for the CDCL solver.
///
/// Runs between restarts, at decision level 0, over the solver's own
/// clause arena: SCC-based equivalent-literal substitution on the binary
/// implication graph, failed-literal probing, subsumption and
/// self-subsumption strengthening, bounded variable elimination (BVE)
/// with model reconstruction, and clause vivification. Every pass is
/// proof-sound: each derived clause it keeps is emitted to the solver's
/// ProofTracer as a RUP lemma *before* the clauses that justify it are
/// deleted, so the existing check::DratChecker certifies inprocessed
/// UNSAT answers unchanged. See DESIGN.md section 15 for the per-pass
/// DRAT obligations and the model-reconstruction rules.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sat/arena.hpp"
#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace simgen::sat {

/// Per-run tallies, reported through the kSolverInprocess journal
/// milestone and folded into the "sat.inprocess.*" counters.
struct InprocessRunTally {
  std::uint64_t deleted_clauses = 0;
  std::uint64_t strengthened_clauses = 0;  ///< Self-subsumption.
  std::uint64_t vivified_clauses = 0;
  std::uint64_t failed_literals = 0;
  std::uint64_t substituted_vars = 0;
  std::uint64_t eliminated_vars = 0;
  std::uint64_t resolvents = 0;  ///< BVE resolvent clauses kept.
};

/// One inprocessing run over a Solver at decision level 0. Constructed,
/// run once, and discarded by Solver::maybe_inprocess; all state it
/// mutates lives in the solver (it is a friend).
class Inprocessor {
 public:
  explicit Inprocessor(Solver& solver) : s_(solver) {}

  /// Runs the configured passes. Returns false when the clause set was
  /// refuted outright (the empty clause has been emitted to the proof
  /// and the solver's ok_ flag cleared).
  [[nodiscard]] bool run();

  [[nodiscard]] const InprocessRunTally& tally() const noexcept {
    return tally_;
  }

 private:
  using LBool = Solver::LBool;

  enum class Install : std::uint8_t {
    kSatisfied,  ///< True at level 0: nothing emitted or stored.
    kInstalled,  ///< Stored as a clause (ref via out parameter).
    kUnit,       ///< Became a unit: enqueued, propagation pending.
    kRefuted,    ///< Became empty: proof closed, solver unsatisfiable.
  };

  /// Unit-propagates to fixpoint at level 0; on conflict emits the empty
  /// lemma and clears ok_. Returns false exactly then.
  bool propagate_units();
  /// Emits \p lits as a RUP lemma and installs it, after dropping
  /// level-0-false literals. \p lits is clobbered.
  Install install_simplified(std::vector<Lit>& lits, bool learnt,
                             ClauseRef* out);
  /// Replaces \p ref with \p lits (lemma first, then deletion), keeping
  /// the learnt flag. Returns the new ref through \p out when installed.
  Install replace_clause(ClauseRef ref, std::vector<Lit>& lits,
                         ClauseRef* out);

  /// Deletes satisfied clauses and strips false literals, both lists.
  bool simplify();
  bool simplify_list(std::vector<ClauseRef>& list);
  /// Equivalent-literal substitution over binary-implication SCCs.
  bool scc_substitute();
  /// Failed-literal probing over literals with binary implications.
  bool probe();
  /// Subsumption + self-subsumption over the occurrence lists.
  bool subsume();
  /// Bounded variable elimination with model-reconstruction entries.
  bool eliminate();
  /// Clause vivification (assume negations, shorten on early conflict).
  bool vivify();

  void build_occurrences();
  void add_occurrences(ClauseRef ref);
  [[nodiscard]] std::uint64_t signature(ClauseRef ref) const;

  Solver& s_;
  InprocessRunTally tally_;

  // Occurrence index over problem clauses, by literal code; stale
  // entries (garbage refs) are skipped on read. sigs_ caches the
  // 64-bit literal-set signature used to prefilter subsumption.
  std::vector<std::vector<ClauseRef>> occs_;
  std::unordered_map<ClauseRef, std::uint64_t> sigs_;

  // Subset-test scratch: mark_[lit.code] == stamp_ iff the literal is in
  // the candidate subsuming clause.
  std::vector<std::uint32_t> mark_;
  std::uint32_t stamp_ = 0;

  std::vector<bool> in_assumptions_;  // per var
  std::vector<Lit> scratch_;
  std::vector<Lit> scratch2_;
};

}  // namespace simgen::sat

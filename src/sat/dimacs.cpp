#include "sat/dimacs.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace simgen::sat {

DimacsProblem read_dimacs(std::istream& in) {
  DimacsProblem problem;
  bool header_seen = false;
  std::vector<Lit> clause;
  std::string token;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream fields(line);
    if (line[0] == 'p') {
      std::string p, cnf;
      std::size_t vars = 0, clauses = 0;
      if (!(fields >> p >> cnf >> vars >> clauses) || cnf != "cnf")
        throw std::runtime_error("dimacs: malformed problem line");
      if (header_seen) throw std::runtime_error("dimacs: duplicate problem line");
      header_seen = true;
      problem.num_vars = vars;
      problem.clauses.reserve(clauses);
      continue;
    }
    if (!header_seen)
      throw std::runtime_error("dimacs: clause before problem line");
    long long value = 0;
    while (fields >> value) {
      if (value == 0) {
        problem.clauses.push_back(clause);
        clause.clear();
        continue;
      }
      const auto var = static_cast<std::size_t>(value > 0 ? value : -value) - 1;
      if (var >= problem.num_vars)
        throw std::runtime_error("dimacs: literal exceeds declared variables");
      clause.push_back(Lit(static_cast<Var>(var), value < 0));
    }
  }
  if (!header_seen) throw std::runtime_error("dimacs: missing problem line");
  if (!clause.empty())
    throw std::runtime_error("dimacs: unterminated final clause");
  return problem;
}

DimacsProblem read_dimacs_string(const std::string& text) {
  std::istringstream stream(text);
  return read_dimacs(stream);
}

DimacsProblem read_dimacs_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("dimacs: cannot open " + path);
  return read_dimacs(file);
}

bool load_problem(Solver& solver, const DimacsProblem& problem) {
  while (solver.num_vars() < problem.num_vars) solver.new_var();
  bool ok = true;
  for (const auto& clause : problem.clauses)
    ok = solver.add_clause(clause) && ok;
  return ok;
}

void write_dimacs(const DimacsProblem& problem, std::ostream& out) {
  out << "p cnf " << problem.num_vars << ' ' << problem.clauses.size() << "\n";
  for (const auto& clause : problem.clauses) {
    for (const Lit lit : clause)
      out << (lit.negated() ? -static_cast<long long>(lit.var()) - 1
                            : static_cast<long long>(lit.var()) + 1)
          << ' ';
    out << "0\n";
  }
}

std::string write_dimacs_string(const DimacsProblem& problem) {
  std::ostringstream stream;
  write_dimacs(problem, stream);
  return stream.str();
}

}  // namespace simgen::sat

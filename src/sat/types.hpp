/// \file types.hpp
/// \brief Core SAT value types: variables, literals, solver results.
///
/// Split out of solver.hpp so low-level solver internals (the clause
/// arena, the inprocessing passes) can name literals without pulling in
/// the whole Solver class.
#pragma once

#include <cstdint>

#include "util/strong_id.hpp"

namespace simgen::sat {

/// Variable index, 0-based. A strong type: a sat::Var is not a
/// net::NodeId (the CNF encoder owns the mapping between the two spaces),
/// and handing one across that boundary without going through the encoder
/// is a compile error.
struct VarTag {};
using Var = util::StrongId<VarTag>;

/// Literal: 2*var + sign (sign 1 = negated).
class Lit {
 public:
  constexpr Lit() = default;
  constexpr Lit(Var var, bool negated) noexcept
      : code_((var.value() << 1) | static_cast<std::uint32_t>(negated)) {}

  [[nodiscard]] constexpr Var var() const noexcept { return Var{code_ >> 1}; }
  [[nodiscard]] constexpr bool negated() const noexcept { return code_ & 1u; }
  [[nodiscard]] constexpr Lit operator~() const noexcept { return from_code(code_ ^ 1u); }
  [[nodiscard]] constexpr std::uint32_t code() const noexcept { return code_; }

  static constexpr Lit from_code(std::uint32_t code) noexcept {
    Lit lit;
    lit.code_ = code;
    return lit;
  }

  constexpr bool operator==(const Lit&) const noexcept = default;

 private:
  std::uint32_t code_ = 0;
};

/// Positive literal of \p var.
[[nodiscard]] constexpr Lit pos(Var var) noexcept { return Lit(var, false); }
/// Negative literal of \p var.
[[nodiscard]] constexpr Lit neg(Var var) noexcept { return Lit(var, true); }

enum class Result : std::uint8_t { kSat, kUnsat, kUnknown };

}  // namespace simgen::sat

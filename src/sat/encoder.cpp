#include "sat/encoder.hpp"

#include <utility>

#include "tt/isop.hpp"

namespace simgen::sat {

CnfEncoder::CnfEncoder(const net::Network& network, Solver& solver)
    : network_(network), solver_(solver), vars_(network.num_nodes(), kUnencoded) {}

Var CnfEncoder::ensure_encoded(net::NodeId node) {
  if (is_encoded(node)) return vars_[node];
  // Iterative DFS so deep cones cannot overflow the call stack.
  std::vector<std::pair<net::NodeId, std::size_t>> stack;
  stack.emplace_back(node, 0);
  while (!stack.empty()) {
    auto& [current, next_fanin] = stack.back();
    if (is_encoded(current)) {
      stack.pop_back();
      continue;
    }
    const auto fanins = network_.fanins(current);
    if (next_fanin < fanins.size()) {
      const net::NodeId fanin = fanins[next_fanin++];
      if (!is_encoded(fanin)) stack.emplace_back(fanin, 0);
    } else {
      encode_node(current);
      stack.pop_back();
    }
  }
  return vars_[node];
}

void CnfEncoder::encode_node(net::NodeId node_id) {
  const net::Node& node = network_.node(node_id);
  switch (node.kind) {
    case net::NodeKind::kPi:
      vars_[node_id] = solver_.new_var();
      solver_.set_frozen(vars_[node_id]);
      break;
    case net::NodeKind::kConstant: {
      const Var var = solver_.new_var();
      solver_.set_frozen(var);
      vars_[node_id] = var;
      solver_.add_clause({node.constant_value ? pos(var) : neg(var)});
      break;
    }
    case net::NodeKind::kPo:
      // POs are transparent: share the driver's variable.
      vars_[node_id] = vars_[node.fanins[0]];
      break;
    case net::NodeKind::kLut: {
      const Var out = solver_.new_var();
      solver_.set_frozen(out);
      vars_[node_id] = out;
      const tt::RowSet rows = tt::compute_rows(node.function);
      std::vector<Lit> clause;
      const auto emit_plane = [&](const tt::Cover& cover, Lit out_lit) {
        for (const tt::Cube& cube : cover.cubes) {
          clause.clear();
          for (unsigned v = 0; v < node.fanins.size(); ++v) {
            if (!cube.has_literal(v)) continue;
            const Var in = vars_[node.fanins[v]];
            // cube literal x_v=b contributes !(x_v=b) to the implication.
            clause.push_back(cube.literal_value(v) ? neg(in) : pos(in));
          }
          clause.push_back(out_lit);
          solver_.add_clause(clause);
        }
      };
      emit_plane(rows.on, pos(out));   // on-cube  -> y
      emit_plane(rows.off, neg(out));  // off-cube -> !y
      break;
    }
  }
}

std::vector<bool> CnfEncoder::model_input_vector(bool fill) const {
  std::vector<bool> vector(network_.num_pis(), fill);
  for (std::size_t i = 0; i < network_.num_pis(); ++i) {
    const net::NodeId pi = network_.pis()[i];
    if (is_encoded(pi)) vector[i] = solver_.model_value(vars_[pi]);
  }
  return vector;
}

}  // namespace simgen::sat

#include "sat/inprocess.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "sat/proof.hpp"

namespace simgen::sat {

bool Inprocessor::propagate_units() {
  if (!s_.ok_) return false;
  if (s_.propagate() != kInvalidClauseRef) {
    if (s_.proof_) s_.proof_->on_lemma({});
    s_.ok_ = false;
    return false;
  }
  return true;
}

Inprocessor::Install Inprocessor::install_simplified(std::vector<Lit>& lits,
                                                     bool learnt,
                                                     ClauseRef* out) {
  // Drop literals false at level 0 (the proof has their negations as
  // units, so the filtered clause is still RUP whenever the input was);
  // a true literal makes the clause redundant outright.
  std::size_t kept = 0;
  for (const Lit lit : lits) {
    const LBool v = s_.value(lit);
    if (v == LBool::kTrue) return Install::kSatisfied;
    if (v == LBool::kUndef) lits[kept++] = lit;
  }
  lits.resize(kept);
  if (s_.proof_) s_.proof_->on_lemma(lits);
  if (lits.empty()) {
    s_.ok_ = false;
    return Install::kRefuted;
  }
  if (lits.size() == 1) {
    s_.enqueue(lits[0], kInvalidClauseRef);
    return Install::kUnit;
  }
  const ClauseRef ref = s_.install_clause(lits, learnt);
  if (out) *out = ref;
  return Install::kInstalled;
}

Inprocessor::Install Inprocessor::replace_clause(ClauseRef ref,
                                                 std::vector<Lit>& lits,
                                                 ClauseRef* out) {
  const bool learnt = s_.arena_.learnt(ref);
  // Lemma before deletion: the checker verifies the replacement against
  // a database that still holds the original.
  const Install result = install_simplified(lits, learnt, out);
  if (result == Install::kSatisfied) {
    // Nothing was emitted; the original is simply redundant now.
    s_.delete_clause(ref);
    ++tally_.deleted_clauses;
    return result;
  }
  s_.delete_clause(ref);
  return result;
}

bool Inprocessor::simplify() {
  if (!propagate_units()) return false;
  return simplify_list(s_.problem_clauses_) && simplify_list(s_.learnt_clauses_);
}

bool Inprocessor::simplify_list(std::vector<ClauseRef>& list) {
  for (std::size_t i = 0; i < list.size(); ++i) {
    const ClauseRef ref = list[i];
    if (s_.arena_.garbage(ref)) continue;
    const std::uint32_t size = s_.arena_.size(ref);
    bool satisfied = false;
    scratch_.clear();
    for (std::uint32_t k = 0; k < size && !satisfied; ++k) {
      const Lit lit = s_.arena_.lit(ref, k);
      const LBool v = s_.value(lit);
      if (v == LBool::kTrue) satisfied = true;
      else if (v == LBool::kUndef) scratch_.push_back(lit);
    }
    if (satisfied) {
      s_.delete_clause(ref);
      ++tally_.deleted_clauses;
      continue;
    }
    if (scratch_.size() == size) continue;
    // A replacement is appended to the list by install_clause; the old
    // slot stays as a garbage ref until the next compaction.
    const Install result = replace_clause(ref, scratch_, nullptr);
    if (result == Install::kRefuted) return false;
    if (result == Install::kUnit && !propagate_units()) return false;
  }
  return propagate_units();
}

bool Inprocessor::scc_substitute() {
  const std::size_t num_lits = 2 * s_.num_vars();
  constexpr std::uint32_t kUnseen = ~std::uint32_t{0};

  // Iterative Tarjan over the binary implication graph: node = literal
  // code, edge u -> w.other for every binary watcher of u. After
  // simplify() every binary clause has both literals unassigned.
  std::vector<std::uint32_t> index(num_lits, kUnseen);
  std::vector<std::uint32_t> low(num_lits, 0);
  std::vector<std::uint32_t> comp(num_lits, kUnseen);
  std::vector<std::uint32_t> scc_stack;
  std::vector<bool> on_stack(num_lits, false);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> call;  // node, edge
  std::uint32_t next_index = 0;
  std::uint32_t comp_count = 0;
  std::vector<std::vector<std::uint32_t>> members;

  const auto active = [&](std::uint32_t code) {
    return s_.assigns_[Lit::from_code(code).var()] == LBool::kUndef;
  };

  for (std::uint32_t root = 0; root < num_lits; ++root) {
    if (index[root] != kUnseen || !active(root)) continue;
    call.emplace_back(root, 0);
    while (!call.empty()) {
      const std::uint32_t u = call.back().first;
      if (call.back().second == 0) {
        index[u] = low[u] = next_index++;
        scc_stack.push_back(u);
        on_stack[u] = true;
      }
      const auto& edges = s_.bin_watches_[u];
      if (call.back().second < edges.size()) {
        const std::uint32_t w = edges[call.back().second++].other.code();
        if (!active(w)) continue;
        if (index[w] == kUnseen) {
          call.emplace_back(w, 0);
        } else if (on_stack[w]) {
          low[u] = std::min(low[u], index[w]);
        }
        continue;
      }
      if (low[u] == index[u]) {
        std::vector<std::uint32_t> scc;
        std::uint32_t w;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          comp[w] = comp_count;
          scc.push_back(w);
        } while (w != u);
        ++comp_count;
        if (scc.size() > 1) members.push_back(std::move(scc));
      }
      call.pop_back();
      if (!call.empty())
        low[call.back().first] = std::min(low[call.back().first], low[u]);
    }
  }

  if (members.empty()) return true;

  // Substitution map, literal code -> literal code (identity default).
  std::vector<std::uint32_t> lit_map(num_lits);
  for (std::uint32_t code = 0; code < num_lits; ++code) lit_map[code] = code;
  bool any_substituted = false;
  // The canonical binaries installed below map to tautologies under
  // lit_map; the rewrite pass must leave them alone.
  std::unordered_set<ClauseRef> canonical;

  for (const auto& scc : members) {
    // A literal and its negation in one SCC refute the formula: both
    // units are RUP over the implication chains, then the empty clause.
    for (const std::uint32_t code : scc) {
      if (comp[code ^ 1u] == comp[code]) {
        const Lit lit = Lit::from_code(code);
        if (s_.proof_) {
          scratch_.assign({lit});
          s_.proof_->on_lemma(scratch_);
          scratch_.assign({~lit});
          s_.proof_->on_lemma(scratch_);
          s_.proof_->on_lemma({});
        }
        s_.ok_ = false;
        return false;
      }
    }
    // Representative: smallest literal code over a var that is not
    // already substituted (one always exists: substitution chains from
    // earlier runs end in an unsubstituted representative, which shares
    // the SCC through its canonical binaries).
    std::uint32_t rep_code = kUnseen;
    for (const std::uint32_t code : scc) {
      if ((s_.var_flags_[Lit::from_code(code).var()] &
           Solver::kFlagSubstituted) != 0)
        continue;
      if (rep_code == kUnseen || code < rep_code) rep_code = code;
    }
    if (rep_code == kUnseen) continue;
    const Lit rep = Lit::from_code(rep_code);
    for (const std::uint32_t code : scc) {
      const Lit lit = Lit::from_code(code);
      const Var var = lit.var();
      if (var == rep.var()) continue;
      if ((s_.var_flags_[var] & Solver::kFlagSubstituted) != 0) continue;
      if (in_assumptions_[var]) continue;
      // lit == rep from here on. Canonical binaries (~lit | rep) and
      // (lit | ~rep) are RUP over the implication chains inside the SCC;
      // they are kept permanently so the substituted variable stays
      // propagation-consistent with its representative (frozen variables
      // may legally be substituted because of exactly this pair).
      scratch_.assign({~lit, rep});
      if (s_.proof_) s_.proof_->on_lemma(scratch_);
      canonical.insert(s_.install_clause(scratch_, /*learnt=*/false));
      scratch_.assign({lit, ~rep});
      if (s_.proof_) s_.proof_->on_lemma(scratch_);
      canonical.insert(s_.install_clause(scratch_, /*learnt=*/false));

      // pos(var) maps to rep_of_pos; record the model rule for
      // extend_model: model[var] := model value of rep_of_pos.
      const Lit rep_of_pos = lit.negated() ? ~rep : rep;
      lit_map[pos(var).code()] = rep_of_pos.code();
      lit_map[neg(var).code()] = (~rep_of_pos).code();
      s_.var_flags_[var] |= Solver::kFlagSubstituted;
      // The representative must never be BVE-resolved on: its canonical
      // binaries would leak `var` into resolvents (see kFlagCanonical).
      s_.var_flags_[rep.var()] |= Solver::kFlagCanonical;
      s_.reconstruction_.push_back(Solver::ReconstructionEntry{
          {pos(var), rep_of_pos}, pos(var), /*substitution=*/true, false});
      ++tally_.substituted_vars;
      any_substituted = true;
    }
  }

  if (!any_substituted) return true;

  // Rewrite every clause through the substitution map. Tautological
  // images are plain deletions; everything else is lemma-then-delete
  // (RUP over the original plus the canonical binaries).
  const auto rewrite_list = [&](std::vector<ClauseRef>& list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      const ClauseRef ref = list[i];
      if (s_.arena_.garbage(ref)) continue;
      if (canonical.contains(ref)) continue;
      const std::uint32_t size = s_.arena_.size(ref);
      bool changed = false;
      scratch_.clear();
      for (std::uint32_t k = 0; k < size; ++k) {
        const Lit lit = s_.arena_.lit(ref, k);
        const std::uint32_t mapped = lit_map[lit.code()];
        changed |= mapped != lit.code();
        scratch_.push_back(Lit::from_code(mapped));
      }
      if (!changed) continue;
      std::sort(scratch_.begin(), scratch_.end(),
                [](Lit a, Lit b) { return a.code() < b.code(); });
      bool tautology = false;
      std::size_t kept = 0;
      for (std::size_t k = 0; k < scratch_.size(); ++k) {
        if (k > 0 && scratch_[k] == scratch_[kept - 1]) continue;
        if (kept > 0 && scratch_[k] == ~scratch_[kept - 1]) {
          tautology = true;
          break;
        }
        scratch_[kept++] = scratch_[k];
      }
      if (tautology) {
        s_.delete_clause(ref);
        ++tally_.deleted_clauses;
        continue;
      }
      scratch_.resize(kept);
      const Install result = replace_clause(ref, scratch_, nullptr);
      if (result == Install::kRefuted) return false;
    }
    return true;
  };
  if (!rewrite_list(s_.problem_clauses_)) return false;
  if (!rewrite_list(s_.learnt_clauses_)) return false;
  return propagate_units();
}

bool Inprocessor::probe() {
  std::uint64_t ticks = 0;
  const std::size_t num_vars = s_.num_vars();
  for (std::size_t vi = 0; vi < num_vars; ++vi) {
    if (ticks >= s_.inprocess_config_.probe_ticks) break;
    const Var var{static_cast<std::uint32_t>(vi)};
    if (!s_.decidable(var)) continue;
    for (const bool negated : {false, true}) {
      if (s_.assigns_[var] != LBool::kUndef) break;
      const Lit probe_lit(var, negated);
      // Only literals with binary implications can fail cheaply; this
      // keeps probing linear in the binary graph.
      if (s_.bin_watches_[probe_lit.code()].empty()) continue;
      const std::size_t trail_before = s_.trail_.size();
      s_.trail_lim_.push_back(s_.trail_.size());
      s_.enqueue(probe_lit, kInvalidClauseRef);
      const ClauseRef conflict = s_.propagate();
      ticks += s_.trail_.size() - trail_before;
      s_.backtrack(0);
      if (conflict == kInvalidClauseRef) continue;
      // Failed literal: its negation is a RUP unit (assume the literal,
      // propagate, derive the very conflict we just observed).
      ++tally_.failed_literals;
      if (s_.proof_) {
        scratch_.assign({~probe_lit});
        s_.proof_->on_lemma(scratch_);
      }
      s_.enqueue(~probe_lit, kInvalidClauseRef);
      if (!propagate_units()) return false;
    }
  }
  return true;
}

std::uint64_t Inprocessor::signature(ClauseRef ref) const {
  // Hash over VARIABLES, not literals: the filter must keep
  // self-subsumption candidates, which contain the negation of one of
  // C's literals (same variable, opposite polarity).
  std::uint64_t sig = 0;
  const std::uint32_t size = s_.arena_.size(ref);
  for (std::uint32_t k = 0; k < size; ++k)
    sig |= std::uint64_t{1}
           << (static_cast<std::uint32_t>(s_.arena_.lit(ref, k).var()) & 63u);
  return sig;
}

void Inprocessor::add_occurrences(ClauseRef ref) {
  const std::uint32_t size = s_.arena_.size(ref);
  for (std::uint32_t k = 0; k < size; ++k)
    occs_[s_.arena_.lit(ref, k).code()].push_back(ref);
  sigs_[ref] = signature(ref);
}

void Inprocessor::build_occurrences() {
  occs_.assign(2 * s_.num_vars(), {});
  sigs_.clear();
  for (const ClauseRef ref : s_.problem_clauses_) {
    if (s_.arena_.garbage(ref)) continue;
    add_occurrences(ref);
  }
}

bool Inprocessor::subsume() {
  std::uint64_t ticks = 0;
  bool units_pending = false;
  if (mark_.size() < 2 * s_.num_vars()) mark_.resize(2 * s_.num_vars(), 0);

  for (std::size_t ci = 0; ci < s_.problem_clauses_.size(); ++ci) {
    if (ticks >= s_.inprocess_config_.subsume_ticks) break;
    const ClauseRef c = s_.problem_clauses_[ci];
    if (s_.arena_.garbage(c)) continue;
    scratch_.clear();
    s_.arena_.copy_lits(c, scratch_);
    bool skip = false;
    for (const Lit lit : scratch_)
      if (s_.value(lit) != LBool::kUndef) skip = true;
    if (skip) continue;  // left for the next simplify
    ticks += scratch_.size();

    // Mark C's literals, then scan the occurrence lists of its
    // minimal-occurrence literal m (catches every D with C subset of D,
    // and every self-subsumption whose flipped literal is not m) and of
    // ~m (self-subsumptions whose flipped literal is m itself).
    Lit min_lit = scratch_[0];
    for (const Lit lit : scratch_)
      if (occs_[lit.code()].size() < occs_[min_lit.code()].size())
        min_lit = lit;
    ++stamp_;
    for (const Lit lit : scratch_) mark_[lit.code()] = stamp_;
    const std::uint64_t csig = sigs_[c];

    for (const Lit key : {min_lit, ~min_lit}) {
      auto& candidates = occs_[key.code()];
      for (std::size_t di = 0; di < candidates.size(); ++di) {
        const ClauseRef d = candidates[di];
        if (d == c || s_.arena_.garbage(d)) continue;
        const std::uint32_t dsize = s_.arena_.size(d);
        if (dsize < scratch_.size()) continue;
        if ((csig & ~sigs_[d]) != 0) continue;
        ticks += dsize;
        std::size_t matched = 0;
        Lit flipped{};  // literal of C whose negation is in D
        unsigned flips = 0;
        for (std::uint32_t k = 0; k < dsize; ++k) {
          const Lit q = s_.arena_.lit(d, k);
          if (mark_[q.code()] == stamp_) {
            ++matched;
          } else if (mark_[(~q).code()] == stamp_) {
            flipped = ~q;
            ++flips;
          }
        }
        if (matched == scratch_.size() && key == min_lit) {
          // C subsumes D: free deletion.
          s_.delete_clause(d);
          ++tally_.deleted_clauses;
          continue;
        }
        if (matched + 1 == scratch_.size() && flips == 1) {
          // Self-subsumption: resolving C and D on `flipped` yields
          // D minus ~flipped, which strictly strengthens D.
          scratch2_.clear();
          for (std::uint32_t k = 0; k < dsize; ++k) {
            const Lit q = s_.arena_.lit(d, k);
            if (q != ~flipped) scratch2_.push_back(q);
          }
          ClauseRef replacement = kInvalidClauseRef;
          const Install result = replace_clause(d, scratch2_, &replacement);
          if (result == Install::kRefuted) return false;
          if (result == Install::kInstalled) add_occurrences(replacement);
          if (result == Install::kUnit) units_pending = true;
          ++tally_.strengthened_clauses;
          // D may have carried C's marks; the marks describe C, which is
          // untouched, so the scan continues safely.
        }
      }
    }
  }
  if (units_pending) {
    if (!simplify()) return false;
    build_occurrences();
  }
  return propagate_units();
}

bool Inprocessor::eliminate() {
  std::uint64_t ticks = 0;
  std::vector<std::vector<Lit>> resolvents;
  std::vector<ClauseRef> pos_occ;
  std::vector<ClauseRef> neg_occ;

  const std::size_t num_vars = s_.num_vars();
  for (std::size_t vi = 0; vi < num_vars; ++vi) {
    if (ticks >= s_.inprocess_config_.bve_ticks) break;
    const Var var{static_cast<std::uint32_t>(vi)};
    if (s_.assigns_[var] != LBool::kUndef) continue;
    if (!s_.decidable(var)) continue;
    if (s_.is_frozen(var)) continue;
    if ((s_.var_flags_[var] & Solver::kFlagCanonical) != 0) continue;
    if (in_assumptions_[var]) continue;

    pos_occ.clear();
    neg_occ.clear();
    for (const ClauseRef ref : occs_[pos(var).code()])
      if (!s_.arena_.garbage(ref)) pos_occ.push_back(ref);
    for (const ClauseRef ref : occs_[neg(var).code()])
      if (!s_.arena_.garbage(ref)) neg_occ.push_back(ref);
    const std::uint32_t limit = s_.inprocess_config_.bve_occurrence_limit;
    if (pos_occ.size() > limit || neg_occ.size() > limit) continue;

    // Count non-tautological resolvents; eliminate only when the clause
    // count does not grow (the classic NiVER/SatELite criterion).
    resolvents.clear();
    bool skip = false;
    for (const ClauseRef p : pos_occ) {
      for (const ClauseRef n : neg_occ) {
        ticks += s_.arena_.size(p) + s_.arena_.size(n);
        scratch_.clear();
        const std::uint32_t psize = s_.arena_.size(p);
        for (std::uint32_t k = 0; k < psize; ++k) {
          const Lit lit = s_.arena_.lit(p, k);
          if (lit.var() != var) scratch_.push_back(lit);
        }
        const std::uint32_t nsize = s_.arena_.size(n);
        for (std::uint32_t k = 0; k < nsize; ++k) {
          const Lit lit = s_.arena_.lit(n, k);
          if (lit.var() != var) scratch_.push_back(lit);
        }
        std::sort(scratch_.begin(), scratch_.end(),
                  [](Lit a, Lit b) { return a.code() < b.code(); });
        bool tautology = false;
        std::size_t kept = 0;
        for (std::size_t k = 0; k < scratch_.size(); ++k) {
          if (kept > 0 && scratch_[k] == scratch_[kept - 1]) continue;
          if (kept > 0 && scratch_[k] == ~scratch_[kept - 1]) {
            tautology = true;
            break;
          }
          scratch_[kept++] = scratch_[k];
        }
        if (tautology) continue;
        scratch_.resize(kept);
        resolvents.push_back(scratch_);
        if (resolvents.size() > pos_occ.size() + neg_occ.size()) {
          skip = true;
          break;
        }
      }
      if (skip) break;
    }
    if (skip) continue;

    // Commit: every resolvent is RUP over its two parents, so emit them
    // all before the originals are deleted.
    for (auto& resolvent : resolvents) {
      ClauseRef installed = kInvalidClauseRef;
      const Install result =
          install_simplified(resolvent, /*learnt=*/false, &installed);
      if (result == Install::kRefuted) return false;
      if (result == Install::kInstalled) {
        // install_clause already appended the ref to problem_clauses_.
        add_occurrences(installed);
        ++tally_.resolvents;
      }
    }
    // Delete the originals, saving each with its witness literal for
    // model reconstruction (and for restore_eliminated).
    for (const ClauseRef ref : pos_occ) {
      scratch_.clear();
      s_.arena_.copy_lits(ref, scratch_);
      s_.reconstruction_.push_back(Solver::ReconstructionEntry{
          scratch_, pos(var), /*substitution=*/false, false});
      s_.delete_clause(ref);
      ++tally_.deleted_clauses;
    }
    for (const ClauseRef ref : neg_occ) {
      scratch_.clear();
      s_.arena_.copy_lits(ref, scratch_);
      s_.reconstruction_.push_back(Solver::ReconstructionEntry{
          scratch_, neg(var), /*substitution=*/false, false});
      s_.delete_clause(ref);
      ++tally_.deleted_clauses;
    }
    occs_[pos(var).code()].clear();
    occs_[neg(var).code()].clear();
    s_.var_flags_[var] |= Solver::kFlagEliminated;
    ++tally_.eliminated_vars;
    if (!propagate_units()) return false;
  }

  // Hygiene: learnt clauses over eliminated variables stay sound during
  // the pass (they are consequences of the original formula) but must
  // not survive it — a later solve would otherwise propagate variables
  // the reconstruction stack considers free.
  for (const ClauseRef ref : s_.learnt_clauses_) {
    if (s_.arena_.garbage(ref)) continue;
    const std::uint32_t size = s_.arena_.size(ref);
    bool mentions_eliminated = false;
    for (std::uint32_t k = 0; k < size && !mentions_eliminated; ++k)
      mentions_eliminated =
          (s_.var_flags_[s_.arena_.lit(ref, k).var()] &
           Solver::kFlagEliminated) != 0;
    if (mentions_eliminated) {
      s_.delete_clause(ref);
      ++tally_.deleted_clauses;
    }
  }
  return propagate_units();
}

bool Inprocessor::vivify() {
  std::uint64_t ticks = 0;
  for (std::size_t ci = 0; ci < s_.problem_clauses_.size(); ++ci) {
    if (ticks >= s_.inprocess_config_.vivify_ticks) break;
    const ClauseRef ref = s_.problem_clauses_[ci];
    if (s_.arena_.garbage(ref)) continue;
    if (s_.arena_.size(ref) < 3) continue;
    scratch_.clear();
    s_.arena_.copy_lits(ref, scratch_);
    bool satisfied = false;
    for (const Lit lit : scratch_)
      if (s_.value(lit) == LBool::kTrue) satisfied = true;
    if (satisfied) {
      s_.delete_clause(ref);
      ++tally_.deleted_clauses;
      continue;
    }

    // Assume the negation of each literal in turn; an early conflict, an
    // implied-true literal, or an implied-false literal each shorten the
    // clause. The clause itself must not take part in the propagation,
    // so detach it first.
    s_.detach_clause(ref);
    s_.trail_lim_.push_back(s_.trail_.size());
    const std::size_t trail_before = s_.trail_.size();
    scratch2_.clear();
    bool shortened = false;
    for (const Lit lit : scratch_) {
      const LBool v = s_.value(lit);
      if (v == LBool::kTrue) {
        // The assumed prefix already implies this literal: the clause
        // (prefix-literals or lit) is RUP and shorter.
        scratch2_.push_back(lit);
        shortened = scratch2_.size() < scratch_.size();
        break;
      }
      if (v == LBool::kFalse) {
        // Implied false by the prefix alone: dropping it is RUP (with
        // the original clause still in the checker's database).
        shortened = true;
        continue;
      }
      scratch2_.push_back(lit);
      s_.enqueue(~lit, kInvalidClauseRef);
      if (s_.propagate() != kInvalidClauseRef) {
        // The assumed prefix is contradictory: the prefix clause is RUP.
        shortened = scratch2_.size() < scratch_.size();
        break;
      }
    }
    ticks += s_.trail_.size() - trail_before;
    s_.backtrack(0);

    if (!shortened) {
      s_.attach_clause(ref);
      continue;
    }
    // Manual replace (the clause is currently detached): lemma first,
    // then the deletion of the original.
    const Install result =
        install_simplified(scratch2_, s_.arena_.learnt(ref), nullptr);
    if (s_.proof_) {
      scratch_.clear();
      s_.arena_.copy_lits(ref, scratch_);
      s_.proof_->on_delete(scratch_);
    }
    s_.arena_.free(ref);
    ++tally_.vivified_clauses;
    if (result == Install::kRefuted) return false;
    if (result == Install::kUnit && !propagate_units()) return false;
  }
  return true;
}

bool Inprocessor::run() {
  assert(s_.decision_level() == 0);
  const InprocessConfig& config = s_.inprocess_config_;

  in_assumptions_.assign(s_.num_vars(), false);
  for (const Lit lit : s_.assumptions_) in_assumptions_[lit.var()] = true;

  if (!simplify()) return false;
  if (config.scc && !scc_substitute()) return false;
  if (config.probe && !probe()) return false;
  if (!simplify()) return false;
  if (config.subsume || config.bve) {
    build_occurrences();
    if (config.subsume && !subsume()) return false;
    if (config.bve && !eliminate()) return false;
    occs_.clear();
    sigs_.clear();
  }
  if (config.vivify && !vivify()) return false;
  if (!simplify()) return false;

  s_.stats_.inprocess_deleted.inc(tally_.deleted_clauses);
  s_.stats_.inprocess_strengthened.inc(tally_.strengthened_clauses);
  s_.stats_.inprocess_vivified.inc(tally_.vivified_clauses);
  s_.stats_.inprocess_failed_literals.inc(tally_.failed_literals);
  s_.stats_.inprocess_substituted.inc(tally_.substituted_vars);
  s_.stats_.inprocess_eliminated.inc(tally_.eliminated_vars);
  s_.stats_.inprocess_resolvents.inc(tally_.resolvents);
  return true;
}

}  // namespace simgen::sat

#include "io/names.hpp"

namespace simgen::io {

SignalNames::SignalNames(const net::Network& network) : network_(network) {
  names_.resize(network.num_nodes());
  network.for_each_node([&](net::NodeId id) {
    const auto& node = network.node(id);
    if (node.kind == net::NodeKind::kPo) return;  // resolved via po_name()
    if (!node.name.empty()) {
      names_[id] = claim(node.name);
      return;
    }
    // Built with += rather than operator+: GCC 12's -Wrestrict misfires
    // on the temporary-concatenation pattern at -O3 (GCC bug 105651).
    std::string fallback = "n";
    fallback += std::to_string(id);
    names_[id] = claim(fallback);
  });
}

std::string SignalNames::po_name(std::size_t index) {
  const net::NodeId po = network_.pos()[index];
  const std::string& explicit_name = network_.node(po).name;
  const net::NodeId driver = network_.fanins(po)[0];
  // Aliasing the driver is fine: the writers emit no separate definition
  // for the output signal in that case.
  if (!explicit_name.empty() && explicit_name == names_[driver])
    return explicit_name;
  if (!explicit_name.empty()) return claim(explicit_name);
  std::string fallback = "po";
  fallback += std::to_string(index);
  return claim(fallback);
}

std::string SignalNames::fresh(const std::string& prefix) {
  while (true) {
    std::string candidate = prefix;
    candidate += std::to_string(fresh_counter_++);
    if (used_.insert(candidate).second) return candidate;
  }
}

std::string SignalNames::claim(const std::string& candidate) {
  if (used_.insert(candidate).second) return candidate;
  for (std::size_t k = 2;; ++k) {
    std::string variant = candidate;
    variant += '_';
    variant += std::to_string(k);
    if (used_.insert(variant).second) return variant;
  }
}

}  // namespace simgen::io

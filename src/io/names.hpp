/// \file names.hpp
/// \brief Collision-free signal naming shared by the netlist writers.
///
/// Writers used to fall back to "n<id>" for unnamed nodes (the reader
/// produces those for constants, whose canonical nodes carry no name)
/// and "aux<k>" for helper signals. Fuzzing found the obvious collision:
/// after a shrink compacts node ids, an unnamed constant can land on id
/// 13 while an unrelated LUT is explicitly named "n13", and the emitted
/// file defines the signal twice. This table assigns every non-PO node a
/// unique name up front and hands out helper names that dodge the same
/// namespace.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "network/network.hpp"

namespace simgen::io {

class SignalNames {
 public:
  /// Builds the table in node-id order: explicit names are kept when
  /// unique (the first claimant wins), unnamed non-PO nodes get "n<id>",
  /// and any collision is suffixed ("x_2", "x_3", ...) until free. The
  /// result is deterministic for a given network.
  explicit SignalNames(const net::Network& network);

  /// The assigned name of a non-PO node.
  const std::string& operator[](net::NodeId id) const { return names_[id]; }

  /// Output name for the \p index-th PO. A PO is allowed to alias exactly
  /// its own driver's signal (writers skip the buffer in that case); any
  /// other collision — with an unrelated signal or an earlier PO — is
  /// renamed, and unnamed POs get "po<index>".
  std::string po_name(std::size_t index);

  /// A fresh helper-signal name ("<prefix>0", "<prefix>1", ...) that
  /// collides with nothing assigned or handed out so far.
  std::string fresh(const std::string& prefix);

 private:
  std::string claim(const std::string& candidate);

  const net::Network& network_;
  std::vector<std::string> names_;
  std::unordered_set<std::string> used_;
  std::size_t fresh_counter_ = 0;
};

}  // namespace simgen::io

/// \file blif.hpp
/// \brief BLIF reader/writer for LUT networks.
///
/// BLIF is the interchange format for LUT-mapped circuits (ABC, VTR, SIS).
/// Supporting it lets downstream users run the sweeping flow and SimGen on
/// their own mapped benchmarks. Only the combinational subset is handled:
/// .model/.inputs/.outputs/.names/.end; latches are rejected with a clear
/// error.
#pragma once

#include <iosfwd>
#include <string>

#include "network/network.hpp"

namespace simgen::io {

/// Parses a combinational BLIF model into a Network.
/// Throws std::runtime_error with a line-numbered message on malformed
/// input or unsupported constructs (.latch, .subckt, multiple models).
[[nodiscard]] net::Network read_blif(std::istream& in);
[[nodiscard]] net::Network read_blif_file(const std::string& path);
[[nodiscard]] net::Network read_blif_string(const std::string& text);

/// Writes \p network as a BLIF model; LUT functions are emitted as their
/// irredundant ON-set covers (or the "0" convention for constant-0).
void write_blif(const net::Network& network, std::ostream& out);
void write_blif_file(const net::Network& network, const std::string& path);
[[nodiscard]] std::string write_blif_string(const net::Network& network);

}  // namespace simgen::io

/// \file verilog.hpp
/// \brief Structural Verilog writer for LUT networks.
///
/// Emits a synthesizable gate-level module (one continuous assignment per
/// LUT, written as the ISOP sum-of-products of its function) so swept or
/// reduced networks can be handed back to standard RTL tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "network/network.hpp"

namespace simgen::io {

/// Writes \p network as a Verilog module. Signal names are sanitized to
/// legal identifiers; unnamed signals get n<id> / po<i> defaults.
void write_verilog(const net::Network& network, std::ostream& out);
void write_verilog_file(const net::Network& network, const std::string& path);
[[nodiscard]] std::string write_verilog_string(const net::Network& network);

/// Parses the structural subset this library writes: one module with
/// scalar input/output/wire declarations and continuous assignments whose
/// right-hand sides are sums of products of (optionally ~-negated)
/// identifiers, or the constants 1'b0 / 1'b1. Enough for round-tripping
/// swept netlists and for reading netlists written by similar tools.
/// Throws std::runtime_error with a line-numbered message on anything
/// outside the subset (always-blocks, instances, vectors, ...).
[[nodiscard]] net::Network read_verilog(std::istream& in);
[[nodiscard]] net::Network read_verilog_file(const std::string& path);
[[nodiscard]] net::Network read_verilog_string(const std::string& text);

}  // namespace simgen::io

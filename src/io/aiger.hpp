/// \file aiger.hpp
/// \brief AIGER reader/writer (ASCII "aag" and binary "aig" formats).
///
/// AIGER is the de-facto exchange format for AIGs (used by ABC and the
/// hardware model-checking community). Only the combinational subset is
/// supported; latches are rejected. The binary format uses the standard
/// delta/varint encoding of the AIGER 1.9 specification.
#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace simgen::io {

/// Reads either format, dispatching on the "aag"/"aig" magic.
[[nodiscard]] aig::Aig read_aiger(std::istream& in);
[[nodiscard]] aig::Aig read_aiger_file(const std::string& path);
[[nodiscard]] aig::Aig read_aiger_string(const std::string& text);

/// Writes the ASCII (aag) format.
void write_aiger_ascii(const aig::Aig& graph, std::ostream& out);
/// Writes the binary (aig) format.
void write_aiger_binary(const aig::Aig& graph, std::ostream& out);

void write_aiger_file(const aig::Aig& graph, const std::string& path,
                      bool binary = true);
[[nodiscard]] std::string write_aiger_string(const aig::Aig& graph,
                                             bool binary = false);

}  // namespace simgen::io

#include "io/aiger.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace simgen::io {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("aiger: " + message);
}

struct Header {
  bool binary = false;
  std::uint64_t max_var = 0, inputs = 0, latches = 0, outputs = 0, ands = 0;
};

Header read_header(std::istream& in) {
  std::string magic;
  in >> magic;
  Header header;
  if (magic == "aig")
    header.binary = true;
  else if (magic != "aag")
    fail("bad magic '" + magic + "'");
  if (!(in >> header.max_var >> header.inputs >> header.latches >> header.outputs >>
        header.ands))
    fail("truncated header");
  if (header.latches != 0) fail("latches are not supported (combinational only)");
  if (header.max_var != header.inputs + header.ands)
    fail("header M != I + A (holes are not supported)");
  // Bound the declared size so a corrupt header cannot overflow the
  // literal-map allocation below.
  if (header.max_var >= (1ull << 30)) fail("header M is implausibly large");
  // Consume the rest of the header line.
  std::string rest;
  std::getline(in, rest);
  return header;
}

std::uint64_t read_varint(std::istream& in) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    const int byte = in.get();
    if (byte == EOF) fail("truncated binary delta encoding");
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) fail("binary delta too large");
  }
  return value;
}

void write_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

// Reads the optional symbol table (i<k> name / o<k> name) and applies the
// names via callbacks; stops at the comment section or EOF.
template <typename SetInputName, typename SetOutputName>
void read_symbols(std::istream& in, SetInputName&& set_input,
                  SetOutputName&& set_output) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == 'c') break;  // comment section
    std::istringstream fields(line);
    std::string tag, name;
    fields >> tag;
    std::getline(fields, name);
    if (!name.empty() && name.front() == ' ') name.erase(0, 1);
    if (tag.size() < 2) continue;
    const std::uint64_t index = std::strtoull(tag.c_str() + 1, nullptr, 10);
    if (tag[0] == 'i')
      set_input(index, name);
    else if (tag[0] == 'o')
      set_output(index, name);
    // Latch symbols cannot appear (latches rejected); others are ignored.
  }
}

}  // namespace

aig::Aig read_aiger(std::istream& in) {
  const Header header = read_header(in);
  aig::Aig graph;

  // lit_map translates file literals to literals of the rebuilt graph
  // (strashing may renumber or fold nodes).
  std::vector<aig::Lit> lit_map(2 * (header.max_var + 1), aig::kLitFalse);
  lit_map.at(1) = aig::kLitTrue;  // literal 0 is already kLitFalse
  const auto map_lit = [&](std::uint64_t file_lit) {
    if (file_lit >= lit_map.size()) fail("literal out of range");
    return (file_lit & 1) ? aig::lit_not(lit_map[file_lit & ~1ull])
                          : lit_map[file_lit];
  };

  for (std::uint64_t i = 0; i < header.inputs; ++i) {
    const aig::Lit lit = graph.add_pi();
    std::uint64_t file_lit = 2 * (i + 1);
    if (!header.binary) {
      if (!(in >> file_lit)) fail("truncated input section");
      if (file_lit != 2 * (i + 1)) fail("inputs must be the first variables");
    }
    lit_map[file_lit] = lit;
  }

  std::vector<std::uint64_t> output_lits(header.outputs);
  for (auto& lit : output_lits)
    if (!(in >> lit)) fail("truncated output section");

  if (header.binary) {
    std::string newline;
    std::getline(in, newline);  // consume the newline before binary data
    for (std::uint64_t k = 0; k < header.ands; ++k) {
      const std::uint64_t lhs = 2 * (header.inputs + k + 1);
      const std::uint64_t delta0 = read_varint(in);
      if (delta0 == 0 || delta0 > lhs) fail("invalid delta0");
      const std::uint64_t rhs0 = lhs - delta0;
      const std::uint64_t delta1 = read_varint(in);
      if (delta1 > rhs0) fail("invalid delta1");
      const std::uint64_t rhs1 = rhs0 - delta1;
      lit_map[lhs] = graph.and2(map_lit(rhs0), map_lit(rhs1));
    }
  } else {
    for (std::uint64_t k = 0; k < header.ands; ++k) {
      std::uint64_t lhs = 0, rhs0 = 0, rhs1 = 0;
      if (!(in >> lhs >> rhs0 >> rhs1)) fail("truncated and section");
      if (lhs & 1) fail("and lhs must be even");
      if (rhs0 >= lhs || rhs1 >= lhs) fail("and rhs must precede lhs");
      lit_map[lhs] = graph.and2(map_lit(rhs0), map_lit(rhs1));
    }
    std::string newline;
    std::getline(in, newline);
  }

  for (std::uint64_t lit : output_lits) graph.add_po(map_lit(lit));

  // Symbol table (names) — optional. We cannot rename PIs post-hoc in Aig,
  // so names are applied through the graph's PO name storage only if the
  // format carried them; PI names arrive via add_pi order, so we rebuild
  // names in place using const_cast-free access: Aig stores names at add
  // time, so here we simply skip PI renames (generated graphs carry none).
  read_symbols(
      in, [&](std::uint64_t, const std::string&) {},
      [&](std::uint64_t, const std::string&) {});

  graph.check_invariants();
  return graph;
}

aig::Aig read_aiger_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) fail("cannot open " + path);
  return read_aiger(file);
}

aig::Aig read_aiger_string(const std::string& text) {
  std::istringstream stream(text);
  return read_aiger(stream);
}

void write_aiger_ascii(const aig::Aig& graph, std::ostream& out) {
  out << "aag " << graph.num_nodes() - 1 << ' ' << graph.num_pis() << " 0 "
      << graph.num_pos() << ' ' << graph.num_ands() << "\n";
  for (std::size_t i = 0; i < graph.num_pis(); ++i)
    out << graph.pi_lit(i) << "\n";
  for (std::size_t i = 0; i < graph.num_pos(); ++i)
    out << graph.po_lit(i) << "\n";
  graph.for_each_and([&](std::uint32_t node) {
    out << aig::make_lit(node, false) << ' ' << graph.fanin1(node) << ' '
        << graph.fanin0(node) << "\n";
  });
}

void write_aiger_binary(const aig::Aig& graph, std::ostream& out) {
  out << "aig " << graph.num_nodes() - 1 << ' ' << graph.num_pis() << " 0 "
      << graph.num_pos() << ' ' << graph.num_ands() << "\n";
  for (std::size_t i = 0; i < graph.num_pos(); ++i)
    out << graph.po_lit(i) << "\n";
  graph.for_each_and([&](std::uint32_t node) {
    const std::uint64_t lhs = aig::make_lit(node, false);
    // Binary AIGER wants rhs0 >= rhs1; our fanins satisfy fanin0 <= fanin1.
    const std::uint64_t rhs0 = graph.fanin1(node);
    const std::uint64_t rhs1 = graph.fanin0(node);
    write_varint(out, lhs - rhs0);
    write_varint(out, rhs0 - rhs1);
  });
}

void write_aiger_file(const aig::Aig& graph, const std::string& path, bool binary) {
  std::ofstream file(path, std::ios::binary);
  if (!file) fail("cannot open " + path + " for writing");
  if (binary)
    write_aiger_binary(graph, file);
  else
    write_aiger_ascii(graph, file);
}

std::string write_aiger_string(const aig::Aig& graph, bool binary) {
  std::ostringstream stream;
  if (binary)
    write_aiger_binary(graph, stream);
  else
    write_aiger_ascii(graph, stream);
  return stream.str();
}

}  // namespace simgen::io

/// \file bench.hpp
/// \brief Reader for the ISCAS/ITC BENCH netlist format.
///
/// BENCH is the format the ITC'99 benchmarks (used in the paper's
/// evaluation) are commonly distributed in: INPUT(x), OUTPUT(y), and
/// gate assignments y = AND(a, b, ...). Gates are converted to LUT nodes.
#pragma once

#include <iosfwd>
#include <string>

#include "network/network.hpp"

namespace simgen::io {

/// Parses a combinational BENCH netlist. Supported gates: AND, OR, NAND,
/// NOR, XOR, XNOR, NOT, BUF/BUFF; DFF is rejected (combinational only).
[[nodiscard]] net::Network read_bench(std::istream& in);
[[nodiscard]] net::Network read_bench_file(const std::string& path);
[[nodiscard]] net::Network read_bench_string(const std::string& text);

/// Writes a network as BENCH. LUT functions that are not simple gates are
/// decomposed into their ISOP as a two-level AND/OR/NOT structure.
void write_bench(const net::Network& network, std::ostream& out);
[[nodiscard]] std::string write_bench_string(const net::Network& network);

}  // namespace simgen::io

#include "io/blif.hpp"

#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "io/names.hpp"
#include "tt/isop.hpp"

namespace simgen::io {
namespace {

struct NamesEntry {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::pair<std::string, char>> cubes;  // (pattern, output char)
  std::size_t line_number = 0;
};

struct BlifDocument {
  std::string model;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<NamesEntry> names;
};

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("blif:" + std::to_string(line) + ": " + message);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

BlifDocument parse_document(std::istream& in) {
  BlifDocument doc;
  NamesEntry* current = nullptr;
  std::string raw;
  std::size_t line_number = 0;
  bool ended = false;

  // Reads one logical line, folding trailing-backslash continuations and
  // stripping comments.
  const auto next_logical_line = [&](std::string& out_line) -> bool {
    out_line.clear();
    while (std::getline(in, raw)) {
      ++line_number;
      if (const auto hash = raw.find('#'); hash != std::string::npos)
        raw.erase(hash);
      while (!raw.empty() && (raw.back() == '\r' || raw.back() == ' ' || raw.back() == '\t'))
        raw.pop_back();
      if (!raw.empty() && raw.back() == '\\') {
        raw.pop_back();
        out_line += raw + " ";
        continue;
      }
      out_line += raw;
      if (!tokenize(out_line).empty()) return true;
      out_line.clear();
    }
    return !out_line.empty();
  };

  std::string line;
  while (next_logical_line(line)) {
    if (ended) fail(line_number, "content after .end");
    const auto tokens = tokenize(line);
    const std::string& head = tokens.front();
    if (head == ".model") {
      if (!doc.model.empty()) fail(line_number, "multiple .model directives");
      doc.model = tokens.size() > 1 ? tokens[1] : "unnamed";
      current = nullptr;
    } else if (head == ".inputs") {
      doc.inputs.insert(doc.inputs.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".outputs") {
      doc.outputs.insert(doc.outputs.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".names") {
      if (tokens.size() < 2) fail(line_number, ".names needs an output signal");
      NamesEntry entry;
      entry.inputs.assign(tokens.begin() + 1, tokens.end() - 1);
      entry.output = tokens.back();
      entry.line_number = line_number;
      doc.names.push_back(std::move(entry));
      current = &doc.names.back();
    } else if (head == ".end") {
      ended = true;
      current = nullptr;
    } else if (head == ".latch" || head == ".subckt" || head == ".gate") {
      fail(line_number, "unsupported construct: " + head);
    } else if (head[0] == '.') {
      // Silently ignore benign extensions (.default_input_arrival etc.).
      current = nullptr;
    } else {
      if (current == nullptr) fail(line_number, "cube line outside .names");
      if (current->inputs.empty()) {
        if (tokens.size() != 1 || (tokens[0] != "0" && tokens[0] != "1"))
          fail(line_number, "constant .names expects a single 0/1 line");
        current->cubes.emplace_back("", tokens[0][0]);
      } else {
        if (tokens.size() != 2) fail(line_number, "cube line must be <pattern> <value>");
        if (tokens[0].size() != current->inputs.size())
          fail(line_number, "cube pattern width mismatch");
        if (tokens[1] != "0" && tokens[1] != "1")
          fail(line_number, "cube output must be 0 or 1");
        current->cubes.emplace_back(tokens[0], tokens[1][0]);
      }
    }
  }
  if (doc.model.empty() && doc.inputs.empty() && doc.names.empty())
    throw std::runtime_error("blif: empty input");
  return doc;
}

tt::TruthTable cover_to_table(const NamesEntry& entry) {
  const auto num_vars = static_cast<unsigned>(entry.inputs.size());
  if (num_vars > tt::kMaxVars)
    fail(entry.line_number, ".names with more inputs than supported");
  if (entry.cubes.empty()) return tt::TruthTable::constant(num_vars, false);

  const char plane = entry.cubes.front().second;
  tt::TruthTable acc = tt::TruthTable::constant(num_vars, false);
  for (const auto& [pattern, value] : entry.cubes) {
    if (value != plane)
      fail(entry.line_number, "mixed ON/OFF cube planes are not supported");
    tt::Cube cube;
    for (unsigned v = 0; v < num_vars; ++v) {
      const char c = pattern[v];
      if (c == '1')
        cube.set_literal(v, true);
      else if (c == '0')
        cube.set_literal(v, false);
      else if (c != '-')
        fail(entry.line_number, "invalid cube character");
    }
    acc |= cube.to_truth_table(num_vars);
  }
  return plane == '1' ? acc : ~acc;
}

}  // namespace

net::Network read_blif(std::istream& in) {
  const BlifDocument doc = parse_document(in);
  net::Network network(doc.model);

  std::unordered_map<std::string, net::NodeId> signal_map;
  for (const std::string& name : doc.inputs) {
    if (signal_map.contains(name))
      throw std::runtime_error("blif: duplicate input " + name);
    signal_map.emplace(name, network.add_pi(name));
  }

  std::unordered_map<std::string, const NamesEntry*> definition;
  for (const NamesEntry& entry : doc.names) {
    if (definition.contains(entry.output) || signal_map.contains(entry.output))
      fail(entry.line_number, "signal defined twice: " + entry.output);
    definition.emplace(entry.output, &entry);
  }

  // Recursive elaboration in dependency order with cycle detection.
  enum class State : std::uint8_t { kUntouched, kInProgress, kDone };
  std::unordered_map<std::string, State> state;
  const std::function<net::NodeId(const std::string&)> build =
      [&](const std::string& name) -> net::NodeId {
    if (const auto it = signal_map.find(name); it != signal_map.end()) return it->second;
    const auto def = definition.find(name);
    if (def == definition.end())
      throw std::runtime_error("blif: undefined signal " + name);
    if (state[name] == State::kInProgress)
      fail(def->second->line_number, "combinational cycle through " + name);
    state[name] = State::kInProgress;
    std::vector<net::NodeId> fanins;
    fanins.reserve(def->second->inputs.size());
    for (const std::string& input : def->second->inputs) fanins.push_back(build(input));
    tt::TruthTable function = cover_to_table(*def->second);
    net::NodeId id;
    if (fanins.empty()) {
      id = network.add_constant(function.get_bit(0));
    } else {
      id = network.add_lut(fanins, std::move(function), name);
    }
    state[name] = State::kDone;
    signal_map.emplace(name, id);
    return id;
  };

  for (const std::string& output : doc.outputs)
    network.add_po(build(output), output);
  network.check_invariants();
  return network;
}

net::Network read_blif_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("blif: cannot open " + path);
  return read_blif(file);
}

net::Network read_blif_string(const std::string& text) {
  std::istringstream stream(text);
  return read_blif(stream);
}

void write_blif(const net::Network& network, std::ostream& out) {
  SignalNames names(network);
  out << ".model " << (network.name().empty() ? "simgen" : network.name()) << "\n";
  out << ".inputs";
  for (net::NodeId pi : network.pis()) out << ' ' << names[pi];
  out << "\n.outputs";
  std::vector<std::string> po_names;
  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    po_names.push_back(names.po_name(i));
    out << ' ' << po_names.back();
  }
  out << "\n";

  network.for_each_node([&](net::NodeId id) {
    if (network.is_constant(id)) {
      out << ".names " << names[id] << "\n";
      if (network.node(id).constant_value) out << "1\n";
      return;
    }
    if (!network.is_lut(id)) return;
    out << ".names";
    for (net::NodeId fanin : network.fanins(id)) out << ' ' << names[fanin];
    out << ' ' << names[id] << "\n";
    const auto num_vars = static_cast<unsigned>(network.fanins(id).size());
    const auto& function = network.node(id).function;
    if (function.is_const0()) return;  // empty cover == constant 0
    if (function.is_const1()) {
      // Tautology: a single all-DC cube.
      out << std::string(num_vars, '-') << " 1\n";
      return;
    }
    for (const tt::Cube& cube : tt::isop(function).cubes) {
      std::string pattern(num_vars, '-');
      for (unsigned v = 0; v < num_vars; ++v)
        if (cube.has_literal(v)) pattern[v] = cube.literal_value(v) ? '1' : '0';
      out << pattern << " 1\n";
    }
  });

  // POs are emitted as buffers so each .outputs name is defined even when
  // it differs from (or aliases) the driver's signal name.
  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const net::NodeId driver = network.fanins(network.pos()[i])[0];
    const std::string& driver_name = names[driver];
    if (driver_name == po_names[i]) continue;
    out << ".names " << driver_name << ' ' << po_names[i] << "\n1 1\n";
  }
  out << ".end\n";
}

void write_blif_file(const net::Network& network, const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("blif: cannot open " + path + " for writing");
  write_blif(network, file);
}

std::string write_blif_string(const net::Network& network) {
  std::ostringstream stream;
  write_blif(network, stream);
  return stream.str();
}

}  // namespace simgen::io

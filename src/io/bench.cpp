#include "io/bench.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "io/names.hpp"
#include "tt/isop.hpp"

namespace simgen::io {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("bench:" + std::to_string(line) + ": " + message);
}

std::string trim(std::string s) {
  const auto not_space = [](unsigned char c) { return !std::isspace(c); };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

struct GateDef {
  std::string kind;                 // normalized gate name
  std::vector<std::string> inputs;  // operand signal names
  std::size_t line_number = 0;
};

tt::TruthTable gate_table(const GateDef& gate) {
  const auto arity = static_cast<unsigned>(gate.inputs.size());
  const auto check_arity = [&](unsigned expected) {
    if (arity != expected)
      fail(gate.line_number, gate.kind + " expects " + std::to_string(expected) +
                                 " inputs, got " + std::to_string(arity));
  };
  if (gate.kind == "AND") return tt::TruthTable::and_gate(arity);
  if (gate.kind == "OR") return tt::TruthTable::or_gate(arity);
  if (gate.kind == "NAND") return tt::TruthTable::nand_gate(arity);
  if (gate.kind == "NOR") return tt::TruthTable::nor_gate(arity);
  if (gate.kind == "XOR") return tt::TruthTable::xor_gate(arity);
  if (gate.kind == "XNOR") return ~tt::TruthTable::xor_gate(arity);
  if (gate.kind == "NOT") {
    check_arity(1);
    return tt::TruthTable::not_gate();
  }
  if (gate.kind == "BUF" || gate.kind == "BUFF") {
    check_arity(1);
    return tt::TruthTable::buffer();
  }
  if (gate.kind == "MUX") {
    check_arity(3);
    // BENCH MUX(s, a, b): s ? b : a per ISCAS convention (select first).
    const auto s = tt::TruthTable::projection(3, 0);
    const auto a = tt::TruthTable::projection(3, 1);
    const auto b = tt::TruthTable::projection(3, 2);
    return (s & b) | (~s & a);
  }
  if (gate.kind == "DFF")
    fail(gate.line_number, "sequential element DFF is not supported");
  fail(gate.line_number, "unknown gate " + gate.kind);
}

}  // namespace

net::Network read_bench(std::istream& in) {
  net::Network network("bench");
  std::unordered_map<std::string, net::NodeId> signal_map;
  std::unordered_map<std::string, GateDef> definitions;
  std::vector<std::string> outputs;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto open = line.find('(');
    const auto close = line.rfind(')');
    if (const auto eq = line.find('='); eq != std::string::npos) {
      // Gate assignment: out = KIND(a, b, ...)
      if (open == std::string::npos || close == std::string::npos || open > close)
        fail(line_number, "malformed gate line");
      GateDef gate;
      gate.kind = upper(trim(line.substr(eq + 1, open - eq - 1)));
      gate.line_number = line_number;
      std::string args = line.substr(open + 1, close - open - 1);
      std::istringstream arg_stream(args);
      std::string arg;
      while (std::getline(arg_stream, arg, ',')) {
        arg = trim(arg);
        if (arg.empty()) fail(line_number, "empty gate operand");
        gate.inputs.push_back(arg);
      }
      const std::string target = trim(line.substr(0, eq));
      if (definitions.contains(target))
        fail(line_number, "signal defined twice: " + target);
      definitions.emplace(target, std::move(gate));
    } else if (open != std::string::npos && close != std::string::npos) {
      const std::string kind = upper(trim(line.substr(0, open)));
      const std::string name = trim(line.substr(open + 1, close - open - 1));
      if (kind == "INPUT") {
        if (signal_map.contains(name)) fail(line_number, "duplicate input " + name);
        signal_map.emplace(name, network.add_pi(name));
      } else if (kind == "OUTPUT") {
        outputs.push_back(name);
      } else {
        fail(line_number, "unknown directive " + kind);
      }
    } else {
      fail(line_number, "unparseable line");
    }
  }

  enum class State : std::uint8_t { kUntouched, kInProgress, kDone };
  std::unordered_map<std::string, State> state;
  const std::function<net::NodeId(const std::string&)> build =
      [&](const std::string& name) -> net::NodeId {
    if (const auto it = signal_map.find(name); it != signal_map.end()) return it->second;
    const auto def = definitions.find(name);
    if (def == definitions.end())
      throw std::runtime_error("bench: undefined signal " + name);
    if (state[name] == State::kInProgress)
      fail(def->second.line_number, "combinational cycle through " + name);
    state[name] = State::kInProgress;
    net::NodeId id;
    if (def->second.kind == "CONST0" || def->second.kind == "CONST1") {
      // Zero-operand constant gates (this writer's own extension — plain
      // BENCH has no constant literal at all, so round-tripping networks
      // with constant nodes needs one).
      if (!def->second.inputs.empty())
        fail(def->second.line_number, def->second.kind + " expects 0 inputs");
      id = network.add_constant(def->second.kind == "CONST1");
    } else {
      std::vector<net::NodeId> fanins;
      for (const std::string& input : def->second.inputs)
        fanins.push_back(build(input));
      id = network.add_lut(fanins, gate_table(def->second), name);
    }
    state[name] = State::kDone;
    signal_map.emplace(name, id);
    return id;
  };

  for (const std::string& output : outputs) network.add_po(build(output), output);
  network.check_invariants();
  return network;
}

net::Network read_bench_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("bench: cannot open " + path);
  return read_bench(file);
}

net::Network read_bench_string(const std::string& text) {
  std::istringstream stream(text);
  return read_bench(stream);
}

void write_bench(const net::Network& network, std::ostream& out) {
  SignalNames names(network);
  for (net::NodeId pi : network.pis())
    out << "INPUT(" << names[pi] << ")\n";
  std::vector<std::string> po_names;
  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    po_names.push_back(names.po_name(i));
    out << "OUTPUT(" << po_names.back() << ")\n";
  }

  // Constant nodes first: they can feed any gate or output below. Found
  // by fuzzing — the writer used to reference constants it never defined,
  // producing BENCH no reader (including ours) could parse.
  network.for_each_node([&](net::NodeId id) {
    if (!network.is_constant(id)) return;
    out << names[id] << " = "
        << (network.node(id).constant_value ? "CONST1()" : "CONST0()")
        << "\n";
  });

  const auto aux_name = [&] { return names.fresh("aux"); };

  // Emits `target = KIND(operands...)`, splitting into a balanced tree of
  // at-most-8-input gates (readers bound gate arity by the truth-table
  // limit; ISOP covers of 6-LUTs can exceed it).
  constexpr std::size_t kMaxGateArity = 8;
  const std::function<void(const std::string&, const char*,
                           std::vector<std::string>)>
      emit_tree = [&](const std::string& target, const char* kind,
                      std::vector<std::string> operands) {
        while (operands.size() > kMaxGateArity) {
          std::vector<std::string> next;
          for (std::size_t i = 0; i < operands.size(); i += kMaxGateArity) {
            const std::size_t end = std::min(i + kMaxGateArity, operands.size());
            if (end - i == 1) {
              next.push_back(operands[i]);
              continue;
            }
            const std::string chunk = aux_name();
            out << chunk << " = " << kind << "(";
            for (std::size_t k = i; k < end; ++k)
              out << (k > i ? ", " : "") << operands[k];
            out << ")\n";
            next.push_back(chunk);
          }
          operands = std::move(next);
        }
        if (operands.size() == 1) {
          out << target << " = BUFF(" << operands[0] << ")\n";
          return;
        }
        out << target << " = " << kind << "(";
        for (std::size_t i = 0; i < operands.size(); ++i)
          out << (i ? ", " : "") << operands[i];
        out << ")\n";
      };

  network.for_each_node([&](net::NodeId id) {
    if (!network.is_lut(id)) return;
    const auto& node = network.node(id);
    const std::string& name = names[id];
    const auto fanin_name = [&](unsigned v) -> const std::string& {
      return names[node.fanins[v]];
    };
    const auto num_vars = static_cast<unsigned>(node.fanins.size());

    // Fast path: functions that are single BENCH gates.
    if (node.function == tt::TruthTable::and_gate(num_vars)) {
      out << name << " = AND(";
    } else if (node.function == tt::TruthTable::or_gate(num_vars)) {
      out << name << " = OR(";
    } else if (node.function == tt::TruthTable::xor_gate(num_vars)) {
      out << name << " = XOR(";
    } else if (node.function == tt::TruthTable::nand_gate(num_vars)) {
      out << name << " = NAND(";
    } else if (node.function == tt::TruthTable::nor_gate(num_vars)) {
      out << name << " = NOR(";
    } else if (num_vars == 1 && node.function == tt::TruthTable::not_gate()) {
      out << name << " = NOT(";
    } else if (num_vars == 1 && node.function == tt::TruthTable::buffer()) {
      out << name << " = BUFF(";
    } else {
      // General LUT: two-level decomposition of the ISOP. Inverters are
      // emitted on demand per (node, literal) use.
      std::vector<std::string> product_names;
      for (const tt::Cube& cube : tt::isop(node.function).cubes) {
        std::vector<std::string> literal_names;
        for (unsigned v = 0; v < num_vars; ++v) {
          if (!cube.has_literal(v)) continue;
          if (cube.literal_value(v)) {
            literal_names.push_back(fanin_name(v));
          } else {
            const std::string inv = aux_name();
            out << inv << " = NOT(" << fanin_name(v) << ")\n";
            literal_names.push_back(inv);
          }
        }
        if (literal_names.empty()) {
          // Tautological cube: the function is constant 1; emit as
          // OR(x, NOT(x)) over the first fanin for lack of constants.
          const std::string inv = aux_name();
          out << inv << " = NOT(" << fanin_name(0) << ")\n";
          const std::string one = aux_name();
          out << one << " = OR(" << fanin_name(0) << ", " << inv << ")\n";
          product_names.push_back(one);
          continue;
        }
        if (literal_names.size() == 1) {
          product_names.push_back(literal_names[0]);
        } else {
          const std::string product = aux_name();
          emit_tree(product, "AND", literal_names);
          product_names.push_back(product);
        }
      }
      if (product_names.empty()) {
        // Constant 0: AND(x, NOT(x)).
        const std::string inv = aux_name();
        out << inv << " = NOT(" << fanin_name(0) << ")\n";
        out << name << " = AND(" << fanin_name(0) << ", " << inv << ")\n";
        return;
      }
      emit_tree(name, "OR", product_names);
      return;
    }
    for (unsigned v = 0; v < num_vars; ++v) out << (v ? ", " : "") << fanin_name(v);
    out << ")\n";
  });

  for (std::size_t i = 0; i < network.num_pos(); ++i) {
    const net::NodeId driver = network.fanins(network.pos()[i])[0];
    const std::string& driver_name = names[driver];
    if (driver_name != po_names[i])
      out << po_names[i] << " = BUFF(" << driver_name << ")\n";
  }
}

std::string write_bench_string(const net::Network& network) {
  std::ostringstream stream;
  write_bench(network, stream);
  return stream.str();
}

}  // namespace simgen::io

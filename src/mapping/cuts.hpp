/// \file cuts.hpp
/// \brief K-feasible cut enumeration on AIGs (priority cuts).
///
/// A cut of node n is a set of at most K nodes ("leaves") such that every
/// path from a PI to n passes through a leaf; the cone between the leaves
/// and n can then be implemented as one K-input LUT. Cut enumeration with
/// per-node priority lists is the standard engine behind ABC's "if -K 6"
/// mapper, which the paper's methodology applies to every benchmark.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"

namespace simgen::mapping {

/// Maximum supported cut size (LUT input count).
inline constexpr unsigned kMaxCutSize = 8;

/// Mapping objective: what "best cut" means.
enum class MapObjective : std::uint8_t {
  kDepth,  ///< Minimize arrival level (then size) — timing-driven.
  kArea,   ///< Minimize area flow (then depth) — area-driven.
};

/// One cut: sorted leaf set plus the root's function over the leaves.
struct Cut {
  std::array<std::uint32_t, kMaxCutSize> leaves{};
  std::uint8_t size = 0;
  std::uint32_t signature = 0;  ///< Hash-OR of leaves for fast domination tests.
  tt::TruthTable function{0};   ///< Root function; variable i = leaves[i].
  unsigned depth = 0;           ///< Arrival level if this cut is chosen.
  double area_flow = 0.0;       ///< Estimated LUTs/output charged to this cut.

  [[nodiscard]] std::uint32_t leaf(unsigned index) const { return leaves[index]; }

  /// True iff this cut's leaf set is a subset of \p other's (then `other`
  /// is dominated and can be discarded).
  [[nodiscard]] bool subset_of(const Cut& other) const noexcept;
};

struct CutEnumerationOptions {
  unsigned cut_size = 6;       ///< K.
  unsigned cuts_per_node = 8;  ///< Priority-list length (plus trivial cut).
  MapObjective objective = MapObjective::kDepth;
};

/// Enumerates priority cuts for every node of \p aig. Index into the
/// result with the AIG node id; PIs carry only their trivial cut.
class CutSet {
 public:
  CutSet(const aig::Aig& graph, const CutEnumerationOptions& options);

  [[nodiscard]] const std::vector<Cut>& cuts_of(std::uint32_t node) const {
    return cuts_[node];
  }
  /// The cut chosen by depth-oriented mapping (filled by the mapper).
  [[nodiscard]] const CutEnumerationOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const aig::Aig& graph() const noexcept { return graph_; }

  /// Arrival level of \p node under best-cut selection.
  [[nodiscard]] unsigned arrival(std::uint32_t node) const { return arrival_[node]; }
  /// Index of the depth-optimal cut of \p node within cuts_of(node).
  [[nodiscard]] std::size_t best_cut(std::uint32_t node) const { return best_[node]; }

 private:
  void enumerate();

  const aig::Aig& graph_;
  CutEnumerationOptions options_;
  std::vector<std::vector<Cut>> cuts_;
  std::vector<unsigned> arrival_;
  std::vector<std::size_t> best_;
};

/// Merges two cuts; returns false if the union exceeds \p max_size.
/// On success fills \p out's leaves/size/signature (not the function).
[[nodiscard]] bool merge_cuts(const Cut& a, const Cut& b, unsigned max_size, Cut& out);

/// Re-expresses \p function (over \p from leaves) in terms of \p to leaves
/// (a superset). Exposed for tests.
[[nodiscard]] tt::TruthTable expand_cut_function(
    const tt::TruthTable& function, const Cut& from, const Cut& to);

}  // namespace simgen::mapping

/// \file lut_mapper.hpp
/// \brief Depth-oriented K-LUT technology mapping of AIGs.
///
/// Reproduces the "if -K 6" step of the paper's methodology (Section 6.1):
/// every benchmark is LUT-mapped before the sweeping flow sees it. The
/// mapper selects each node's depth-optimal cut and extracts the cover
/// reachable from the POs, emitting one LUT per chosen cut.
#pragma once

#include "aig/aig.hpp"
#include "mapping/cuts.hpp"
#include "network/network.hpp"

namespace simgen::mapping {

struct MapperOptions {
  unsigned lut_size = 6;       ///< K ("if -K 6").
  unsigned cuts_per_node = 8;  ///< Priority-cut list length.
  /// kDepth reproduces the timing-driven "if -K 6"; kArea selects cuts by
  /// area flow instead (fewer LUTs, possibly deeper).
  MapObjective objective = MapObjective::kDepth;
};

struct MapperStats {
  std::size_t num_luts = 0;
  unsigned depth = 0;
};

/// Maps \p graph to a K-LUT network. The result's PIs/POs correspond to
/// the AIG's by index; PO complement bits are folded into the driving
/// LUT functions (or emitted as inverter LUTs for PI/constant drivers).
[[nodiscard]] net::Network map_to_luts(const aig::Aig& graph,
                                       const MapperOptions& options = {},
                                       MapperStats* stats = nullptr);

}  // namespace simgen::mapping

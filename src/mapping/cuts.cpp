#include "mapping/cuts.hpp"

#include <algorithm>
#include <stdexcept>

namespace simgen::mapping {
namespace {

std::uint32_t leaf_signature_bit(std::uint32_t leaf) noexcept {
  return 1u << (leaf & 31u);
}

Cut trivial_cut(std::uint32_t node, unsigned arrival) {
  Cut cut;
  cut.leaves[0] = node;
  cut.size = 1;
  cut.signature = leaf_signature_bit(node);
  cut.function = tt::TruthTable::projection(1, 0);
  cut.depth = arrival;
  return cut;
}

}  // namespace

bool Cut::subset_of(const Cut& other) const noexcept {
  if (size > other.size) return false;
  if ((signature & ~other.signature) != 0) return false;
  unsigned j = 0;
  for (unsigned i = 0; i < size; ++i) {
    while (j < other.size && other.leaves[j] < leaves[i]) ++j;
    if (j == other.size || other.leaves[j] != leaves[i]) return false;
  }
  return true;
}

bool merge_cuts(const Cut& a, const Cut& b, unsigned max_size, Cut& out) {
  // Merge two sorted leaf arrays, bailing out when the union grows past
  // max_size.
  unsigned i = 0, j = 0, n = 0;
  while (i < a.size || j < b.size) {
    std::uint32_t next;
    if (j == b.size || (i < a.size && a.leaves[i] < b.leaves[j])) {
      next = a.leaves[i++];
    } else if (i == a.size || b.leaves[j] < a.leaves[i]) {
      next = b.leaves[j++];
    } else {
      next = a.leaves[i];
      ++i;
      ++j;
    }
    if (n == max_size) return false;
    out.leaves[n++] = next;
  }
  out.size = static_cast<std::uint8_t>(n);
  out.signature = a.signature | b.signature;
  return true;
}

tt::TruthTable expand_cut_function(const tt::TruthTable& function, const Cut& from,
                                   const Cut& to) {
  // Map each variable of `from` to its position in `to`.
  std::array<unsigned, kMaxCutSize> position{};
  for (unsigned v = 0; v < from.size; ++v) {
    unsigned p = 0;
    while (p < to.size && to.leaves[p] != from.leaves[v]) ++p;
    if (p == to.size)
      throw std::logic_error("expand_cut_function: `to` is not a superset");
    position[v] = p;
  }
  tt::TruthTable result(to.size);
  const auto num_minterms = static_cast<std::uint32_t>(result.num_bits());
  for (std::uint32_t m = 0; m < num_minterms; ++m) {
    std::uint32_t from_minterm = 0;
    for (unsigned v = 0; v < from.size; ++v)
      if ((m >> position[v]) & 1u) from_minterm |= 1u << v;
    if (function.get_bit(from_minterm)) result.set_bit(m, true);
  }
  return result;
}

CutSet::CutSet(const aig::Aig& graph, const CutEnumerationOptions& options)
    : graph_(graph),
      options_(options),
      cuts_(graph.num_nodes()),
      arrival_(graph.num_nodes(), 0),
      best_(graph.num_nodes(), 0) {
  if (options_.cut_size > kMaxCutSize)
    throw std::invalid_argument("CutSet: cut_size exceeds kMaxCutSize");
  if (options_.cut_size < 2)
    throw std::invalid_argument("CutSet: cut_size must be at least 2");
  enumerate();
}

void CutSet::enumerate() {
  // Fanout estimates for area flow: how many readers share a node's cost.
  std::vector<double> fanout_estimate(graph_.num_nodes(), 1.0);
  graph_.for_each_and([&](std::uint32_t node) {
    fanout_estimate[aig::lit_node(graph_.fanin0(node))] += 1.0;
    fanout_estimate[aig::lit_node(graph_.fanin1(node))] += 1.0;
  });
  // Per-node best area flow (PIs and the constant are free).
  std::vector<double> best_flow(graph_.num_nodes(), 0.0);

  // PIs and the constant node get their trivial cut only.
  for (std::size_t i = 0; i < graph_.num_pis(); ++i) {
    const std::uint32_t node = aig::lit_node(graph_.pi_lit(i));
    cuts_[node].push_back(trivial_cut(node, 0));
  }
  cuts_[0].push_back(trivial_cut(0, 0));  // constant node

  graph_.for_each_and([&](std::uint32_t node) {
    const aig::Lit f0 = graph_.fanin0(node);
    const aig::Lit f1 = graph_.fanin1(node);
    const auto& cuts0 = cuts_[aig::lit_node(f0)];
    const auto& cuts1 = cuts_[aig::lit_node(f1)];

    std::vector<Cut> candidates;
    for (const Cut& c0 : cuts0) {
      for (const Cut& c1 : cuts1) {
        Cut merged;
        if (!merge_cuts(c0, c1, options_.cut_size, merged)) continue;
        // Root function: AND of the (possibly complemented) fanin
        // functions re-expressed over the merged leaves.
        tt::TruthTable g0 = expand_cut_function(c0.function, c0, merged);
        tt::TruthTable g1 = expand_cut_function(c1.function, c1, merged);
        if (aig::lit_complemented(f0)) g0 = ~g0;
        if (aig::lit_complemented(f1)) g1 = ~g1;
        merged.function = g0 & g1;
        unsigned depth = 0;
        double flow = 1.0;  // this LUT
        for (unsigned v = 0; v < merged.size; ++v) {
          const std::uint32_t leaf = merged.leaves[v];
          depth = std::max(depth, arrival_[leaf] + 1);
          flow += best_flow[leaf] / fanout_estimate[leaf];
        }
        merged.depth = depth;
        merged.area_flow = flow;
        candidates.push_back(std::move(merged));
      }
    }

    // Drop dominated cuts (a cut whose leaves include another cut's).
    std::vector<Cut> kept;
    for (Cut& cut : candidates) {
      bool dominated = false;
      for (const Cut& other : kept) {
        if (other.subset_of(cut)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(kept, [&](const Cut& other) { return cut.subset_of(other); });
      kept.push_back(std::move(cut));
    }

    // Priority order per objective: depth-driven (shallow, then small) or
    // area-driven (lowest area flow, then shallow).
    if (options_.objective == MapObjective::kDepth) {
      std::sort(kept.begin(), kept.end(), [](const Cut& a, const Cut& b) {
        if (a.depth != b.depth) return a.depth < b.depth;
        return a.size < b.size;
      });
    } else {
      std::sort(kept.begin(), kept.end(), [](const Cut& a, const Cut& b) {
        if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
        if (a.depth != b.depth) return a.depth < b.depth;
        return a.size < b.size;
      });
    }
    if (kept.size() > options_.cuts_per_node) kept.resize(options_.cuts_per_node);

    arrival_[node] = kept.empty() ? 0 : kept.front().depth;
    best_flow[node] = kept.empty() ? 0.0 : kept.front().area_flow;
    best_[node] = 0;

    // The trivial cut keeps enumeration complete for fanouts.
    kept.push_back(trivial_cut(node, arrival_[node]));
    cuts_[node] = std::move(kept);
  });
}

}  // namespace simgen::mapping

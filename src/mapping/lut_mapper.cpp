#include "mapping/lut_mapper.hpp"

#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace simgen::mapping {
namespace {

/// Structural-hashing key for emitted LUTs: identical (fanins, function)
/// pairs share one network node, as any production mapper's netlist
/// database would (two AIG nodes whose best cuts coincide must not become
/// two separate LUTs).
struct LutKey {
  std::vector<net::NodeId> fanins;
  std::uint64_t function_hash = 0;

  bool operator==(const LutKey&) const = default;
};

struct LutKeyHash {
  std::size_t operator()(const LutKey& key) const noexcept {
    std::uint64_t h = key.function_hash;
    for (const net::NodeId fanin : key.fanins)
      h = util::splitmix64(h ^ fanin);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

net::Network map_to_luts(const aig::Aig& graph, const MapperOptions& options,
                         MapperStats* stats) {
  const CutSet cuts(graph,
                    CutEnumerationOptions{options.lut_size,
                                          options.cuts_per_node,
                                          options.objective});

  // Mark the AND nodes whose best cuts form the cover: start from the PO
  // drivers and pull in the best-cut leaves transitively. Track polarity
  // usage separately so a node referenced only through complemented POs
  // does not also emit a dangling positive LUT.
  std::vector<bool> required(graph.num_nodes(), false);
  std::vector<bool> used_positive(graph.num_nodes(), false);
  std::vector<std::uint32_t> stack;
  const auto require = [&](std::uint32_t node, bool positive) {
    if (!graph.is_and(node)) return;
    if (positive) used_positive[node] = true;
    if (required[node]) return;
    required[node] = true;
    stack.push_back(node);
  };
  for (std::size_t i = 0; i < graph.num_pos(); ++i) {
    const aig::Lit po = graph.po_lit(i);
    require(aig::lit_node(po), !aig::lit_complemented(po));
  }
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    const Cut& cut = cuts.cuts_of(node)[cuts.best_cut(node)];
    // Cut leaves feed the LUT in positive polarity.
    for (unsigned v = 0; v < cut.size; ++v) require(cut.leaf(v), true);
  }

  net::Network network(graph.name());
  std::vector<net::NodeId> mapped(graph.num_nodes(), net::kNullNode);
  for (std::size_t i = 0; i < graph.num_pis(); ++i)
    mapped[aig::lit_node(graph.pi_lit(i))] = network.add_pi(graph.pi_name(i));

  std::unordered_map<LutKey, net::NodeId, LutKeyHash> strash;
  const auto emit_lut = [&](std::vector<net::NodeId> fanins,
                            const tt::TruthTable& function) {
    LutKey key{fanins, function.hash()};
    const auto it = strash.find(key);
    if (it != strash.end()) return it->second;
    const net::NodeId id = network.add_lut(fanins, function);
    strash.emplace(std::move(key), id);
    return id;
  };

  // Emit one LUT per positively-used node, in topological (id) order;
  // best-cut leaves always precede their root.
  graph.for_each_and([&](std::uint32_t node) {
    if (!required[node] || !used_positive[node]) return;
    const Cut& cut = cuts.cuts_of(node)[cuts.best_cut(node)];
    std::vector<net::NodeId> fanins(cut.size);
    for (unsigned v = 0; v < cut.size; ++v) {
      const std::uint32_t leaf = cut.leaf(v);
      if (graph.is_constant(leaf) && mapped[leaf] == net::kNullNode)
        mapped[leaf] = network.add_constant(false);
      fanins[v] = mapped[leaf];
    }
    mapped[node] = emit_lut(std::move(fanins), cut.function);
  });

  // POs: complemented literals get a dedicated complement LUT over the
  // same cut leaves (no extra logic level), built once per AIG node.
  std::unordered_map<std::uint32_t, net::NodeId> complemented_cache;
  for (std::size_t i = 0; i < graph.num_pos(); ++i) {
    const aig::Lit po = graph.po_lit(i);
    const std::uint32_t node = aig::lit_node(po);
    net::NodeId driver;
    if (graph.is_constant(node)) {
      driver = network.add_constant(aig::lit_complemented(po));
    } else if (!aig::lit_complemented(po)) {
      driver = mapped[node];
    } else if (graph.is_pi(node)) {
      driver = emit_lut({mapped[node]}, tt::TruthTable::not_gate());
    } else {
      const auto it = complemented_cache.find(node);
      if (it != complemented_cache.end()) {
        driver = it->second;
      } else {
        const Cut& cut = cuts.cuts_of(node)[cuts.best_cut(node)];
        std::vector<net::NodeId> fanins(cut.size);
        for (unsigned v = 0; v < cut.size; ++v) fanins[v] = mapped[cut.leaf(v)];
        driver = emit_lut(std::move(fanins), ~cut.function);
        complemented_cache.emplace(node, driver);
      }
    }
    network.add_po(driver, graph.po_name(i));
  }

  if (stats != nullptr) {
    stats->num_luts = network.num_luts();
    stats->depth = network.depth();
  }
  return network;
}

}  // namespace simgen::mapping

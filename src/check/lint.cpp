#include "check/lint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace simgen::check {
namespace {

using net::Network;
using net::NodeId;
using net::NodeKind;

std::string node_label(const Network& network, NodeId id) {
  const auto& name = network.node(id).name;
  std::string label = "node " + std::to_string(id);
  if (!name.empty()) label += " ('" + name + "')";
  return label;
}

// --- Network checks -------------------------------------------------------

/// Fanins must be created strictly before their readers and fanouts
/// strictly after; creation order being topological is what makes every
/// forward pass (levels, simulation, encoding) correct, and it implies
/// acyclicity.
void check_topo_order(const Network& network, LintReport& report) {
  network.for_each_node([&](NodeId id) {
    for (NodeId fanin : network.fanins(id)) {
      if (fanin >= network.num_nodes()) {
        report.add("topo-order", Severity::kError, id,
                   node_label(network, id) + " references nonexistent fanin " +
                       std::to_string(fanin));
      } else if (fanin >= id) {
        report.add("topo-order", Severity::kError, id,
                   node_label(network, id) +
                       " has a fanin that is not topologically earlier: " +
                       std::to_string(fanin));
      }
    }
    for (NodeId fanout : network.fanouts(id)) {
      if (fanout >= network.num_nodes()) {
        report.add("topo-order", Severity::kError, id,
                   node_label(network, id) + " references nonexistent fanout " +
                       std::to_string(fanout));
      } else if (fanout <= id) {
        report.add("topo-order", Severity::kError, id,
                   node_label(network, id) +
                       " has a fanout that is not topologically later: " +
                       std::to_string(fanout));
      }
    }
  });
}

/// Every fanin edge must be mirrored by exactly as many fanout edges.
void check_fanin_fanout_symmetry(const Network& network, LintReport& report) {
  network.for_each_node([&](NodeId id) {
    const auto& fanins = network.fanins(id);
    for (NodeId fanin : fanins) {
      if (fanin >= network.num_nodes()) continue;  // reported by topo-order
      const auto fanouts = network.fanouts(fanin);
      const auto down = std::count(fanouts.begin(), fanouts.end(), id);
      const auto up = std::count(fanins.begin(), fanins.end(), fanin);
      if (down != up)
        report.add("fanin-fanout-symmetry", Severity::kError, id,
                   node_label(network, id) + " lists fanin " +
                       std::to_string(fanin) + " " + std::to_string(up) +
                       "x but appears " + std::to_string(down) +
                       "x in its fanouts");
    }
  });
}

/// Per-kind shape: sources have no fanins, POs read exactly one non-PO
/// driver and drive nothing, and no LUT reads a PO.
void check_kind_shape(const Network& network, LintReport& report) {
  network.for_each_node([&](NodeId id) {
    const auto& node = network.node(id);
    switch (node.kind) {
      case NodeKind::kPi:
      case NodeKind::kConstant:
        if (!node.fanins.empty())
          report.add("kind-shape", Severity::kError, id,
                     node_label(network, id) + " is a source but has fanins");
        break;
      case NodeKind::kPo:
        if (node.fanins.size() != 1)
          report.add("kind-shape", Severity::kError, id,
                     node_label(network, id) + " is a PO with " +
                         std::to_string(node.fanins.size()) +
                         " fanins (expected 1)");
        if (!node.fanouts.empty())
          report.add("kind-shape", Severity::kError, id,
                     node_label(network, id) + " is a PO but has fanouts");
        break;
      case NodeKind::kLut:
        break;
    }
    for (NodeId fanin : node.fanins) {
      if (fanin < network.num_nodes() && network.is_po(fanin))
        report.add("kind-shape", Severity::kError, id,
                   node_label(network, id) + " reads PO " +
                       std::to_string(fanin));
    }
  });
}

/// A LUT's truth table must cover exactly its fanin count, and the
/// table's word storage must match 2^num_vars bits.
void check_lut_arity(const Network& network, LintReport& report) {
  network.for_each_lut([&](NodeId id) {
    const auto& node = network.node(id);
    if (node.function.num_vars() != node.fanins.size())
      report.add("lut-arity", Severity::kError, id,
                 node_label(network, id) + " has " +
                     std::to_string(node.fanins.size()) + " fanins but a " +
                     std::to_string(node.function.num_vars()) +
                     "-input function");
    const std::size_t expected_words =
        std::max<std::size_t>(1, (std::size_t{1} << node.function.num_vars()) / 64);
    if (node.function.num_words() != expected_words)
      report.add("lut-arity", Severity::kError, id,
                 node_label(network, id) + " truth table stores " +
                     std::to_string(node.function.num_words()) +
                     " words (expected " + std::to_string(expected_words) + ")");
  });
}

/// The cached logic levels must agree with a recomputation from the
/// fanin edges (catches stale caches after in-place surgery).
void check_level_monotone(const Network& network, LintReport& report) {
  std::vector<unsigned> expected(network.num_nodes(), 0);
  network.for_each_node([&](NodeId id) {
    const auto& node = network.node(id);
    unsigned level = 0;
    bool valid = true;
    for (NodeId fanin : node.fanins) {
      if (fanin >= id) {
        valid = false;  // reported by topo-order; level undefined
        continue;
      }
      level = std::max(level, expected[fanin] + 1);
    }
    if (node.kind == NodeKind::kPo)
      level = node.fanins.empty() || !valid ? 0 : expected[node.fanins[0]];
    if (!valid) return;
    expected[id] = level;
    if (network.level(id) != level)
      report.add("level-monotone", Severity::kError, id,
                 node_label(network, id) + " reports level " +
                     std::to_string(network.level(id)) + " but recomputation gives " +
                     std::to_string(level));
  });
}

/// The PI / PO index lists must agree exactly with the node kinds.
void check_io_lists(const Network& network, LintReport& report) {
  std::unordered_set<NodeId> pi_set(network.pis().begin(), network.pis().end());
  std::unordered_set<NodeId> po_set(network.pos().begin(), network.pos().end());
  if (pi_set.size() != network.num_pis())
    report.add("io-lists", Severity::kError, net::kNullNode,
               "PI list contains duplicates");
  if (po_set.size() != network.num_pos())
    report.add("io-lists", Severity::kError, net::kNullNode,
               "PO list contains duplicates");
  std::size_t num_pi_nodes = 0;
  std::size_t num_po_nodes = 0;
  network.for_each_node([&](NodeId id) {
    const NodeKind kind = network.node(id).kind;
    if (kind == NodeKind::kPi) {
      ++num_pi_nodes;
      if (!pi_set.contains(id))
        report.add("io-lists", Severity::kError, id,
                   node_label(network, id) + " is a PI missing from the PI list");
    }
    if (kind == NodeKind::kPo) {
      ++num_po_nodes;
      if (!po_set.contains(id))
        report.add("io-lists", Severity::kError, id,
                   node_label(network, id) + " is a PO missing from the PO list");
    }
  });
  if (num_pi_nodes != network.num_pis())
    report.add("io-lists", Severity::kError, net::kNullNode,
               "PI list length disagrees with the number of PI nodes");
  if (num_po_nodes != network.num_pos())
    report.add("io-lists", Severity::kError, net::kNullNode,
               "PO list length disagrees with the number of PO nodes");
}

/// At most one constant node per polarity (add_constant caches them).
void check_const_canonical(const Network& network, LintReport& report) {
  NodeId seen[2] = {net::kNullNode, net::kNullNode};
  network.for_each_node([&](NodeId id) {
    if (!network.is_constant(id)) return;
    const bool value = network.node(id).constant_value;
    if (seen[value] != net::kNullNode)
      report.add("const-canonical", Severity::kError, id,
                 node_label(network, id) + " duplicates constant " +
                     std::to_string(static_cast<int>(value)) + " (node " +
                     std::to_string(seen[value]) + ")");
    else
      seen[value] = id;
  });
}

/// A LUT no PO or other node reads is dead logic; legal (reductions and
/// partial rebuilds produce it) but worth surfacing.
void check_dangling(const Network& network, LintReport& report) {
  network.for_each_lut([&](NodeId id) {
    if (network.fanouts(id).empty())
      report.add("dangling", Severity::kWarning, id,
                 node_label(network, id) + " is a dangling LUT (no fanouts)");
  });
}

/// Repeated fanins are semantically fine but non-canonical: the function
/// has don't-care structure a rewrite should have collapsed.
void check_duplicate_fanin(const Network& network, LintReport& report) {
  network.for_each_lut([&](NodeId id) {
    auto fanins = network.fanins(id);
    std::vector<NodeId> sorted(fanins.begin(), fanins.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      report.add("duplicate-fanin", Severity::kWarning, id,
                 node_label(network, id) + " has duplicate fanins");
  });
}

constexpr NetworkLint kNetworkLints[] = {
    {"topo-order", "fanins precede readers, fanouts follow (acyclicity)",
     check_topo_order},
    {"fanin-fanout-symmetry", "every fanin edge mirrored by a fanout edge",
     check_fanin_fanout_symmetry},
    {"kind-shape", "per-kind fanin/fanout shape (sources, POs)",
     check_kind_shape},
    {"lut-arity", "truth-table arity and word count match the fanin count",
     check_lut_arity},
    {"level-monotone", "cached levels agree with a recomputation",
     check_level_monotone},
    {"io-lists", "PI/PO lists agree exactly with node kinds", check_io_lists},
    {"const-canonical", "at most one constant node per polarity",
     check_const_canonical},
    {"dangling", "no LUT without fanouts (warning)", check_dangling},
    {"duplicate-fanin", "no LUT with repeated fanins (warning)",
     check_duplicate_fanin},
};

}  // namespace

// --- Report ---------------------------------------------------------------

bool LintReport::has_errors() const noexcept {
  return std::any_of(issues.begin(), issues.end(), [](const LintIssue& issue) {
    return issue.severity == Severity::kError;
  });
}

std::size_t LintReport::num_errors() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(issues.begin(), issues.end(), [](const LintIssue& issue) {
        return issue.severity == Severity::kError;
      }));
}

bool LintReport::fired(std::string_view check) const noexcept {
  return std::any_of(issues.begin(), issues.end(), [&](const LintIssue& issue) {
    return issue.check == check;
  });
}

std::string LintReport::to_string() const {
  std::string out;
  for (const LintIssue& issue : issues) {
    out += issue.severity == Severity::kError ? "error[" : "warning[";
    out += issue.check;
    out += "] ";
    out += issue.message;
    out += '\n';
  }
  return out;
}

void LintReport::add(std::string_view check, Severity severity, NodeId node,
                     std::string message) {
  issues.push_back(LintIssue{check, severity, node, std::move(message)});
}

// --- Entry points ---------------------------------------------------------

std::span<const NetworkLint> network_lints() { return kNetworkLints; }

LintReport lint_network(const Network& network) {
  LintReport report;
  for (const NetworkLint& lint : kNetworkLints) lint.run(network, report);
  return report;
}

LintReport lint_network(const Network& network,
                        std::span<const std::string_view> names) {
  LintReport report;
  for (const std::string_view name : names) {
    const auto it =
        std::find_if(std::begin(kNetworkLints), std::end(kNetworkLints),
                     [&](const NetworkLint& lint) { return lint.name == name; });
    if (it == std::end(kNetworkLints)) {
      report.add("registry", Severity::kError, net::kNullNode,
                 "unknown lint check '" + std::string(name) + "'");
      continue;
    }
    it->run(network, report);
  }
  return report;
}

LintReport lint_aig(const aig::Aig& aig) {
  LintReport report;
  std::unordered_map<std::uint64_t, std::uint32_t> pairs;
  pairs.reserve(aig.num_ands());
  aig.for_each_and([&](std::uint32_t node) {
    const aig::Lit f0 = aig.fanin0(node);
    const aig::Lit f1 = aig.fanin1(node);
    if (aig::lit_node(f0) >= node || aig::lit_node(f1) >= node)
      report.add("aig-topo-order", Severity::kError, net::NodeId{node},
                 "AND node " + std::to_string(node) +
                     " has a fanin that is not topologically earlier");
    if (f0 > f1)
      report.add("aig-fanin-order", Severity::kError, net::NodeId{node},
                 "AND node " + std::to_string(node) +
                     " fanins are not canonically ordered");
    if (f0 == f1 || f0 == aig::lit_not(f1) || f0 == aig::kLitFalse ||
        f0 == aig::kLitTrue)
      report.add("aig-trivial-and", Severity::kError, net::NodeId{node},
                 "AND node " + std::to_string(node) +
                     " survives a folding rule (constant/equal/complement fanin)");
    const std::uint64_t key =
        (static_cast<std::uint64_t>(f0) << 32) | static_cast<std::uint64_t>(f1);
    const auto [it, inserted] = pairs.emplace(key, node);
    if (!inserted)
      report.add("aig-strash-canonical", Severity::kError, net::NodeId{node},
                 "AND nodes " + std::to_string(it->second) + " and " +
                     std::to_string(node) + " share the fanin pair (" +
                     std::to_string(f0) + ", " + std::to_string(f1) +
                     "): structural hashing was bypassed");
  });
  for (std::size_t i = 0; i < aig.num_pos(); ++i) {
    if (aig::lit_node(aig.po_lit(i)) >= aig.num_nodes())
      report.add("aig-po-range", Severity::kError,
                 static_cast<net::NodeId>(i),
                 "PO " + std::to_string(i) + " references a nonexistent node");
  }
  return report;
}

LintReport lint_eqclasses(const sim::EquivClasses& classes,
                          const Network& network,
                          const sim::Simulator* simulator) {
  LintReport report;
  std::unordered_set<NodeId> seen;
  for (sim::ClassId c{0}; c < classes.num_classes(); ++c) {
    const auto members = classes.class_members(c);
    if (members.size() < 2)
      report.add("eqclass-min-size", Severity::kError, net::kNullNode,
                 "class " + std::to_string(c) + " has " +
                     std::to_string(members.size()) +
                     " members (singletons must be dropped)");
    for (const NodeId node : members) {
      if (node >= network.num_nodes()) {
        report.add("eqclass-members", Severity::kError, node,
                   "class " + std::to_string(c) +
                       " references nonexistent node " + std::to_string(node));
        continue;
      }
      if (!network.is_lut(node))
        report.add("eqclass-members", Severity::kError, node,
                   "class " + std::to_string(c) + " contains non-LUT " +
                       node_label(network, node));
      if (!seen.insert(node).second)
        report.add("eqclass-disjoint", Severity::kError, node,
                   node_label(network, node) + " appears in more than one class");
    }
    if (simulator != nullptr && !members.empty() &&
        members[0] < network.num_nodes()) {
      const sim::PatternWord signature = simulator->value(members[0]);
      for (const NodeId node : members) {
        if (node >= network.num_nodes()) continue;
        if (simulator->value(node) != signature)
          report.add("eqclass-homogeneous", Severity::kError, node,
                     "class " + std::to_string(c) +
                         " is not signature-homogeneous: " +
                         node_label(network, node) +
                         " disagrees with the representative");
      }
    }
  }
  return report;
}

void debug_verify(const Network& network, const char* context) {
  const LintReport report = lint_network(network);
  if (!report.has_errors()) return;
  std::fprintf(stderr, "lint failed (%s):\n%s", context,
               report.to_string().c_str());
  std::fflush(stderr);
  std::abort();
}

void debug_verify(const sim::EquivClasses& classes, const Network& network,
                  const sim::Simulator* simulator, const char* context) {
  const LintReport report = lint_eqclasses(classes, network, simulator);
  if (!report.has_errors()) return;
  std::fprintf(stderr, "lint failed (%s):\n%s", context,
               report.to_string().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace simgen::check

// Network::check_invariants is implemented here, on top of the lint
// registry, so the network module itself stays below the checker in the
// layering. Linking simgen::check (or simgen::all) provides the symbol.
namespace simgen::net {

void Network::check_invariants() const {
  const check::LintReport report = check::lint_network(*this);
  if (report.has_errors())
    throw std::logic_error("Network::check_invariants failed:\n" +
                           report.to_string());
}

}  // namespace simgen::net

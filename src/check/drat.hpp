/// \file drat.hpp
/// \brief Backward DRAT proof checking for the CDCL solver's answers.
///
/// SAT sweeping merges equivalence classes and proves miter outputs on
/// the strength of UNSAT verdicts alone; a single bad learned clause
/// would silently equate two inequivalent circuits. This module makes
/// every UNSAT answer independently checkable: the solver logs its
/// clause derivations through sat::ProofTracer (a DRAT proof), and the
/// DratChecker re-verifies each derived clause by reverse unit
/// propagation (RUP) against the axioms and earlier derivations — a
/// small, simple trusted core that shares no reasoning code with the
/// solver.
///
/// Checking is *backward*, in the drat-trim style: the target clause is
/// verified against the final database first, then the proof is walked
/// in reverse, undoing each step so every lemma is verified against the
/// exact clause database it was derived from. Unlike drat-trim we do not
/// skip unmarked lemmas: certified derivations are committed as trusted
/// axioms for later incremental calls (checkpointing), so each lemma
/// must be verified exactly once — which also keeps the certification
/// cost of a whole sweeping run linear in the total proof size rather
/// than quadratic in the number of SAT calls.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "sat/proof.hpp"
#include "sat/solver.hpp"

namespace simgen::check {

/// Counters of the certification work performed. Registry-backed view
/// ("drat.*" metrics, see src/obs/metrics.hpp); copies are detached
/// value snapshots.
struct DratStats {
  DratStats() = default;  ///< Detached (all zeros, unregistered).
  explicit DratStats(obs::register_t);

  obs::Counter axioms;            ///< Caller-added clauses mirrored in.
  obs::Counter lemmas;            ///< Solver-derived clauses mirrored in.
  obs::Counter deletions;         ///< Deletion events mirrored in.
  obs::Counter certified_targets; ///< Successful certify() calls.
  obs::Counter failed_targets;    ///< Failed certify() calls.
  obs::Counter checked_lemmas;    ///< Lemmas RUP-verified.
  obs::Counter skipped_lemmas;    ///< Trivial lemmas (tautologies).
  obs::Counter checkpointed_lemmas; ///< Lemmas committed as trusted axioms.
  obs::Counter rup_checks;        ///< Individual RUP derivations run.
  obs::Counter propagations;      ///< Literals propagated in checks.
};

/// Clause database + RUP engine + backward proof checker.
///
/// Feed the solver's event stream through add_axiom / add_lemma /
/// delete_clause (the Certifier below does this automatically), then
/// call certify(target) after each UNSAT verdict with the clause the
/// verdict claims — the negated assumptions, or empty for an outright
/// refutation.
class DratChecker {
 public:
  DratChecker();

  void add_axiom(std::span<const sat::Lit> clause);
  void add_lemma(std::span<const sat::Lit> clause);
  void delete_clause(std::span<const sat::Lit> clause);

  /// Verifies that \p target is entailed by the axioms: checks the
  /// target clause is RUP over the current database, then backward-checks
  /// every pending lemma the derivation (transitively) depends on. On
  /// success the pending derivations become trusted and later certify()
  /// calls only examine newer lemmas. Returns false if any required RUP
  /// check fails or the event stream was inconsistent (e.g. a deletion
  /// of an unknown clause — a corrupted proof).
  [[nodiscard]] bool certify(std::span<const sat::Lit> target);

  [[nodiscard]] const DratStats& stats() const noexcept { return stats_; }

  /// Number of not-yet-certified derivation steps.
  [[nodiscard]] std::size_t pending_steps() const noexcept {
    return journal_.size();
  }

 private:
  using ClauseId = std::uint32_t;
  static constexpr ClauseId kNoClause = ~ClauseId{0};

  struct Clause {
    std::vector<sat::Lit> lits;  ///< Sorted, duplicate-free.
    bool active = false;
    bool tautology = false;   ///< Never activated; trivially redundant.
  };

  struct JournalEntry {
    enum class Kind : std::uint8_t { kAxiom, kLemma, kDelete };
    Kind kind;
    ClauseId clause;
  };

  /// Truth value of a literal under the scratch assignment.
  enum class LValue : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  [[nodiscard]] static std::vector<sat::Lit> normalize(
      std::span<const sat::Lit> clause, bool& tautology);
  [[nodiscard]] static std::uint64_t hash_lits(std::span<const sat::Lit> lits);
  /// Permutation-insensitive equality of a stored clause against a
  /// normalized (sorted, duplicate-free) literal list.
  [[nodiscard]] static bool same_clause(std::span<const sat::Lit> stored,
                                        std::span<const sat::Lit> sorted_lits);

  ClauseId store(std::vector<sat::Lit> lits, bool tautology);
  void activate(ClauseId id);
  void deactivate(ClauseId id);
  void ensure_var(sat::Var var);

  [[nodiscard]] LValue lit_value(sat::Lit lit) const;
  /// Asserts \p lit true; false on conflict with the current assignment.
  bool assign(sat::Lit lit);
  /// Unit-propagates to fixpoint; true iff a conflict was reached.
  bool propagate_to_conflict();
  /// Full RUP check of \p lits: assert the negation, propagate, demand a
  /// conflict. The scratch assignment is fully undone before returning.
  [[nodiscard]] bool rup(std::span<const sat::Lit> lits);
  void undo_assignment();

  std::vector<Clause> db_;
  std::unordered_multimap<std::uint64_t, ClauseId> index_;  ///< Active only.
  std::vector<std::vector<ClauseId>> watches_;  ///< By literal code.
  std::vector<ClauseId> units_;  ///< Active unit clauses (lazily compacted).
  std::size_t empty_active_ = 0;
  bool corrupt_ = false;

  std::vector<JournalEntry> journal_;  ///< Pending, already applied to db_.

  // Scratch assignment for RUP checks.
  std::vector<LValue> values_;  // per var
  std::vector<sat::Lit> trail_;
  std::size_t propagate_head_ = 0;

  DratStats stats_{obs::kRegister};
};

/// Hooks a Solver up to a DratChecker and certifies its UNSAT answers.
///
/// Construct it before loading clauses; after every Result::kUnsat from
/// Solver::solve(assumptions), call certify_unsat(assumptions). The
/// destructor detaches from the solver.
class Certifier final : public sat::ProofTracer {
 public:
  explicit Certifier(sat::Solver& solver) : solver_(&solver) {
    solver.set_proof_tracer(this);
  }
  ~Certifier() override {
    if (solver_ && solver_->proof_tracer() == this)
      solver_->set_proof_tracer(nullptr);
  }
  Certifier(const Certifier&) = delete;
  Certifier& operator=(const Certifier&) = delete;

  void on_axiom(std::span<const sat::Lit> clause) override {
    checker_.add_axiom(clause);
  }
  void on_lemma(std::span<const sat::Lit> clause) override {
    checker_.add_lemma(clause);
  }
  void on_delete(std::span<const sat::Lit> clause) override {
    checker_.delete_clause(clause);
  }

  /// Certifies the solver's last UNSAT answer under \p assumptions by
  /// checking the clause (~a1 | ... | ~an) — the empty clause when no
  /// assumptions were used — against the logged proof.
  [[nodiscard]] bool certify_unsat(std::span<const sat::Lit> assumptions);

  [[nodiscard]] const DratStats& stats() const noexcept {
    return checker_.stats();
  }

 private:
  sat::Solver* solver_;
  DratChecker checker_;
};

/// Replays a recorded proof transcript (see sat::ProofRecorder) and
/// certifies \p target against it — the standalone, non-incremental entry
/// point used by tests and external-proof checking. An empty \p target
/// certifies an outright refutation.
[[nodiscard]] bool check_recorded_proof(std::span<const sat::ProofStep> steps,
                                        std::span<const sat::Lit> target,
                                        DratStats* stats = nullptr);

}  // namespace simgen::check

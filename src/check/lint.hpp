/// \file lint.hpp
/// \brief Structural lint pass: a registry of named self-checks.
///
/// Production equivalence checkers are aggressive self-checkers — a
/// structurally corrupt network or an inconsistent equivalence-class
/// partition turns every downstream answer into noise. This module
/// collects the structural invariants of the core data structures into a
/// registry of named checks that can run standalone (bench/lint_main),
/// inside tests, at sweep phase boundaries in debug builds
/// (SIMGEN_DEBUG_LINT), and behind Network::check_invariants().
///
/// Severities: kError marks genuine corruption (check_invariants throws,
/// debug_verify aborts); kWarning marks legal-but-suspect structure
/// (dangling LUTs, duplicate fanins) that reductions can legitimately
/// produce and is only reported.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "aig/aig.hpp"
#include "network/network.hpp"
#include "sim/eqclass.hpp"
#include "sim/simulator.hpp"
#include "util/dcheck.hpp"

namespace simgen::check {

enum class Severity : std::uint8_t { kWarning, kError };

/// One finding of one check.
struct LintIssue {
  std::string_view check;  ///< Registry name of the check that fired.
  Severity severity = Severity::kError;
  net::NodeId node = net::kNullNode;  ///< Offending node, when applicable.
  std::string message;
};

/// Outcome of a lint run.
struct LintReport {
  std::vector<LintIssue> issues;

  [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
  [[nodiscard]] bool has_errors() const noexcept;
  [[nodiscard]] std::size_t num_errors() const noexcept;
  /// True iff the named check reported at least one issue.
  [[nodiscard]] bool fired(std::string_view check) const noexcept;
  /// One line per issue: "error[topo-order] node 12: ...".
  [[nodiscard]] std::string to_string() const;

  void add(std::string_view check, Severity severity, net::NodeId node,
           std::string message);
};

/// A named structural check over a Network.
struct NetworkLint {
  std::string_view name;
  std::string_view description;
  void (*run)(const net::Network&, LintReport&);
};

/// The full registry of network checks, in execution order.
[[nodiscard]] std::span<const NetworkLint> network_lints();

/// Runs every registered network check.
[[nodiscard]] LintReport lint_network(const net::Network& network);

/// Runs the named subset; an unknown name is itself reported as an error.
[[nodiscard]] LintReport lint_network(const net::Network& network,
                                      std::span<const std::string_view> names);

/// AIG structural-hash canonicity and shape checks: fanins precede their
/// node and are canonically ordered, no constant / equal / complementary
/// fanin pairs survive (folding handles those), and no two AND nodes
/// share the same fanin pair (strashing guarantees uniqueness).
[[nodiscard]] LintReport lint_aig(const aig::Aig& aig);

/// Equivalence-class partition consistency: classes are disjoint, have
/// at least two members, and reference valid LUT nodes of \p network.
/// With a \p simulator (holding fresh values), classes must also be
/// signature-homogeneous: members agree on the last simulated word.
[[nodiscard]] LintReport lint_eqclasses(const sim::EquivClasses& classes,
                                        const net::Network& network,
                                        const sim::Simulator* simulator = nullptr);

/// Lints and aborts with the full report if any error fired. Call sites
/// use SIMGEN_DEBUG_LINT so release builds skip the pass entirely.
void debug_verify(const net::Network& network, const char* context);
void debug_verify(const sim::EquivClasses& classes, const net::Network& network,
                  const sim::Simulator* simulator, const char* context);

}  // namespace simgen::check

#if SIMGEN_DCHECK_ENABLED
/// Runs a full lint pass in debug builds; compiled away in release.
#define SIMGEN_DEBUG_LINT(...) ::simgen::check::debug_verify(__VA_ARGS__)
#else
#define SIMGEN_DEBUG_LINT(...) \
  do {                         \
  } while (false)
#endif

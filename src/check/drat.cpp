#include "check/drat.hpp"

#include <algorithm>

namespace simgen::check {

using sat::Lit;
using sat::Var;

DratStats::DratStats(obs::register_t)
    : axioms("drat.axioms"),
      lemmas("drat.lemmas"),
      deletions("drat.deletions"),
      certified_targets("drat.certified_targets"),
      failed_targets("drat.failed_targets"),
      checked_lemmas("drat.checked_lemmas"),
      skipped_lemmas("drat.skipped_lemmas"),
      checkpointed_lemmas("drat.checkpointed_lemmas"),
      rup_checks("drat.rup_checks"),
      propagations("drat.propagations") {}

DratChecker::DratChecker() = default;

std::vector<Lit> DratChecker::normalize(std::span<const Lit> clause,
                                        bool& tautology) {
  std::vector<Lit> lits(clause.begin(), clause.end());
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  tautology = false;
  for (std::size_t i = 1; i < lits.size(); ++i)
    if (lits[i] == ~lits[i - 1]) tautology = true;
  return lits;
}

std::uint64_t DratChecker::hash_lits(std::span<const Lit> lits) {
  // Order-independent: propagation permutes stored clauses in place to
  // maintain the watch invariant, so by deletion time a clause's literal
  // order no longer matches its activation-time (sorted) order. Summing
  // per-literal mixes keeps the hash stable under permutation.
  std::uint64_t hash = 0x9e3779b97f4a7c15ull + lits.size();
  for (Lit lit : lits) {
    std::uint64_t x = lit.code() + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    hash += x ^ (x >> 31);
  }
  return hash;
}

bool DratChecker::same_clause(std::span<const Lit> stored,
                              std::span<const Lit> sorted_lits) {
  // \p stored may be an arbitrary permutation of its normalized form;
  // \p sorted_lits comes straight from normalize().
  if (stored.size() != sorted_lits.size()) return false;
  std::vector<Lit> copy(stored.begin(), stored.end());
  std::sort(copy.begin(), copy.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  return std::equal(copy.begin(), copy.end(), sorted_lits.begin(),
                    sorted_lits.end());
}

void DratChecker::ensure_var(Var var) {
  if (var < values_.size()) return;
  values_.resize(var + 1, LValue::kUndef);
  if (watches_.size() < 2 * values_.size()) watches_.resize(2 * values_.size());
}

DratChecker::ClauseId DratChecker::store(std::vector<Lit> lits, bool tautology) {
  const auto id = static_cast<ClauseId>(db_.size());
  for (Lit lit : lits) ensure_var(lit.var());
  db_.push_back(Clause{std::move(lits), /*active=*/false, tautology});
  return id;
}

void DratChecker::activate(ClauseId id) {
  Clause& clause = db_[id];
  if (clause.tautology || clause.active) return;
  clause.active = true;
  index_.emplace(hash_lits(clause.lits), id);
  if (clause.lits.empty()) {
    ++empty_active_;
  } else if (clause.lits.size() == 1) {
    units_.push_back(id);
  } else {
    watches_[clause.lits[0].code()].push_back(id);
    watches_[clause.lits[1].code()].push_back(id);
  }
}

void DratChecker::deactivate(ClauseId id) {
  Clause& clause = db_[id];
  if (clause.tautology || !clause.active) return;
  clause.active = false;
  const auto [begin, end] = index_.equal_range(hash_lits(clause.lits));
  for (auto it = begin; it != end; ++it) {
    if (it->second == id) {
      index_.erase(it);
      break;
    }
  }
  if (clause.lits.empty()) {
    --empty_active_;
  } else if (clause.lits.size() == 1) {
    // Lazily removed: unit scans skip inactive entries.
  } else {
    for (int w = 0; w < 2; ++w) {
      auto& list = watches_[clause.lits[w].code()];
      const auto it = std::find(list.begin(), list.end(), id);
      if (it != list.end()) {
        *it = list.back();
        list.pop_back();
      }
    }
  }
}

void DratChecker::add_axiom(std::span<const Lit> clause) {
  stats_.axioms.inc();
  bool tautology = false;
  const ClauseId id = store(normalize(clause, tautology), tautology);
  activate(id);
  journal_.push_back({JournalEntry::Kind::kAxiom, id});
}

void DratChecker::add_lemma(std::span<const Lit> clause) {
  stats_.lemmas.inc();
  bool tautology = false;
  const ClauseId id = store(normalize(clause, tautology), tautology);
  activate(id);
  journal_.push_back({JournalEntry::Kind::kLemma, id});
}

void DratChecker::delete_clause(std::span<const Lit> clause) {
  stats_.deletions.inc();
  bool tautology = false;
  const std::vector<Lit> lits = normalize(clause, tautology);
  const auto [begin, end] = index_.equal_range(hash_lits(lits));
  for (auto it = begin; it != end; ++it) {
    const ClauseId id = it->second;
    if (same_clause(db_[id].lits, lits)) {
      deactivate(id);
      journal_.push_back({JournalEntry::Kind::kDelete, id});
      return;
    }
  }
  // Deleting a clause that is not in the database: corrupted proof.
  corrupt_ = true;
}

DratChecker::LValue DratChecker::lit_value(Lit lit) const {
  if (lit.var() >= values_.size()) return LValue::kUndef;
  const LValue v = values_[lit.var()];
  if (v == LValue::kUndef) return LValue::kUndef;
  return (v == LValue::kTrue) != lit.negated() ? LValue::kTrue : LValue::kFalse;
}

bool DratChecker::assign(Lit lit) {
  const LValue v = lit_value(lit);
  if (v == LValue::kTrue) return true;
  if (v == LValue::kFalse) return false;
  ensure_var(lit.var());
  values_[lit.var()] = lit.negated() ? LValue::kFalse : LValue::kTrue;
  trail_.push_back(lit);
  return true;
}

bool DratChecker::propagate_to_conflict() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    stats_.propagations.inc();
    // Clauses watching ~p just lost that watch literal.
    auto& watch_list = watches_[(~p).code()];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const ClauseId id = watch_list[i];
      auto& lits = db_[id].lits;
      // Put the falsified literal at position 1.
      if (lits[0] == ~p) std::swap(lits[0], lits[1]);
      if (lit_value(lits[0]) == LValue::kTrue) {
        watch_list[keep++] = id;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (lit_value(lits[k]) != LValue::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[lits[1].code()].push_back(id);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watch_list[keep++] = id;
      if (!assign(lits[0])) {
        for (std::size_t k = i + 1; k < watch_list.size(); ++k)
          watch_list[keep++] = watch_list[k];
        watch_list.resize(keep);
        return true;
      }
    }
    watch_list.resize(keep);
  }
  return false;
}

void DratChecker::undo_assignment() {
  for (Lit lit : trail_) values_[lit.var()] = LValue::kUndef;
  trail_.clear();
  propagate_head_ = 0;
}

bool DratChecker::rup(std::span<const Lit> lits) {
  stats_.rup_checks.inc();
  // An active empty clause refutes everything.
  if (empty_active_ > 0) return true;

  bool conflict = false;
  // Assert the negation of the candidate clause.
  for (Lit lit : lits) {
    if (!assign(~lit)) {
      // ~lit already false means lit and ~lit both occur: tautology,
      // trivially entailed.
      undo_assignment();
      return true;
    }
  }
  // Seed with the active unit clauses, then propagate.
  for (const ClauseId id : units_) {
    if (!db_[id].active) continue;
    if (!assign(db_[id].lits[0])) {
      conflict = true;
      break;
    }
  }
  if (!conflict) conflict = propagate_to_conflict();
  undo_assignment();
  return conflict;
}

bool DratChecker::certify(std::span<const Lit> target) {
  if (corrupt_) {
    stats_.failed_targets.inc();
    return false;
  }
  bool tautology = false;
  const std::vector<Lit> target_lits = normalize(target, tautology);
  bool ok = tautology || rup(target_lits);

  // Backward pass: undo each pending step in reverse so every lemma is
  // RUP-checked against exactly the database it was derived from. All
  // lemmas are checked (not only a marked core) because on success they
  // are committed as trusted axioms for later incremental certify calls.
  for (std::size_t i = journal_.size(); i-- > 0;) {
    const JournalEntry entry = journal_[i];
    switch (entry.kind) {
      case JournalEntry::Kind::kAxiom:
        deactivate(entry.clause);
        break;
      case JournalEntry::Kind::kLemma: {
        deactivate(entry.clause);
        const Clause& clause = db_[entry.clause];
        if (clause.tautology) {
          stats_.skipped_lemmas.inc();
        } else if (ok) {  // after a failure, only unwind state
          if (rup(clause.lits)) {
            stats_.checked_lemmas.inc();
          } else {
            ok = false;
          }
        }
        break;
      }
      case JournalEntry::Kind::kDelete:
        activate(entry.clause);
        break;
    }
  }

  // Re-apply forward: the database returns to its post-proof state and
  // the pending steps become trusted.
  for (const JournalEntry entry : journal_) {
    switch (entry.kind) {
      case JournalEntry::Kind::kLemma:
        if (ok) stats_.checkpointed_lemmas.inc();
        [[fallthrough]];
      case JournalEntry::Kind::kAxiom:
        activate(entry.clause);
        break;
      case JournalEntry::Kind::kDelete:
        deactivate(entry.clause);
        break;
    }
  }
  journal_.clear();

  // Compact the lazily maintained unit list.
  std::erase_if(units_, [&](ClauseId id) { return !db_[id].active; });
  std::sort(units_.begin(), units_.end());
  units_.erase(std::unique(units_.begin(), units_.end()), units_.end());

  if (ok)
    stats_.certified_targets.inc();
  else
    stats_.failed_targets.inc();
  return ok;
}

bool Certifier::certify_unsat(std::span<const Lit> assumptions) {
  std::vector<Lit> target;
  target.reserve(assumptions.size());
  for (Lit lit : assumptions) target.push_back(~lit);
  return checker_.certify(target);
}

bool check_recorded_proof(std::span<const sat::ProofStep> steps,
                          std::span<const Lit> target, DratStats* stats) {
  DratChecker checker;
  for (const sat::ProofStep& step : steps) {
    switch (step.kind) {
      case sat::ProofStep::Kind::kAxiom:
        checker.add_axiom(step.clause);
        break;
      case sat::ProofStep::Kind::kLemma:
        checker.add_lemma(step.clause);
        break;
      case sat::ProofStep::Kind::kDelete:
        checker.delete_clause(step.clause);
        break;
    }
  }
  const bool ok = checker.certify(target);
  if (stats != nullptr) *stats = checker.stats();
  return ok;
}

}  // namespace simgen::check

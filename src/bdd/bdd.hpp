/// \file bdd.hpp
/// \brief Reduced Ordered Binary Decision Diagrams.
///
/// The classical verification backend (paper Section 2.2: CEC tools "were
/// initially based on BDDs" before memory blow-up pushed the field to
/// SAT). This package provides canonical ROBDDs with a unique table and
/// an ITE computed-table, plus network-to-BDD construction, so sweeping
/// and CEC can run against a BDD oracle — and so the SAT-vs-BDD trade-off
/// the paper cites can be measured (see bench/ablation_bdd_vs_sat.cpp:
/// adders stay small, multipliers explode).
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace simgen::bdd {

/// Handle to a BDD node inside a BddManager. Canonical: two functions are
/// equal iff their refs are equal (within one manager).
using NodeRef = std::uint32_t;

inline constexpr NodeRef kFalse = 0;
inline constexpr NodeRef kTrue = 1;

/// Thrown when a construction exceeds the manager's node limit — the
/// "memory consumption" failure mode that motivated SAT-based CEC.
struct BddLimitExceeded : std::exception {
  const char* what() const noexcept override {
    return "BDD node limit exceeded";
  }
};

/// ROBDD manager with a fixed variable order (variable 0 at the top).
class BddManager {
 public:
  /// \p num_vars variables; \p node_limit bounds live nodes (0 = 2^31).
  explicit BddManager(unsigned num_vars, std::size_t node_limit = 0);

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }

  [[nodiscard]] NodeRef constant(bool value) const noexcept {
    return value ? kTrue : kFalse;
  }
  /// The projection function of \p var.
  [[nodiscard]] NodeRef variable(unsigned var);

  /// If-then-else — the universal connective; all operations reduce to it.
  NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

  NodeRef apply_not(NodeRef f) { return ite(f, kFalse, kTrue); }
  NodeRef apply_and(NodeRef f, NodeRef g) { return ite(f, g, kFalse); }
  NodeRef apply_or(NodeRef f, NodeRef g) { return ite(f, kTrue, g); }
  NodeRef apply_xor(NodeRef f, NodeRef g) { return ite(f, apply_not(g), g); }

  /// Evaluates \p f on a complete assignment (bit i of \p input_bits =
  /// value of variable i).
  [[nodiscard]] bool evaluate(NodeRef f, std::uint64_t input_bits) const;

  /// Number of satisfying assignments of \p f over all num_vars inputs.
  [[nodiscard]] double sat_count(NodeRef f);

  /// One satisfying assignment of \p f (requires f != kFalse); variables
  /// not on the chosen path are returned as 0.
  [[nodiscard]] std::uint64_t one_sat(NodeRef f) const;

  /// Number of distinct DAG nodes reachable from \p f (constants excluded).
  [[nodiscard]] std::size_t dag_size(NodeRef f) const;

  /// Top variable of a node (num_vars() for constants).
  [[nodiscard]] unsigned top_var(NodeRef f) const { return nodes_[f].var; }
  [[nodiscard]] NodeRef low(NodeRef f) const { return nodes_[f].low; }
  [[nodiscard]] NodeRef high(NodeRef f) const { return nodes_[f].high; }

 private:
  struct Node {
    unsigned var;
    NodeRef low;
    NodeRef high;
  };

  struct Key {
    unsigned var;
    NodeRef low;
    NodeRef high;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };
  struct IteKey {
    NodeRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& key) const noexcept;
  };

  NodeRef make_node(unsigned var, NodeRef low, NodeRef high);

  unsigned num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  std::vector<NodeRef> var_nodes_;
  std::unordered_map<Key, NodeRef, KeyHash> unique_;
  std::unordered_map<IteKey, NodeRef, IteKeyHash> ite_cache_;
  std::unordered_map<NodeRef, double> count_cache_;
};

}  // namespace simgen::bdd

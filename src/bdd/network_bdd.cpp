#include "bdd/network_bdd.hpp"

#include <stdexcept>

#include "tt/isop.hpp"

namespace simgen::bdd {

NetworkBdds::NetworkBdds(BddManager& manager, const net::Network& network,
                         std::span<const unsigned> pi_to_var)
    : manager_(manager),
      network_(network),
      cache_(network.num_nodes(), kFalse),
      built_(network.num_nodes(), false) {
  if (manager.num_vars() < network.num_pis())
    throw std::invalid_argument("NetworkBdds: manager has too few variables");
  if (pi_to_var.empty()) {
    pi_to_var_.resize(network.num_pis());
    for (std::size_t i = 0; i < network.num_pis(); ++i)
      pi_to_var_[i] = static_cast<unsigned>(i);
  } else {
    if (pi_to_var.size() != network.num_pis())
      throw std::invalid_argument("NetworkBdds: pi_to_var size mismatch");
    pi_to_var_.assign(pi_to_var.begin(), pi_to_var.end());
  }
}

NodeRef NetworkBdds::build(net::NodeId node) {
  if (built_[node]) return cache_[node];
  // Iterative post-order over the fanin cone.
  std::vector<std::pair<net::NodeId, std::size_t>> stack;
  stack.emplace_back(node, 0);
  while (!stack.empty()) {
    auto& [current, next_fanin] = stack.back();
    if (built_[current]) {
      stack.pop_back();
      continue;
    }
    const auto fanins = network_.fanins(current);
    if (next_fanin < fanins.size()) {
      const net::NodeId fanin = fanins[next_fanin++];
      if (!built_[fanin]) stack.emplace_back(fanin, 0);
      continue;
    }

    const net::Node& data = network_.node(current);
    NodeRef result = kFalse;
    switch (data.kind) {
      case net::NodeKind::kPi: {
        // PI index = position in the PI list, then through the order map.
        std::size_t index = 0;
        while (network_.pis()[index] != current) ++index;
        result = manager_.variable(pi_to_var_[index]);
        break;
      }
      case net::NodeKind::kConstant:
        result = manager_.constant(data.constant_value);
        break;
      case net::NodeKind::kPo:
        result = cache_[data.fanins[0]];
        break;
      case net::NodeKind::kLut: {
        // OR of cube BDDs over the fanin BDDs (ISOP keeps the operation
        // count near-minimal for typical LUT functions).
        result = manager_.constant(false);
        for (const tt::Cube& cube : tt::isop(data.function).cubes) {
          NodeRef term = manager_.constant(true);
          for (unsigned v = 0; v < data.fanins.size(); ++v) {
            if (!cube.has_literal(v)) continue;
            NodeRef input = cache_[data.fanins[v]];
            if (!cube.literal_value(v)) input = manager_.apply_not(input);
            term = manager_.apply_and(term, input);
          }
          result = manager_.apply_or(result, term);
        }
        break;
      }
    }
    cache_[current] = result;
    built_[current] = true;
    stack.pop_back();
  }
  return cache_[node];
}

std::vector<unsigned> interleaved_order(std::size_t num_pis, unsigned width) {
  std::vector<unsigned> order(num_pis);
  for (std::size_t i = 0; i < num_pis; ++i) {
    if (i < width)
      order[i] = static_cast<unsigned>(2 * i);  // a_i
    else if (i < 2 * static_cast<std::size_t>(width))
      order[i] = static_cast<unsigned>(2 * (i - width) + 1);  // b_i
    else
      order[i] = static_cast<unsigned>(i);  // carry-in etc. stay put
  }
  return order;
}

BddCecResult bdd_check_equivalence(const net::Network& a, const net::Network& b,
                                   std::size_t node_limit,
                                   std::span<const unsigned> pi_to_var) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos())
    throw std::invalid_argument("bdd_check_equivalence: interface mismatch");
  BddCecResult result;
  BddManager manager(static_cast<unsigned>(a.num_pis()), node_limit);
  NetworkBdds bdds_a(manager, a, pi_to_var);
  NetworkBdds bdds_b(manager, b, pi_to_var);
  try {
    for (std::size_t i = 0; i < a.num_pos(); ++i) {
      const NodeRef fa = bdds_a.build(a.pos()[i]);
      const NodeRef fb = bdds_b.build(b.pos()[i]);
      if (fa == fb) continue;  // canonicity: equal refs <=> equal functions
      // Different: extract a witness from fa xor fb.
      const NodeRef diff = manager.apply_xor(fa, fb);
      const std::uint64_t witness = manager.one_sat(diff);
      result.counterexample.resize(a.num_pis());
      for (std::size_t v = 0; v < a.num_pis(); ++v)
        result.counterexample[v] = (witness >> v) & 1u;
      result.equivalent = false;
      result.completed = true;
      result.peak_nodes = manager.num_nodes();
      return result;
    }
    result.equivalent = true;
    result.completed = true;
  } catch (const BddLimitExceeded&) {
    result.completed = false;
  }
  result.peak_nodes = manager.num_nodes();
  return result;
}

std::optional<bool> bdd_check_pair(const net::Network& network, net::NodeId x,
                                   net::NodeId y, std::size_t node_limit) {
  BddManager manager(static_cast<unsigned>(network.num_pis()), node_limit);
  NetworkBdds bdds(manager, network);
  try {
    return bdds.build(x) == bdds.build(y);
  } catch (const BddLimitExceeded&) {
    return std::nullopt;
  }
}

}  // namespace simgen::bdd

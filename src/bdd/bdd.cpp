#include "bdd/bdd.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "util/rng.hpp"

namespace simgen::bdd {

std::size_t BddManager::KeyHash::operator()(const Key& key) const noexcept {
  std::uint64_t h = util::splitmix64(key.var);
  h = util::splitmix64(h ^ key.low);
  h = util::splitmix64(h ^ key.high);
  return static_cast<std::size_t>(h);
}

std::size_t BddManager::IteKeyHash::operator()(const IteKey& key) const noexcept {
  std::uint64_t h = util::splitmix64(key.f);
  h = util::splitmix64(h ^ key.g);
  h = util::splitmix64(h ^ key.h);
  return static_cast<std::size_t>(h);
}

BddManager::BddManager(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars),
      node_limit_(node_limit == 0 ? (std::size_t{1} << 31) : node_limit) {
  // Constants live at an imaginary level below every variable.
  nodes_.push_back(Node{num_vars_, kFalse, kFalse});  // kFalse
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});    // kTrue
  var_nodes_.assign(num_vars_, kFalse);
}

NodeRef BddManager::variable(unsigned var) {
  if (var >= num_vars_) throw std::invalid_argument("BddManager: var out of range");
  if (var_nodes_[var] == kFalse)
    var_nodes_[var] = make_node(var, kFalse, kTrue);
  return var_nodes_[var];
}

NodeRef BddManager::make_node(unsigned var, NodeRef low, NodeRef high) {
  if (low == high) return low;  // reduction rule
  const Key key{var, low, high};
  if (const auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) throw BddLimitExceeded{};
  const auto ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back(Node{var, low, high});
  unique_.emplace(key, ref);
  return ref;
}

NodeRef BddManager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const IteKey key{f, g, h};
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end())
    return it->second;

  const unsigned top =
      std::min({nodes_[f].var, nodes_[g].var, nodes_[h].var});
  const auto cofactor = [&](NodeRef x, bool positive) {
    if (nodes_[x].var != top) return x;
    return positive ? nodes_[x].high : nodes_[x].low;
  };
  const NodeRef low = ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const NodeRef high = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const NodeRef result = make_node(top, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

bool BddManager::evaluate(NodeRef f, std::uint64_t input_bits) const {
  while (f != kFalse && f != kTrue) {
    const Node& node = nodes_[f];
    f = ((input_bits >> node.var) & 1u) ? node.high : node.low;
  }
  return f == kTrue;
}

double BddManager::sat_count(NodeRef f) {
  // p(f) = fraction of assignments satisfying f; memoized per ref.
  if (f == kFalse) return 0.0;
  if (f == kTrue) {
    double total = 1.0;
    for (unsigned i = 0; i < num_vars_; ++i) total *= 2.0;
    return total;
  }
  const std::function<double(NodeRef)> probability = [&](NodeRef x) -> double {
    if (x == kFalse) return 0.0;
    if (x == kTrue) return 1.0;
    if (const auto it = count_cache_.find(x); it != count_cache_.end())
      return it->second;
    const double p =
        0.5 * probability(nodes_[x].low) + 0.5 * probability(nodes_[x].high);
    count_cache_.emplace(x, p);
    return p;
  };
  double total = probability(f);
  for (unsigned i = 0; i < num_vars_; ++i) total *= 2.0;
  return total;
}

std::uint64_t BddManager::one_sat(NodeRef f) const {
  if (f == kFalse)
    throw std::invalid_argument("BddManager::one_sat: function is constant 0");
  std::uint64_t assignment = 0;
  while (f != kTrue) {
    const Node& node = nodes_[f];
    // In a reduced BDD every internal node reaches kTrue through at least
    // one branch; prefer the high branch when it is live.
    if (node.high != kFalse) {
      assignment |= std::uint64_t{1} << node.var;
      f = node.high;
    } else {
      f = node.low;
    }
  }
  return assignment;
}

std::size_t BddManager::dag_size(NodeRef f) const {
  if (f == kFalse || f == kTrue) return 0;
  std::vector<NodeRef> stack{f};
  std::unordered_map<NodeRef, bool> seen;
  seen.emplace(f, true);
  std::size_t count = 0;
  while (!stack.empty()) {
    const NodeRef node = stack.back();
    stack.pop_back();
    ++count;
    for (const NodeRef child : {nodes_[node].low, nodes_[node].high}) {
      if (child == kFalse || child == kTrue) continue;
      if (seen.emplace(child, true).second) stack.push_back(child);
    }
  }
  return count;
}

}  // namespace simgen::bdd

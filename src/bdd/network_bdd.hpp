/// \file network_bdd.hpp
/// \brief LUT-network to BDD construction and BDD-based equivalence
/// checking — the pre-SAT verification flow of the paper's Section 2.2.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/network.hpp"

namespace simgen::bdd {

/// Builds BDDs for network nodes on demand. By default PI i maps to BDD
/// variable i; \p pi_to_var overrides the order (the decisive knob for
/// BDD size — e.g. interleaving operand bits keeps adder BDDs linear
/// where the block order is exponential). Construction is memoized per
/// node; a BddLimitExceeded escape from the manager aborts the build
/// (the classical BDD failure mode).
class NetworkBdds {
 public:
  NetworkBdds(BddManager& manager, const net::Network& network,
              std::span<const unsigned> pi_to_var = {});

  /// BDD of \p node's function in terms of the PIs.
  NodeRef build(net::NodeId node);

  [[nodiscard]] BddManager& manager() noexcept { return manager_; }

 private:
  BddManager& manager_;
  const net::Network& network_;
  std::vector<unsigned> pi_to_var_;
  std::vector<NodeRef> cache_;
  std::vector<bool> built_;
};

struct BddCecResult {
  bool equivalent = false;
  bool completed = false;  ///< False if the node limit was exceeded.
  std::vector<bool> counterexample;
  std::size_t peak_nodes = 0;  ///< Manager size after the check.
};

/// BDD-based CEC of two networks with matching interfaces: builds the
/// output BDDs under the shared PI order and compares refs (canonical).
/// \p node_limit bounds the manager; on blow-up the result reports
/// completed = false instead of consuming unbounded memory.
/// \p pi_to_var optionally reorders the variables (shared by both sides).
[[nodiscard]] BddCecResult bdd_check_equivalence(
    const net::Network& a, const net::Network& b,
    std::size_t node_limit = 1u << 22, std::span<const unsigned> pi_to_var = {});

/// An interleaved order for dual-operand arithmetic interfaces
/// (a0,b0,a1,b1,...): maps PI i < 2*width to the interleaved slot and any
/// trailing PIs (carry-in etc.) to the top. The order that keeps adder
/// and comparator BDDs linear.
[[nodiscard]] std::vector<unsigned> interleaved_order(std::size_t num_pis,
                                                      unsigned width);

/// BDD verdict for a single candidate node pair inside one network:
/// true = functionally equivalent. std::nullopt if the limit is hit.
[[nodiscard]] std::optional<bool> bdd_check_pair(const net::Network& network,
                                                 net::NodeId x, net::NodeId y,
                                                 std::size_t node_limit = 1u << 22);

}  // namespace simgen::bdd

/// \file putontop.hpp
/// \brief Network stacking (ABC's &putontop), paper Section 6.4.
///
/// To study SimGen's behaviour at prolonged SAT runtimes, the paper grows
/// each benchmark by stacking copies of itself: the POs of a bottom copy
/// drive the PIs of the copy above it. Where the counts differ, surplus
/// bottom POs become POs of the stack and surplus top PIs become fresh
/// stack PIs.
#pragma once

#include "aig/aig.hpp"

namespace simgen::aig {

/// Stacks \p copies instances of \p base (copies >= 1). The result's name
/// is "<base>_x<copies>". Structural hashing is re-applied while copying,
/// so the stack is a well-formed AIG.
[[nodiscard]] Aig put_on_top(const Aig& base, unsigned copies);

}  // namespace simgen::aig

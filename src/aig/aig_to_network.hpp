/// \file aig_to_network.hpp
/// \brief Direct AIG -> LUT-network conversion (one 2-LUT per AND).
///
/// This is the unmapped reference translation: it preserves the AIG
/// structure exactly, with inverters folded into 2-input LUT functions.
/// The LUT mapper (src/mapping) is the production path; this conversion
/// exists for testing (a mapped network must be equivalent to this one)
/// and for flows that want to sweep the raw AIG.
#pragma once

#include "aig/aig.hpp"
#include "network/network.hpp"

namespace simgen::aig {

/// Converts \p aig into a network of 2-input LUTs. PO complement bits are
/// absorbed into inverter LUTs where needed.
[[nodiscard]] net::Network to_network(const Aig& aig);

}  // namespace simgen::aig

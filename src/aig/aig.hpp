/// \file aig.hpp
/// \brief And-Inverter Graphs with structural hashing.
///
/// The AIG is the substrate the benchmark generator emits and the LUT
/// mapper consumes, mirroring the paper's methodology: benchmarks enter as
/// gate-level netlists (here: generated AIGs), are mapped to 6-LUTs
/// ("if -K 6" in ABC), and the LUT network is what the sweeping flow and
/// SimGen operate on. The stacking transform of Section 6.4 (&putontop)
/// also operates at the AIG level.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace simgen::aig {

/// Literal: 2*node + complement bit. Node 0 is the constant-false source,
/// so literal 0 is constant 0 and literal 1 is constant 1.
using Lit = std::uint32_t;

inline constexpr Lit kLitFalse = 0;
inline constexpr Lit kLitTrue = 1;

[[nodiscard]] constexpr Lit make_lit(std::uint32_t node, bool complemented) noexcept {
  return (node << 1) | static_cast<Lit>(complemented);
}
[[nodiscard]] constexpr std::uint32_t lit_node(Lit lit) noexcept { return lit >> 1; }
[[nodiscard]] constexpr bool lit_complemented(Lit lit) noexcept { return lit & 1u; }
[[nodiscard]] constexpr Lit lit_not(Lit lit) noexcept { return lit ^ 1u; }

/// Structurally hashed AIG.
///
/// Nodes are indexed densely: node 0 is the constant, PIs follow, then AND
/// nodes in creation (topological) order. `and2` performs constant folding,
/// the trivial-operand rules, and structural hashing, so building the same
/// expression twice yields the same literal — this is what creates honest
/// work for SAT sweeping when the benchmark generator injects redundancy
/// that strashing alone cannot see (e.g. De Morgan-rewritten duplicates).
class Aig {
 public:
  Aig() = default;
  explicit Aig(std::string name) : name_(std::move(name)) {}

  /// Adds a primary input; returns its (positive) literal.
  Lit add_pi(std::string name = {});

  /// AND of two literals with folding and strashing.
  Lit and2(Lit a, Lit b);

  // Derived connectives, all built from and2/lit_not.
  Lit or2(Lit a, Lit b) { return lit_not(and2(lit_not(a), lit_not(b))); }
  Lit nand2(Lit a, Lit b) { return lit_not(and2(a, b)); }
  Lit nor2(Lit a, Lit b) { return and2(lit_not(a), lit_not(b)); }
  Lit xor2(Lit a, Lit b) {
    return lit_not(and2(lit_not(and2(a, lit_not(b))), lit_not(and2(lit_not(a), b))));
  }
  Lit xnor2(Lit a, Lit b) { return lit_not(xor2(a, b)); }
  /// if s then t else e.
  Lit mux(Lit s, Lit t, Lit e) {
    return lit_not(and2(lit_not(and2(s, t)), lit_not(and2(lit_not(s), e))));
  }
  Lit maj3(Lit a, Lit b, Lit c) {
    return or2(and2(a, b), or2(and2(a, c), and2(b, c)));
  }

  /// Registers \p lit as a primary output.
  void add_po(Lit lit, std::string name = {});

  [[nodiscard]] std::size_t num_nodes() const noexcept { return fanin0_.size(); }
  [[nodiscard]] std::size_t num_pis() const noexcept { return num_pis_; }
  [[nodiscard]] std::size_t num_pos() const noexcept { return pos_.size(); }
  [[nodiscard]] std::size_t num_ands() const noexcept {
    return num_nodes() - 1 - num_pis_;
  }

  /// Literal of the i-th primary input.
  [[nodiscard]] Lit pi_lit(std::size_t index) const { return make_lit(pi_nodes_[index], false); }
  /// Literal of the i-th primary output.
  [[nodiscard]] Lit po_lit(std::size_t index) const { return pos_[index]; }

  [[nodiscard]] bool is_pi(std::uint32_t node) const noexcept {
    return node >= 1 && node <= num_pis_;
  }
  [[nodiscard]] bool is_and(std::uint32_t node) const noexcept {
    return node > num_pis_ && node < num_nodes();
  }
  [[nodiscard]] bool is_constant(std::uint32_t node) const noexcept { return node == 0; }

  /// Fanin literals of an AND node.
  [[nodiscard]] Lit fanin0(std::uint32_t node) const { return fanin0_[node]; }
  [[nodiscard]] Lit fanin1(std::uint32_t node) const { return fanin1_[node]; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const std::string& pi_name(std::size_t index) const {
    return pi_names_[index];
  }
  [[nodiscard]] const std::string& po_name(std::size_t index) const {
    return po_names_[index];
  }

  /// Logic level of a node (PIs and the constant are level 0).
  [[nodiscard]] unsigned level(std::uint32_t node) const;
  [[nodiscard]] unsigned depth() const;

  /// Calls fn(node) for every AND node in topological order.
  template <typename Fn>
  void for_each_and(Fn&& fn) const {
    for (std::uint32_t node = static_cast<std::uint32_t>(num_pis_) + 1;
         node < num_nodes(); ++node)
      fn(node);
  }

  /// Word-parallel simulation: \p pi_words[i] supplies 64 patterns for
  /// input i; returns one word per PO. Used to cross-check transforms.
  [[nodiscard]] std::vector<std::uint64_t> simulate_words(
      std::span<const std::uint64_t> pi_words) const;

  /// Structural invariant check; throws std::logic_error on breach.
  void check_invariants() const;

 private:
  struct PairHash {
    std::size_t operator()(const std::pair<Lit, Lit>& p) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(p.first) << 32) | p.second);
    }
  };

  std::string name_;
  // Node storage: parallel arrays indexed by node id. Entries for the
  // constant and PIs are unused sentinels.
  std::vector<Lit> fanin0_{0};
  std::vector<Lit> fanin1_{0};
  std::size_t num_pis_ = 0;
  std::vector<std::uint32_t> pi_nodes_;
  std::vector<Lit> pos_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<std::pair<Lit, Lit>, std::uint32_t, PairHash> strash_;
  mutable std::vector<unsigned> levels_;
};

}  // namespace simgen::aig

#include "aig/aig.hpp"

#include <algorithm>
#include <stdexcept>

namespace simgen::aig {

Lit Aig::add_pi(std::string name) {
  if (num_ands() != 0)
    throw std::logic_error("Aig::add_pi: all PIs must be added before AND nodes");
  const auto node = static_cast<std::uint32_t>(num_nodes());
  fanin0_.push_back(0);
  fanin1_.push_back(0);
  ++num_pis_;
  pi_nodes_.push_back(node);
  pi_names_.push_back(std::move(name));
  levels_.clear();
  return make_lit(node, false);
}

Lit Aig::and2(Lit a, Lit b) {
  if (lit_node(a) >= num_nodes() || lit_node(b) >= num_nodes())
    throw std::invalid_argument("Aig::and2: fanin literal out of range");
  // Constant folding and the trivial-operand rules.
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;
  // Structural hashing.
  const auto key = std::make_pair(a, b);
  if (const auto it = strash_.find(key); it != strash_.end())
    return make_lit(it->second, false);
  const auto node = static_cast<std::uint32_t>(num_nodes());
  fanin0_.push_back(a);
  fanin1_.push_back(b);
  strash_.emplace(key, node);
  levels_.clear();
  return make_lit(node, false);
}

void Aig::add_po(Lit lit, std::string name) {
  if (lit_node(lit) >= num_nodes())
    throw std::invalid_argument("Aig::add_po: literal out of range");
  pos_.push_back(lit);
  po_names_.push_back(std::move(name));
}

unsigned Aig::level(std::uint32_t node) const {
  if (levels_.size() != num_nodes()) {
    levels_.assign(num_nodes(), 0);
    for (std::uint32_t n = static_cast<std::uint32_t>(num_pis_) + 1; n < num_nodes(); ++n)
      levels_[n] = 1 + std::max(levels_[lit_node(fanin0_[n])],
                                levels_[lit_node(fanin1_[n])]);
  }
  return levels_[node];
}

unsigned Aig::depth() const {
  unsigned result = 0;
  for (Lit po : pos_) result = std::max(result, level(lit_node(po)));
  return result;
}

std::vector<std::uint64_t> Aig::simulate_words(
    std::span<const std::uint64_t> pi_words) const {
  if (pi_words.size() != num_pis_)
    throw std::invalid_argument("Aig::simulate_words: wrong PI word count");
  std::vector<std::uint64_t> values(num_nodes(), 0);
  for (std::size_t i = 0; i < num_pis_; ++i) values[pi_nodes_[i]] = pi_words[i];
  const auto lit_value = [&](Lit lit) {
    const std::uint64_t v = values[lit_node(lit)];
    return lit_complemented(lit) ? ~v : v;
  };
  for_each_and([&](std::uint32_t node) {
    values[node] = lit_value(fanin0_[node]) & lit_value(fanin1_[node]);
  });
  std::vector<std::uint64_t> out;
  out.reserve(pos_.size());
  for (Lit po : pos_) out.push_back(lit_value(po));
  return out;
}

void Aig::check_invariants() const {
  for (std::uint32_t node = static_cast<std::uint32_t>(num_pis_) + 1;
       node < num_nodes(); ++node) {
    if (lit_node(fanin0_[node]) >= node || lit_node(fanin1_[node]) >= node)
      throw std::logic_error("Aig: fanin not topologically earlier");
    if (fanin0_[node] > fanin1_[node])
      throw std::logic_error("Aig: fanins not normalized");
  }
  for (Lit po : pos_)
    if (lit_node(po) >= num_nodes()) throw std::logic_error("Aig: dangling PO");
}

}  // namespace simgen::aig

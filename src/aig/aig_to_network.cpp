#include "aig/aig_to_network.hpp"

#include <array>

namespace simgen::aig {

net::Network to_network(const Aig& aig) {
  net::Network network(aig.name());
  std::vector<net::NodeId> node_map(aig.num_nodes(), net::kNullNode);

  for (std::size_t i = 0; i < aig.num_pis(); ++i)
    node_map[lit_node(aig.pi_lit(i))] = network.add_pi(aig.pi_name(i));

  aig.for_each_and([&](std::uint32_t node) {
    const Lit f0 = aig.fanin0(node);
    const Lit f1 = aig.fanin1(node);
    // AND with fanin complement bits folded into the 2-LUT function:
    // f = (x0 ^ c0) & (x1 ^ c1).
    auto in0 = tt::TruthTable::projection(2, 0);
    auto in1 = tt::TruthTable::projection(2, 1);
    if (lit_complemented(f0)) in0 = ~in0;
    if (lit_complemented(f1)) in1 = ~in1;
    const std::array<net::NodeId, 2> fanins{node_map[lit_node(f0)],
                                            node_map[lit_node(f1)]};
    node_map[node] = network.add_lut(fanins, in0 & in1);
  });

  for (std::size_t i = 0; i < aig.num_pos(); ++i) {
    const Lit po = aig.po_lit(i);
    net::NodeId driver;
    if (lit_node(po) == 0) {
      driver = network.add_constant(lit_complemented(po));
    } else {
      driver = node_map[lit_node(po)];
      if (lit_complemented(po)) {
        const std::array<net::NodeId, 1> fanin{driver};
        driver = network.add_lut(fanin, tt::TruthTable::not_gate());
      }
    }
    network.add_po(driver, aig.po_name(i));
  }
  return network;
}

}  // namespace simgen::aig

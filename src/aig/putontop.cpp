#include "aig/putontop.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace simgen::aig {

Aig put_on_top(const Aig& base, unsigned copies) {
  if (copies == 0) throw std::invalid_argument("put_on_top: copies must be >= 1");
  if (base.num_pis() == 0 || base.num_pos() == 0)
    throw std::invalid_argument("put_on_top: base must have PIs and POs");

  const std::size_t npi = base.num_pis();
  const std::size_t npo = base.num_pos();
  const std::size_t fresh_per_copy = npi > npo ? npi - npo : 0;

  Aig stack(base.name() + "_x" + std::to_string(copies));

  // Our AIG requires all PIs before the first AND node, so pre-create the
  // whole PI pool: the bottom copy's inputs plus the shortfall of every
  // upper copy.
  std::vector<Lit> pi_pool;
  const std::size_t total_pis = npi + (copies - 1) * fresh_per_copy;
  pi_pool.reserve(total_pis);
  for (std::size_t i = 0; i < total_pis; ++i)
    pi_pool.push_back(stack.add_pi("pi" + std::to_string(i)));
  std::size_t next_fresh = npi;

  std::vector<Lit> prev_pos;  // PO literals of the copy below.
  for (unsigned copy = 0; copy < copies; ++copy) {
    // Wire up this copy's inputs.
    std::vector<Lit> inputs(npi);
    if (copy == 0) {
      for (std::size_t i = 0; i < npi; ++i) inputs[i] = pi_pool[i];
    } else {
      const std::size_t reused = std::min(npi, npo);
      for (std::size_t i = 0; i < reused; ++i) inputs[i] = prev_pos[i];
      for (std::size_t i = reused; i < npi; ++i) inputs[i] = pi_pool[next_fresh++];
      // Surplus bottom POs that feed nothing above become stack POs.
      for (std::size_t i = reused; i < npo; ++i)
        stack.add_po(prev_pos[i],
                     "po_c" + std::to_string(copy - 1) + "_" + std::to_string(i));
    }

    // Replicate the AND nodes; lit_map translates base literals.
    std::vector<Lit> lit_map(base.num_nodes(), kLitFalse);
    for (std::size_t i = 0; i < npi; ++i) lit_map[lit_node(base.pi_lit(i))] = inputs[i];
    const auto translate = [&](Lit lit) {
      const Lit mapped = lit_map[lit_node(lit)];
      return lit_complemented(lit) ? lit_not(mapped) : mapped;
    };
    base.for_each_and([&](std::uint32_t node) {
      lit_map[node] = stack.and2(translate(base.fanin0(node)),
                                 translate(base.fanin1(node)));
    });

    prev_pos.assign(npo, kLitFalse);
    for (std::size_t i = 0; i < npo; ++i) prev_pos[i] = translate(base.po_lit(i));
  }

  for (std::size_t i = 0; i < npo; ++i)
    stack.add_po(prev_pos[i], "po_top_" + std::to_string(i));
  return stack;
}

}  // namespace simgen::aig

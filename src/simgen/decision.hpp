/// \file decision.hpp
/// \brief Decision policies: which truth-table row to commit to (paper §5).
///
/// When implications dry up, Algorithm 1 must pick one row for the current
/// candidate node. The policies implemented here are exactly the paper's
/// evaluation arms:
///  * kRandom       — uniform choice among matching rows (the RD in SI+RD
///                    and AI+RD);
///  * kDontCare     — roulette-wheel selection weighted by dc_size
///                    (Equation 1): rows that leave more inputs open win;
///  * kDontCareMffc — roulette-wheel over the combined priority of
///                    Equation 4: alpha * dc_size + beta * mffc_rank, with
///                    mffc_rank from Equation 3 preferring rows that place
///                    their non-DC literals on fanins with deep MFFCs.
#pragma once

#include <cstdint>

#include "network/mffc.hpp"
#include "network/scoap.hpp"
#include "network/network.hpp"
#include "simgen/rows.hpp"
#include "simgen/tval.hpp"
#include "util/rng.hpp"

namespace simgen::core {

enum class DecisionStrategy : std::uint8_t {
  kRandom,
  kDontCare,
  kDontCareMffc,
  /// Extension beyond the paper: DC count plus SCOAP controllability —
  /// among equally-DC rows prefer the one whose literals are cheapest to
  /// justify (low CC0/CC1 at the constrained fanins). Requires SCOAP
  /// costs to be supplied to the decision engine.
  kDontCareScoap,
};

/// Weights of Equation 4 (alpha, beta) plus the SCOAP term's weight
/// (gamma, used by kDontCareScoap). The paper requires alpha >> beta so
/// DC count dominates and the structural term breaks ties.
struct DecisionWeights {
  double alpha = 100.0;
  double beta = 1.0;
  double gamma = 1.0;
};

/// Outcome of one decision.
struct DecisionOutcome {
  bool made = false;        ///< False if no row matched (conflict).
  std::size_t row_index = 0;  ///< Chosen row within the node's row list.
  std::size_t assignments = 0;
};

/// Decision engine with persistent scratch (one decision per Algorithm 1
/// inner-loop iteration; reuse keeps the loop allocation-free).
class DecisionEngine {
 public:
  DecisionEngine(const net::Network& network, const RowDatabase& rows)
      : network_(network), rows_(rows) {}

  /// Supplies SCOAP costs (required before using kDontCareScoap).
  void set_scoap(const net::ScoapCosts* scoap) noexcept { scoap_ = scoap; }

  /// Picks a matching row of \p node per \p strategy and assigns all of
  /// its previously unassigned values (output and non-DC inputs) into
  /// \p values. \p mffc may be null for strategies that do not use it.
  DecisionOutcome decide(NodeValues& values, net::NodeId node,
                         DecisionStrategy strategy,
                         const DecisionWeights& weights,
                         const net::MffcDepthCache* mffc, util::Rng& rng);

 private:
  const net::Network& network_;
  const RowDatabase& rows_;
  const net::ScoapCosts* scoap_ = nullptr;
  std::vector<std::uint32_t> match_scratch_;
  std::vector<double> cdf_scratch_;
};

/// One-shot convenience wrapper.
DecisionOutcome decide(const net::Network& network, const RowDatabase& rows,
                       NodeValues& values, net::NodeId node,
                       DecisionStrategy strategy, const DecisionWeights& weights,
                       const net::MffcDepthCache* mffc, util::Rng& rng);

/// Equation 3: MFFC rank of a row at \p node — the sum of MFFC depths of
/// the fanins the row constrains (non-DC positions). Exposed for tests
/// and the ablation bench.
[[nodiscard]] double mffc_rank(const net::Network& network,
                               const net::MffcDepthCache& mffc, net::NodeId node,
                               const Row& row);

/// Equation 4: combined row priority.
[[nodiscard]] double row_priority(const net::Network& network,
                                  const net::MffcDepthCache* mffc, net::NodeId node,
                                  const Row& row, DecisionStrategy strategy,
                                  const DecisionWeights& weights);

/// SCOAP tie-break term of kDontCareScoap: 1/(1 + sum of controllability
/// costs demanded by the row's literals). Exposed for tests/ablations.
[[nodiscard]] double scoap_row_bonus(const net::Network& network,
                                     const net::ScoapCosts& scoap,
                                     net::NodeId node, const Row& row);

}  // namespace simgen::core

/// \file outgold.hpp
/// \brief OUTgold target generation (paper Section 3, step 1).
///
/// OUTgold values are the desired output values for the target nodes of an
/// equivalence class. SimGen's default policy is the paper's: alternate
/// zeros and ones across the class members ordered by node ID, so that a
/// vector satisfying any 0-target and any 1-target is guaranteed to split
/// the class. The policy is a free function so alternative OUTgold
/// strategies (topology-aware, runtime-adaptive) can be slotted in.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "network/network.hpp"

namespace simgen::core {

/// One target node and its desired output value.
struct Target {
  net::NodeId node = net::kNullNode;
  bool gold = false;
};

/// Alternating OUTgold assignment over \p class_members, ordered by node
/// ID; members at even positions get \p first_value, odd positions its
/// complement — an equal (+/-1) number of zeros and ones, as Section 6.1
/// prescribes.
[[nodiscard]] std::vector<Target> make_outgold(
    std::span<const net::NodeId> class_members, bool first_value = false);

/// OUTgold selection policies. kAlternating is the paper's published
/// default; the other two implement the extensions its Section 3 names
/// as future work ("circuit topology-aware methods or runtime-adaptive
/// OUTgold generation ... effortlessly integrated into SimGen").
enum class OutGoldPolicy : std::uint8_t {
  /// Alternate 0/1 by node ID (paper Section 3).
  kAlternating,
  /// Topology-aware: order members by decreasing level and alternate, so
  /// adjacent golds land on structurally distant nodes and the deepest
  /// member anchors the first (unconstrained) justification.
  kDepthAlternating,
  /// Runtime-adaptive: alternate starting from the *complement* of the
  /// class's observed simulation value (all members share it — that is
  /// what made them a class). Half the targets then demand the value the
  /// class has never shown, steering vectors toward the unexplored
  /// polarity of biased signals.
  kAdaptiveComplement,
};

[[nodiscard]] std::string_view outgold_policy_name(OutGoldPolicy policy);

/// Policy-dispatching OUTgold generation. \p observed_values is the node
/// value array of the last simulation batch (indexed by NodeId); only
/// kAdaptiveComplement reads it and it may be empty for the other
/// policies (falls back to kAlternating if empty).
[[nodiscard]] std::vector<Target> make_outgold_with_policy(
    const net::Network& network, std::span<const net::NodeId> class_members,
    OutGoldPolicy policy, std::span<const std::uint64_t> observed_values = {});

/// Orders targets by decreasing network level (Algorithm 1 line 2:
/// nodes furthest from the PIs are processed first). Stable, so equal
/// levels keep their OUTgold order.
void order_targets_by_depth(const net::Network& network, std::vector<Target>& targets);

}  // namespace simgen::core

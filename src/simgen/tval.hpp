/// \file tval.hpp
/// \brief Ternary node values and the trail-backed assignment map.
///
/// During input-vector generation every node carries one of {0, 1, X}
/// (X = unassigned / don't-care, per the paper's propagation definition
/// 2.1: "a don't-care is treated as an unassigned value"). NodeValues is
/// the nodeVals map of Algorithm 1; the trail makes the algorithm's
/// initVals save/restore (lines 4 and 12) an O(changes) rollback instead
/// of a full copy.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"

namespace simgen::core {

enum class TVal : std::uint8_t { kZero = 0, kOne = 1, kUnknown = 2 };

[[nodiscard]] constexpr TVal tval_of(bool bit) noexcept {
  return bit ? TVal::kOne : TVal::kZero;
}
[[nodiscard]] constexpr char tval_char(TVal value) noexcept {
  switch (value) {
    case TVal::kZero: return '0';
    case TVal::kOne: return '1';
    case TVal::kUnknown: return 'X';
  }
  return '?';
}

/// Ternary assignment for every node of a network, with rollback.
class NodeValues {
 public:
  explicit NodeValues(std::size_t num_nodes)
      : values_(num_nodes, TVal::kUnknown) {}

  [[nodiscard]] TVal get(net::NodeId node) const { return values_[node]; }
  [[nodiscard]] bool is_assigned(net::NodeId node) const {
    return values_[node] != TVal::kUnknown;
  }

  /// Assigns \p value to an unassigned node and records it on the trail.
  /// Precondition: the node is unassigned (callers check compatibility
  /// first; assigning over an existing value is the conflict the paper's
  /// compareVals detects and must never reach this point).
  void assign(net::NodeId node, TVal value) {
    values_[node] = value;
    trail_.push_back(node);
  }

  /// Current trail position; pass to rollback_to to undo later changes.
  [[nodiscard]] std::size_t mark() const noexcept { return trail_.size(); }

  /// Undoes every assignment made after \p mark (Algorithm 1 line 12:
  /// nodeVals = initVals).
  void rollback_to(std::size_t mark) {
    while (trail_.size() > mark) {
      values_[trail_.back()] = TVal::kUnknown;
      trail_.pop_back();
    }
  }

  /// Nodes assigned since the beginning, most recent last. Used for the
  /// latestUpdated candidate selection of Algorithm 1 (line 15).
  [[nodiscard]] const std::vector<net::NodeId>& trail() const noexcept {
    return trail_;
  }

  [[nodiscard]] std::size_t num_assigned() const noexcept { return trail_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Clears all assignments and the trail.
  void reset() {
    for (net::NodeId node : trail_) values_[node] = TVal::kUnknown;
    trail_.clear();
  }

 private:
  std::vector<TVal> values_;
  std::vector<net::NodeId> trail_;
};

}  // namespace simgen::core

#include "simgen/guided_sim.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <stdexcept>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace simgen::core {
namespace {

/// Packs up to 64 (partial) vectors into PI simulation words and refines
/// the classes. Don't-care positions are filled with fresh random bits;
/// unused pattern slots become fully random patterns, so every arm rides
/// on the same random baseline and the comparison isolates the guided
/// content of the vectors.
class PatternBatcher {
 public:
  PatternBatcher(sim::Simulator& simulator, sim::EquivClasses& classes,
                 util::Rng& rng, Strategy strategy)
      : simulator_(simulator),
        classes_(classes),
        rng_(rng),
        source_(strategy == Strategy::kRevS ? obs::PatternSource::kRevS
                                            : obs::PatternSource::kSimGen),
        strategy_code_(static_cast<std::uint8_t>(strategy)) {}

  void add(const std::vector<TVal>& pi_values) {
    batch_.push_back(pi_values);
    if (batch_.size() == 64) flush();
  }

  /// \p force simulates a word even with an empty batch (pure random):
  /// the guided phase keeps the random stream flowing each iteration, as
  /// the surrounding sweeping flow of Figure 2 does.
  void flush(bool force = false) {
    if (batch_.empty() && !force) return;
    // Attribute the batch (and the class splits its refine causes) to the
    // guided strategy that produced its vectors.
    obs::PatternScope scope(source_, static_cast<std::uint32_t>(batch_.size()),
                            strategy_code_);
    const std::size_t num_pis = simulator_.network().num_pis();
    std::vector<sim::PatternWord> words(num_pis, 0);
    for (std::size_t i = 0; i < num_pis; ++i) words[i] = rng_();
    for (std::size_t pattern = 0; pattern < batch_.size(); ++pattern) {
      const auto& vec = batch_[pattern];
      for (std::size_t i = 0; i < num_pis; ++i) {
        bool bit;
        switch (vec[i]) {
          case TVal::kZero: bit = false; break;
          case TVal::kOne: bit = true; break;
          default: continue;  // keep the random fill bit
        }
        if (bit)
          words[i] |= sim::PatternWord{1} << pattern;
        else
          words[i] &= ~(sim::PatternWord{1} << pattern);
      }
    }
    simulator_.simulate_word(words);
    classes_.refine(simulator_);
    batch_.clear();
  }

 private:
  sim::Simulator& simulator_;
  sim::EquivClasses& classes_;
  util::Rng& rng_;
  obs::PatternSource source_;
  std::uint8_t strategy_code_;
  std::vector<std::vector<TVal>> batch_;
};

}  // namespace

std::string_view strategy_name(Strategy strategy) {
  switch (strategy) {
    case Strategy::kRevS: return "RevS";
    case Strategy::kSiRd: return "SI+RD";
    case Strategy::kAiRd: return "AI+RD";
    case Strategy::kAiDc: return "AI+DC";
    case Strategy::kAiDcMffc: return "AI+DC+MFFC";
    case Strategy::kAiDcScoap: return "AI+DC+SCOAP";
  }
  return "?";
}

GeneratorOptions generator_options_for(Strategy strategy) {
  GeneratorOptions options;
  switch (strategy) {
    case Strategy::kSiRd:
      options.implication = ImplicationStrategy::kSimple;
      options.decision = DecisionStrategy::kRandom;
      break;
    case Strategy::kAiRd:
      options.implication = ImplicationStrategy::kAdvanced;
      options.decision = DecisionStrategy::kRandom;
      break;
    case Strategy::kAiDc:
      options.implication = ImplicationStrategy::kAdvanced;
      options.decision = DecisionStrategy::kDontCare;
      break;
    case Strategy::kAiDcMffc:
      options.implication = ImplicationStrategy::kAdvanced;
      options.decision = DecisionStrategy::kDontCareMffc;
      break;
    case Strategy::kAiDcScoap:
      options.implication = ImplicationStrategy::kAdvanced;
      options.decision = DecisionStrategy::kDontCareScoap;
      break;
    case Strategy::kRevS:
      throw std::invalid_argument("RevS is not a PatternGenerator arm");
  }
  return options;
}

GuidedSimResult run_guided_simulation(sim::Simulator& simulator,
                                      sim::EquivClasses& classes,
                                      const GuidedSimOptions& options) {
  const net::Network& network = simulator.network();
  obs::Span run_span("guided_sim.run");
  obs::PhaseScope phase(obs::PhaseId::kGuidedSim);
  GuidedSimResult result;
  util::Stopwatch watch;
  watch.start();

  util::Rng fill_rng(util::splitmix64(options.seed) ^ 0xf111f111u);
  PatternBatcher batcher(simulator, classes, fill_rng, options.strategy);

  // Strategy-specific generator state lives across iterations so the RNG
  // streams and cached row/MFFC data are reused.
  PatternGenerator* generator = nullptr;
  ReverseSimulator* reverse = nullptr;
  std::optional<PatternGenerator> generator_storage;
  std::optional<ReverseSimulator> reverse_storage;
  if (options.strategy == Strategy::kRevS) {
    reverse_storage.emplace(network, options.seed);
    reverse = &*reverse_storage;
  } else {
    generator_storage.emplace(network, generator_options_for(options.strategy),
                              options.seed);
    generator = &*generator_storage;
  }
  util::Rng pair_rng(util::splitmix64(options.seed) ^ 0x9a1fu);

  // Per-class retry schedule, keyed by the class representative (the
  // lowest member id, which is stable while the class merely shrinks).
  struct Backoff {
    std::size_t next_try = 0;
    unsigned delay = 1;
    std::size_t last_size = 0;
  };
  std::unordered_map<net::NodeId, Backoff> backoff;

  for (std::size_t iteration = 0; iteration < options.iterations; ++iteration) {
    if (classes.fully_refined()) {
      result.cost_per_iteration.push_back(0);
      continue;
    }
    // Per-iteration span whose args are the registry deltas produced by
    // this iteration (vectors simulated, implications run, ...). The
    // snapshot pair is only taken while tracing, so the steady-state
    // cost remains one relaxed atomic load.
    obs::Span iter_span("guided_sim.iteration");
    std::optional<obs::TelemetrySnapshot> before;
    if (obs::tracing_enabled()) before = obs::capture_snapshot();
    // Snapshot the class member lists: refinement during flushes changes
    // the partition, and targets staying valid for their class is only a
    // heuristic concern.
    std::vector<std::vector<net::NodeId>> snapshot;
    snapshot.reserve(classes.num_classes());
    for (sim::ClassId c{0}; c < classes.num_classes(); ++c) {
      const auto members = classes.class_members(c);
      snapshot.emplace_back(members.begin(), members.end());
    }

    for (const auto& members : snapshot) {
      Backoff* schedule = nullptr;
      if (options.max_backoff > 0) {
        schedule = &backoff[*std::min_element(members.begin(), members.end())];
        // A class that shrank since the last attempt has genuinely new
        // structure — retry it immediately.
        if (schedule->last_size != members.size()) {
          schedule->delay = 1;
          schedule->next_try = 0;
          schedule->last_size = members.size();
        }
        if (iteration < schedule->next_try) continue;
      }
      bool produced_vector = false;
      if (options.strategy == Strategy::kRevS) {
        // RevS: one random pair with complementary values.
        const std::size_t i = pair_rng.below(members.size());
        std::size_t j = pair_rng.below(members.size() - 1);
        if (j >= i) ++j;
        const bool gold_i = pair_rng.flip();
        const ReverseSimResult vector = reverse->generate(
            Target{members[i], gold_i}, Target{members[j], !gold_i});
        if (vector.success) {
          ++result.vectors_generated;
          batcher.add(vector.pi_values);
          produced_vector = true;
        } else {
          ++result.vectors_skipped;
        }
      } else {
        std::vector<Target> targets = make_outgold_with_policy(
            network, members, options.outgold_policy, simulator.values());
        const std::size_t cap = options.max_targets_per_class;
        if (cap >= 2 && targets.size() > cap) {
          // Evenly spaced subsample keeps the gold alternation (and thus
          // the chance of an opposite-gold pair) intact.
          std::vector<Target> sampled;
          sampled.reserve(cap);
          for (std::size_t k = 0; k < cap; ++k)
            sampled.push_back(targets[k * targets.size() / cap]);
          targets = std::move(sampled);
        }
        const VectorResult vector = generator->generate(targets);
        if (vector.usable()) {
          ++result.vectors_generated;
          batcher.add(vector.pi_values);
          produced_vector = true;
        } else {
          // Section 3: no opposite-gold pair honoured -> skip simulation.
          ++result.vectors_skipped;
        }
      }
      if (schedule != nullptr) {
        if (produced_vector) {
          schedule->delay = 1;
          schedule->next_try = iteration + 1;
        } else {
          schedule->next_try = iteration + 1 + schedule->delay;
          schedule->delay = std::min(2 * schedule->delay, options.max_backoff);
        }
      }
    }
    batcher.flush(/*force=*/true);
    result.cost_per_iteration.push_back(classes.cost());
    iter_span.arg("iteration", static_cast<double>(iteration));
    iter_span.arg("cost", static_cast<double>(classes.cost()));
    if (before.has_value()) {
      const obs::TelemetrySnapshot delta =
          obs::diff_snapshots(*before, obs::capture_snapshot());
      iter_span.arg("sim_words", static_cast<double>(delta.counter_value("sim.words")));
      iter_span.arg("implications",
                    static_cast<double>(delta.counter_value("simgen.implications")));
      iter_span.arg("conflicts",
                    static_cast<double>(delta.counter_value("simgen.conflicts") +
                                        delta.counter_value("revs.conflicts")));
    }
  }

  if (generator != nullptr) result.conflicts = generator->stats().conflicts.value();
  if (reverse != nullptr) result.conflicts = reverse->stats().conflicts.value();
  watch.stop();
  result.runtime_seconds = watch.seconds();
  run_span.arg("vectors_generated", static_cast<double>(result.vectors_generated));
  run_span.arg("vectors_skipped", static_cast<double>(result.vectors_skipped));
  phase.set_result(classes.cost(), classes.num_classes());
  return result;
}

}  // namespace simgen::core

#include "simgen/tval.hpp"

// NodeValues is header-only; this translation unit anchors the module.
namespace simgen::core {
namespace {
[[maybe_unused]] constexpr int kAnchor = 0;
}  // namespace
}  // namespace simgen::core

#include "simgen/decision.hpp"

#include <vector>

namespace simgen::core {

double mffc_rank(const net::Network& network, const net::MffcDepthCache& mffc,
                 net::NodeId node, const Row& row) {
  const auto fanins = network.fanins(node);
  double rank = 0.0;
  for (unsigned v = 0; v < fanins.size(); ++v) {
    // Equation 3: (1 - dc(input)) * depth(input) — only constrained
    // (non-DC) inputs contribute their fanin's MFFC depth.
    if (row.cube.has_literal(v)) rank += mffc.depth(fanins[v]);
  }
  return rank;
}

double row_priority(const net::Network& network, const net::MffcDepthCache* mffc,
                    net::NodeId node, const Row& row, DecisionStrategy strategy,
                    const DecisionWeights& weights) {
  const auto num_vars = static_cast<unsigned>(network.fanins(node).size());
  const double dc_size = row.cube.num_dcs(num_vars);  // Equation 1
  switch (strategy) {
    case DecisionStrategy::kRandom:
      return 1.0;
    case DecisionStrategy::kDontCare:
    case DecisionStrategy::kDontCareScoap:  // SCOAP term added in decide()
      return weights.alpha * dc_size;
    case DecisionStrategy::kDontCareMffc:
      return weights.alpha * dc_size +
             weights.beta * mffc_rank(network, *mffc, node, row);
  }
  return 1.0;
}

double scoap_row_bonus(const net::Network& network, const net::ScoapCosts& scoap,
                       net::NodeId node, const Row& row) {
  // Cheap-to-justify rows score higher: the bonus is 1/(1 + total
  // controllability demanded by the row's literals), in (0, 1] so it acts
  // as a tie-break under alpha >> gamma-scaled terms.
  const auto fanins = network.fanins(node);
  double total = 0.0;
  for (unsigned v = 0; v < fanins.size(); ++v) {
    if (!row.cube.has_literal(v)) continue;
    total += static_cast<double>(
        std::min(scoap.cost(fanins[v], row.cube.literal_value(v)),
                 net::ScoapCosts::kUncontrollable));
  }
  return 1.0 / (1.0 + total);
}

DecisionOutcome DecisionEngine::decide(NodeValues& values, net::NodeId node,
                                       DecisionStrategy strategy,
                                       const DecisionWeights& weights,
                                       const net::MffcDepthCache* mffc,
                                       util::Rng& rng) {
  DecisionOutcome outcome;
  const auto& node_rows = rows_.rows(node);
  const auto fanins_pre = network_.fanins(node);
  // Bitmask form of the local assignment (see ImplicationEngine::run).
  std::uint32_t assigned_mask = 0;
  std::uint32_t value_bits = 0;
  for (unsigned v = 0; v < fanins_pre.size(); ++v) {
    const TVal value = values.get(fanins_pre[v]);
    if (value == TVal::kUnknown) continue;
    assigned_mask |= 1u << v;
    if (value == TVal::kOne) value_bits |= 1u << v;
  }
  const TVal out = values.get(node);
  match_scratch_.clear();
  for (std::size_t i = 0; i < node_rows.size(); ++i) {
    const Row& row = node_rows[i];
    if (out != TVal::kUnknown && out != tval_of(row.output)) continue;
    if ((row.cube.mask & assigned_mask) & (row.cube.bits ^ value_bits)) continue;
    match_scratch_.push_back(static_cast<std::uint32_t>(i));
  }
  if (match_scratch_.empty()) return outcome;  // conflict: no row compatible

  // Roulette-wheel selection over the row priorities. A small epsilon
  // keeps zero-priority rows selectable (and covers the all-zero case,
  // e.g. every matching row has zero DCs), degrading gracefully to
  // uniform choice.
  std::size_t chosen = match_scratch_[0];
  if (match_scratch_.size() > 1) {
    constexpr double kEpsilon = 1e-6;
    double total = 0.0;
    cdf_scratch_.clear();
    for (const std::uint32_t m : match_scratch_) {
      double priority =
          row_priority(network_, mffc, node, node_rows[m], strategy, weights);
      if (strategy == DecisionStrategy::kDontCareScoap && scoap_ != nullptr)
        priority += weights.gamma *
                    scoap_row_bonus(network_, *scoap_, node, node_rows[m]);
      total += kEpsilon + priority;
      cdf_scratch_.push_back(total);
    }
    const double draw = rng.uniform01() * total;
    std::size_t index = 0;
    while (index + 1 < match_scratch_.size() && cdf_scratch_[index] <= draw)
      ++index;
    chosen = match_scratch_[index];
  }

  // Commit the chosen row: output value plus every non-DC input.
  const Row& row = node_rows[chosen];
  outcome.made = true;
  outcome.row_index = chosen;
  if (!values.is_assigned(node)) {
    values.assign(node, tval_of(row.output));
    ++outcome.assignments;
  }
  const auto fanins = network_.fanins(node);
  for (unsigned v = 0; v < fanins.size(); ++v) {
    if (!row.cube.has_literal(v)) continue;
    if (!values.is_assigned(fanins[v])) {
      values.assign(fanins[v], tval_of(row.cube.literal_value(v)));
      ++outcome.assignments;
    }
  }
  return outcome;
}

DecisionOutcome decide(const net::Network& network, const RowDatabase& rows,
                       NodeValues& values, net::NodeId node,
                       DecisionStrategy strategy, const DecisionWeights& weights,
                       const net::MffcDepthCache* mffc, util::Rng& rng) {
  DecisionEngine engine(network, rows);
  return engine.decide(values, node, strategy, weights, mffc, rng);
}

}  // namespace simgen::core

/// \file implication.hpp
/// \brief Implication engines: simple (Def. 2.2) and advanced (Def. 4.1).
///
/// Implication deduces forced values from the current partial assignment
/// and the nodes' functions, both backward (output to inputs) and forward
/// (inputs to output), independent of node levels — the generalization the
/// paper makes over classic reverse simulation.
///
/// * Simple implication fires only when exactly one row of a node matches
///   the current assignment; it then assigns that row's values.
/// * Advanced implication fires when several rows match but agree on some
///   value: every agreed value is assigned, disagreeing positions stay X.
///   (One matching row is the degenerate agreeing case, so advanced
///   subsumes simple.)
///
/// A node with zero matching rows is the conflict the paper's compareVals
/// detects: the partial assignment contradicts the node's function.
#pragma once

#include <cstdint>

#include "network/network.hpp"
#include "simgen/rows.hpp"
#include "simgen/tval.hpp"

namespace simgen::core {

enum class ImplicationStrategy : std::uint8_t {
  kNone,      ///< Do not imply at all (used by ablations).
  kSimple,    ///< Definition 2.2: single-matching-row implication.
  kAdvanced,  ///< Definition 4.1: agreed-value implication.
};

/// Outcome of an implication fixpoint run.
struct ImplicationOutcome {
  bool conflict = false;
  net::NodeId conflict_node = net::kNullNode;  ///< Node with zero matching rows.
  std::size_t assignments = 0;                  ///< Values newly assigned.
  std::size_t nodes_examined = 0;
};

/// Implication engine with persistent scratch buffers. Algorithm 1 calls
/// implication once per decision, thousands of times per vector batch;
/// reusing the worklist storage keeps that loop allocation-free.
class ImplicationEngine {
 public:
  ImplicationEngine(const net::Network& network, const RowDatabase& rows)
      : network_(network),
        rows_(rows),
        queued_(network.num_nodes(), false) {}

  /// Runs implications to fixpoint starting from \p seeds (nodes whose
  /// value or surroundings just changed). Propagation spreads to fanins
  /// and fanouts of every node that receives a value. Conflicts leave
  /// \p values dirty; the caller rolls back via its own mark (Algorithm 1
  /// line 12).
  ImplicationOutcome run(NodeValues& values, std::span<const net::NodeId> seeds,
                         ImplicationStrategy strategy);

 private:
  const net::Network& network_;
  const RowDatabase& rows_;
  std::vector<bool> queued_;
  std::vector<net::NodeId> queue_;
  std::vector<std::uint32_t> match_scratch_;
};

/// One-shot convenience wrappers (tests, small callers).
ImplicationOutcome run_implications(const net::Network& network,
                                    const RowDatabase& rows, NodeValues& values,
                                    std::span<const net::NodeId> seeds,
                                    ImplicationStrategy strategy);
ImplicationOutcome run_implications(const net::Network& network,
                                    const RowDatabase& rows, NodeValues& values,
                                    net::NodeId seed, ImplicationStrategy strategy);

}  // namespace simgen::core

/// \file generator.hpp
/// \brief SimGen's input-vector generator (Algorithm 1 of the paper).
///
/// Given OUTgold targets from an equivalence class, the generator searches
/// for a PI assignment compatible with as many targets as possible by
/// interleaving implication (Section 4) and decision (Section 5) along the
/// fanin cone of each target, processed in decreasing-depth order. There
/// is no backtracking: a conflict abandons the current target, restores
/// the pre-target assignment, and moves on — exactly Algorithm 1's
/// lines 11-13.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "network/mffc.hpp"
#include "network/network.hpp"
#include "obs/metrics.hpp"
#include "simgen/decision.hpp"
#include "simgen/implication.hpp"
#include "simgen/outgold.hpp"
#include "simgen/rows.hpp"
#include "simgen/tval.hpp"
#include "util/rng.hpp"

namespace simgen::core {

/// Configuration of one generator arm (the paper's SI+RD, AI+RD, AI+DC,
/// AI+DC+MFFC combinations are presets over these fields).
struct GeneratorOptions {
  ImplicationStrategy implication = ImplicationStrategy::kAdvanced;
  DecisionStrategy decision = DecisionStrategy::kDontCareMffc;
  DecisionWeights weights{};
};

/// Cumulative counters across generate() calls. Registry-backed view:
/// the PatternGenerator's instance owns obs counters named "simgen.*"
/// (see src/obs/metrics.hpp); copies are detached value snapshots.
struct GeneratorStats {
  GeneratorStats() = default;  ///< Detached (all zeros, unregistered).
  explicit GeneratorStats(obs::register_t);

  obs::Counter targets_attempted;
  obs::Counter targets_satisfied;
  obs::Counter conflicts;
  obs::Counter implications;
  obs::Counter decisions;
};

/// Result of one generate() call: the (partial) input vector and how many
/// targets of each polarity it honours.
struct VectorResult {
  std::vector<TVal> pi_values;  ///< Per PI index; kUnknown = free (random fill).
  std::size_t satisfied_zero = 0;
  std::size_t satisfied_one = 0;

  /// The paper's usefulness criterion (Section 3): the vector must honour
  /// at least one pair of targets with opposite OUTgold values, otherwise
  /// the simulation is skipped.
  [[nodiscard]] bool usable() const noexcept {
    return satisfied_zero > 0 && satisfied_one > 0;
  }
};

/// Implements Algorithm 1 over a fixed network.
class PatternGenerator {
 public:
  PatternGenerator(const net::Network& network, GeneratorOptions options,
                   std::uint64_t seed);

  /// Runs Algorithm 1 for \p targets (typically make_outgold of one
  /// equivalence class). Targets are re-ordered by decreasing depth
  /// internally.
  VectorResult generate(std::span<const Target> targets);

  [[nodiscard]] const GeneratorStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const GeneratorOptions& options() const noexcept { return options_; }
  [[nodiscard]] const net::Network& network() const noexcept { return network_; }

 private:
  /// Processes one target; returns true if its OUTgold value was secured.
  bool process_target(const Target& target);

  /// Marks the fanin cone of \p root in in_cone_stamp_ with the current
  /// stamp (allocation-free replacement for net::fanin_cone_dfs).
  void mark_cone(net::NodeId root);

  const net::Network& network_;
  GeneratorOptions options_;
  RowDatabase rows_;
  net::MffcDepthCache mffc_;
  std::optional<net::ScoapCosts> scoap_;  ///< Only for kDontCareScoap.
  util::Rng rng_;
  NodeValues values_;
  GeneratorStats stats_{obs::kRegister};
  ImplicationEngine implication_;
  DecisionEngine decision_;

  // Per-target scratch, stamped to avoid O(n) clears.
  std::vector<std::uint32_t> in_cone_stamp_;
  std::vector<std::uint32_t> processed_stamp_;
  std::uint32_t stamp_ = 0;
  std::vector<net::NodeId> constants_;
  std::vector<net::NodeId> cone_stack_;
};

}  // namespace simgen::core

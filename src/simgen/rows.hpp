/// \file rows.hpp
/// \brief Per-node truth-table rows and row matching against ternary values.
///
/// A "row" (paper Figures 3-4) is an ISOP cube of the node's ON-set or
/// OFF-set together with the output value that plane asserts. Row matching
/// is the primitive both implication (Section 4) and decision (Section 5)
/// are built on: a row matches the current assignment iff no assigned
/// fanin or output value contradicts it.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"
#include "simgen/tval.hpp"
#include "tt/isop.hpp"

namespace simgen::core {

/// One candidate row of a node: input cube plus asserted output value.
struct Row {
  tt::Cube cube;
  bool output = false;
};

/// Lazily computed, cached rows for every LUT node of a network. Shared by
/// the implication engine, the decision policies, and the RevS baseline.
class RowDatabase {
 public:
  explicit RowDatabase(const net::Network& network)
      : network_(network), rows_(network.num_nodes()), computed_(network.num_nodes(), false) {}

  /// All rows (ON-set then OFF-set) of LUT node \p node.
  [[nodiscard]] const std::vector<Row>& rows(net::NodeId node) const;

  [[nodiscard]] const net::Network& network() const noexcept { return network_; }

 private:
  const net::Network& network_;
  mutable std::vector<std::vector<Row>> rows_;
  mutable std::vector<bool> computed_;
};

/// True iff \p row is compatible with the current assignment around
/// \p node: the output (if assigned) equals the row's output, and every
/// assigned fanin with a literal in the cube matches the literal.
[[nodiscard]] bool row_matches(const net::Network& network, const NodeValues& values,
                               net::NodeId node, const Row& row);

/// Collects the indices of all matching rows of \p node.
[[nodiscard]] std::vector<std::size_t> matching_rows(const net::Network& network,
                                                     const RowDatabase& rows,
                                                     const NodeValues& values,
                                                     net::NodeId node);

}  // namespace simgen::core

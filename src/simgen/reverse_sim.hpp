/// \file reverse_sim.hpp
/// \brief Reverse simulation baseline (RevS, Zhang et al., paper §1/§2.3).
///
/// Classic reverse simulation: pick a pair of nodes from a class, assign
/// complementary output values, and walk the networks backward assigning
/// each visited node a complete input combination that produces its
/// required output — chosen at random when several exist. It terminates
/// unsuccessfully on the first conflicting assignment; there is no
/// implication beyond the forced single-assignment case and no structural
/// guidance, which is precisely the weakness SimGen addresses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "network/network.hpp"
#include "obs/metrics.hpp"
#include "simgen/outgold.hpp"
#include "simgen/rows.hpp"
#include "simgen/tval.hpp"
#include "util/rng.hpp"

namespace simgen::core {

/// Cumulative counters across generate() calls. Registry-backed view
/// ("revs.*" metrics); copies are detached value snapshots.
struct ReverseSimStats {
  ReverseSimStats() = default;  ///< Detached (all zeros, unregistered).
  explicit ReverseSimStats(obs::register_t);

  obs::Counter attempts;
  obs::Counter successes;
  obs::Counter conflicts;
};

/// Result of one reverse-simulation attempt.
struct ReverseSimResult {
  bool success = false;         ///< Both targets' cones propagated to the PIs.
  std::vector<TVal> pi_values;  ///< Valid only on success; kUnknown = free.
};

/// Reverse-simulation vector generator.
class ReverseSimulator {
 public:
  ReverseSimulator(const net::Network& network, std::uint64_t seed);

  /// Attempts to generate a vector driving \p target_a.node to
  /// \p target_a.gold and \p target_b.node to \p target_b.gold (callers
  /// pass complementary golds for two nodes of one class).
  ReverseSimResult generate(const Target& target_a, const Target& target_b);

  [[nodiscard]] const ReverseSimStats& stats() const noexcept { return stats_; }

 private:
  /// Processes one node: picks a complete input minterm compatible with
  /// the assigned output and inputs; returns false on conflict.
  bool propagate_node(net::NodeId node, std::vector<net::NodeId>& pending);

  const net::Network& network_;
  util::Rng rng_;
  NodeValues values_;
  ReverseSimStats stats_{obs::kRegister};
  std::vector<net::NodeId> constants_;
};

}  // namespace simgen::core

#include "simgen/reverse_sim.hpp"

#include <algorithm>

namespace simgen::core {

ReverseSimStats::ReverseSimStats(obs::register_t)
    : attempts("revs.attempts"),
      successes("revs.successes"),
      conflicts("revs.conflicts") {}

ReverseSimulator::ReverseSimulator(const net::Network& network, std::uint64_t seed)
    : network_(network), rng_(seed), values_(network.num_nodes()) {
  network_.for_each_node([&](net::NodeId id) {
    if (network_.is_constant(id)) constants_.push_back(id);
  });
}

ReverseSimResult ReverseSimulator::generate(const Target& target_a,
                                            const Target& target_b) {
  stats_.attempts.inc();
  ReverseSimResult result;
  values_.reset();
  for (net::NodeId id : constants_)
    values_.assign(id, tval_of(network_.node(id).constant_value));

  if (target_a.node == target_b.node) {
    // One node cannot take two complementary values.
    if (target_a.gold != target_b.gold) {
      stats_.conflicts.inc();
      return result;
    }
  }

  std::vector<net::NodeId> pending;
  for (const Target& target : {target_a, target_b}) {
    if (values_.is_assigned(target.node)) {
      if (values_.get(target.node) != tval_of(target.gold)) {
        stats_.conflicts.inc();
        return result;
      }
      continue;
    }
    values_.assign(target.node, tval_of(target.gold));
    if (network_.is_lut(target.node)) pending.push_back(target.node);
  }

  // Backward traversal: always expand the deepest pending node, mirroring
  // the level-by-level backward walk of classic reverse simulation.
  while (!pending.empty()) {
    const auto deepest =
        std::max_element(pending.begin(), pending.end(),
                         [&](net::NodeId a, net::NodeId b) {
                           return network_.level(a) < network_.level(b);
                         });
    const net::NodeId node = *deepest;
    *deepest = pending.back();
    pending.pop_back();
    if (!propagate_node(node, pending)) {
      stats_.conflicts.inc();
      return result;
    }
  }

  result.success = true;
  stats_.successes.inc();
  result.pi_values.reserve(network_.num_pis());
  for (net::NodeId pi : network_.pis())
    result.pi_values.push_back(values_.get(pi));
  return result;
}

bool ReverseSimulator::propagate_node(net::NodeId node,
                                      std::vector<net::NodeId>& pending) {
  const net::Node& data = network_.node(node);
  const auto fanins = network_.fanins(node);
  const bool desired = values_.get(node) == TVal::kOne;

  // Collect the complete input combinations (minterms) that produce the
  // desired output and do not contradict any existing assignment. This is
  // reverse simulation's step 3: "determine a set of inputs for which the
  // node's logic function produces the desired value".
  std::vector<std::uint32_t> consistent;
  const auto num_minterms = static_cast<std::uint32_t>(data.function.num_bits());
  for (std::uint32_t m = 0; m < num_minterms; ++m) {
    if (data.function.get_bit(m) != desired) continue;
    bool ok = true;
    for (unsigned v = 0; v < fanins.size() && ok; ++v) {
      const bool bit = (m >> v) & 1u;
      const TVal assigned = values_.get(fanins[v]);
      if (assigned != TVal::kUnknown && assigned != tval_of(bit)) ok = false;
      // Duplicate fanins: every position of the same node must agree.
      for (unsigned w = 0; w < v && ok; ++w)
        if (fanins[w] == fanins[v] && (((m >> w) & 1u) != bit)) ok = false;
    }
    if (ok) consistent.push_back(m);
  }
  if (consistent.empty()) return false;  // collision: terminate unsuccessfully

  // "If multiple assignments are possible, pick one randomly."
  const std::uint32_t choice = consistent[rng_.below(consistent.size())];
  for (unsigned v = 0; v < fanins.size(); ++v) {
    if (values_.is_assigned(fanins[v])) continue;
    values_.assign(fanins[v], tval_of((choice >> v) & 1u));
    if (network_.is_lut(fanins[v])) pending.push_back(fanins[v]);
  }
  return true;
}

}  // namespace simgen::core

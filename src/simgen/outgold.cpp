#include "simgen/outgold.hpp"

#include <algorithm>

namespace simgen::core {

std::vector<Target> make_outgold(std::span<const net::NodeId> class_members,
                                 bool first_value) {
  std::vector<net::NodeId> ordered(class_members.begin(), class_members.end());
  std::sort(ordered.begin(), ordered.end());
  std::vector<Target> targets;
  targets.reserve(ordered.size());
  bool value = first_value;
  for (net::NodeId node : ordered) {
    targets.push_back(Target{node, value});
    value = !value;
  }
  return targets;
}

std::string_view outgold_policy_name(OutGoldPolicy policy) {
  switch (policy) {
    case OutGoldPolicy::kAlternating: return "alternating";
    case OutGoldPolicy::kDepthAlternating: return "depth-alternating";
    case OutGoldPolicy::kAdaptiveComplement: return "adaptive-complement";
  }
  return "?";
}

std::vector<Target> make_outgold_with_policy(
    const net::Network& network, std::span<const net::NodeId> class_members,
    OutGoldPolicy policy, std::span<const std::uint64_t> observed_values) {
  switch (policy) {
    case OutGoldPolicy::kAlternating:
      return make_outgold(class_members);

    case OutGoldPolicy::kDepthAlternating: {
      // Alternate along the depth ordering instead of the id ordering:
      // the deepest member (processed first by Algorithm 1, with a fully
      // free network) anchors gold 0, its depth-neighbour gold 1, etc.
      std::vector<net::NodeId> ordered(class_members.begin(), class_members.end());
      std::stable_sort(ordered.begin(), ordered.end(),
                       [&](net::NodeId a, net::NodeId b) {
                         return network.level(a) > network.level(b);
                       });
      std::vector<Target> targets;
      targets.reserve(ordered.size());
      bool value = false;
      for (net::NodeId node : ordered) {
        targets.push_back(Target{node, value});
        value = !value;
      }
      return targets;
    }

    case OutGoldPolicy::kAdaptiveComplement: {
      if (observed_values.empty()) return make_outgold(class_members);
      // All members share their signature; start the alternation from the
      // complement of the observed value so the first (deepest-priority)
      // half of the targets demands the never-seen polarity.
      const bool observed =
          (observed_values[class_members.front()] & 1u) != 0;
      return make_outgold(class_members, !observed);
    }
  }
  return make_outgold(class_members);
}

void order_targets_by_depth(const net::Network& network,
                            std::vector<Target>& targets) {
  std::stable_sort(targets.begin(), targets.end(),
                   [&](const Target& a, const Target& b) {
                     return network.level(a.node) > network.level(b.node);
                   });
}

}  // namespace simgen::core

#include "simgen/implication.hpp"

#include <bit>
#include <vector>

namespace simgen::core {

ImplicationOutcome ImplicationEngine::run(NodeValues& values,
                                          std::span<const net::NodeId> seeds,
                                          ImplicationStrategy strategy) {
  ImplicationOutcome outcome;
  if (strategy == ImplicationStrategy::kNone) return outcome;

  queue_.clear();
  std::size_t head = 0;
  const auto push = [&](net::NodeId node) {
    if (queued_[node]) return;
    queued_[node] = true;
    queue_.push_back(node);
  };
  const auto enqueue_affected = [&](net::NodeId node) {
    if (network_.is_lut(node)) push(node);
    for (net::NodeId fanout : network_.fanouts(node))
      if (network_.is_lut(fanout)) push(fanout);
  };
  for (net::NodeId seed : seeds) enqueue_affected(seed);

  // Assigns a value and schedules every node whose row matching could
  // change: the assigned node itself and all of its LUT fanouts.
  const auto assign = [&](net::NodeId node, TVal value) {
    values.assign(node, value);
    ++outcome.assignments;
    enqueue_affected(node);
  };

  // Leaves queued_ flags consistent when returning early on conflict.
  const auto drain_flags = [&] {
    for (std::size_t i = head; i < queue_.size(); ++i) queued_[queue_[i]] = false;
  };

  while (head < queue_.size()) {
    const net::NodeId node = queue_[head++];
    queued_[node] = false;
    ++outcome.nodes_examined;
    const auto& node_rows = rows_.rows(node);
    const auto fanins = network_.fanins(node);

    // Bitmask form of the local assignment: one pass over the fanins,
    // then every row tests in a couple of bitwise ops (a row matches iff
    // no assigned literal contradicts it and the output agrees).
    std::uint32_t assigned_mask = 0;
    std::uint32_t value_bits = 0;
    for (unsigned v = 0; v < fanins.size(); ++v) {
      const TVal value = values.get(fanins[v]);
      if (value == TVal::kUnknown) continue;
      assigned_mask |= 1u << v;
      if (value == TVal::kOne) value_bits |= 1u << v;
    }
    const TVal out = values.get(node);

    // One scan accumulates everything both strategies need: the match
    // count, the last matching row, and the agreement summary (common
    // literal mask, polarity differences, output agreement).
    std::size_t match_count = 0;
    const Row* last_match = nullptr;
    std::uint32_t common_mask = ~0u;
    std::uint32_t first_bits = 0;
    std::uint32_t polarity_diff = 0;
    bool outputs_agree = true;
    bool first_output = false;
    for (const Row& row : node_rows) {
      if (out != TVal::kUnknown && out != tval_of(row.output)) continue;
      if ((row.cube.mask & assigned_mask) & (row.cube.bits ^ value_bits))
        continue;
      if (match_count == 0) {
        first_bits = row.cube.bits;
        first_output = row.output;
      } else {
        polarity_diff |= row.cube.bits ^ first_bits;
        if (row.output != first_output) outputs_agree = false;
      }
      common_mask &= row.cube.mask;
      last_match = &row;
      ++match_count;
    }

    if (match_count == 0) {
      // Zero matching rows: the assignment contradicts this node's
      // function — the conflict Algorithm 1's compareVals reports.
      outcome.conflict = true;
      outcome.conflict_node = node;
      drain_flags();
      return outcome;
    }

    if (strategy == ImplicationStrategy::kSimple) {
      // Definition 2.2: imply only from a uniquely matching row.
      if (match_count != 1) continue;
      const Row& row = *last_match;
      if (out == TVal::kUnknown) assign(node, tval_of(row.output));
      std::uint32_t to_assign = row.cube.mask & ~assigned_mask;
      while (to_assign != 0) {
        const unsigned v = static_cast<unsigned>(std::countr_zero(to_assign));
        to_assign &= to_assign - 1;
        if (!values.is_assigned(fanins[v]))
          assign(fanins[v], tval_of(row.cube.literal_value(v)));
      }
      continue;
    }

    // Advanced implication (Definition 4.1): assign every value all
    // matching rows agree on; positions they disagree on stay unknown.
    // Agreement on input v = every matching row has a literal on v
    // (common_mask) with one polarity (no polarity_diff).
    if (out == TVal::kUnknown && outputs_agree)
      assign(node, tval_of(first_output));
    std::uint32_t agreed = common_mask & ~polarity_diff & ~assigned_mask;
    agreed &= (fanins.size() >= 32) ? ~0u : ((1u << fanins.size()) - 1u);
    while (agreed != 0) {
      const unsigned v = static_cast<unsigned>(std::countr_zero(agreed));
      agreed &= agreed - 1;
      if (!values.is_assigned(fanins[v]))
        assign(fanins[v], tval_of((first_bits >> v) & 1u));
    }
  }
  return outcome;
}

ImplicationOutcome run_implications(const net::Network& network,
                                    const RowDatabase& rows, NodeValues& values,
                                    std::span<const net::NodeId> seeds,
                                    ImplicationStrategy strategy) {
  ImplicationEngine engine(network, rows);
  return engine.run(values, seeds, strategy);
}

ImplicationOutcome run_implications(const net::Network& network,
                                    const RowDatabase& rows, NodeValues& values,
                                    net::NodeId seed, ImplicationStrategy strategy) {
  return run_implications(network, rows, values, std::span(&seed, 1), strategy);
}

}  // namespace simgen::core

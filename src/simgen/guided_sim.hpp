/// \file guided_sim.hpp
/// \brief Guided-simulation driver: runs a strategy over equivalence
/// classes for a number of iterations (paper Figure 2, Section 6.1).
///
/// Each iteration walks the current equivalence classes, generates one
/// input vector per class (OUTgold targets for the SimGen arms, a random
/// complementary pair for RevS), packs vectors 64-at-a-time into
/// simulation words (don't-care PIs are filled with random bits at pack
/// time), simulates, and refines the classes. The evaluation arms match
/// Table 1: RevS, SI+RD, AI+RD, AI+DC, AI+DC+MFFC.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/eqclass.hpp"
#include "sim/simulator.hpp"
#include "simgen/generator.hpp"
#include "simgen/reverse_sim.hpp"

namespace simgen::core {

/// The five evaluation arms of the paper.
enum class Strategy : std::uint8_t {
  kRevS,      ///< Reverse simulation baseline (Zhang et al.).
  kSiRd,      ///< Simple implication + random decision.
  kAiRd,      ///< Advanced implication + random decision.
  kAiDc,      ///< Advanced implication + don't-care heuristic.
  kAiDcMffc,  ///< Advanced implication + DC + MFFC heuristics ("SimGen").
  kAiDcScoap, ///< Extension: advanced implication + DC + SCOAP tie-break.
};

[[nodiscard]] std::string_view strategy_name(Strategy strategy);

/// All arms, in the paper's Table 1 order.
inline constexpr Strategy kAllStrategies[] = {
    Strategy::kRevS, Strategy::kSiRd, Strategy::kAiRd, Strategy::kAiDc,
    Strategy::kAiDcMffc, Strategy::kAiDcScoap,
};

/// Generator configuration for a SimGen arm (not valid for kRevS).
[[nodiscard]] GeneratorOptions generator_options_for(Strategy strategy);

struct GuidedSimOptions {
  Strategy strategy = Strategy::kAiDcMffc;
  std::size_t iterations = 20;  ///< Paper Section 6.1: 20 iterations.
  std::uint64_t seed = 1;
  /// OUTgold selection policy for the SimGen arms (kAlternating is the
  /// paper's published default; the others are its named future-work
  /// extensions). Ignored by the RevS arm.
  OutGoldPolicy outgold_policy = OutGoldPolicy::kAlternating;
  /// Upper bound on OUTgold targets taken from one class per iteration
  /// (an evenly spaced subsample that preserves the 0/1 alternation).
  /// 0 = whole class, the paper's letter; a small cap (16) bounds the
  /// per-iteration cost on degenerate classes with hundreds of members
  /// without changing which classes are splittable.
  std::size_t max_targets_per_class = 0;
  /// Exponential per-class backoff: a class whose attempt produced no
  /// usable vector is retried after 1, then 2, 4, ... iterations (capped
  /// here). Classes dominated by true equivalences conflict on every
  /// OUTgold assignment; skipping their hopeless re-attempts changes no
  /// outcome but removes the dominant runtime waste. 0 disables backoff
  /// (every class is attempted every iteration). Applied identically to
  /// every strategy arm, so comparisons stay fair.
  unsigned max_backoff = 8;
};

struct GuidedSimResult {
  std::vector<std::uint64_t> cost_per_iteration;  ///< Eq. 5 after each iteration.
  double runtime_seconds = 0.0;
  std::uint64_t vectors_generated = 0;
  std::uint64_t vectors_skipped = 0;  ///< Unusable (no opposite-gold pair held).
  std::uint64_t conflicts = 0;        ///< Target-level generation conflicts.
};

/// Runs \p options.iterations rounds of guided simulation, refining
/// \p classes in place.
GuidedSimResult run_guided_simulation(sim::Simulator& simulator,
                                      sim::EquivClasses& classes,
                                      const GuidedSimOptions& options);

}  // namespace simgen::core

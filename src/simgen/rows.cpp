#include "simgen/rows.hpp"

#include "obs/metrics.hpp"

namespace simgen::core {

const std::vector<Row>& RowDatabase::rows(net::NodeId node) const {
  if (!computed_[node]) {
    static obs::Counter& computed = obs::counter("simgen.rows_computed");
    computed.inc();
    std::vector<Row> result;
    if (network_.is_lut(node)) {
      const tt::RowSet row_set = tt::compute_rows(network_.node(node).function);
      result.reserve(row_set.num_rows());
      for (const tt::Cube& cube : row_set.on.cubes)
        result.push_back(Row{cube, true});
      for (const tt::Cube& cube : row_set.off.cubes)
        result.push_back(Row{cube, false});
    }
    rows_[node] = std::move(result);
    computed_[node] = true;
  }
  return rows_[node];
}

bool row_matches(const net::Network& network, const NodeValues& values,
                 net::NodeId node, const Row& row) {
  const TVal out = values.get(node);
  if (out != TVal::kUnknown && out != tval_of(row.output)) return false;
  const auto fanins = network.fanins(node);
  for (unsigned v = 0; v < fanins.size(); ++v) {
    if (!row.cube.has_literal(v)) continue;
    const TVal in = values.get(fanins[v]);
    if (in != TVal::kUnknown && in != tval_of(row.cube.literal_value(v)))
      return false;
  }
  return true;
}

std::vector<std::size_t> matching_rows(const net::Network& network,
                                       const RowDatabase& rows,
                                       const NodeValues& values, net::NodeId node) {
  std::vector<std::size_t> result;
  const auto& all = rows.rows(node);
  for (std::size_t i = 0; i < all.size(); ++i)
    if (row_matches(network, values, node, all[i])) result.push_back(i);
  static obs::Counter& covered = obs::counter("simgen.rows_covered");
  covered.inc(result.size());
  return result;
}

}  // namespace simgen::core

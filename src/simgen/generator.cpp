#include "simgen/generator.hpp"

namespace simgen::core {

GeneratorStats::GeneratorStats(obs::register_t)
    : targets_attempted("simgen.targets_attempted"),
      targets_satisfied("simgen.targets_satisfied"),
      conflicts("simgen.conflicts"),
      implications("simgen.implications"),
      decisions("simgen.decisions") {}

PatternGenerator::PatternGenerator(const net::Network& network,
                                   GeneratorOptions options, std::uint64_t seed)
    : network_(network),
      options_(options),
      rows_(network),
      mffc_(network),
      rng_(seed),
      values_(network.num_nodes()),
      implication_(network, rows_),
      decision_(network, rows_),
      in_cone_stamp_(network.num_nodes(), 0),
      processed_stamp_(network.num_nodes(), 0) {
  network_.for_each_node([&](net::NodeId id) {
    if (network_.is_constant(id)) constants_.push_back(id);
  });
  if (options_.decision == DecisionStrategy::kDontCareScoap) {
    scoap_.emplace(net::compute_scoap(network_));
    decision_.set_scoap(&*scoap_);
  }
}

void PatternGenerator::mark_cone(net::NodeId root) {
  cone_stack_.clear();
  cone_stack_.push_back(root);
  in_cone_stamp_[root] = stamp_;
  while (!cone_stack_.empty()) {
    const net::NodeId node = cone_stack_.back();
    cone_stack_.pop_back();
    for (net::NodeId fanin : network_.fanins(node)) {
      if (in_cone_stamp_[fanin] == stamp_) continue;
      in_cone_stamp_[fanin] = stamp_;
      cone_stack_.push_back(fanin);
    }
  }
}

VectorResult PatternGenerator::generate(std::span<const Target> targets) {
  values_.reset();
  // Constants carry their fixed values from the start so implications can
  // see through them (and conflicts against them are detected).
  for (net::NodeId id : constants_)
    values_.assign(id, tval_of(network_.node(id).constant_value));

  // Algorithm 1 line 2: process targets furthest from the PIs first.
  std::vector<Target> ordered(targets.begin(), targets.end());
  order_targets_by_depth(network_, ordered);

  VectorResult result;
  for (const Target& target : ordered) {
    stats_.targets_attempted.inc();
    bool satisfied = false;
    if (values_.is_assigned(target.node)) {
      // A previous target's propagation already fixed this node; it either
      // happens to agree with the OUTgold value or this target is lost
      // (no backtracking).
      satisfied = values_.get(target.node) == tval_of(target.gold);
      if (!satisfied) stats_.conflicts.inc();
    } else {
      satisfied = process_target(target);
    }
    if (satisfied) {
      stats_.targets_satisfied.inc();
      ++(target.gold ? result.satisfied_one : result.satisfied_zero);
    }
  }

  result.pi_values.reserve(network_.num_pis());
  for (net::NodeId pi : network_.pis()) result.pi_values.push_back(values_.get(pi));
  return result;
}

bool PatternGenerator::process_target(const Target& target) {
  // Algorithm 1 line 4: snapshot so a conflict can restore initVals.
  const std::size_t init_mark = values_.mark();

  // Line 6: listDfs — the fanin cone of the target (stamped membership).
  ++stamp_;
  mark_cone(target.node);

  // Line 5: nodeVals[targetNode] = OUTgold[targetNode].
  values_.assign(target.node, tval_of(target.gold));

  // Lines 8-16: interleave implication and decision until the cone is
  // saturated or a conflict occurs. `seed_start` tracks which trail
  // entries still need to be propagated by the next implication run.
  std::size_t seed_start = init_mark;
  while (true) {
    // Line 9: implication from everything assigned since the last run.
    const auto& trail = values_.trail();
    const std::span<const net::NodeId> seeds(trail.data() + seed_start,
                                             trail.size() - seed_start);
    const ImplicationOutcome implied =
        implication_.run(values_, seeds, options_.implication);
    stats_.implications.inc(implied.assignments);
    if (implied.conflict) {
      // Lines 11-13: conflict — restore initVals, abandon this target.
      stats_.conflicts.inc();
      values_.rollback_to(init_mark);
      return false;
    }
    seed_start = values_.trail().size();

    // Line 15: latestUpdated — the most recently assigned, not yet
    // processed node inside the target's cone that still has work (an
    // unassigned fanin to decide). DC-left fanins never enter the trail,
    // so their subtrees are correctly left free.
    net::NodeId candidate = net::kNullNode;
    for (std::size_t i = values_.trail().size(); i-- > init_mark;) {
      const net::NodeId node = values_.trail()[i];
      if (in_cone_stamp_[node] != stamp_) continue;
      if (processed_stamp_[node] == stamp_) continue;
      if (!network_.is_lut(node)) continue;
      bool has_open_fanin = false;
      for (net::NodeId fanin : network_.fanins(node)) {
        if (!values_.is_assigned(fanin)) {
          has_open_fanin = true;
          break;
        }
      }
      processed_stamp_[node] = stamp_;  // visited either way
      if (has_open_fanin) {
        candidate = node;
        break;
      }
    }
    if (candidate == net::kNullNode) return true;  // cone saturated: success

    // Line 16: decision at the candidate.
    const DecisionOutcome outcome =
        decision_.decide(values_, candidate, options_.decision,
                         options_.weights, &mffc_, rng_);
    if (!outcome.made) {
      stats_.conflicts.inc();
      values_.rollback_to(init_mark);
      return false;
    }
    stats_.decisions.inc();
  }
}

}  // namespace simgen::core

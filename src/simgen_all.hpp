/// \file simgen_all.hpp
/// \brief Umbrella header: the complete public API of the SimGen library.
///
/// Typical flow (see examples/quickstart.cpp):
///   1. Obtain a LUT network — parse BLIF/BENCH, map an AIGER file, or
///      generate a benchmark (simgen::benchgen).
///   2. Build a sim::Simulator and sim::EquivClasses, run random rounds.
///   3. Run core::run_guided_simulation with Strategy::kAiDcMffc to split
///      the classes random patterns cannot.
///   4. Hand the survivors to sweep::Sweeper, or call
///      sweep::check_equivalence for end-to-end CEC of two networks.
#pragma once

#include "aig/aig.hpp"
#include "aig/aig_to_network.hpp"
#include "aig/putontop.hpp"
#include "bdd/bdd.hpp"
#include "bdd/network_bdd.hpp"
#include "benchgen/arith.hpp"
#include "benchgen/generator.hpp"
#include "benchgen/suite.hpp"
#include "check/drat.hpp"
#include "check/lint.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "io/blif.hpp"
#include "io/verilog.hpp"
#include "mapping/cuts.hpp"
#include "mapping/lut_mapper.hpp"
#include "network/analysis.hpp"
#include "network/mffc.hpp"
#include "network/network.hpp"
#include "network/scoap.hpp"
#include "obs/inspect.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sat/dimacs.hpp"
#include "sat/encoder.hpp"
#include "sat/proof.hpp"
#include "sat/solver.hpp"
#include "sim/eqclass.hpp"
#include "sim/random_sim.hpp"
#include "sim/simulator.hpp"
#include "simgen/decision.hpp"
#include "simgen/generator.hpp"
#include "simgen/guided_sim.hpp"
#include "simgen/implication.hpp"
#include "simgen/outgold.hpp"
#include "simgen/reverse_sim.hpp"
#include "simgen/rows.hpp"
#include "simgen/tval.hpp"
#include "sweep/cec.hpp"
#include "sweep/fraig.hpp"
#include "sweep/reduce.hpp"
#include "sweep/sweeper.hpp"
#include "tt/cube.hpp"
#include "tt/isop.hpp"
#include "tt/truth_table.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

/// \file pattern_block.hpp
/// \brief Wide simulation blocks: configuration and kernel dispatch.
///
/// A *pattern block* is the simulator's unit of work: W consecutive
/// 64-bit pattern words per node (so one block carries 64*W input
/// vectors). The block evaluation loop is compiled three times — a
/// portable scalar version, an AVX2 version (256-bit lanes, 4 words per
/// op) and an AVX-512 version (512-bit lanes, 8 words per op) — and the
/// kernel is chosen at runtime from CPUID, an environment override, or an
/// explicit per-simulator request. All three kernels compute pure bitwise
/// algebra over the same words in the same order, so their results are
/// bit-identical by construction; the property suite
/// (test_sim_kernels.cpp) and the fuzzer's --kernel-sweep oracle enforce
/// it continuously.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace simgen::sim {

/// Which compiled evaluation kernel a Simulator uses.
enum class SimKernel : std::uint8_t {
  kAuto = 0,    ///< Resolve at construction: env override, then best ISA.
  kScalar = 1,  ///< Portable 64-bit loop; always available.
  kAvx2 = 2,    ///< 256-bit lanes (4 words per op).
  kAvx512 = 3,  ///< 512-bit lanes (8 words per op).
};

/// Human-readable kernel name ("scalar", "avx2", "avx512", "auto").
[[nodiscard]] std::string_view sim_kernel_name(SimKernel kernel) noexcept;

/// Lane width in bits of one kernel op (64 / 256 / 512; 0 for kAuto).
[[nodiscard]] std::size_t sim_kernel_width_bits(SimKernel kernel) noexcept;

/// True when \p kernel was compiled in *and* the running CPU supports it.
/// kScalar is always available; kAuto is reported available.
[[nodiscard]] bool sim_kernel_available(SimKernel kernel) noexcept;

/// The kernel kAuto resolves to: the SIMGEN_SIM_KERNEL environment
/// variable ("scalar" / "avx2" / "avx512") when set and available, else
/// the widest available ISA. An unavailable request falls back to the
/// widest available kernel with a one-time warning, never an error, so a
/// pinned CI environment still runs on older hardware.
[[nodiscard]] SimKernel default_sim_kernel() noexcept;

/// Process-wide override of what kAuto resolves to (kAuto = back to the
/// environment/CPUID default). Used by the kernel-sweep fuzz oracle and
/// the ISA property tests; reads are atomic, so setting it while another
/// thread *constructs* a Simulator is safe (construction snapshots the
/// value; running simulators are unaffected).
void set_default_sim_kernel(SimKernel kernel) noexcept;

/// Words per pattern block (W) a default-constructed Simulator uses: the
/// SIMGEN_SIM_BLOCK_WORDS environment variable when set (clamped to
/// [1, 64]), else 8 (512 bits — one AVX-512 op or two AVX2 ops per node
/// per logic op). Class partitions, sweep verdicts, and journal totals
/// are invariant under W (see DESIGN.md section 16), so this is purely a
/// throughput/memory knob.
[[nodiscard]] std::size_t default_block_words() noexcept;

/// Process-wide override of the default block width (0 = back to the
/// environment default). Same atomicity contract as
/// set_default_sim_kernel.
void set_default_block_words(std::size_t words) noexcept;

/// RAII save/restore of both process-wide simulation defaults; the
/// kernel-sweep oracle brackets each differential rerun with one of
/// these so a throw cannot leak an override into later iterations.
class ScopedSimConfig {
 public:
  ScopedSimConfig(SimKernel kernel, std::size_t block_words) noexcept;
  ~ScopedSimConfig();
  ScopedSimConfig(const ScopedSimConfig&) = delete;
  ScopedSimConfig& operator=(const ScopedSimConfig&) = delete;

 private:
  SimKernel saved_kernel_;
  std::size_t saved_words_;
};

}  // namespace simgen::sim

/// \file simulator.hpp
/// \brief Block-parallel circuit simulation (64*W patterns per pass).
///
/// Simulation is the workhorse of the sweeping flow (paper Section 2.3):
/// it evaluates every node on a batch of input vectors so the equivalence
/// classes can be refined without SAT. Nodes are evaluated through the
/// ISOP covers of their functions, which is both faster than minterm
/// enumeration for typical LUTs and shares the row machinery SimGen uses.
///
/// The data path is *wide*: each node owns a pattern block of W
/// consecutive 64-bit words (`values_[node*W + w]`), and one simulate
/// call evaluates up to 64*W patterns through a compiled evaluation tape
/// run by a scalar, AVX2, or AVX-512 kernel (runtime-dispatched; see
/// pattern_block.hpp). All kernels are bit-identical, and callers that
/// consume patterns word-by-word (class refinement, witness replay) see
/// exactly the words they asked for — lanes beyond `valid_words` are
/// unspecified and must never be read.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "network/network.hpp"
#include "obs/metrics.hpp"
#include "sim/pattern_block.hpp"
#include "sim/sim_tape.hpp"
#include "tt/isop.hpp"
#include "util/stopwatch.hpp"

namespace simgen::sim {

/// A batch of 64 input vectors: one 64-bit word per PI, bit p of word i is
/// the value of PI i in pattern p.
using PatternWord = std::uint64_t;

/// Evaluates a network on blocks of 64*W patterns at a time.
///
/// The simulator owns per-node value blocks and the compiled evaluation
/// tape; it is constructed once per network and reused across rounds.
/// Word-granular readers pick which word of the last block they observe
/// via set_observed_word(); value()/values()/value_bit() then read that
/// word, which keeps every pre-block caller working unchanged (they
/// observe word 0 of a one-word simulate_word call).
class Simulator {
 public:
  /// \p block_words == 0 means default_block_words(); \p kernel kAuto
  /// resolves via default_sim_kernel(). An explicitly requested kernel
  /// that is unavailable falls back to the default with a warning.
  explicit Simulator(const net::Network& network, std::size_t block_words = 0,
                     SimKernel kernel = SimKernel::kAuto);

  /// Simulates one block. \p pi_blocks must hold num_pis rows of
  /// block_words() words (row-major: word w of PI i at [i*W + w]); only
  /// the first \p valid_words words of each row are read, and only those
  /// words of each node's value block are defined afterwards.
  /// Resets the observed word to 0.
  void simulate_block(std::span<const PatternWord> pi_blocks,
                      std::size_t valid_words);

  /// Simulates one batch of 64 patterns. \p pi_words must have one word
  /// per PI, in PI order. Equivalent to a valid_words == 1 block.
  void simulate_word(std::span<const PatternWord> pi_words);

  /// The random pattern word for (seed, pi_index, word_index): a pure
  /// function, so pattern content is independent of PI iteration order,
  /// block width, and whatever any other consumer drew from a shared
  /// generator earlier (the pre-block simulator drew per-PI words from
  /// one stateful Rng in PI order, which silently re-keyed every pattern
  /// when a reader changed — see DESIGN.md section 16).
  [[nodiscard]] static PatternWord random_pattern_word(
      std::uint64_t seed, std::uint64_t pi_index,
      std::uint64_t word_index) noexcept;

  /// Simulates \p valid_words consecutive random words: word w of the
  /// block is random_pattern_word(seed, pi, first_word_index + w).
  void simulate_random_block(std::uint64_t seed,
                             std::uint64_t first_word_index,
                             std::size_t valid_words);

  /// One random word — a valid_words == 1 block at \p word_index.
  void simulate_random_word(std::uint64_t seed, std::uint64_t word_index);

  /// Value word of \p node at word \p w of the last block.
  [[nodiscard]] PatternWord value_word(net::NodeId node,
                                       std::size_t w) const {
    return values_[static_cast<std::size_t>(node) * block_words_ + w];
  }

  /// Value word of \p node at the observed word.
  [[nodiscard]] PatternWord value(net::NodeId node) const {
    return value_word(node, observed_word_);
  }

  /// All node values at the observed word (indexed by NodeId).
  /// Materialized lazily into a side buffer on first use after a
  /// simulate/set_observed_word; the span stays valid until then.
  [[nodiscard]] std::span<const PatternWord> values() const;

  /// Single pattern bit \p pattern (0..63) of \p node at the observed word.
  [[nodiscard]] bool value_bit(net::NodeId node, unsigned pattern) const {
    return (value(node) >> pattern) & 1u;
  }

  /// Selects which word of the last block value()/values()/value_bit()
  /// read. Must be < valid_words().
  void set_observed_word(std::size_t w);
  [[nodiscard]] std::size_t observed_word() const noexcept {
    return observed_word_;
  }

  /// Words per pattern block (W) this simulator was built with.
  [[nodiscard]] std::size_t block_words() const noexcept {
    return block_words_;
  }
  /// Defined words in the last simulated block (0 before the first call).
  [[nodiscard]] std::size_t valid_words() const noexcept {
    return valid_words_;
  }
  /// The resolved (never kAuto) evaluation kernel.
  [[nodiscard]] SimKernel kernel() const noexcept { return kernel_; }

  /// Wall seconds spent inside simulate calls since construction — the
  /// sim-phase cost the BENCH_*.json `sim_wall_seconds` field reports.
  [[nodiscard]] double kernel_seconds() const noexcept {
    return kernel_watch_.seconds();
  }

  [[nodiscard]] const net::Network& network() const noexcept {
    return network_;
  }

 private:
  void build_tape();

  const net::Network& network_;
  std::size_t block_words_;
  SimKernel kernel_;
  detail::KernelFn kernel_fn_;
  detail::Tape tape_;
  std::vector<PatternWord> values_;      ///< num_nodes rows of W words.
  std::vector<PatternWord> pi_scratch_;  ///< num_pis rows of W words.
  std::size_t valid_words_ = 0;
  std::size_t observed_word_ = 0;
  mutable std::vector<PatternWord> compat_values_;  ///< values() buffer.
  mutable bool compat_dirty_ = true;
  util::Stopwatch kernel_watch_;
  /// Registered counters: "sim.words" counts 64-bit word-equivalents
  /// (valid_words per block, so totals are comparable across lane widths
  /// and block sizes), "sim.blocks" counts simulate calls. Members (not
  /// function-local statics) so the hot path stays a plain add with no
  /// static-init guard.
  obs::Counter words_{"sim.words"};
  obs::Counter blocks_{"sim.blocks"};
};

}  // namespace simgen::sim

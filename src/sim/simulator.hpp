/// \file simulator.hpp
/// \brief Word-parallel circuit simulation (64 patterns per pass).
///
/// Simulation is the workhorse of the sweeping flow (paper Section 2.3):
/// it evaluates every node on a batch of input vectors so the equivalence
/// classes can be refined without SAT. Nodes are evaluated through the
/// ISOP covers of their functions, which is both faster than minterm
/// enumeration for typical LUTs and shares the row machinery SimGen uses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "network/network.hpp"
#include "obs/metrics.hpp"
#include "tt/isop.hpp"
#include "util/rng.hpp"

namespace simgen::sim {

/// A batch of 64 input vectors: one 64-bit word per PI, bit p of word i is
/// the value of PI i in pattern p.
using PatternWord = std::uint64_t;

/// Evaluates a network on 64 patterns at a time.
///
/// The simulator owns per-node value words and precomputed ON-set covers;
/// it is constructed once per network and reused across rounds.
class Simulator {
 public:
  explicit Simulator(const net::Network& network);

  /// Simulates one batch. \p pi_words must have one word per PI, in PI
  /// order. All node values become available via value().
  void simulate_word(std::span<const PatternWord> pi_words);

  /// Simulates a batch of uniform random patterns drawn from \p rng.
  void simulate_random_word(util::Rng& rng);

  /// Value word of \p node from the last simulate call.
  [[nodiscard]] PatternWord value(net::NodeId node) const { return values_[node]; }

  /// All node value words (indexed by NodeId).
  [[nodiscard]] std::span<const PatternWord> values() const noexcept { return values_; }

  /// Evaluates one node's single-bit output for a complete single-pattern
  /// PI assignment given as bit 0 of each PI word; used by tests.
  [[nodiscard]] bool value_bit(net::NodeId node, unsigned pattern) const {
    return (values_[node] >> pattern) & 1u;
  }

  [[nodiscard]] const net::Network& network() const noexcept { return network_; }

 private:
  const net::Network& network_;
  std::vector<tt::Cover> on_covers_;  ///< Per-node ON-set cover (LUTs only).
  std::vector<PatternWord> values_;
  std::vector<PatternWord> pi_scratch_;
  /// Registered "sim.words" counter, incremented once per simulated word.
  /// A member (not a function-local static) so the hot path stays a plain
  /// add with no static-init guard in simulate_word.
  obs::Counter words_{"sim.words"};
};

}  // namespace simgen::sim

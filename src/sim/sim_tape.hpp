/// \file sim_tape.hpp
/// \brief Compiled evaluation tape for wide simulation kernels.
///
/// The Simulator flattens the network's topological evaluation order into
/// a *tape*: a flat op array plus flat cube/literal side tables. The hot
/// kernels then run the tape with zero pointer chasing into network
/// structures — every ISA variant (scalar/AVX2/AVX-512) executes the same
/// op stream over the same words in the same order, which is what makes
/// their outputs bit-identical. Internal header: only simulator.cpp and
/// the sim_kernel_*.cpp translation units include it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simgen::sim::detail {

/// One ISOP cube of a LUT's ON-cover: the AND of the literals in
/// [lit_begin, lit_end) of Tape::lits. A cube with no literals is the
/// constant-true term (matches the single-word evaluator, where the AND
/// accumulator starts at all-ones and is never narrowed).
struct TapeCube {
  std::uint32_t lit_begin = 0;
  std::uint32_t lit_end = 0;
};

/// One node evaluation. `dst` is the node index (row in the value
/// block array); `src` is the PI index for kPi, the fanin node index for
/// kCopy, and unused otherwise. kLut ORs the cubes in
/// [cube_begin, cube_end) of Tape::cubes.
struct TapeOp {
  enum class Kind : std::uint8_t {
    kConst0,  ///< dst <- 0...0
    kConst1,  ///< dst <- 1...1
    kPi,      ///< dst <- pi_blocks[src]
    kCopy,    ///< dst <- values[src] (single positive unit cube)
    kLut,     ///< dst <- OR of AND-cubes over fanin rows
  };
  Kind kind = Kind::kConst0;
  std::uint32_t dst = 0;
  std::uint32_t src = 0;
  std::uint32_t cube_begin = 0;
  std::uint32_t cube_end = 0;
};

/// Literal encoding: (fanin node index << 1) | complemented.
using TapeLit = std::uint32_t;

[[nodiscard]] constexpr TapeLit make_tape_lit(std::uint32_t node,
                                              bool complemented) noexcept {
  return (node << 1) | static_cast<std::uint32_t>(complemented);
}
[[nodiscard]] constexpr std::uint32_t tape_lit_node(TapeLit lit) noexcept {
  return lit >> 1;
}
[[nodiscard]] constexpr bool tape_lit_complemented(TapeLit lit) noexcept {
  return (lit & 1u) != 0;
}

/// The compiled network: ops in topological order plus cube/literal
/// side tables. Built once per Simulator; immutable afterwards.
struct Tape {
  std::vector<TapeOp> ops;
  std::vector<TapeCube> cubes;
  std::vector<TapeLit> lits;
};

/// Kernel entry point. Evaluates the tape over blocks of `block_words`
/// 64-bit words per row, computing only the first `words` words of every
/// row (1 <= words <= block_words). `pi_blocks` holds num_pis rows of
/// block_words words; `values` holds num_nodes rows of block_words words.
/// Words at index >= `words` are left untouched (their content is
/// unspecified and must never be read back).
using KernelFn = void (*)(const Tape& tape, const std::uint64_t* pi_blocks,
                          std::uint64_t* values, std::size_t block_words,
                          std::size_t words);

/// The three compiled kernels. run_tape_scalar always exists;
/// run_tape_avx2 / run_tape_avx512 exist only when the build enabled the
/// matching SIMGEN_SIM_HAVE_* define (pattern_block.cpp guards the
/// references).
void run_tape_scalar(const Tape& tape, const std::uint64_t* pi_blocks,
                     std::uint64_t* values, std::size_t block_words,
                     std::size_t words);
#if defined(SIMGEN_SIM_HAVE_AVX2)
void run_tape_avx2(const Tape& tape, const std::uint64_t* pi_blocks,
                   std::uint64_t* values, std::size_t block_words,
                   std::size_t words);
#endif
#if defined(SIMGEN_SIM_HAVE_AVX512)
void run_tape_avx512(const Tape& tape, const std::uint64_t* pi_blocks,
                     std::uint64_t* values, std::size_t block_words,
                     std::size_t words);
#endif

}  // namespace simgen::sim::detail

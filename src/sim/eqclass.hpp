/// \file eqclass.hpp
/// \brief Equivalence-class management by signature refinement.
///
/// An equivalence class is a set of nodes whose outputs have agreed on
/// every simulated pattern so far (paper Section 2.3). Classes shrink
/// monotonically: each simulation batch partitions every class by the
/// nodes' 64-bit value words. The class manager also implements the
/// paper's cost metric, Equation 5: cost = sum over classes (|class|-1),
/// the worst-case number of pairwise SAT calls left.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "network/network.hpp"
#include "sim/simulator.hpp"

namespace simgen::sim {

/// Dense index of a live equivalence class within one EquivClasses
/// snapshot. Strong type: a class index is not a node id, and refine /
/// remove_node invalidate it (classes are renumbered as they split or
/// drop), so holding one across a mutation is a bug the explicit
/// re-construction makes visible.
struct ClassIdTag {};
using ClassId = util::StrongId<ClassIdTag>;

/// Partition of candidate nodes into simulation-equivalence classes.
///
/// Singleton classes are dropped eagerly (they contribute nothing to the
/// cost and need no proving). Node order inside a class follows the
/// original candidate order, so class[0] is a stable representative.
class EquivClasses {
 public:
  /// Starts with all \p candidates in one class (nothing distinguished yet).
  explicit EquivClasses(std::vector<net::NodeId> candidates);

  /// Convenience: all internal LUT nodes of \p network as candidates.
  static EquivClasses over_luts(const net::Network& network);

  /// Adopts an explicit partition verbatim (no singleton dropping, no
  /// consistency filtering). For tests and deserialization; feed the
  /// result to check::lint_eqclasses to validate it.
  static EquivClasses from_classes(std::vector<std::vector<net::NodeId>> classes);

  /// Splits every class according to the last simulation block in
  /// \p simulator: refines with each valid word in order (word 0 first),
  /// so the resulting partition — and the per-word split trajectory — is
  /// exactly what block_words == 1 simulation of the same words produces.
  /// The block stays cache-resident across the word passes, which is
  /// where the wide data path pays off on the refinement side. Returns
  /// the total number of class splits.
  std::size_t refine(const Simulator& simulator);

  /// Splits every class by value word \p w (< valid_words()) of the last
  /// simulation block. Returns the number of classes that split.
  std::size_t refine_word(const Simulator& simulator, std::size_t w);

  /// Same, but with an externally supplied value array indexed by NodeId.
  std::size_t refine(std::span<const PatternWord> node_values);

  /// Removes \p node from its class (used after a SAT proof of
  /// equivalence merges it into the representative, or to retire nodes).
  void remove_node(net::NodeId node);

  /// Paper Equation 5: worst-case remaining SAT calls.
  [[nodiscard]] std::uint64_t cost() const noexcept;

  /// Number of live (size >= 2) classes.
  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_.size(); }

  [[nodiscard]] std::span<const net::NodeId> class_members(ClassId index) const {
    return classes_[index];
  }

  /// Total number of nodes still inside live classes.
  [[nodiscard]] std::size_t num_live_nodes() const noexcept;

  /// True when no class has two or more members: simulation can do no
  /// more and every remaining pair is proven or singleton.
  [[nodiscard]] bool fully_refined() const noexcept { return classes_.empty(); }

 private:
  void drop_singletons();

  /// Shared refinement body over any NodeId -> PatternWord accessor;
  /// \p width_words only annotates the journal's pattern-batch record.
  template <typename ValueOf>
  std::size_t refine_impl(ValueOf&& value_of, std::uint64_t width_words);

  std::vector<std::vector<net::NodeId>> classes_;
};

}  // namespace simgen::sim

/// \file sim_kernel_avx2.cpp
/// \brief AVX2 instantiation of the simulation kernel (256-bit lanes).
///
/// Compiled with -mavx2 (per-source flag in src/CMakeLists.txt); the
/// dispatcher only calls run_tape_avx2 after __builtin_cpu_supports
/// confirmed the ISA, so the unconditional intrinsics here are safe.
#if defined(SIMGEN_SIM_HAVE_AVX2)

#include <immintrin.h>

#include "sim/sim_kernel_body.hpp"
#include "sim/sim_tape.hpp"

namespace simgen::sim::detail {
namespace {

struct Avx2Traits {
  static constexpr std::size_t kWords = 4;
  using Reg = __m256i;
  static Reg zero() noexcept { return _mm256_setzero_si256(); }
  static Reg ones() noexcept {
    return _mm256_set1_epi64x(static_cast<long long>(~0ull));
  }
  static Reg load(const std::uint64_t* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, Reg r) noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), r);
  }
  static Reg and_(Reg a, Reg b) noexcept { return _mm256_and_si256(a, b); }
  static Reg andnot(Reg a, Reg b) noexcept {
    return _mm256_andnot_si256(a, b);  // ~a & b
  }
  static Reg or_(Reg a, Reg b) noexcept { return _mm256_or_si256(a, b); }
};

}  // namespace

void run_tape_avx2(const Tape& tape, const std::uint64_t* pi_blocks,
                   std::uint64_t* values, std::size_t block_words,
                   std::size_t words) {
  run_tape<Avx2Traits>(tape, pi_blocks, values, block_words, words);
}

}  // namespace simgen::sim::detail

#endif  // SIMGEN_SIM_HAVE_AVX2

#include "sim/random_sim.hpp"

namespace simgen::sim {

RandomSimResult run_random_simulation(Simulator& simulator, EquivClasses& classes,
                                      const RandomSimOptions& options) {
  RandomSimResult result;
  util::Rng rng(options.seed);
  util::Stopwatch watch;
  watch.start();
  std::size_t flat = 0;
  std::uint64_t last_cost = classes.cost();
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    simulator.simulate_random_word(rng);
    classes.refine(simulator);
    ++result.rounds_run;
    const std::uint64_t cost = classes.cost();
    result.cost_per_round.push_back(cost);
    if (classes.fully_refined()) break;
    if (options.stagnation_rounds > 0) {
      flat = (cost == last_cost) ? flat + 1 : 0;
      if (flat >= options.stagnation_rounds) break;
    }
    last_cost = cost;
  }
  watch.stop();
  result.runtime_seconds = watch.seconds();
  return result;
}

}  // namespace simgen::sim

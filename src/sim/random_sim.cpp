#include "sim/random_sim.hpp"

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace simgen::sim {

RandomSimResult run_random_simulation(Simulator& simulator, EquivClasses& classes,
                                      const RandomSimOptions& options) {
  obs::Span span("random_sim.run");
  obs::PhaseScope phase(obs::PhaseId::kRandomSim);
  RandomSimResult result;
  util::Rng rng(options.seed);
  util::Stopwatch watch;
  watch.start();
  std::size_t flat = 0;
  std::uint64_t last_cost = classes.cost();
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    {
      obs::PatternScope batch(obs::PatternSource::kRandom, 0);
      simulator.simulate_random_word(rng);
      classes.refine(simulator);
    }
    ++result.rounds_run;
    const std::uint64_t cost = classes.cost();
    result.cost_per_round.push_back(cost);
    if (classes.fully_refined()) break;
    if (options.stagnation_rounds > 0) {
      flat = (cost == last_cost) ? flat + 1 : 0;
      if (flat >= options.stagnation_rounds) break;
    }
    last_cost = cost;
  }
  watch.stop();
  result.runtime_seconds = watch.seconds();
  static obs::Counter& rounds = obs::counter("sim.random_rounds");
  rounds.inc(result.rounds_run);
  span.arg("rounds", static_cast<double>(result.rounds_run));
  span.arg("final_cost", static_cast<double>(classes.cost()));
  phase.set_result(classes.cost(), classes.num_classes());
  return result;
}

}  // namespace simgen::sim

#include "sim/random_sim.hpp"

#include <algorithm>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace simgen::sim {

RandomSimResult run_random_simulation(Simulator& simulator, EquivClasses& classes,
                                      const RandomSimOptions& options) {
  obs::Span span("random_sim.run");
  obs::PhaseScope phase(obs::PhaseId::kRandomSim);
  RandomSimResult result;
  util::Stopwatch watch;
  watch.start();
  std::size_t flat = 0;
  std::uint64_t last_cost = classes.cost();
  // Rounds are simulated a block at a time (word w of the block is global
  // round `round + w`, keyed only by (seed, pi, round) — see
  // Simulator::random_pattern_word) but refined and accounted one word at
  // a time, so the cost trajectory, journal, and early-stop decisions are
  // identical at every block width. A stagnation break mid-block leaves
  // the rest of the block simulated but unconsumed.
  std::size_t round = 0;
  bool stop = false;
  while (round < options.max_rounds && !stop) {
    const std::size_t chunk =
        std::min(simulator.block_words(), options.max_rounds - round);
    simulator.simulate_random_block(options.seed, round, chunk);
    for (std::size_t w = 0; w < chunk; ++w) {
      {
        obs::PatternScope batch(obs::PatternSource::kRandom, 0);
        classes.refine_word(simulator, w);
      }
      // Downstream consumers (guided simulation's output-goal seeding)
      // read node values of the last refined round.
      simulator.set_observed_word(w);
      ++result.rounds_run;
      ++round;
      const std::uint64_t cost = classes.cost();
      result.cost_per_round.push_back(cost);
      if (classes.fully_refined()) {
        stop = true;
        break;
      }
      if (options.stagnation_rounds > 0) {
        flat = (cost == last_cost) ? flat + 1 : 0;
        if (flat >= options.stagnation_rounds) {
          stop = true;
          break;
        }
      }
      last_cost = cost;
    }
  }
  watch.stop();
  result.runtime_seconds = watch.seconds();
  static obs::Counter& rounds = obs::counter("sim.random_rounds");
  rounds.inc(result.rounds_run);
  span.arg("rounds", static_cast<double>(result.rounds_run));
  span.arg("final_cost", static_cast<double>(classes.cost()));
  phase.set_result(classes.cost(), classes.num_classes());
  return result;
}

}  // namespace simgen::sim

#include "sim/pattern_block.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/logging.hpp"

namespace simgen::sim {
namespace {

/// Widest kernel the build compiled in *and* the running CPU executes.
SimKernel detect_best_kernel() noexcept {
#if defined(SIMGEN_SIM_HAVE_AVX512)
  if (__builtin_cpu_supports("avx512f")) return SimKernel::kAvx512;
#endif
#if defined(SIMGEN_SIM_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return SimKernel::kAvx2;
#endif
  return SimKernel::kScalar;
}

SimKernel best_kernel() noexcept {
  static const SimKernel kernel = detect_best_kernel();
  return kernel;
}

/// Parse SIMGEN_SIM_KERNEL once; an unavailable or unparseable request
/// falls back (with one warning) instead of failing, so a pinned script
/// still runs on hardware without the ISA.
SimKernel env_kernel() noexcept {
  static const SimKernel kernel = [] {
    const char* env = std::getenv("SIMGEN_SIM_KERNEL");
    if (env == nullptr || *env == '\0') return best_kernel();
    const std::string_view text(env);
    SimKernel requested = SimKernel::kAuto;
    if (text == "scalar") requested = SimKernel::kScalar;
    else if (text == "avx2") requested = SimKernel::kAvx2;
    else if (text == "avx512") requested = SimKernel::kAvx512;
    else if (text == "auto") return best_kernel();
    else {
      util::warnf(
          "ignoring invalid SIMGEN_SIM_KERNEL=%s (want scalar|avx2|avx512)",
          env);
      return best_kernel();
    }
    if (sim_kernel_available(requested)) return requested;
    util::warnf("SIMGEN_SIM_KERNEL=%s unavailable on this CPU/build; using %s",
                env, std::string(sim_kernel_name(best_kernel())).c_str());
    return best_kernel();
  }();
  return kernel;
}

std::size_t env_block_words() noexcept {
  static const std::size_t words = [] {
    const char* env = std::getenv("SIMGEN_SIM_BLOCK_WORDS");
    if (env == nullptr || *env == '\0') return std::size_t{8};
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 1 || parsed > 64) {
      util::warnf(
          "ignoring invalid SIMGEN_SIM_BLOCK_WORDS=%s (want 1-64); using 8",
          env);
      return std::size_t{8};
    }
    return static_cast<std::size_t>(parsed);
  }();
  return words;
}

std::atomic<SimKernel> g_kernel_override{SimKernel::kAuto};
std::atomic<std::size_t> g_block_words_override{0};

}  // namespace

std::string_view sim_kernel_name(SimKernel kernel) noexcept {
  switch (kernel) {
    case SimKernel::kAuto: return "auto";
    case SimKernel::kScalar: return "scalar";
    case SimKernel::kAvx2: return "avx2";
    case SimKernel::kAvx512: return "avx512";
  }
  return "?";
}

std::size_t sim_kernel_width_bits(SimKernel kernel) noexcept {
  switch (kernel) {
    case SimKernel::kAuto: return 0;
    case SimKernel::kScalar: return 64;
    case SimKernel::kAvx2: return 256;
    case SimKernel::kAvx512: return 512;
  }
  return 0;
}

bool sim_kernel_available(SimKernel kernel) noexcept {
  switch (kernel) {
    case SimKernel::kAuto:
    case SimKernel::kScalar:
      return true;
    case SimKernel::kAvx2:
#if defined(SIMGEN_SIM_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimKernel::kAvx512:
#if defined(SIMGEN_SIM_HAVE_AVX512)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

SimKernel default_sim_kernel() noexcept {
  const SimKernel override = g_kernel_override.load(std::memory_order_relaxed);
  if (override != SimKernel::kAuto) return override;
  return env_kernel();
}

void set_default_sim_kernel(SimKernel kernel) noexcept {
  if (kernel != SimKernel::kAuto && !sim_kernel_available(kernel)) {
    util::warnf("set_default_sim_kernel(%s) unavailable; keeping %s",
                std::string(sim_kernel_name(kernel)).c_str(),
                std::string(sim_kernel_name(default_sim_kernel())).c_str());
    return;
  }
  g_kernel_override.store(kernel, std::memory_order_relaxed);
}

std::size_t default_block_words() noexcept {
  const std::size_t override =
      g_block_words_override.load(std::memory_order_relaxed);
  if (override != 0) return override;
  return env_block_words();
}

void set_default_block_words(std::size_t words) noexcept {
  if (words > 64) words = 64;
  g_block_words_override.store(words, std::memory_order_relaxed);
}

ScopedSimConfig::ScopedSimConfig(SimKernel kernel,
                                 std::size_t block_words) noexcept
    : saved_kernel_(g_kernel_override.load(std::memory_order_relaxed)),
      saved_words_(g_block_words_override.load(std::memory_order_relaxed)) {
  set_default_sim_kernel(kernel);
  set_default_block_words(block_words);
}

ScopedSimConfig::~ScopedSimConfig() {
  g_kernel_override.store(saved_kernel_, std::memory_order_relaxed);
  g_block_words_override.store(saved_words_, std::memory_order_relaxed);
}

}  // namespace simgen::sim

#include "sim/simulator.hpp"

#include <stdexcept>

namespace simgen::sim {

Simulator::Simulator(const net::Network& network)
    : network_(network),
      on_covers_(network.num_nodes()),
      values_(network.num_nodes(), 0) {
  network_.for_each_lut([&](net::NodeId id) {
    on_covers_[id] = tt::isop(network_.node(id).function);
  });
}

void Simulator::simulate_word(std::span<const PatternWord> pi_words) {
  if (pi_words.size() != network_.num_pis())
    throw std::invalid_argument("Simulator: wrong number of PI words");
  words_.inc();
  std::size_t pi_index = 0;
  network_.for_each_node([&](net::NodeId id) {
    const net::Node& node = network_.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi:
        values_[id] = pi_words[pi_index++];
        break;
      case net::NodeKind::kConstant:
        values_[id] = node.constant_value ? ~PatternWord{0} : PatternWord{0};
        break;
      case net::NodeKind::kPo:
        values_[id] = values_[node.fanins[0]];
        break;
      case net::NodeKind::kLut: {
        // OR of cube evaluations: each cube is the AND of its literals'
        // (possibly complemented) fanin words.
        PatternWord result = 0;
        for (const tt::Cube& cube : on_covers_[id].cubes) {
          PatternWord term = ~PatternWord{0};
          for (unsigned v = 0; v < node.fanins.size(); ++v) {
            if (!cube.has_literal(v)) continue;
            const PatternWord w = values_[node.fanins[v]];
            term &= cube.literal_value(v) ? w : ~w;
          }
          result |= term;
        }
        values_[id] = result;
        break;
      }
    }
  });
}

void Simulator::simulate_random_word(util::Rng& rng) {
  pi_scratch_.resize(network_.num_pis());
  for (auto& word : pi_scratch_) word = rng();
  simulate_word(pi_scratch_);
}

}  // namespace simgen::sim

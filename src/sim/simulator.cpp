#include "sim/simulator.hpp"

#include <stdexcept>
#include <string>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace simgen::sim {
namespace {

detail::KernelFn kernel_fn_for(SimKernel kernel) noexcept {
  switch (kernel) {
#if defined(SIMGEN_SIM_HAVE_AVX512)
    case SimKernel::kAvx512: return &detail::run_tape_avx512;
#endif
#if defined(SIMGEN_SIM_HAVE_AVX2)
    case SimKernel::kAvx2: return &detail::run_tape_avx2;
#endif
    default: return &detail::run_tape_scalar;
  }
}

}  // namespace

Simulator::Simulator(const net::Network& network, std::size_t block_words,
                     SimKernel kernel)
    : network_(network),
      block_words_(block_words == 0 ? default_block_words() : block_words),
      kernel_(kernel == SimKernel::kAuto ? default_sim_kernel() : kernel) {
  if (block_words_ > 64) block_words_ = 64;
  if (!sim_kernel_available(kernel_)) {
    util::warnf("Simulator: kernel %s unavailable; using %s",
                std::string(sim_kernel_name(kernel_)).c_str(),
                std::string(sim_kernel_name(default_sim_kernel())).c_str());
    kernel_ = default_sim_kernel();
  }
  kernel_fn_ = kernel_fn_for(kernel_);
  values_.assign(network.num_nodes() * block_words_, 0);
  pi_scratch_.assign(network.num_pis() * block_words_, 0);
  build_tape();
  obs::set_gauge("sim.block_words", static_cast<double>(block_words_));
  obs::set_gauge("sim.kernel_width_bits",
                 static_cast<double>(sim_kernel_width_bits(kernel_)));
}

/// Flattens the network into the evaluation tape: one op per node in
/// topological (creation) order, LUT covers expanded into the flat
/// cube/literal tables with literals pre-resolved to fanin node indices.
/// The kernels then run with zero network accesses.
void Simulator::build_tape() {
  tape_.ops.reserve(network_.num_nodes());
  std::uint32_t pi_index = 0;
  network_.for_each_node([&](net::NodeId id) {
    const net::Node& node = network_.node(id);
    detail::TapeOp op;
    op.dst = static_cast<std::uint32_t>(id);
    switch (node.kind) {
      case net::NodeKind::kPi:
        op.kind = detail::TapeOp::Kind::kPi;
        op.src = pi_index++;
        break;
      case net::NodeKind::kConstant:
        op.kind = node.constant_value ? detail::TapeOp::Kind::kConst1
                                      : detail::TapeOp::Kind::kConst0;
        break;
      case net::NodeKind::kPo:
        op.kind = detail::TapeOp::Kind::kCopy;
        op.src = static_cast<std::uint32_t>(node.fanins[0]);
        break;
      case net::NodeKind::kLut: {
        op.kind = detail::TapeOp::Kind::kLut;
        op.cube_begin = static_cast<std::uint32_t>(tape_.cubes.size());
        const tt::Cover cover = tt::isop(node.function);
        for (const tt::Cube& cube : cover.cubes) {
          detail::TapeCube tape_cube;
          tape_cube.lit_begin = static_cast<std::uint32_t>(tape_.lits.size());
          for (unsigned v = 0; v < node.fanins.size(); ++v) {
            if (!cube.has_literal(v)) continue;
            // literal_value(v) selects the fanin word, else its complement
            // (the pre-tape evaluator's `term &= value ? w : ~w`).
            tape_.lits.push_back(detail::make_tape_lit(
                static_cast<std::uint32_t>(node.fanins[v]),
                !cube.literal_value(v)));
          }
          tape_cube.lit_end = static_cast<std::uint32_t>(tape_.lits.size());
          tape_.cubes.push_back(tape_cube);
        }
        op.cube_end = static_cast<std::uint32_t>(tape_.cubes.size());
        break;
      }
    }
    tape_.ops.push_back(op);
  });
}

void Simulator::simulate_block(std::span<const PatternWord> pi_blocks,
                               std::size_t valid_words) {
  if (pi_blocks.size() != network_.num_pis() * block_words_)
    throw std::invalid_argument("Simulator: wrong PI block size");
  if (valid_words == 0 || valid_words > block_words_)
    throw std::invalid_argument("Simulator: valid_words out of range");
  words_.inc(valid_words);
  blocks_.inc();
  kernel_watch_.resume();
  kernel_fn_(tape_, pi_blocks.data(), values_.data(), block_words_,
             valid_words);
  kernel_watch_.stop();
  valid_words_ = valid_words;
  observed_word_ = 0;
  compat_dirty_ = true;
}

void Simulator::simulate_word(std::span<const PatternWord> pi_words) {
  if (pi_words.size() != network_.num_pis())
    throw std::invalid_argument("Simulator: wrong number of PI words");
  for (std::size_t pi = 0; pi < pi_words.size(); ++pi)
    pi_scratch_[pi * block_words_] = pi_words[pi];
  simulate_block(pi_scratch_, 1);
}

PatternWord Simulator::random_pattern_word(std::uint64_t seed,
                                           std::uint64_t pi_index,
                                           std::uint64_t word_index) noexcept {
  // Three splitmix64 rounds keyed on (seed, pi, word) independently: the
  // stream constant decorrelates the axes so adjacent PIs/words share no
  // affine structure. Pinned by SimulatorTest.RandomPatternWordsArePinned
  // — changing this function re-keys every random pattern in the system
  // (costs/baselines), so treat it as a wire format.
  const std::uint64_t stream =
      util::splitmix64(seed ^ 0x53696d47656e2121ull) ^
      util::splitmix64((pi_index + 1) * 0x9e3779b97f4a7c15ull);
  return util::splitmix64(stream ^
                          util::splitmix64(word_index ^ 0xd1b54a32d192ed03ull));
}

void Simulator::simulate_random_block(std::uint64_t seed,
                                      std::uint64_t first_word_index,
                                      std::size_t valid_words) {
  if (valid_words == 0 || valid_words > block_words_)
    throw std::invalid_argument("Simulator: valid_words out of range");
  const std::size_t num_pis = network_.num_pis();
  for (std::size_t pi = 0; pi < num_pis; ++pi)
    for (std::size_t w = 0; w < valid_words; ++w)
      pi_scratch_[pi * block_words_ + w] =
          random_pattern_word(seed, pi, first_word_index + w);
  simulate_block(pi_scratch_, valid_words);
}

void Simulator::simulate_random_word(std::uint64_t seed,
                                     std::uint64_t word_index) {
  simulate_random_block(seed, word_index, 1);
}

std::span<const PatternWord> Simulator::values() const {
  if (compat_dirty_) {
    compat_values_.resize(network_.num_nodes());
    for (std::size_t node = 0; node < compat_values_.size(); ++node)
      compat_values_[node] = values_[node * block_words_ + observed_word_];
    compat_dirty_ = false;
  }
  return compat_values_;
}

void Simulator::set_observed_word(std::size_t w) {
  if (w >= valid_words_)
    throw std::out_of_range("Simulator: observed word beyond valid words");
  if (w != observed_word_) {
    observed_word_ = w;
    compat_dirty_ = true;
  }
}

}  // namespace simgen::sim

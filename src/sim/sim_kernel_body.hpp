/// \file sim_kernel_body.hpp
/// \brief Shared kernel body, instantiated once per ISA translation unit.
///
/// Each sim_kernel_*.cpp defines a vector-traits struct V and
/// instantiates run_tape<V>. Because the algebra is purely bitwise
/// (AND/ANDNOT/OR/NOT over 64-bit words), every instantiation produces
/// bit-identical value rows; the ISAs differ only in how many words one
/// register op covers (V::kWords). Rows are processed in vector-width
/// chunks while they fit into the requested word count, then a scalar
/// tail finishes the remainder, so a kernel never computes (or reads)
/// words beyond `words` — lane content past the valid prefix stays
/// unspecified under every ISA alike.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/sim_tape.hpp"

namespace simgen::sim::detail {

/// Portable one-word "vector": the scalar fallback traits and the shared
/// tail for the wide kernels.
struct ScalarTraits {
  static constexpr std::size_t kWords = 1;
  using Reg = std::uint64_t;
  static Reg zero() noexcept { return 0; }
  static Reg ones() noexcept { return ~std::uint64_t{0}; }
  static Reg load(const std::uint64_t* p) noexcept { return *p; }
  static void store(std::uint64_t* p, Reg r) noexcept { *p = r; }
  static Reg and_(Reg a, Reg b) noexcept { return a & b; }
  // andnot(a, b) == ~a & b, matching the SIMD intrinsics' operand order.
  static Reg andnot(Reg a, Reg b) noexcept { return ~a & b; }
  static Reg or_(Reg a, Reg b) noexcept { return a | b; }
};

/// Evaluate one LUT row chunk at word offset `w` using traits V.
template <class V>
inline void eval_lut_chunk(const Tape& tape, const TapeOp& op,
                           const std::uint64_t* values,
                           std::uint64_t* dst_row, std::size_t block_words,
                           std::size_t w) noexcept {
  typename V::Reg acc = V::zero();
  for (std::uint32_t c = op.cube_begin; c != op.cube_end; ++c) {
    const TapeCube& cube = tape.cubes[c];
    typename V::Reg term = V::ones();
    for (std::uint32_t l = cube.lit_begin; l != cube.lit_end; ++l) {
      const TapeLit lit = tape.lits[l];
      const typename V::Reg fanin =
          V::load(values + std::size_t{tape_lit_node(lit)} * block_words + w);
      term = tape_lit_complemented(lit) ? V::andnot(fanin, term)
                                        : V::and_(fanin, term);
    }
    acc = V::or_(acc, term);
  }
  V::store(dst_row + w, acc);
}

template <class V>
void run_tape(const Tape& tape, const std::uint64_t* pi_blocks,
              std::uint64_t* values, std::size_t block_words,
              std::size_t words) noexcept {
  for (const TapeOp& op : tape.ops) {
    std::uint64_t* dst_row = values + std::size_t{op.dst} * block_words;
    switch (op.kind) {
      case TapeOp::Kind::kConst0:
        for (std::size_t w = 0; w < words; ++w) dst_row[w] = 0;
        break;
      case TapeOp::Kind::kConst1:
        for (std::size_t w = 0; w < words; ++w) dst_row[w] = ~std::uint64_t{0};
        break;
      case TapeOp::Kind::kPi: {
        const std::uint64_t* src_row =
            pi_blocks + std::size_t{op.src} * block_words;
        for (std::size_t w = 0; w < words; ++w) dst_row[w] = src_row[w];
        break;
      }
      case TapeOp::Kind::kCopy: {
        const std::uint64_t* src_row =
            values + std::size_t{op.src} * block_words;
        for (std::size_t w = 0; w < words; ++w) dst_row[w] = src_row[w];
        break;
      }
      case TapeOp::Kind::kLut: {
        std::size_t w = 0;
        if constexpr (V::kWords > 1) {
          for (; w + V::kWords <= words; w += V::kWords) {
            eval_lut_chunk<V>(tape, op, values, dst_row, block_words, w);
          }
        }
        for (; w < words; ++w) {
          eval_lut_chunk<ScalarTraits>(tape, op, values, dst_row, block_words,
                                       w);
        }
        break;
      }
    }
  }
}

}  // namespace simgen::sim::detail

/// \file sim_kernel_avx512.cpp
/// \brief AVX-512 instantiation of the simulation kernel (512-bit lanes).
///
/// Compiled with -mavx512f (per-source flag in src/CMakeLists.txt); only
/// foundation bitwise ops are used, so AVX-512F alone suffices. The
/// dispatcher gates calls on __builtin_cpu_supports("avx512f").
#if defined(SIMGEN_SIM_HAVE_AVX512)

#include <immintrin.h>

#include "sim/sim_kernel_body.hpp"
#include "sim/sim_tape.hpp"

namespace simgen::sim::detail {
namespace {

struct Avx512Traits {
  static constexpr std::size_t kWords = 8;
  using Reg = __m512i;
  static Reg zero() noexcept { return _mm512_setzero_si512(); }
  static Reg ones() noexcept {
    return _mm512_set1_epi64(static_cast<long long>(~0ull));
  }
  static Reg load(const std::uint64_t* p) noexcept {
    return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
  }
  static void store(std::uint64_t* p, Reg r) noexcept {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), r);
  }
  static Reg and_(Reg a, Reg b) noexcept { return _mm512_and_si512(a, b); }
  static Reg andnot(Reg a, Reg b) noexcept {
    return _mm512_andnot_si512(a, b);  // ~a & b
  }
  static Reg or_(Reg a, Reg b) noexcept { return _mm512_or_si512(a, b); }
};

}  // namespace

void run_tape_avx512(const Tape& tape, const std::uint64_t* pi_blocks,
                     std::uint64_t* values, std::size_t block_words,
                     std::size_t words) {
  run_tape<Avx512Traits>(tape, pi_blocks, values, block_words, words);
}

}  // namespace simgen::sim::detail

#endif  // SIMGEN_SIM_HAVE_AVX512

#include "sim/eqclass.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace simgen::sim {

EquivClasses::EquivClasses(std::vector<net::NodeId> candidates) {
  if (candidates.size() >= 2) classes_.push_back(std::move(candidates));
}

EquivClasses EquivClasses::from_classes(
    std::vector<std::vector<net::NodeId>> classes) {
  EquivClasses result({});
  result.classes_ = std::move(classes);
  return result;
}

EquivClasses EquivClasses::over_luts(const net::Network& network) {
  std::vector<net::NodeId> candidates;
  network.for_each_lut([&](net::NodeId id) { candidates.push_back(id); });
  return EquivClasses(std::move(candidates));
}

std::size_t EquivClasses::refine(const Simulator& simulator) {
  std::size_t splits = 0;
  const std::size_t valid = simulator.valid_words();
  for (std::size_t w = 0; w < valid; ++w) {
    // Journal width is the whole block: one refine(simulator) call is one
    // "pattern batch" of `valid` words, however many word passes it takes.
    splits += refine_impl(
        [&](net::NodeId node) { return simulator.value_word(node, w); },
        valid);
  }
  return splits;
}

std::size_t EquivClasses::refine_word(const Simulator& simulator,
                                      std::size_t w) {
  return refine_impl(
      [&](net::NodeId node) { return simulator.value_word(node, w); }, 1);
}

std::size_t EquivClasses::refine(std::span<const PatternWord> node_values) {
  return refine_impl([&](net::NodeId node) { return node_values[node]; }, 1);
}

template <typename ValueOf>
std::size_t EquivClasses::refine_impl(ValueOf&& value_of,
                                      std::uint64_t width_words) {
  std::size_t splits = 0;
  const bool journal = obs::journal_enabled();
  const auto source =
      static_cast<std::uint8_t>(obs::PatternScope::current_source());
  std::vector<std::vector<net::NodeId>> next;
  next.reserve(classes_.size());
  std::unordered_map<PatternWord, std::size_t> bucket_of;
  // Linear scan beats hashing for the small classes that dominate after
  // the first few rounds; the keys vector is kept in first-occurrence
  // order, so both paths produce identical bucket numbering.
  constexpr std::size_t kLinearScanLimit = 32;
  std::vector<PatternWord> keys;
  for (auto& members : classes_) {
    std::vector<std::vector<net::NodeId>> buckets;
    if (members.size() <= kLinearScanLimit) {
      keys.clear();
      for (net::NodeId node : members) {
        const PatternWord word = value_of(node);
        std::size_t bucket = 0;
        while (bucket < keys.size() && keys[bucket] != word) ++bucket;
        if (bucket == keys.size()) {
          keys.push_back(word);
          buckets.emplace_back();
        }
        buckets[bucket].push_back(node);
      }
    } else {
      bucket_of.clear();
      for (net::NodeId node : members) {
        const PatternWord word = value_of(node);
        const auto [it, inserted] = bucket_of.emplace(word, buckets.size());
        if (inserted) buckets.emplace_back();
        buckets[it->second].push_back(node);
      }
    }
    if (buckets.size() > 1) {
      ++splits;
      if (journal) {
        // The class is identified by its representative (first member);
        // a same-rep kClassCreated below is the parent continuing.
        obs::journal_emit(obs::EventKind::kClassSplit, source, members.front(),
                          0, buckets.size(), members.size());
        for (const auto& bucket : buckets)
          if (bucket.size() >= 2)
            obs::journal_emit(obs::EventKind::kClassCreated, source,
                              bucket.front(), 0, bucket.size());
      }
    }
    for (auto& bucket : buckets)
      if (bucket.size() >= 2) next.push_back(std::move(bucket));
  }
  classes_ = std::move(next);
  static obs::Counter& refine_calls = obs::counter("eq.refine_calls");
  static obs::Counter& split_count = obs::counter("eq.splits");
  refine_calls.inc();
  split_count.inc(splits);
  obs::set_gauge("eq.classes_live", static_cast<double>(classes_.size()));
  if (journal)
    obs::PatternScope::record_refine(splits, classes_.size(), cost(),
                                     width_words);
  return splits;
}

void EquivClasses::remove_node(net::NodeId node) {
  for (auto& members : classes_) {
    const auto it = std::find(members.begin(), members.end(), node);
    if (it != members.end()) {
      members.erase(it);
      break;
    }
  }
  drop_singletons();
}

std::uint64_t EquivClasses::cost() const noexcept {
  std::uint64_t total = 0;
  for (const auto& members : classes_) total += members.size() - 1;
  return total;
}

std::size_t EquivClasses::num_live_nodes() const noexcept {
  std::size_t total = 0;
  for (const auto& members : classes_) total += members.size();
  return total;
}

void EquivClasses::drop_singletons() {
  std::erase_if(classes_, [](const auto& members) { return members.size() < 2; });
}

}  // namespace simgen::sim

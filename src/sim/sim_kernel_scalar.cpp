/// \file sim_kernel_scalar.cpp
/// \brief Portable scalar instantiation of the simulation kernel.
#include "sim/sim_kernel_body.hpp"
#include "sim/sim_tape.hpp"

namespace simgen::sim::detail {

void run_tape_scalar(const Tape& tape, const std::uint64_t* pi_blocks,
                     std::uint64_t* values, std::size_t block_words,
                     std::size_t words) {
  run_tape<ScalarTraits>(tape, pi_blocks, values, block_words, words);
}

}  // namespace simgen::sim::detail

/// \file random_sim.hpp
/// \brief Random-simulation driver (the RandS baseline of the paper).
///
/// Runs rounds of 64 uniform random patterns, refining the equivalence
/// classes after each round, and records the cost trajectory — the data
/// behind Figure 7's RandS curves and the "one round of random
/// simulation" initialization of Sections 6.2-6.4.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/eqclass.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace simgen::sim {

/// Outcome of a random-simulation run.
struct RandomSimResult {
  std::vector<std::uint64_t> cost_per_round;  ///< Eq. 5 cost after each round.
  double runtime_seconds = 0.0;
  std::size_t rounds_run = 0;
};

/// Options for run_random_simulation.
struct RandomSimOptions {
  std::size_t max_rounds = 16;
  /// Stop early once the cost has been flat for this many consecutive
  /// rounds (the paper's Figure 7 switchover criterion uses 3). Zero
  /// disables early stopping.
  std::size_t stagnation_rounds = 0;
  std::uint64_t seed = 1;
};

/// Refines \p classes with rounds of random patterns on \p simulator.
RandomSimResult run_random_simulation(Simulator& simulator, EquivClasses& classes,
                                      const RandomSimOptions& options);

}  // namespace simgen::sim

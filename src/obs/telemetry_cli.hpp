/// \file telemetry_cli.hpp
/// \brief Shared command-line handling for the telemetry subsystem.
///
/// Every driver binary (bench harnesses, examples, tools/simgen_fuzz)
/// accepts the same telemetry flags; this class strips them from
/// argc/argv at construction and wires up the corresponding outputs:
///   --trace-out FILE       enable tracing; write Chrome trace JSON at exit
///   --metrics-out FILE     write the metrics registry as JSONL at exit
///   --journal-out FILE     record the sweep decision journal (binary, or
///                          JSONL with a ".jsonl" suffix); replay with
///                          tools/sweep_inspect
///   --progress SECONDS     heartbeat interval for sweeps (implies info
///                          logging); read back via progress_interval()
///   --timeout SECONDS      watchdog deadline; dump + flush + exit 124
///   --threads N            sweep worker threads (1 = sequential engine,
///                          0 = one per hardware thread); read back via
///                          num_threads() and forwarded by the driver into
///                          SweepOptions/CecOptions::num_threads
///   --no-inprocess         disable solver inprocessing (the escape hatch
///                          for the plain-CDCL behaviour); read back via
///                          inprocess() and forwarded by the driver into
///                          SweepOptions::inprocess
/// Construction registers the exit finalizer and (when any output or a
/// timeout is requested) the signal watchdog, so the requested files are
/// valid even if the run is interrupted. The destructor writes them on
/// the normal path. A driver needs only
///   int main(int argc, char** argv) { obs::TelemetryCli telemetry(argc, argv); ... }
/// Domain-specific wrappers (bench::TelemetryCli) layer extra flags on top.
#pragma once

#include <string>

namespace simgen::obs {

class TelemetryCli {
 public:
  /// Parses and removes the telemetry flags from \p argc/\p argv, then
  /// enables the requested outputs, the exit finalizer, and the watchdog.
  TelemetryCli(int& argc, char** argv);
  /// Flushes all requested outputs and reports where they were written.
  ~TelemetryCli();
  TelemetryCli(const TelemetryCli&) = delete;
  TelemetryCli& operator=(const TelemetryCli&) = delete;

  /// Value of --progress (seconds between sweep heartbeats; 0 = off).
  [[nodiscard]] double progress_interval() const noexcept {
    return progress_interval_;
  }
  /// Value of --timeout (watchdog deadline in seconds; 0 = none).
  [[nodiscard]] double timeout_seconds() const noexcept {
    return timeout_seconds_;
  }
  /// Value of --threads (sweep worker threads; default 1 = sequential,
  /// 0 = auto-detect the hardware concurrency).
  [[nodiscard]] unsigned num_threads() const noexcept { return num_threads_; }
  /// False when --no-inprocess was given (solver inprocessing disabled).
  [[nodiscard]] bool inprocess() const noexcept { return inprocess_; }

 private:
  std::string trace_out_;
  std::string metrics_out_;
  std::string journal_out_;
  double progress_interval_ = 0.0;
  double timeout_seconds_ = 0.0;
  unsigned num_threads_ = 1;
  bool inprocess_ = true;
};

}  // namespace simgen::obs

/// \file metrics.hpp
/// \brief Global metrics registry: named counters, gauges, and log-scale
/// histograms.
///
/// The observability layer the paper's whole evaluation is written in
/// terms of — SAT calls avoided, classes split per round, implication vs
/// decision counts — as first-class, exportable instruments instead of
/// ad-hoc per-module structs. Design constraints:
///
///  * Counter increments are a single relaxed atomic 64-bit add — the
///    parallel sweep engine bumps shared registry counters from worker
///    threads, and relaxed ordering keeps the hot path one lock-free
///    instruction (registration, retirement and export are mutex-guarded
///    cold paths). Histograms stay non-atomic: every histogram lives in a
///    per-instance stats struct (one solver, one generator) that is only
///    ever touched by the thread owning the instance.
///  * Instruments can live inside module stats structs (sat::SolverStats,
///    core::GeneratorStats, ...) so `stats()` accessors stay per-instance
///    views while the registry aggregates by name across instances: the
///    instrument object is the single source of truth, and a destroyed
///    instrument "retires" its value into the registry so a metrics dump
///    written after a flow finishes still contains every count.
///  * Copying or moving an instrument produces a *detached* value
///    snapshot (never a second registered instance), so stats structs
///    keep plain value semantics at call sites.
///  * With the CMake option SIMGEN_NO_TELEMETRY=ON, registration, the
///    registry, and both exporters compile to nothing; instruments still
///    count (the per-instance stats views keep working) but nothing is
///    retained or exportable.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace simgen::obs {

/// Tag type selecting the registering constructors of the module stats
/// structs (e.g. `SolverStats stats_{obs::kRegister};`).
struct register_t {
  explicit register_t() = default;
};
inline constexpr register_t kRegister{};

/// Monotonic named counter. Default-constructed counters are detached
/// (count locally, invisible to the registry); name-constructed counters
/// are registered until destruction, at which point their final value is
/// retired into the registry's per-name accumulator.
class Counter {
 public:
  Counter() = default;
  explicit Counter(const char* name);
  ~Counter();

  /// Copies and moves detach: the new object holds the value but is not
  /// registered, so aggregation never double-counts.
  Counter(const Counter& other) noexcept : value_(other.value()) {}
  Counter(Counter&& other) noexcept : value_(other.value()) {}
  /// Assignment copies the value only; the left side keeps its own
  /// registration state.
  Counter& operator=(const Counter& other) noexcept {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  /// Relaxed: counters are statistics, not synchronization. Concurrent
  /// increments from sweep workers never lose counts; readers see some
  /// recent value.
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
  bool registered_ = false;
};

/// Log-scale (power-of-two bucket) histogram of non-negative integer
/// samples. Bucket i counts samples whose bit_width is i: bucket 0 holds
/// the value 0, bucket i >= 1 holds values in [2^(i-1), 2^i - 1].
/// Registration/retirement semantics match Counter.
class Histogram {
 public:
  /// 0 plus one bucket per possible bit_width of a uint64.
  static constexpr std::size_t kNumBuckets = 65;

  Histogram() = default;
  explicit Histogram(const char* name);
  ~Histogram();

  Histogram(const Histogram& other) noexcept
      : buckets_(other.buckets_), count_(other.count_), sum_(other.sum_) {}
  Histogram(Histogram&& other) noexcept
      : buckets_(other.buckets_), count_(other.count_), sum_(other.sum_) {}
  Histogram& operator=(const Histogram& other) noexcept {
    buckets_ = other.buckets_;
    count_ = other.count_;
    sum_ = other.sum_;
    return *this;
  }

  void observe(std::uint64_t value) noexcept {
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += value;
  }
  /// Folds an externally accumulated bucket array in (e.g. a thread
  /// pool's per-worker latency buckets, already in bucket_of() layout).
  /// Extra source buckets beyond kNumBuckets are ignored.
  void merge_from(const std::uint64_t* buckets, std::size_t num_buckets,
                  std::uint64_t count, std::uint64_t sum) noexcept {
    if (num_buckets > kNumBuckets) num_buckets = kNumBuckets;
    for (std::size_t i = 0; i < num_buckets; ++i) buckets_[i] += buckets[i];
    count_ += count;
    sum_ += sum;
  }
  void reset() noexcept {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
  }

  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] const std::array<std::uint64_t, kNumBuckets>& buckets() const noexcept {
    return buckets_;
  }

  /// Estimated value at quantile \p q (see bucket_percentile below).
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  bool registered_ = false;
};

/// Estimated value at quantile \p q in (0, 1] of a bucket_of()-layout
/// log2 bucket distribution: locates the bucket holding the ceil(q*count)-th
/// sample and interpolates linearly inside its [2^(i-1), 2^i - 1] value
/// range. Exact for bucket 0 (the value 0); within a factor of 2 above.
/// Returns 0 for an empty distribution. This is the one percentile
/// estimator shared by the pool-profile exporter and the SAT hardness
/// report, so p50/p90/p99 mean the same thing everywhere. Available in
/// every build (the inspector replays foreign journals under
/// SIMGEN_NO_TELEMETRY too).
[[nodiscard]] std::uint64_t bucket_percentile(const std::uint64_t* buckets,
                                              std::size_t num_buckets,
                                              double q) noexcept;

/// Registry-owned instruments for modules without a per-instance stats
/// struct: find-or-create by name, returning a reference that stays valid
/// for the process lifetime. Hot paths cache it:
///   static obs::Counter& words = obs::counter("sim.words");
/// With SIMGEN_NO_TELEMETRY both return a shared dummy instrument.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Gauges are registry-owned level values (last write wins). No-ops with
/// SIMGEN_NO_TELEMETRY.
void set_gauge(std::string_view name, double value);
void add_gauge(std::string_view name, double delta);
[[nodiscard]] double gauge_value(std::string_view name);

/// Aggregated histogram state as exported/snapshotted.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;  ///< Trailing zero buckets trimmed.
};

/// Point-in-time aggregation of every metric: per name, retired values
/// plus all live instruments. The diffing API lets each sweep round or
/// CEC phase report deltas instead of cumulative totals.
struct TelemetrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
};

[[nodiscard]] TelemetrySnapshot capture_snapshot();

/// Delta from \p before to \p after: counters and histogram buckets are
/// subtracted (clamped at zero if a name vanished or was reset), gauges
/// take their \p after value. Names only present in \p before are dropped.
[[nodiscard]] TelemetrySnapshot diff_snapshots(const TelemetrySnapshot& before,
                                               const TelemetrySnapshot& after);

/// Writes one JSON object per line:
///   {"kind":"counter","name":"sat.conflicts","value":123}
///   {"kind":"gauge","name":"eq.cost","value":17}
///   {"kind":"histogram","name":"sat.learned_clause_size","count":9,
///    "sum":41,"buckets":[0,2,3,4]}
void write_metrics_jsonl(std::ostream& out, const TelemetrySnapshot& snapshot);
void write_metrics_jsonl(std::ostream& out);  ///< Current snapshot.
/// Convenience file writer; returns false if the file cannot be written.
bool write_metrics_file(const std::string& path);

/// Zeroes every live instrument and clears all retired values and gauges.
/// For tests and benchmark drivers that want per-run metrics.
void reset_all_metrics();

namespace detail {
/// Escapes a string for inclusion inside a JSON string literal: quotes,
/// backslashes, and control characters are escaped, and malformed UTF-8
/// (stray continuation bytes, overlong forms, surrogates) is replaced
/// with U+FFFD so the output is always valid JSON. Shared by the metrics
/// and trace exporters.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Renders a double as a JSON number; non-finite values (which JSON
/// cannot represent) become "null".
[[nodiscard]] std::string json_number(double value);
}  // namespace detail

}  // namespace simgen::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <ostream>
#include <unordered_map>

#include "util/mutex.hpp"

namespace simgen::obs {

namespace detail {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x80) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (c < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof buffer, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buffer;
          } else {
            out += static_cast<char>(c);
          }
      }
      ++i;
      continue;
    }
    // Multi-byte sequence: pass through only well-formed UTF-8 (RFC 3629);
    // anything else (stray continuation, overlong form, surrogate, > U+10FFFF)
    // becomes U+FFFD so user-supplied benchmark paths in span names can
    // never produce invalid JSON.
    const std::size_t length = c >= 0xF0 ? 4 : (c >= 0xE0 ? 3 : (c >= 0xC2 ? 2 : 0));
    bool valid = length != 0 && i + length <= text.size();
    if (valid) {
      for (std::size_t k = 1; k < length; ++k)
        if ((static_cast<unsigned char>(text[i + k]) & 0xC0) != 0x80)
          valid = false;
    }
    if (valid && length == 3) {
      const auto next = static_cast<unsigned char>(text[i + 1]);
      if (c == 0xE0 && next < 0xA0) valid = false;  // overlong
      if (c == 0xED && next >= 0xA0) valid = false;  // UTF-16 surrogate
    }
    if (valid && length == 4) {
      const auto next = static_cast<unsigned char>(text[i + 1]);
      if (c == 0xF0 && next < 0x90) valid = false;  // overlong
      if (c == 0xF4 && next >= 0x90) valid = false;  // > U+10FFFF
      if (c > 0xF4) valid = false;
    }
    if (valid) {
      out.append(text.substr(i, length));
      i += length;
    } else {
      out += "\\ufffd";
      ++i;
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/Inf.
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.15g", value);
  return buffer;
}

}  // namespace detail

std::uint64_t TelemetrySnapshot::counter_value(std::string_view name) const {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

#ifndef SIMGEN_NO_TELEMETRY

namespace {

/// The process-wide registry. Intentionally leaked (never destroyed) so
/// instruments in static storage can retire during program teardown
/// without static-destruction-order hazards.
struct Registry {
  util::Mutex mutex;

  // Live instruments, keyed by object identity. Multiple live instances
  // may share a name (e.g. two Solvers); aggregation sums them.
  std::unordered_map<Counter*, std::string> live_counters
      SIMGEN_GUARDED_BY(mutex);
  std::unordered_map<Histogram*, std::string> live_histograms
      SIMGEN_GUARDED_BY(mutex);

  // Final values of destroyed instruments, accumulated per name.
  std::map<std::string, std::uint64_t> retired_counters
      SIMGEN_GUARDED_BY(mutex);
  std::map<std::string, HistogramSnapshot> retired_histograms
      SIMGEN_GUARDED_BY(mutex);

  std::map<std::string, double> gauges SIMGEN_GUARDED_BY(mutex);

  // Registry-owned instruments handed out by counter()/histogram().
  // unique_ptr keeps addresses stable; the objects also appear in the
  // live maps through their registering constructors.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> owned_counters
      SIMGEN_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      owned_histograms SIMGEN_GUARDED_BY(mutex);

  static Registry& get() {
    static Registry* instance = new Registry();
    return *instance;
  }
};

void merge_histogram(HistogramSnapshot& into, const std::uint64_t* buckets,
                     std::size_t num_buckets, std::uint64_t count,
                     std::uint64_t sum) {
  if (into.buckets.size() < num_buckets) into.buckets.resize(num_buckets, 0);
  for (std::size_t i = 0; i < num_buckets; ++i) into.buckets[i] += buckets[i];
  into.count += count;
  into.sum += sum;
}

void trim_buckets(HistogramSnapshot& snapshot) {
  while (!snapshot.buckets.empty() && snapshot.buckets.back() == 0)
    snapshot.buckets.pop_back();
}

}  // namespace

Counter::Counter(const char* name) : registered_(true) {
  Registry& registry = Registry::get();
  const util::LockGuard lock(registry.mutex);
  registry.live_counters.emplace(this, name);
}

Counter::~Counter() {
  if (!registered_) return;
  Registry& registry = Registry::get();
  const util::LockGuard lock(registry.mutex);
  const auto it = registry.live_counters.find(this);
  if (it == registry.live_counters.end()) return;
  registry.retired_counters[it->second] += value();
  registry.live_counters.erase(it);
}

Histogram::Histogram(const char* name) : registered_(true) {
  Registry& registry = Registry::get();
  const util::LockGuard lock(registry.mutex);
  registry.live_histograms.emplace(this, name);
}

Histogram::~Histogram() {
  if (!registered_) return;
  Registry& registry = Registry::get();
  const util::LockGuard lock(registry.mutex);
  const auto it = registry.live_histograms.find(this);
  if (it == registry.live_histograms.end()) return;
  merge_histogram(registry.retired_histograms[it->second], buckets_.data(),
                  buckets_.size(), count_, sum_);
  registry.live_histograms.erase(it);
}

Counter& counter(std::string_view name) {
  Registry& registry = Registry::get();
  {
    const util::LockGuard lock(registry.mutex);
    const auto it = registry.owned_counters.find(name);
    if (it != registry.owned_counters.end()) return *it->second;
  }
  // Construct outside the lock: the registering constructor takes it too.
  auto owned = std::make_unique<Counter>(std::string(name).c_str());
  const util::LockGuard lock(registry.mutex);
  const auto [it, inserted] =
      registry.owned_counters.emplace(std::string(name), std::move(owned));
  return *it->second;
}

Histogram& histogram(std::string_view name) {
  Registry& registry = Registry::get();
  {
    const util::LockGuard lock(registry.mutex);
    const auto it = registry.owned_histograms.find(name);
    if (it != registry.owned_histograms.end()) return *it->second;
  }
  auto owned = std::make_unique<Histogram>(std::string(name).c_str());
  const util::LockGuard lock(registry.mutex);
  const auto [it, inserted] =
      registry.owned_histograms.emplace(std::string(name), std::move(owned));
  return *it->second;
}

void set_gauge(std::string_view name, double value) {
  Registry& registry = Registry::get();
  const util::LockGuard lock(registry.mutex);
  registry.gauges[std::string(name)] = value;
}

void add_gauge(std::string_view name, double delta) {
  Registry& registry = Registry::get();
  const util::LockGuard lock(registry.mutex);
  registry.gauges[std::string(name)] += delta;
}

double gauge_value(std::string_view name) {
  Registry& registry = Registry::get();
  const util::LockGuard lock(registry.mutex);
  const auto it = registry.gauges.find(std::string(name));
  return it == registry.gauges.end() ? 0.0 : it->second;
}

TelemetrySnapshot capture_snapshot() {
  Registry& registry = Registry::get();
  const util::LockGuard lock(registry.mutex);
  TelemetrySnapshot snapshot;
  snapshot.counters = registry.retired_counters;
  for (const auto& [instance, name] : registry.live_counters)
    snapshot.counters[name] += instance->value();
  snapshot.gauges = registry.gauges;
  snapshot.histograms = registry.retired_histograms;
  for (const auto& [instance, name] : registry.live_histograms)
    merge_histogram(snapshot.histograms[name], instance->buckets().data(),
                    instance->buckets().size(), instance->count(),
                    instance->sum());
  for (auto& [name, histogram] : snapshot.histograms) trim_buckets(histogram);
  return snapshot;
}

void reset_all_metrics() {
  Registry& registry = Registry::get();
  const util::LockGuard lock(registry.mutex);
  for (const auto& [instance, name] : registry.live_counters) instance->reset();
  for (const auto& [instance, name] : registry.live_histograms)
    instance->reset();
  registry.retired_counters.clear();
  registry.retired_histograms.clear();
  registry.gauges.clear();
}

#else  // SIMGEN_NO_TELEMETRY: instruments count locally, nothing registers.

Counter::Counter(const char*) {}
Counter::~Counter() = default;
Histogram::Histogram(const char*) {}
Histogram::~Histogram() = default;

Counter& counter(std::string_view) {
  static Counter dummy;
  return dummy;
}

Histogram& histogram(std::string_view) {
  static Histogram dummy;
  return dummy;
}

void set_gauge(std::string_view, double) {}
void add_gauge(std::string_view, double) {}
double gauge_value(std::string_view) { return 0.0; }
TelemetrySnapshot capture_snapshot() { return {}; }
void reset_all_metrics() {}

#endif  // SIMGEN_NO_TELEMETRY

std::uint64_t bucket_percentile(const std::uint64_t* buckets,
                                std::size_t num_buckets, double q) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < num_buckets; ++i) total += buckets[i];
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based; q == 0 degenerates to the minimum.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < num_buckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    if (i == 0) return 0;  // bucket 0 holds exactly the value 0
    // Interpolate the rank's position inside this bucket's value range
    // [2^(i-1), 2^i - 1], assuming samples spread evenly across it.
    const double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
    const double hi = std::ldexp(1.0, static_cast<int>(i)) - 1.0;
    const double within =
        static_cast<double>(rank - seen - 1) / static_cast<double>(buckets[i]);
    return static_cast<std::uint64_t>(lo + (hi - lo) * within);
  }
  return 0;  // unreachable: rank <= total
}

std::uint64_t Histogram::percentile(double q) const noexcept {
  return bucket_percentile(buckets_.data(), buckets_.size(), q);
}

TelemetrySnapshot diff_snapshots(const TelemetrySnapshot& before,
                                 const TelemetrySnapshot& after) {
  TelemetrySnapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= base ? value - base : 0;
  }
  delta.gauges = after.gauges;
  for (const auto& [name, histogram] : after.histograms) {
    HistogramSnapshot d = histogram;
    const auto it = before.histograms.find(name);
    if (it != before.histograms.end()) {
      const HistogramSnapshot& base = it->second;
      d.count = d.count >= base.count ? d.count - base.count : 0;
      d.sum = d.sum >= base.sum ? d.sum - base.sum : 0;
      for (std::size_t i = 0;
           i < std::min(d.buckets.size(), base.buckets.size()); ++i)
        d.buckets[i] =
            d.buckets[i] >= base.buckets[i] ? d.buckets[i] - base.buckets[i] : 0;
    }
    while (!d.buckets.empty() && d.buckets.back() == 0) d.buckets.pop_back();
    delta.histograms[name] = std::move(d);
  }
  return delta;
}

void write_metrics_jsonl(std::ostream& out, const TelemetrySnapshot& snapshot) {
  out.precision(15);
  for (const auto& [name, value] : snapshot.counters)
    out << "{\"kind\":\"counter\",\"name\":\"" << detail::json_escape(name)
        << "\",\"value\":" << value << "}\n";
  for (const auto& [name, value] : snapshot.gauges)
    out << "{\"kind\":\"gauge\",\"name\":\"" << detail::json_escape(name)
        << "\",\"value\":" << detail::json_number(value) << "}\n";
  for (const auto& [name, histogram] : snapshot.histograms) {
    out << "{\"kind\":\"histogram\",\"name\":\"" << detail::json_escape(name)
        << "\",\"count\":" << histogram.count << ",\"sum\":" << histogram.sum
        << ",\"buckets\":[";
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (i != 0) out << ',';
      out << histogram.buckets[i];
    }
    out << "]}\n";
  }
}

void write_metrics_jsonl(std::ostream& out) {
  write_metrics_jsonl(out, capture_snapshot());
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_jsonl(out);
  return static_cast<bool>(out);
}

}  // namespace simgen::obs

/// \file journal.hpp
/// \brief Decision-level sweep journal: an append-only event log of every
/// sweeping decision, with a post-mortem reader.
///
/// The metrics registry (metrics.hpp) answers "how much happened"; the
/// journal answers "where and when". Every class created / split /
/// merged, every SAT call (target pair, verdict, solver cost deltas),
/// every simulated pattern batch (with its SimGen / random / RevS / CEX
/// attribution), every DRAT certification outcome, and periodic progress
/// heartbeats are recorded as fixed-size 64-byte events, so a slow or
/// stuck CEC run can be replayed offline (`tools/sweep_inspect`) down to
/// the individual merge candidate that ate the time.
///
/// Design constraints:
///  * The hot path is allocation-free: an event is a trivially-copyable
///    64-byte struct written into a per-thread lock-free SPSC ring; a
///    background drain thread moves filled rings to the file. When the
///    journal is closed (the default), emitting costs one acquire atomic
///    load (free on x86; the acquire publishes the epoch, see journal.cpp).
///  * Two on-disk formats share one event model: a binary framing (32-byte
///    file header + raw little-endian event records, the default) and a
///    JSON-Lines fallback (chosen by a ".jsonl" path suffix) for ad-hoc
///    tooling. `read_journal_file` auto-detects and parses both.
///  * With -DSIMGEN_NO_TELEMETRY=ON the writer compiles to nothing
///    (`journal_enabled()` is constexpr false and `Journal::open` refuses)
///    while the reader and the inspector stay available, so
///    `sweep_inspect` can still replay journals written elsewhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace simgen::obs {

// ---------------------------------------------------------------------------
// Event model

enum class EventKind : std::uint8_t {
  kNone = 0,
  kRunBegin = 1,      ///< a=PIs, b=nodes, v0=LUTs, v1=POs.
  kRunEnd = 2,        ///< code=outcome (0 not-eq, 1 eq, 2 undecided),
                      ///< v0=outputs proven, v1=unresolved outputs
                      ///< (nonzero only for outcome 2).
  kPhaseBegin = 3,    ///< code=PhaseId.
  kPhaseEnd = 4,      ///< code=PhaseId, v0=cost after, v1=classes live, dur_us.
  kClassCreated = 5,  ///< a=representative, code=PatternSource, v0=size.
  kClassSplit = 6,    ///< a=parent rep, code=PatternSource, v0=surviving
                      ///< buckets, v1=parent size.
  kClassMerged = 7,   ///< a=representative, b=node merged into it (UNSAT).
  kSatCall = 8,       ///< a,b=target pair (b unused for output proofs),
                      ///< code=SatVerdict, v0=conflicts, v1=propagations,
                      ///< v2=decisions, v3=(cone_vars<<32)|learned, dur_us,
                      ///< flags bit0 = output proof.
  kPatternBatch = 9,  ///< a=guided patterns in batch, b=widest refine in
                      ///< 64-bit words (1 for single-word batches),
                      ///< code=PatternSource, v0=classes split, v1=classes
                      ///< live after, v2=cost after, dur_us=simulate+refine
                      ///< time, flags=strategy.
  kCertified = 10,    ///< a,b=target pair, code=1 ok / 0 fail, v0=checked
                      ///< lemmas, v1=RUP checks, v2=checker propagations,
                      ///< dur_us, flags bit0 = output proof.
  kHeartbeat = 11,    ///< a=live nodes, b=resolved nodes, v0=classes live,
                      ///< v1=proved, v2=disproved, v3=SAT calls,
                      ///< dur_us=elapsed in sweep (saturating).
  kWatchdog = 12,     ///< code=1 signal / 2 timeout, a=signal number.
  kTaskRun = 13,      ///< One pool task: a=task index within the batch,
                      ///< b=worker index, code=task kind (0 sweep pair,
                      ///< 1 output proof, 2 bench cell), v0=round/batch
                      ///< sequence, v1=payload id (e.g. representative
                      ///< node), dur_us=task wall time. The lane timeline
                      ///< in sweep_inspect is built from these.
  kWorkerStats = 14,  ///< Per-worker scheduler rollup at pool teardown:
                      ///< a=worker index, b=tasks run, v0=steal attempts,
                      ///< v1=steal successes, v2=busy us, v3=idle us,
                      ///< dur_us=lock-contention blocks (saturating).
  kResourceSample = 15,  ///< a=current RSS kB, b=peak RSS kB,
                         ///< v0=allocation count, v1=allocated bytes
                         ///< (both 0 unless SIMGEN_ALLOC_STATS is set).
  // --- Solver introspection (format version >= 2) -----------------------
  // The next three kinds are milestone events emitted from *inside* a
  // SAT solve, tagged with the same (a, b, flags bit0) key as the
  // kSatCall that brackets them, so the inspector can attribute restart
  // and clause-DB behavior to the cone being solved.
  kSolverRestart = 16,  ///< One solver restart: a,b=target pair, v0=restart
                        ///< ordinal within this solve (1-based),
                        ///< v1=conflicts so far this solve, v2=learnt DB
                        ///< size, flags bit0 = output proof.
  kSolverReduce = 17,   ///< One learnt-clause DB reduction: a,b=target
                        ///< pair, v0=clauses deleted, v1=DB size before,
                        ///< v2=DB size after, flags bit0 = output proof.
  kSolverBudget = 18,   ///< Conflict budget exhausted (verdict kUnknown):
                        ///< a,b=target pair, v0=conflict limit,
                        ///< v1=conflicts this solve, flags bit0 = output
                        ///< proof.
  kConeFingerprint = 19,  ///< Structural fingerprint of a solved cone,
                          ///< joined to its kSatCall by (a, b, flags
                          ///< bit0): a,b=target pair, code=strategy arm
                          ///< (core::Strategy), v0=cone support (PI
                          ///< count), v1=cone node count, v2=cone depth
                          ///< (max level), flags bit0 = output proof.
  kSolverSolveStats = 20,  ///< Per-solve learnt-quality rollup, emitted at
                           ///< the end of every context-tagged solve and
                           ///< joined like the milestones: a,b=target pair,
                           ///< v0=learnt clauses this solve, v1=LBD sum,
                           ///< v2=LBD max, v3=restarts this solve, flags
                           ///< bit0 = output proof.
  // --- Inprocessing (format version >= 3) -------------------------------
  kSolverInprocess = 21,  ///< One inprocessing run between restarts,
                          ///< joined like the other solver milestones:
                          ///< a,b=target pair, v0=clauses deleted,
                          ///< v1=clauses strengthened (self-subsumption +
                          ///< vivification), v2=failed-literal units,
                          ///< v3=(substituted vars << 32) | eliminated
                          ///< vars, dur_us=run wall time, flags bit0 =
                          ///< output proof.
};

/// Verdict codes for kSatCall (mirrors sat::Result's meaning without
/// depending on the sat layer: obs sits below it).
enum class SatVerdict : std::uint8_t { kSat = 0, kUnsat = 1, kUnknown = 2 };

/// Attribution of a simulated pattern batch (and of the class splits it
/// caused) to the generator that produced the patterns.
enum class PatternSource : std::uint8_t {
  kNone = 0,
  kRandom = 1,          ///< Plain random simulation.
  kSimGen = 2,          ///< Guided SimGen arms (flags carries the arm).
  kRevS = 3,            ///< Reverse-simulation baseline.
  kCounterexample = 4,  ///< SAT counterexample resimulation.
};
inline constexpr std::size_t kNumPatternSources = 5;

/// Flow phases for kPhaseBegin/kPhaseEnd.
enum class PhaseId : std::uint8_t {
  kNone = 0,
  kRandomSim = 1,
  kGuidedSim = 2,
  kSweep = 3,
  kOutputProofs = 4,
  kReduce = 5,
};
inline constexpr std::size_t kNumPhases = 6;

[[nodiscard]] const char* kind_name(EventKind kind) noexcept;
[[nodiscard]] const char* source_name(PatternSource source) noexcept;
[[nodiscard]] const char* phase_name(PhaseId phase) noexcept;
[[nodiscard]] const char* verdict_name(SatVerdict verdict) noexcept;

/// One journal record. Fixed 64-byte layout so the hot-path write is a
/// single struct copy into a preallocated ring and the binary file format
/// is the in-memory representation. Field meaning depends on `kind` (see
/// EventKind); unused fields are zero.
struct JournalEvent {
  std::uint64_t t_ns = 0;  ///< Nanoseconds since the journal epoch (open()).
  std::uint64_t a = 0;     ///< Primary operand (node/class id, counts).
  std::uint64_t b = 0;     ///< Secondary operand.
  std::uint64_t v0 = 0;
  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;
  std::uint64_t v3 = 0;
  std::uint32_t dur_us = 0;  ///< Duration where meaningful (saturating).
  std::uint16_t flags = 0;   ///< Kind-specific (bit0 = output proof, ...).
  EventKind kind = EventKind::kNone;
  std::uint8_t code = 0;  ///< Kind-specific sub-code (verdict, phase, ...).

  friend bool operator==(const JournalEvent&, const JournalEvent&) = default;
};
static_assert(sizeof(JournalEvent) == 64, "events are 64-byte records");
static_assert(std::is_trivially_copyable_v<JournalEvent>);

/// kSatCall packs two 32-bit quantities into v3.
[[nodiscard]] constexpr std::uint64_t pack_cone_learned(
    std::uint64_t cone_vars, std::uint64_t learned) noexcept {
  const std::uint64_t hi = cone_vars > 0xffffffffull ? 0xffffffffull : cone_vars;
  const std::uint64_t lo = learned > 0xffffffffull ? 0xffffffffull : learned;
  return (hi << 32) | lo;
}
[[nodiscard]] constexpr std::uint64_t unpack_cone(std::uint64_t v3) noexcept {
  return v3 >> 32;
}
[[nodiscard]] constexpr std::uint64_t unpack_learned(std::uint64_t v3) noexcept {
  return v3 & 0xffffffffull;
}

/// Saturating microsecond duration for the 32-bit dur_us field.
[[nodiscard]] constexpr std::uint32_t saturate_us(double seconds) noexcept {
  const double us = seconds * 1e6;
  if (us <= 0.0) return 0;
  if (us >= 4294967295.0) return 0xffffffffu;
  return static_cast<std::uint32_t>(us);
}

// ---------------------------------------------------------------------------
// Writer

enum class JournalFormat : std::uint8_t {
  kAuto = 0,    ///< Binary unless the path ends in ".jsonl".
  kBinary = 1,
  kJsonl = 2,
};

#ifdef SIMGEN_NO_TELEMETRY
[[nodiscard]] constexpr bool journal_enabled() noexcept { return false; }
#else
/// True while a journal file is open and recording. One atomic load;
/// every emit helper checks it first.
[[nodiscard]] bool journal_enabled() noexcept;
#endif

/// Process-wide journal writer. Events from any thread funnel through
/// per-thread SPSC rings into one file; a background drain thread owns
/// the file writes so emitters never block on IO (a producer only drains
/// synchronously in the rare case its ring fills between drain passes).
class Journal {
 public:
  static Journal& instance();

  /// Opens \p path and starts recording (spawning the drain thread).
  /// Returns false if the file cannot be created, a journal is already
  /// open, or the writer is compiled out (SIMGEN_NO_TELEMETRY).
  bool open(const std::string& path, JournalFormat format = JournalFormat::kAuto);

  /// Stops recording, drains every buffer, and closes the file. Safe to
  /// call when not open (no-op) and from the watchdog thread.
  void close();

  /// Drains all pending events to the file and flushes it, without
  /// closing. Used by heartbeats and the watchdog so the on-disk journal
  /// is near-complete at any moment.
  void flush();

  [[nodiscard]] bool is_open() const noexcept;

  /// Records one event. If \p event.t_ns is zero it is stamped with the
  /// current epoch offset. Drops silently when not recording.
  void emit(JournalEvent event);

  /// Nanoseconds since open(); 0 when closed.
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Events written to the file so far (drained, not still in rings).
  [[nodiscard]] std::uint64_t events_written() const noexcept;

 private:
  Journal() = default;
};

/// Convenience emit: fills a JournalEvent and hands it to the instance.
/// All call sites guard with journal_enabled() first, so under
/// SIMGEN_NO_TELEMETRY the whole expression folds away.
inline void journal_emit(EventKind kind, std::uint8_t code, std::uint64_t a,
                         std::uint64_t b = 0, std::uint64_t v0 = 0,
                         std::uint64_t v1 = 0, std::uint64_t v2 = 0,
                         std::uint64_t v3 = 0, std::uint32_t dur_us = 0,
                         std::uint16_t flags = 0) {
  if (!journal_enabled()) return;
  JournalEvent event;
  event.kind = kind;
  event.code = code;
  event.a = a;
  event.b = b;
  event.v0 = v0;
  event.v1 = v1;
  event.v2 = v2;
  event.v3 = v3;
  event.dur_us = dur_us;
  event.flags = flags;
  Journal::instance().emit(event);
}

/// RAII phase bracket: emits kPhaseBegin at construction and kPhaseEnd
/// (with duration and an optional cost/classes-live result) at scope
/// exit. Free when the journal is closed or compiled out.
class PhaseScope {
 public:
  explicit PhaseScope(PhaseId phase) noexcept {
    if (!journal_enabled()) return;
    active_ = true;
    phase_ = phase;
    start_ns_ = Journal::instance().now_ns();
    journal_emit(EventKind::kPhaseBegin, static_cast<std::uint8_t>(phase), 0);
  }
  ~PhaseScope() {
    if (!active_) return;
    const std::uint64_t end_ns = Journal::instance().now_ns();
    journal_emit(EventKind::kPhaseEnd, static_cast<std::uint8_t>(phase_), 0, 0,
                 v0_, v1_, 0, 0,
                 saturate_us(static_cast<double>(end_ns - start_ns_) * 1e-9));
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Records the phase outcome carried by kPhaseEnd (cost after, classes
  /// live after).
  void set_result(std::uint64_t cost_after, std::uint64_t classes_live) noexcept {
    v0_ = cost_after;
    v1_ = classes_live;
  }

 private:
  std::uint64_t start_ns_ = 0;
  std::uint64_t v0_ = 0;
  std::uint64_t v1_ = 0;
  PhaseId phase_ = PhaseId::kNone;
  bool active_ = false;
};

// ---------------------------------------------------------------------------
// Pattern-source attribution

/// RAII attribution scope for one simulated pattern batch. Construct it
/// around a simulate+refine step; EquivClasses::refine reports its split
/// results into the innermost scope on the same thread, and the scope's
/// destructor emits one kPatternBatch event with the batch's source,
/// guided-pattern count, splits, and wall time. Nesting is allowed (the
/// innermost scope wins); everything is a no-op while the journal is
/// closed or compiled out.
class PatternScope {
 public:
  /// \p patterns is the number of *guided* patterns in the batch (0 for a
  /// purely random word); \p strategy_code optionally records the guided
  /// arm (core::Strategy value) in the event's flags.
  PatternScope(PatternSource source, std::uint32_t patterns,
               std::uint8_t strategy_code = 0) noexcept;
  ~PatternScope();
  PatternScope(const PatternScope&) = delete;
  PatternScope& operator=(const PatternScope&) = delete;

  /// Called by EquivClasses::refine: accumulates refine results into the
  /// innermost scope of the calling thread. No-op without one.
  /// \p width_words is the refine's pattern width in 64-bit words (the
  /// scope keeps the widest seen); per-word refinement passes 1, so the
  /// flow's journals stay byte-identical across simulator block widths.
  static void record_refine(std::uint64_t splits, std::uint64_t classes_live,
                            std::uint64_t cost,
                            std::uint64_t width_words = 1) noexcept;

  /// Source of the innermost active scope (kNone without one); used by
  /// refine to attribute per-class split events.
  [[nodiscard]] static PatternSource current_source() noexcept;

 private:
#ifndef SIMGEN_NO_TELEMETRY
  PatternScope* prev_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t splits_ = 0;
  std::uint64_t classes_live_ = 0;
  std::uint64_t cost_ = 0;
  std::uint64_t width_words_ = 0;
  std::uint32_t patterns_ = 0;
  PatternSource source_ = PatternSource::kNone;
  std::uint8_t strategy_code_ = 0;
  bool refined_ = false;
  bool active_ = false;
#endif
};

// ---------------------------------------------------------------------------
// Reader (compiled unconditionally, including SIMGEN_NO_TELEMETRY builds)

/// Parses a journal file (binary or JSONL, auto-detected) into events.
/// Returns false and fills \p error on malformed input; a trailing
/// partial record (a run killed mid-write) is tolerated and reported via
/// \p truncated when non-null.
bool read_journal_file(const std::string& path, std::vector<JournalEvent>& out,
                       std::string* error = nullptr, bool* truncated = nullptr);

/// Serializes events in the binary format (header + records) or JSONL to
/// an arbitrary file — the reader-side counterpart used by tests and by
/// `sweep_inspect --rewrite`. Returns false if the file cannot be written.
bool write_journal_file(const std::string& path,
                        const std::vector<JournalEvent>& events,
                        JournalFormat format = JournalFormat::kAuto);

}  // namespace simgen::obs

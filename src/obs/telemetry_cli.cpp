#include "obs/telemetry_cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/logging.hpp"

namespace simgen::obs {

TelemetryCli::TelemetryCli(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const auto take_value = [&](const char* flag, std::string& into) {
      if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc) return false;
      into = argv[++i];
      return true;
    };
    std::string number;
    if (take_value("--trace-out", trace_out_) ||
        take_value("--metrics-out", metrics_out_) ||
        take_value("--journal-out", journal_out_)) {
      continue;
    }
    if (take_value("--progress", number)) {
      progress_interval_ = std::atof(number.c_str());
      continue;
    }
    if (take_value("--timeout", number)) {
      timeout_seconds_ = std::atof(number.c_str());
      continue;
    }
    if (take_value("--threads", number)) {
      // Hard cap far above any sane request: a typo'd or negative value
      // must become a usage error, not 4 billion spawned threads.
      constexpr long kMaxThreads = 1024;
      char* end = nullptr;
      const long value = std::strtol(number.c_str(), &end, 10);
      if (end == number.c_str() || *end != '\0' || value < 0 ||
          value > kMaxThreads) {
        std::fprintf(stderr,
                     "error: --threads expects an integer in [0, %ld] "
                     "(0 = auto), got '%s'\n",
                     kMaxThreads, number.c_str());
        std::exit(2);
      }
      num_threads_ = static_cast<unsigned>(value);
      continue;
    }
    if (std::strcmp(argv[i], "--no-inprocess") == 0) {
      inprocess_ = false;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  if (!trace_out_.empty()) Tracer::instance().enable();
  if (!journal_out_.empty() && !Journal::instance().open(journal_out_))
    std::fprintf(stderr, "error: cannot open journal file %s%s\n",
                 journal_out_.c_str(),
                 journal_enabled() ? "" : " (telemetry compiled out)");
  // Heartbeat lines go through the info log level; --progress implies the
  // user wants to see them.
  if (progress_interval_ > 0.0 && util::log_level() > util::LogLevel::kInfo)
    util::set_log_level(util::LogLevel::kInfo);
  // Outputs survive Ctrl-C / --timeout: the finalizer is registered with
  // atexit and also invoked by the watchdog and by our destructor.
  set_exit_outputs(trace_out_, metrics_out_);
  WatchdogOptions watchdog;
  watchdog.timeout_seconds = timeout_seconds_;
  start_watchdog(watchdog);
}

TelemetryCli::~TelemetryCli() {
  const bool journal_open = Journal::instance().is_open();
  flush_exit_outputs();
  if (!trace_out_.empty())
    std::printf("trace written to %s\n", trace_out_.c_str());
  if (!metrics_out_.empty())
    std::printf("metrics written to %s\n", metrics_out_.c_str());
  if (journal_open)
    std::printf("journal written to %s (inspect with sweep_inspect)\n",
                journal_out_.c_str());
}

}  // namespace simgen::obs

/// \file pool_obs.hpp
/// \brief obs-layer export of util::ThreadPool scheduler profiles.
///
/// The thread pool (util layer, below obs) collects per-worker counters
/// but cannot publish them itself; this module is the bridge. A
/// PoolProfileScope registers a live pool as the process's current one —
/// so heartbeats can print the live queue depth and the watchdog can dump
/// per-worker utilization at fire time — and at scope exit exports the
/// final profile as pool.* registry metrics plus one kWorkerStats journal
/// event per worker.
///
/// Exported instruments:
///   counters   pool.batches, pool.tasks, pool.steal_attempts,
///              pool.steal_successes, pool.lock_acquires,
///              pool.lock_blocks, pool.busy_us, pool.idle_us
///   gauges     pool.workers, pool.utilization (busy/(busy+idle)),
///              pool.max_queue_depth
///   histogram  pool.task_us (per-task latency, log2 buckets)
///
/// Under SIMGEN_NO_TELEMETRY everything here is an inline no-op (the
/// pool's profiling API does not exist either).
#pragma once

#include <cstdint>
#include <cstdio>

namespace simgen::util {
class ThreadPool;
}  // namespace simgen::util

namespace simgen::obs {

#ifndef SIMGEN_NO_TELEMETRY

/// RAII registration + export for one pool's lifetime. Declare *after*
/// the pool at the call site so the scope unregisters (and exports)
/// before the pool is destroyed. If another pool is already registered
/// (nested pools), the inner scope skips registration but still exports
/// its own pool's profile at exit.
class PoolProfileScope {
 public:
  explicit PoolProfileScope(const util::ThreadPool& pool);
  ~PoolProfileScope();
  PoolProfileScope(const PoolProfileScope&) = delete;
  PoolProfileScope& operator=(const PoolProfileScope&) = delete;

 private:
  const util::ThreadPool* pool_;
  bool registered_ = false;
};

/// Live queue depth (unfinished tasks of the current batch) of the
/// registered pool; 0 when no pool is registered. Async-safe with
/// respect to running batches — heartbeats and the watchdog call this
/// mid-flight.
[[nodiscard]] std::uint64_t current_pool_queue_depth() noexcept;

/// Writes a per-worker utilization snapshot of the registered pool to
/// \p out (used by the watchdog's fire-time dump); no-op when no pool is
/// registered.
void write_pool_utilization(std::FILE* out);

/// Exports \p pool's current profile into the pool.* instruments and —
/// when a journal is recording — emits one kWorkerStats event per
/// worker. Settles each worker's trailing idle interval first
/// (ThreadPool::settle_idle) so the exported idle_us includes the tail
/// after every worker's last task. Called by ~PoolProfileScope; call
/// directly only for pools not wrapped in a scope.
void export_pool_profile(const util::ThreadPool& pool);

#else

class PoolProfileScope {
 public:
  explicit PoolProfileScope(const util::ThreadPool&) {}
};

[[nodiscard]] inline std::uint64_t current_pool_queue_depth() noexcept {
  return 0;
}
inline void write_pool_utilization(std::FILE*) {}
inline void export_pool_profile(const util::ThreadPool&) {}

#endif  // SIMGEN_NO_TELEMETRY

}  // namespace simgen::obs

#include "obs/resource.hpp"

#ifndef SIMGEN_NO_TELEMETRY

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/metrics.hpp"

namespace {

// Cumulative allocation tallies fed by the operator new replacement
// below. Constant-initialized so counting is safe from the very first
// pre-main allocation.
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

/// One-time environment check. Called from operator new, so it must not
/// allocate; getenv plus a magic-static bool qualifies.
bool alloc_stats_on() noexcept {
  static const bool enabled = std::getenv("SIMGEN_ALLOC_STATS") != nullptr;
  return enabled;
}

/// Parses a "VmRSS:     12345 kB" style /proc/self/status line into
/// \p out_kb; returns false when \p line is not a \p key line.
bool parse_status_kb(const char* line, const char* key,
                     std::uint64_t& out_kb) noexcept {
  const std::size_t key_len = std::strlen(key);
  if (std::strncmp(line, key, key_len) != 0) return false;
  out_kb = std::strtoull(line + key_len, nullptr, 10);
  return true;
}

}  // namespace

namespace simgen::obs {

bool alloc_stats_enabled() noexcept { return alloc_stats_on(); }

ResourceSample sample_resources() noexcept {
  ResourceSample sample;
#if defined(__linux__)
  if (std::FILE* status = std::fopen("/proc/self/status", "re")) {
    char line[160];
    while (std::fgets(line, sizeof line, status) != nullptr) {
      if (parse_status_kb(line, "VmRSS:", sample.current_rss_kb)) continue;
      if (parse_status_kb(line, "VmHWM:", sample.peak_rss_kb)) continue;
    }
    std::fclose(status);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  if (sample.peak_rss_kb == 0) {
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
      // ru_maxrss is bytes on macOS, kilobytes everywhere else.
      sample.peak_rss_kb = static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
      sample.peak_rss_kb = static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
      if (sample.current_rss_kb == 0) {
        sample.current_rss_kb = sample.peak_rss_kb;
      }
    }
  }
#endif
  if (alloc_stats_on()) {
    sample.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
    sample.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  }
  return sample;
}

ResourceSample sample_resource_gauges() {
  const ResourceSample sample = sample_resources();
  set_gauge("res.current_rss_mb",
            static_cast<double>(sample.current_rss_kb) / 1024.0);
  set_gauge("res.peak_rss_mb",
            static_cast<double>(sample.peak_rss_kb) / 1024.0);
  if (alloc_stats_on()) {
    set_gauge("res.alloc_count", static_cast<double>(sample.alloc_count));
    set_gauge("res.alloc_bytes", static_cast<double>(sample.alloc_bytes));
  }
  return sample;
}

}  // namespace simgen::obs

// ---------------------------------------------------------------------------
// Global allocation hooks. Replacing the usual (non-aligned) operator
// new/delete family lets SIMGEN_ALLOC_STATS attribute allocator traffic
// without an external profiler; with the variable unset the overhead is
// one well-predicted branch per allocation. Everything forwards to
// std::malloc/std::free, so the sanitizer allocators underneath still see
// every block. Over-aligned allocations keep the compiler defaults and
// are simply not counted.

namespace {

void* counted_new(std::size_t size) {
  for (;;) {
    // malloc(0) may return nullptr legally; operator new must not.
    if (void* ptr = std::malloc(size == 0 ? 1 : size)) {
      if (alloc_stats_on()) {
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
        g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
      }
      return ptr;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

void* operator new(std::size_t size) { return counted_new(size); }
void* operator new[](std::size_t size) { return counted_new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_new(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_new(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

#endif  // SIMGEN_NO_TELEMETRY

#include "obs/pool_obs.hpp"

#ifndef SIMGEN_NO_TELEMETRY

#include <cinttypes>
#include <cstddef>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace simgen::obs {
namespace {

/// The registered live pool. Leaked-singleton state (like the registry)
/// so late readers — the watchdog thread in particular — never race a
/// static destructor.
struct PoolObsState {
  util::Mutex mutex;
  const util::ThreadPool* pool SIMGEN_GUARDED_BY(mutex) = nullptr;

  static PoolObsState& get() {
    static PoolObsState* state = new PoolObsState();
    return *state;
  }
};

double utilization_of(std::uint64_t busy_ns, std::uint64_t idle_ns) {
  const double busy = static_cast<double>(busy_ns);
  const double idle = static_cast<double>(idle_ns);
  return busy + idle > 0.0 ? busy / (busy + idle) : 0.0;
}

std::uint32_t saturate_u32(std::uint64_t value) {
  return value > 0xffffffffULL ? 0xffffffffU
                               : static_cast<std::uint32_t>(value);
}

}  // namespace

PoolProfileScope::PoolProfileScope(const util::ThreadPool& pool)
    : pool_(&pool) {
  PoolObsState& state = PoolObsState::get();
  const util::LockGuard lock(state.mutex);
  if (state.pool == nullptr) {
    state.pool = pool_;
    registered_ = true;
  }
}

PoolProfileScope::~PoolProfileScope() {
  if (registered_) {
    PoolObsState& state = PoolObsState::get();
    const util::LockGuard lock(state.mutex);
    state.pool = nullptr;
  }
  export_pool_profile(*pool_);
}

std::uint64_t current_pool_queue_depth() noexcept {
  PoolObsState& state = PoolObsState::get();
  const util::LockGuard lock(state.mutex);
  return state.pool != nullptr ? state.pool->pending_tasks() : 0;
}

void write_pool_utilization(std::FILE* out) {
  PoolObsState& state = PoolObsState::get();
  const util::LockGuard lock(state.mutex);
  if (state.pool == nullptr) {
    std::fprintf(out, "  pool: none registered\n");
    return;
  }
  const util::PoolProfile profile = state.pool->profile();
  std::fprintf(out, "  pool: %zu workers, %" PRIu64 " pending tasks\n",
               profile.workers.size(), state.pool->pending_tasks());
  for (std::size_t w = 0; w < profile.workers.size(); ++w) {
    const util::WorkerProfile& worker = profile.workers[w];
    std::fprintf(out,
                 "    w%zu: %" PRIu64 " tasks, busy %.1f%%, steals %" PRIu64
                 "/%" PRIu64 ", lock blocks %" PRIu64 "\n",
                 w, worker.tasks,
                 100.0 * utilization_of(worker.busy_ns, worker.idle_ns),
                 worker.steal_successes, worker.steal_attempts,
                 worker.lock_blocks);
  }
}

void export_pool_profile(const util::ThreadPool& pool) {
  // Close every worker's trailing idle interval first: the export is the
  // pool's final accounting, and without the settle the idle tail after
  // each worker's last task would be dropped, inflating busy%.
  pool.settle_idle();
  const util::PoolProfile profile = pool.profile();
  const util::WorkerProfile totals = profile.totals();

  counter("pool.batches").inc(profile.batches);
  counter("pool.tasks").inc(totals.tasks);
  counter("pool.steal_attempts").inc(totals.steal_attempts);
  counter("pool.steal_successes").inc(totals.steal_successes);
  counter("pool.lock_acquires").inc(totals.lock_acquires);
  counter("pool.lock_blocks").inc(totals.lock_blocks);
  counter("pool.busy_us").inc(totals.busy_ns / 1000);
  counter("pool.idle_us").inc(totals.idle_ns / 1000);
  histogram("pool.task_us")
      .merge_from(totals.task_us_buckets.data(), totals.task_us_buckets.size(),
                  totals.tasks, totals.task_us_sum);
  set_gauge("pool.workers", static_cast<double>(profile.workers.size()));
  set_gauge("pool.utilization", utilization_of(totals.busy_ns, totals.idle_ns));
  set_gauge("pool.max_queue_depth",
            static_cast<double>(totals.max_queue_depth));

  if (!journal_enabled()) return;
  for (std::size_t w = 0; w < profile.workers.size(); ++w) {
    const util::WorkerProfile& worker = profile.workers[w];
    journal_emit(EventKind::kWorkerStats, 0, w, worker.tasks,
                 worker.steal_attempts, worker.steal_successes,
                 worker.busy_ns / 1000, worker.idle_ns / 1000,
                 saturate_u32(worker.lock_blocks));
  }
}

}  // namespace simgen::obs

#endif  // SIMGEN_NO_TELEMETRY

#include "obs/inspect.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace simgen::obs {

namespace {

std::string format_duration_us(std::uint64_t us) {
  char buffer[64];
  if (us >= 10'000'000)
    std::snprintf(buffer, sizeof buffer, "%.2f s", static_cast<double>(us) * 1e-6);
  else if (us >= 10'000)
    std::snprintf(buffer, sizeof buffer, "%.2f ms", static_cast<double>(us) * 1e-3);
  else
    std::snprintf(buffer, sizeof buffer, "%" PRIu64 " us", us);
  return buffer;
}

std::string format_time_ns(std::uint64_t ns) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%10.3f ms", static_cast<double>(ns) * 1e-6);
  return buffer;
}

std::string strategy_label(std::uint8_t source, std::uint8_t code,
                           const InspectOptions& options) {
  const auto src = static_cast<PatternSource>(source);
  if (src != PatternSource::kSimGen && src != PatternSource::kRevS)
    return source_name(src);
  if (options.strategy_namer != nullptr) {
    if (const char* name = options.strategy_namer(code); name != nullptr)
      return std::string(source_name(src)) + "/" + name;
  }
  return std::string(source_name(src)) + "/arm" + std::to_string(code);
}

/// Ranks classes by attributed SAT time, then conflicts, then activity.
std::vector<const ClassRecord*> rank_classes(const JournalReport& report) {
  std::vector<const ClassRecord*> ranked;
  ranked.reserve(report.classes.size());
  for (const auto& [rep, record] : report.classes) ranked.push_back(&record);
  std::sort(ranked.begin(), ranked.end(),
            [](const ClassRecord* x, const ClassRecord* y) {
              if (x->sat_time_us != y->sat_time_us)
                return x->sat_time_us > y->sat_time_us;
              if (x->conflicts != y->conflicts) return x->conflicts > y->conflicts;
              return x->timeline.size() > y->timeline.size();
            });
  return ranked;
}

std::vector<const SatCallRecord*> rank_calls(const JournalReport& report) {
  std::vector<const SatCallRecord*> ranked;
  ranked.reserve(report.calls.size());
  for (const SatCallRecord& call : report.calls) ranked.push_back(&call);
  std::sort(ranked.begin(), ranked.end(),
            [](const SatCallRecord* x, const SatCallRecord* y) {
              if (x->dur_us != y->dur_us) return x->dur_us > y->dur_us;
              return x->conflicts > y->conflicts;
            });
  return ranked;
}

const char* timeline_verb(const TimelineEntry& entry) {
  switch (entry.kind) {
    case EventKind::kClassCreated: return "created";
    case EventKind::kClassSplit: return "split";
    case EventKind::kClassMerged: return "merged";
    case EventKind::kSatCall:
      switch (static_cast<SatVerdict>(entry.code)) {
        case SatVerdict::kSat: return "sat-call SAT (disproved)";
        case SatVerdict::kUnsat: return "sat-call UNSAT (proved)";
        case SatVerdict::kUnknown: return "sat-call UNKNOWN (limit)";
      }
      return "sat-call";
    case EventKind::kCertified:
      return entry.code != 0 ? "certified ok" : "certified FAIL";
    default: return kind_name(entry.kind);
  }
}

void append_folded(JournalReport& report, const std::string& stack,
                   std::uint64_t us) {
  if (us > 0) report.folded[stack] += us;
}

/// Start of a lane task in journal time: kTaskRun events are stamped at
/// task end, so the occupied interval is [t_end - dur, t_end].
std::uint64_t lane_task_begin_ns(const LaneTask& task) {
  const std::uint64_t dur_ns = static_cast<std::uint64_t>(task.dur_us) * 1000;
  return task.t_end_ns > dur_ns ? task.t_end_ns - dur_ns : 0;
}

/// Min/max journal time over every lane task; false when no lane spans
/// a nonzero interval (then there is nothing to scale a timeline to).
bool lane_span(const JournalReport& report, std::uint64_t& min_ns,
               std::uint64_t& max_ns) {
  min_ns = ~0ull;
  max_ns = 0;
  for (const auto& [worker, lane] : report.lanes)
    for (const LaneTask& task : lane.timeline) {
      min_ns = std::min(min_ns, lane_task_begin_ns(task));
      max_ns = std::max(max_ns, task.t_end_ns);
    }
  return max_ns > min_ns && min_ns != ~0ull;
}

///// Busy fraction of one lane: the kWorkerStats rollup when recorded
/// (busy vs busy+idle over the pool lifetime), else task time over the
/// lane span.
double lane_busy_percent(const WorkerLane& lane, bool have_span,
                         std::uint64_t span_us) {
  if (lane.has_stats && lane.stats_busy_us + lane.stats_idle_us > 0)
    return 100.0 * static_cast<double>(lane.stats_busy_us) /
           static_cast<double>(lane.stats_busy_us + lane.stats_idle_us);
  if (have_span && span_us > 0)
    return 100.0 * static_cast<double>(lane.busy_us) /
           static_cast<double>(span_us);
  return 0.0;
}

/// Marks the bins of a width-|bins| lane that \p task overlaps.
void mark_lane_bins(std::vector<bool>& bins, const LaneTask& task,
                    std::uint64_t min_ns, std::uint64_t max_ns) {
  const int width = static_cast<int>(bins.size());
  const double scale = static_cast<double>(width) /
                       static_cast<double>(max_ns - min_ns);
  int lo = static_cast<int>(
      static_cast<double>(lane_task_begin_ns(task) - min_ns) * scale);
  int hi = static_cast<int>(static_cast<double>(task.t_end_ns - min_ns) * scale);
  lo = std::clamp(lo, 0, width - 1);
  hi = std::clamp(hi, lo, width - 1);
  for (int i = lo; i <= hi; ++i) bins[i] = true;
}

/// Per-call log2 distribution in the shared bucket_of() layout, so the
/// --sat report quotes p50/p90/p99 through the same bucket_percentile
/// estimator as the pool-profile exporter.
struct CallDistribution {
  std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void observe(std::uint64_t value) {
    ++buckets[Histogram::bucket_of(value)];
    ++count;
    sum += value;
    max = std::max(max, value);
  }
  [[nodiscard]] std::uint64_t percentile(double q) const {
    return bucket_percentile(buckets.data(), buckets.size(), q);
  }
};

/// Pooled per-task latency distribution over every worker lane, in the
/// shared bucket layout so the lane reports quote p50/p90/p99 through
/// the same bucket_percentile estimator as the --sat tables.
CallDistribution lane_latency_distribution(const JournalReport& report) {
  CallDistribution dist;
  for (const auto& [worker, lane] : report.lanes)
    for (const LaneTask& task : lane.timeline) dist.observe(task.dur_us);
  return dist;
}

std::string arm_label(std::uint8_t arm, const InspectOptions& options) {
  if (options.strategy_namer != nullptr)
    if (const char* name = options.strategy_namer(arm); name != nullptr)
      return name;
  return "arm" + std::to_string(arm);
}

/// Value range of log2 bucket \p i ("0", "1", "2-3", "4-7", ...).
std::string bucket_range_label(std::size_t i) {
  if (i == 0) return "0";
  if (i == 1) return "1";
  const std::uint64_t lo = std::uint64_t{1} << (i - 1);
  const std::uint64_t hi = i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  return std::to_string(lo) + "-" + std::to_string(hi);
}

/// Target column of a SAT call: "(a, b)" for pairs, "output N" for
/// output proofs.
std::string call_target(const SatCallRecord& call) {
  char pair[48];
  if (call.output_proof)
    std::snprintf(pair, sizeof pair, "output %" PRIu64, call.a);
  else
    std::snprintf(pair, sizeof pair, "(%" PRIu64 ", %" PRIu64 ")", call.a,
                  call.b);
  return pair;
}

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

JournalReport build_report(const std::vector<JournalEvent>& events,
                           bool truncated) {
  JournalReport report;
  report.num_events = events.size();
  report.truncated = truncated;

  std::uint64_t min_ns = ~0ull, max_ns = 0;
  std::vector<PhaseId> phase_stack;
  const auto current_phase = [&phase_stack]() {
    return phase_stack.empty() ? PhaseId::kNone : phase_stack.back();
  };
  const auto charge_phase = [&](std::uint32_t dur_us) {
    const auto phase = static_cast<std::size_t>(current_phase());
    if (phase < kNumPhases) report.phases[phase].child_us += dur_us;
  };
  const auto class_of = [&report](std::uint64_t rep) -> ClassRecord& {
    ClassRecord& record = report.classes[rep];
    record.rep = rep;
    return record;
  };
  const auto touch = [](ClassRecord& record, const JournalEvent& event) {
    if (record.first_ns == 0 || event.t_ns < record.first_ns)
      record.first_ns = event.t_ns;
    if (event.t_ns > record.last_ns) record.last_ns = event.t_ns;
  };

  // Solver-introspection events precede their kSatCall in every worker's
  // ring (fingerprint before the solve, milestones and the solve-stats
  // rollup inside it), and a join key only ever comes from one thread, so
  // accumulating per key until the kSatCall arrives is order-safe even
  // though the drain interleaves rings.
  struct PendingSolve {
    bool has_fingerprint = false;
    std::uint8_t arm = 0;
    std::uint64_t support = 0, nodes = 0, depth = 0;
    bool has_stats = false;
    std::uint64_t restarts = 0, reduces = 0, budget_hits = 0;
    std::uint64_t learned = 0, lbd_sum = 0, lbd_max = 0;
  };
  std::map<std::array<std::uint64_t, 3>, PendingSolve> pending;
  const auto pending_key = [](const JournalEvent& event) {
    return std::array<std::uint64_t, 3>{event.a, event.b, event.flags & 1u};
  };

  for (const JournalEvent& event : events) {
    if (event.t_ns != 0) {
      min_ns = std::min(min_ns, event.t_ns);
      max_ns = std::max(max_ns, event.t_ns);
    }
    switch (event.kind) {
      case EventKind::kPhaseBegin:
        phase_stack.push_back(static_cast<PhaseId>(event.code));
        break;
      case EventKind::kPhaseEnd: {
        if (!phase_stack.empty()) phase_stack.pop_back();
        const auto phase = static_cast<std::size_t>(event.code);
        if (phase < kNumPhases) {
          report.phases[phase].total_us += event.dur_us;
          report.phases[phase].enters += 1;
        }
        break;
      }
      case EventKind::kClassCreated: {
        report.class_created += 1;
        ClassRecord& record = class_of(event.a);
        touch(record, event);
        if (record.creations == 0) {
          record.created_size = event.v0;
          record.created_by = static_cast<PatternSource>(event.code);
        }
        record.creations += 1;
        record.timeline.push_back(
            {event.t_ns, event.kind, event.code, 0, event.v0});
        break;
      }
      case EventKind::kClassSplit: {
        report.class_split += 1;
        ClassRecord& record = class_of(event.a);
        touch(record, event);
        record.splits += 1;
        record.timeline.push_back(
            {event.t_ns, event.kind, event.code, 0, event.v0});
        break;
      }
      case EventKind::kClassMerged: {
        report.class_merged += 1;
        ClassRecord& record = class_of(event.a);
        touch(record, event);
        record.merges += 1;
        record.timeline.push_back(
            {event.t_ns, event.kind, event.code, 0, event.b});
        break;
      }
      case EventKind::kSatCall: {
        report.sat_calls += 1;
        const auto verdict = static_cast<SatVerdict>(event.code);
        const bool output_proof = (event.flags & 1u) != 0;
        if (verdict == SatVerdict::kSat) report.sat_sat += 1;
        if (verdict == SatVerdict::kUnsat) report.sat_unsat += 1;
        if (verdict == SatVerdict::kUnknown) report.sat_unknown += 1;
        if (output_proof) report.output_proofs += 1;
        report.conflicts += event.v0;
        report.propagations += event.v1;
        report.decisions += event.v2;
        report.learned += unpack_learned(event.v3);
        SatCallRecord call;
        call.t_ns = event.t_ns;
        call.a = event.a;
        call.b = event.b;
        call.verdict = verdict;
        call.output_proof = output_proof;
        call.conflicts = event.v0;
        call.propagations = event.v1;
        call.decisions = event.v2;
        call.cone_vars = unpack_cone(event.v3);
        call.learned = unpack_learned(event.v3);
        call.dur_us = event.dur_us;
        call.phase = static_cast<std::uint8_t>(current_phase());
        if (const auto it = pending.find(pending_key(event));
            it != pending.end()) {
          const PendingSolve& join = it->second;
          call.has_fingerprint = join.has_fingerprint;
          call.strategy_arm = join.arm;
          call.cone_support = join.support;
          call.cone_nodes = join.nodes;
          call.cone_depth = join.depth;
          call.has_solve_stats = join.has_stats;
          call.restarts = join.restarts;
          call.reduces = join.reduces;
          call.budget_hits = join.budget_hits;
          call.lbd_sum = join.lbd_sum;
          call.lbd_max = join.lbd_max;
          if (join.has_stats) call.learned = join.learned;
          pending.erase(it);
        }
        report.calls.push_back(call);
        if (!output_proof) {
          ClassRecord& record = class_of(event.a);
          touch(record, event);
          record.sat_calls += 1;
          record.sat_time_us += event.dur_us;
          record.conflicts += event.v0;
          record.max_cone_vars = std::max(record.max_cone_vars, call.cone_vars);
          if (verdict == SatVerdict::kSat) record.disproofs += 1;
          record.timeline.push_back(
              {event.t_ns, event.kind, event.code, event.dur_us, event.b});
        }
        charge_phase(event.dur_us);
        append_folded(report,
                      std::string("simgen;") + phase_name(current_phase()) +
                          ";sat;" + verdict_name(verdict),
                      event.dur_us);
        break;
      }
      case EventKind::kPatternBatch: {
        report.pattern_batches += 1;
        report.pattern_splits += event.v0;
        StrategyEffect& effect =
            report.strategies[{event.code, static_cast<std::uint8_t>(event.flags)}];
        effect.batches += 1;
        effect.patterns += event.a;
        effect.splits += event.v0;
        effect.time_us += event.dur_us;
        charge_phase(event.dur_us);
        std::string stack = std::string("simgen;") +
                            phase_name(current_phase()) + ";pattern;" +
                            source_name(static_cast<PatternSource>(event.code));
        if (static_cast<PatternSource>(event.code) == PatternSource::kSimGen)
          stack += ";arm" + std::to_string(event.flags);
        append_folded(report, stack, event.dur_us);
        break;
      }
      case EventKind::kCertified: {
        if (event.code != 0)
          report.certified_ok += 1;
        else
          report.certified_fail += 1;
        report.checked_lemmas += event.v0;
        if ((event.flags & 1u) == 0) {
          ClassRecord& record = class_of(event.a);
          touch(record, event);
          record.timeline.push_back(
              {event.t_ns, event.kind, event.code, event.dur_us, event.b});
        }
        charge_phase(event.dur_us);
        append_folded(report,
                      std::string("simgen;") + phase_name(current_phase()) +
                          ";certify",
                      event.dur_us);
        break;
      }
      case EventKind::kHeartbeat:
        report.heartbeats += 1;
        break;
      case EventKind::kWatchdog:
        report.watchdog_fires += 1;
        break;
      case EventKind::kTaskRun: {
        report.task_runs += 1;
        WorkerLane& lane = report.lanes[event.b];
        lane.worker = event.b;
        lane.tasks_run += 1;
        lane.busy_us += event.dur_us;
        lane.timeline.push_back(
            {event.t_ns, event.dur_us, event.a, event.v1, event.code});
        break;
      }
      case EventKind::kWorkerStats: {
        report.worker_stats += 1;
        WorkerLane& lane = report.lanes[event.a];
        lane.worker = event.a;
        lane.has_stats = true;
        lane.stats_tasks += event.b;
        lane.steal_attempts += event.v0;
        lane.steal_successes += event.v1;
        lane.stats_busy_us += event.v2;
        lane.stats_idle_us += event.v3;
        lane.lock_blocks += event.dur_us;
        break;
      }
      case EventKind::kResourceSample:
        report.resource_samples += 1;
        report.peak_rss_kb = std::max(report.peak_rss_kb, event.b);
        break;
      case EventKind::kConeFingerprint: {
        report.cone_fingerprints += 1;
        PendingSolve& join = pending[pending_key(event)];
        join.has_fingerprint = true;
        join.arm = event.code;
        join.support = event.v0;
        join.nodes = event.v1;
        join.depth = event.v2;
        break;
      }
      case EventKind::kSolverRestart: {
        report.solver_restarts += 1;
        pending[pending_key(event)].restarts += 1;
        report.restart_timeline.push_back({event.t_ns, event.a, event.b,
                                           (event.flags & 1u) != 0, event.v0,
                                           event.v1, event.v2});
        break;
      }
      case EventKind::kSolverReduce: {
        report.solver_reduces += 1;
        report.reduce_deleted += event.v0;
        pending[pending_key(event)].reduces += 1;
        break;
      }
      case EventKind::kSolverBudget: {
        report.solver_budget_hits += 1;
        pending[pending_key(event)].budget_hits += 1;
        break;
      }
      case EventKind::kSolverSolveStats: {
        report.solver_solve_stats += 1;
        report.lbd_count += event.v0;
        report.lbd_sum += event.v1;
        report.lbd_max = std::max(report.lbd_max, event.v2);
        PendingSolve& join = pending[pending_key(event)];
        join.has_stats = true;
        join.learned = event.v0;
        join.lbd_sum = event.v1;
        join.lbd_max = event.v2;
        // The rollup's restart count supersedes event counting (identical
        // on complete journals; authoritative when restarts were lost to
        // truncation).
        join.restarts = event.v3;
        break;
      }
      case EventKind::kSolverInprocess: {
        report.solver_inprocess += 1;
        report.inprocess_deleted += event.v0;
        report.inprocess_strengthened += event.v1;
        report.inprocess_failed_lits += event.v2;
        report.inprocess_substituted += event.v3 >> 32;
        report.inprocess_eliminated += event.v3 & 0xffffffffull;
        report.inprocess_us += event.dur_us;
        break;
      }
      default:
        break;
    }
  }
  if (max_ns >= min_ns && min_ns != ~0ull) report.span_ns = max_ns - min_ns;

  // Phase self time = total minus attributed children (clamped: drains can
  // attribute a child to a phase whose end event was lost to truncation).
  for (std::size_t phase = 1; phase < kNumPhases; ++phase) {
    const PhaseCost& cost = report.phases[phase];
    const std::uint64_t self =
        cost.total_us > cost.child_us ? cost.total_us - cost.child_us : 0;
    append_folded(report,
                  std::string("simgen;") + phase_name(static_cast<PhaseId>(phase)),
                  self);
  }
  return report;
}

bool check_journal(const std::vector<JournalEvent>& events, std::string* error) {
  const auto fail = [error](std::size_t index, const std::string& message) {
    if (error != nullptr)
      *error = "event " + std::to_string(index) + ": " + message;
    return false;
  };
  std::vector<std::uint8_t> phase_stack;
  bool run_begun = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JournalEvent& event = events[i];
    const auto kind_value = static_cast<std::uint8_t>(event.kind);
    if (event.kind == EventKind::kNone ||
        kind_value > static_cast<std::uint8_t>(EventKind::kSolverInprocess))
      return fail(i, "unknown event kind " + std::to_string(kind_value));
    switch (event.kind) {
      case EventKind::kRunBegin:
        run_begun = true;
        break;
      case EventKind::kRunEnd:
        if (!run_begun) return fail(i, "run_end without run_begin");
        if (event.code > 2) return fail(i, "run_end outcome out of range");
        break;
      case EventKind::kPhaseBegin:
        if (event.code >= kNumPhases) return fail(i, "phase id out of range");
        phase_stack.push_back(event.code);
        break;
      case EventKind::kPhaseEnd:
        if (event.code >= kNumPhases) return fail(i, "phase id out of range");
        if (phase_stack.empty())
          return fail(i, "phase_end without matching phase_begin");
        if (phase_stack.back() != event.code)
          return fail(i, std::string("phase_end ") +
                             phase_name(static_cast<PhaseId>(event.code)) +
                             " does not match open phase " +
                             phase_name(static_cast<PhaseId>(phase_stack.back())));
        phase_stack.pop_back();
        break;
      case EventKind::kClassCreated:
        if (event.code >= kNumPatternSources)
          return fail(i, "pattern source out of range");
        break;
      case EventKind::kClassSplit:
        if (event.code >= kNumPatternSources)
          return fail(i, "pattern source out of range");
        // Attribution cross-check: a split was by definition caused by
        // some pattern batch, so kNone means refine() ran outside a
        // PatternScope and the Table 3 attribution data is silently
        // corrupt. The simgen-pattern-scope tidy check catches this at
        // analysis time; this is the runtime backstop.
        if (event.code == static_cast<std::uint8_t>(PatternSource::kNone))
          return fail(i,
                      "class_split with no pattern-source attribution "
                      "(refine called outside an obs::PatternScope)");
        break;
      case EventKind::kSatCall:
        if (event.code > static_cast<std::uint8_t>(SatVerdict::kUnknown))
          return fail(i, "sat verdict out of range");
        break;
      case EventKind::kPatternBatch:
        if (event.code >= kNumPatternSources)
          return fail(i, "pattern source out of range");
        break;
      case EventKind::kCertified:
        if (event.code > 1) return fail(i, "certified code out of range");
        break;
      case EventKind::kWatchdog:
        if (event.code != 1 && event.code != 2)
          return fail(i, "watchdog code out of range");
        break;
      case EventKind::kTaskRun:
        if (event.code > 2) return fail(i, "task_run task kind out of range");
        break;
      case EventKind::kSolverRestart:
        if (event.v0 == 0)
          return fail(i, "solver_restart ordinal must be 1-based");
        // Every restart needs at least one conflict behind it, so the
        // ordinal can never exceed the conflict count.
        if (event.v0 > event.v1)
          return fail(i, "solver_restart ordinal exceeds conflict count");
        break;
      case EventKind::kSolverReduce:
        if (event.v2 > event.v1)
          return fail(i, "solver_reduce grew the learnt DB");
        if (event.v0 > event.v1)
          return fail(i, "solver_reduce deleted more clauses than it had");
        break;
      case EventKind::kSolverBudget:
        if (event.v0 == 0)
          return fail(i, "solver_budget without a conflict limit");
        if (event.v1 < event.v0)
          return fail(i, "solver_budget before the conflict limit");
        break;
      case EventKind::kSolverSolveStats:
        // Every learnt clause has LBD >= 1, so sum >= count and the max
        // is bounded by the sum; a zero-learnt solve has all-zero fields.
        if (event.v1 < event.v0)
          return fail(i, "solver_solve_stats LBD sum below learnt count");
        if (event.v2 > event.v1)
          return fail(i, "solver_solve_stats LBD max exceeds LBD sum");
        if (event.v0 == 0 && (event.v1 != 0 || event.v2 != 0))
          return fail(i, "solver_solve_stats LBD fields without learnt clauses");
        break;
      default:
        break;
    }
  }
  // An unclosed phase at EOF is legal (interrupted run), so no check here.
  return true;
}

void write_text_report(std::ostream& out, const JournalReport& report,
                       const InspectOptions& options) {
  char line[256];
  std::snprintf(line, sizeof line,
                "journal: %" PRIu64 " events spanning %s%s\n",
                report.num_events,
                format_duration_us(report.span_ns / 1000).c_str(),
                report.truncated ? "  [TRUNCATED: run was interrupted]" : "");
  out << line;
  std::snprintf(line, sizeof line,
                "sat:     %" PRIu64 " calls (unsat %" PRIu64 ", sat %" PRIu64
                ", unknown %" PRIu64 ", output proofs %" PRIu64 ")\n",
                report.sat_calls, report.sat_unsat, report.sat_sat,
                report.sat_unknown, report.output_proofs);
  out << line;
  std::snprintf(line, sizeof line,
                "         conflicts %" PRIu64 "  propagations %" PRIu64
                "  decisions %" PRIu64 "  learned %" PRIu64 "\n",
                report.conflicts, report.propagations, report.decisions,
                report.learned);
  out << line;
  std::snprintf(line, sizeof line,
                "classes: created %" PRIu64 "  split %" PRIu64 "  merged %" PRIu64
                "  tracked %zu\n",
                report.class_created, report.class_split, report.class_merged,
                report.classes.size());
  out << line;
  std::snprintf(line, sizeof line,
                "sim:     %" PRIu64 " pattern batches causing %" PRIu64
                " class splits\n",
                report.pattern_batches, report.pattern_splits);
  out << line;
  std::snprintf(line, sizeof line,
                "drat:    %" PRIu64 " certified ok, %" PRIu64 " failed, %" PRIu64
                " lemmas checked\n",
                report.certified_ok, report.certified_fail,
                report.checked_lemmas);
  out << line;
  if (report.task_runs > 0 || report.worker_stats > 0) {
    std::snprintf(line, sizeof line,
                  "pool:    %" PRIu64 " pool tasks across %zu worker lanes "
                  "(--lanes for the timeline)\n",
                  report.task_runs, report.lanes.size());
    out << line;
  }
  if (report.resource_samples > 0) {
    std::snprintf(line, sizeof line,
                  "rss:     peak %.1f MB over %" PRIu64 " resource samples\n",
                  static_cast<double>(report.peak_rss_kb) / 1024.0,
                  report.resource_samples);
    out << line;
  }

  out << "\nphases:\n";
  for (std::size_t phase = 1; phase < kNumPhases; ++phase) {
    const PhaseCost& cost = report.phases[phase];
    if (cost.enters == 0) continue;
    const std::uint64_t self =
        cost.total_us > cost.child_us ? cost.total_us - cost.child_us : 0;
    std::snprintf(line, sizeof line,
                  "  %-13s total %-12s self %-12s (%" PRIu64 "x)\n",
                  phase_name(static_cast<PhaseId>(phase)),
                  format_duration_us(cost.total_us).c_str(),
                  format_duration_us(self).c_str(), cost.enters);
    out << line;
  }

  const auto ranked_classes = rank_classes(report);
  out << "\ntop classes by SAT time:\n";
  out << "  rep        calls  sat-time     conflicts  merges  disproofs  "
         "max-cone\n";
  int shown = 0;
  for (const ClassRecord* record : ranked_classes) {
    if (shown >= options.top_k) break;
    if (record->sat_calls == 0 && record->splits == 0 && record->merges == 0)
      continue;
    std::snprintf(line, sizeof line,
                  "  %-9" PRIu64 "  %-5" PRIu64 "  %-11s  %-9" PRIu64
                  "  %-6" PRIu64 "  %-9" PRIu64 "  %" PRIu64 "\n",
                  record->rep, record->sat_calls,
                  format_duration_us(record->sat_time_us).c_str(),
                  record->conflicts, record->merges, record->disproofs,
                  record->max_cone_vars);
    out << line;
    ++shown;
  }
  if (shown == 0) out << "  (none)\n";

  const auto ranked_calls = rank_calls(report);
  out << "\ntop SAT calls:\n";
  out << "  at            pair                 verdict  duration     conflicts"
         "  cone   learned\n";
  shown = 0;
  for (const SatCallRecord* call : ranked_calls) {
    if (shown >= options.top_k) break;
    char pair[48];
    if (call->output_proof)
      std::snprintf(pair, sizeof pair, "output %" PRIu64, call->a);
    else
      std::snprintf(pair, sizeof pair, "(%" PRIu64 ", %" PRIu64 ")", call->a,
                    call->b);
    std::snprintf(line, sizeof line,
                  "  %s  %-19s  %-7s  %-11s  %-9" PRIu64 "  %-5" PRIu64
                  "  %" PRIu64 "\n",
                  format_time_ns(call->t_ns).c_str(), pair,
                  verdict_name(call->verdict),
                  format_duration_us(call->dur_us).c_str(), call->conflicts,
                  call->cone_vars, call->learned);
    out << line;
    ++shown;
  }
  if (shown == 0) out << "  (none)\n";

  out << "\npattern effectiveness:\n";
  out << "  source             batches  patterns  splits  time         "
         "splits/batch\n";
  for (const auto& [key, effect] : report.strategies) {
    const double per_batch =
        effect.batches == 0
            ? 0.0
            : static_cast<double>(effect.splits) /
                  static_cast<double>(effect.batches);
    std::snprintf(line, sizeof line,
                  "  %-17s  %-7" PRIu64 "  %-8" PRIu64 "  %-6" PRIu64
                  "  %-11s  %.2f\n",
                  strategy_label(key.first, key.second, options).c_str(),
                  effect.batches, effect.patterns, effect.splits,
                  format_duration_us(effect.time_us).c_str(), per_batch);
    out << line;
  }
  if (report.strategies.empty()) out << "  (none)\n";
}

void write_timeline(std::ostream& out, const JournalReport& report,
                    std::uint64_t rep, const InspectOptions& options) {
  std::vector<const ClassRecord*> selected;
  if (rep != 0) {
    const auto it = report.classes.find(rep);
    if (it == report.classes.end()) {
      out << "class " << rep << ": not present in journal\n";
      return;
    }
    selected.push_back(&it->second);
  } else {
    const auto ranked = rank_classes(report);
    for (const ClassRecord* record : ranked) {
      if (static_cast<int>(selected.size()) >= options.top_k) break;
      selected.push_back(record);
    }
  }
  char line[256];
  for (const ClassRecord* record : selected) {
    std::snprintf(line, sizeof line,
                  "class %" PRIu64 " (size %" PRIu64 " at creation, via %s):\n",
                  record->rep, record->created_size,
                  source_name(record->created_by));
    out << line;
    for (const TimelineEntry& entry : record->timeline) {
      std::string detail;
      switch (entry.kind) {
        case EventKind::kClassCreated:
          detail = "size " + std::to_string(entry.detail) + " via " +
                   source_name(static_cast<PatternSource>(entry.code));
          break;
        case EventKind::kClassSplit:
          detail = std::to_string(entry.detail) + " buckets via " +
                   source_name(static_cast<PatternSource>(entry.code));
          break;
        case EventKind::kClassMerged:
          detail = "node " + std::to_string(entry.detail);
          break;
        case EventKind::kSatCall:
        case EventKind::kCertified:
          detail = "node " + std::to_string(entry.detail) + ", " +
                   format_duration_us(entry.dur_us);
          break;
        default:
          break;
      }
      std::snprintf(line, sizeof line, "  %s  %-26s %s\n",
                    format_time_ns(entry.t_ns).c_str(), timeline_verb(entry),
                    detail.c_str());
      out << line;
    }
  }
}

void write_folded_stacks(std::ostream& out, const JournalReport& report,
                         const InspectOptions&) {
  for (const auto& [stack, us] : report.folded)
    out << stack << ' ' << us << '\n';
}

void write_lanes(std::ostream& out, const JournalReport& report,
                 const InspectOptions&) {
  char line[256];
  if (report.lanes.empty()) {
    out << "worker lanes: no task_run events in this journal (profiling "
           "compiled out or a single-threaded run)\n";
    return;
  }
  std::uint64_t min_ns = 0, max_ns = 0;
  const bool have_span = lane_span(report, min_ns, max_ns);
  const std::uint64_t span_us = have_span ? (max_ns - min_ns) / 1000 : 0;
  std::snprintf(line, sizeof line,
                "worker lanes: %zu workers, %" PRIu64
                " tasks, span %s ('#' busy, '.' idle)\n",
                report.lanes.size(), report.task_runs,
                format_duration_us(span_us).c_str());
  out << line;
  const CallDistribution latency = lane_latency_distribution(report);
  if (latency.count > 0) {
    std::snprintf(line, sizeof line,
                  "task latency: p50 %s  p90 %s  p99 %s  max %s\n",
                  format_duration_us(latency.percentile(0.50)).c_str(),
                  format_duration_us(latency.percentile(0.90)).c_str(),
                  format_duration_us(latency.percentile(0.99)).c_str(),
                  format_duration_us(latency.max).c_str());
    out << line;
  }
  constexpr int kWidth = 64;
  for (const auto& [worker, lane] : report.lanes) {
    std::vector<bool> bins(kWidth, false);
    if (have_span)
      for (const LaneTask& task : lane.timeline)
        mark_lane_bins(bins, task, min_ns, max_ns);
    std::string cells(static_cast<std::size_t>(kWidth), '.');
    for (int i = 0; i < kWidth; ++i)
      if (bins[i]) cells[static_cast<std::size_t>(i)] = '#';
    std::snprintf(line, sizeof line,
                  "  w%-2" PRIu64 " |%s| tasks %" PRIu64 " busy %.1f%% steals "
                  "%" PRIu64 "/%" PRIu64 " lock-blocks %" PRIu64 "\n",
                  worker, cells.c_str(), lane.tasks_run,
                  lane_busy_percent(lane, have_span, span_us),
                  lane.steal_successes, lane.steal_attempts, lane.lock_blocks);
    out << line;
  }
}

void write_sat_report(std::ostream& out, const JournalReport& report,
                      const InspectOptions& options) {
  char line[512];
  std::uint64_t total_us = 0;
  for (const SatCallRecord& call : report.calls) total_us += call.dur_us;

  std::snprintf(line, sizeof line,
                "SAT hardness: %" PRIu64 " calls (unsat %" PRIu64 ", sat %" PRIu64
                ", unknown %" PRIu64 ", output proofs %" PRIu64 ") totaling %s\n",
                report.sat_calls, report.sat_unsat, report.sat_sat,
                report.sat_unknown, report.output_proofs,
                format_duration_us(total_us).c_str());
  out << line;
  std::snprintf(line, sizeof line,
                "solver:       %" PRIu64 " restarts, %" PRIu64
                " learnt-DB reductions (%" PRIu64 " clauses deleted), %" PRIu64
                " budget hits\n",
                report.solver_restarts, report.solver_reduces,
                report.reduce_deleted, report.solver_budget_hits);
  out << line;
  if (report.solver_inprocess > 0) {
    std::snprintf(line, sizeof line,
                  "inprocessing: %" PRIu64 " runs totaling %s: %" PRIu64
                  " clauses deleted, %" PRIu64 " strengthened/vivified, %" PRIu64
                  " failed literals,\n              %" PRIu64
                  " variables substituted, %" PRIu64 " eliminated\n",
                  report.solver_inprocess,
                  format_duration_us(report.inprocess_us).c_str(),
                  report.inprocess_deleted, report.inprocess_strengthened,
                  report.inprocess_failed_lits, report.inprocess_substituted,
                  report.inprocess_eliminated);
    out << line;
  }
  if (report.lbd_count > 0) {
    std::snprintf(line, sizeof line,
                  "learnt:       %" PRIu64 " clauses with LBD recorded, mean LBD "
                  "%.2f, max %" PRIu64 "\n",
                  report.lbd_count,
                  static_cast<double>(report.lbd_sum) /
                      static_cast<double>(report.lbd_count),
                  report.lbd_max);
    out << line;
  }
  if (report.solver_solve_stats == 0 && report.cone_fingerprints == 0) {
    out << "  (no solver-introspection events: the journal predates format "
           "version 2\n   or the run compiled telemetry out)\n";
    return;
  }

  // Per-call distributions, through the shared percentile estimator.
  CallDistribution dur, conflicts, propagations, decisions, learned, lbd_mean;
  for (const SatCallRecord& call : report.calls) {
    dur.observe(call.dur_us);
    conflicts.observe(call.conflicts);
    propagations.observe(call.propagations);
    decisions.observe(call.decisions);
    learned.observe(call.learned);
    if (call.has_solve_stats && call.learned > 0)
      lbd_mean.observe(call.lbd_sum / call.learned);
  }
  out << "\nper-call distributions (log2-bucket estimates):\n";
  out << "  metric         p50          p90          p99          max\n";
  std::snprintf(line, sizeof line, "  %-13s  %-11s  %-11s  %-11s  %s\n",
                "duration", format_duration_us(dur.percentile(0.50)).c_str(),
                format_duration_us(dur.percentile(0.90)).c_str(),
                format_duration_us(dur.percentile(0.99)).c_str(),
                format_duration_us(dur.max).c_str());
  out << line;
  const auto distribution_row = [&](const char* name,
                                    const CallDistribution& dist) {
    std::snprintf(line, sizeof line,
                  "  %-13s  %-11" PRIu64 "  %-11" PRIu64 "  %-11" PRIu64
                  "  %" PRIu64 "\n",
                  name, dist.percentile(0.50), dist.percentile(0.90),
                  dist.percentile(0.99), dist.max);
    out << line;
  };
  distribution_row("conflicts", conflicts);
  distribution_row("propagations", propagations);
  distribution_row("decisions", decisions);
  distribution_row("learned", learned);
  if (lbd_mean.count > 0) distribution_row("mean LBD", lbd_mean);

  const auto ranked = rank_calls(report);
  out << "\nhardest cones:\n";
  out << "  target               verdict  duration     conflicts  restarts"
         "  support  nodes   depth  arm\n";
  int shown = 0;
  for (const SatCallRecord* call : ranked) {
    if (shown >= options.top_k) break;
    std::snprintf(
        line, sizeof line,
        "  %-19s  %-7s  %-11s  %-9" PRIu64 "  %-8" PRIu64 "  %-7" PRIu64
        "  %-6" PRIu64 "  %-5" PRIu64 "  %s\n",
        call_target(*call).c_str(), verdict_name(call->verdict),
        format_duration_us(call->dur_us).c_str(), call->conflicts,
        call->restarts, call->cone_support, call->cone_nodes, call->cone_depth,
        call->has_fingerprint ? arm_label(call->strategy_arm, options).c_str()
                              : "-");
    out << line;
    ++shown;
  }
  if (shown == 0) out << "  (none)\n";

  // SAT time bucketed by cone size (internal nodes, log2 buckets).
  std::array<std::uint64_t, Histogram::kNumBuckets> size_time{};
  std::array<std::uint64_t, Histogram::kNumBuckets> size_calls{};
  std::uint64_t unfingerprinted_time = 0, unfingerprinted_calls = 0;
  for (const SatCallRecord& call : report.calls) {
    if (!call.has_fingerprint) {
      unfingerprinted_time += call.dur_us;
      ++unfingerprinted_calls;
      continue;
    }
    const std::size_t bucket = Histogram::bucket_of(call.cone_nodes);
    size_time[bucket] += call.dur_us;
    size_calls[bucket] += 1;
  }
  std::uint64_t max_bucket_time = 1;
  for (const std::uint64_t t : size_time)
    max_bucket_time = std::max(max_bucket_time, t);
  out << "\nSAT time by cone size (internal nodes):\n";
  out << "  nodes            calls  time         share\n";
  for (std::size_t i = 0; i < size_time.size(); ++i) {
    if (size_calls[i] == 0) continue;
    const int bar = static_cast<int>(24.0 * static_cast<double>(size_time[i]) /
                                     static_cast<double>(max_bucket_time));
    std::snprintf(line, sizeof line, "  %-15s  %-5" PRIu64 "  %-11s  %.*s\n",
                  bucket_range_label(i).c_str(), size_calls[i],
                  format_duration_us(size_time[i]).c_str(), bar > 0 ? bar : 1,
                  "########################");
    out << line;
  }
  if (unfingerprinted_calls > 0) {
    std::snprintf(line, sizeof line, "  %-15s  %-5" PRIu64 "  %s\n",
                  "(no fingerprint)", unfingerprinted_calls,
                  format_duration_us(unfingerprinted_time).c_str());
    out << line;
  }

  // SAT time by strategy arm.
  struct ArmCost {
    std::uint64_t calls = 0;
    std::uint64_t time_us = 0;
  };
  std::map<std::uint8_t, ArmCost> arms;
  for (const SatCallRecord& call : report.calls) {
    if (!call.has_fingerprint) continue;
    ArmCost& cost = arms[call.strategy_arm];
    cost.calls += 1;
    cost.time_us += call.dur_us;
  }
  if (!arms.empty()) {
    out << "\nSAT time by strategy arm:\n";
    out << "  arm              calls  time\n";
    for (const auto& [arm, cost] : arms) {
      std::snprintf(line, sizeof line, "  %-15s  %-5" PRIu64 "  %s\n",
                    arm_label(arm, options).c_str(), cost.calls,
                    format_duration_us(cost.time_us).c_str());
      out << line;
    }
  }

  // SAT time by phase (the phase open when the call was journaled).
  std::array<ArmCost, kNumPhases> phase_cost{};
  for (const SatCallRecord& call : report.calls) {
    if (call.phase >= kNumPhases) continue;
    phase_cost[call.phase].calls += 1;
    phase_cost[call.phase].time_us += call.dur_us;
  }
  out << "\nSAT time by phase:\n";
  out << "  phase            calls  time\n";
  for (std::size_t phase = 0; phase < kNumPhases; ++phase) {
    if (phase_cost[phase].calls == 0) continue;
    std::snprintf(line, sizeof line, "  %-15s  %-5" PRIu64 "  %s\n",
                  phase_name(static_cast<PhaseId>(phase)),
                  phase_cost[phase].calls,
                  format_duration_us(phase_cost[phase].time_us).c_str());
    out << line;
  }

  // Restart timeline of the hardest cone that restarted at all.
  for (const SatCallRecord* call : ranked) {
    if (call->restarts == 0) continue;
    std::snprintf(line, sizeof line,
                  "\nrestart timeline of the hardest restarting cone %s "
                  "(%" PRIu64 " restarts):\n",
                  call_target(*call).c_str(), call->restarts);
    out << line;
    out << "  restart  conflicts  learnt-db\n";
    constexpr int kMaxRows = 24;
    int rows = 0;
    for (const SolverRestartRecord& restart : report.restart_timeline) {
      if (restart.a != call->a || restart.b != call->b ||
          restart.output_proof != call->output_proof)
        continue;
      if (rows >= kMaxRows) {
        out << "  ...\n";
        break;
      }
      std::snprintf(line, sizeof line,
                    "  %-7" PRIu64 "  %-9" PRIu64 "  %" PRIu64 "\n",
                    restart.ordinal, restart.conflicts, restart.learnt_db);
      out << line;
      ++rows;
    }
    break;
  }
}

void write_html_report(std::ostream& out, const JournalReport& report,
                       const InspectOptions& options) {
  out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
         "<title>simgen sweep journal</title>\n<style>\n"
         "body{font:14px/1.5 system-ui,sans-serif;margin:2em;color:#222}\n"
         "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.6em}\n"
         "table{border-collapse:collapse;margin:0.5em 0}\n"
         "td,th{border:1px solid #ccc;padding:3px 9px;text-align:right;"
         "font-variant-numeric:tabular-nums}\n"
         "th{background:#f2f2f2}td:first-child,th:first-child{text-align:left}\n"
         ".bar{background:#4a90d9;height:11px;display:inline-block}\n"
         ".warn{color:#b00;font-weight:bold}\n"
         "</style></head><body>\n<h1>Sweep journal report</h1>\n";

  char line[512];
  std::snprintf(line, sizeof line,
                "<p>%" PRIu64 " events spanning %s.%s</p>\n", report.num_events,
                format_duration_us(report.span_ns / 1000).c_str(),
                report.truncated
                    ? " <span class=\"warn\">Journal is truncated: the run "
                      "was interrupted mid-write.</span>"
                    : "");
  out << line;

  out << "<h2>Run summary</h2>\n<table>\n"
         "<tr><th>metric</th><th>value</th></tr>\n";
  const auto row = [&](const char* name, std::uint64_t value) {
    std::snprintf(line, sizeof line,
                  "<tr><td>%s</td><td>%" PRIu64 "</td></tr>\n", name, value);
    out << line;
  };
  row("SAT calls", report.sat_calls);
  row("&nbsp;&nbsp;UNSAT (proved)", report.sat_unsat);
  row("&nbsp;&nbsp;SAT (disproved)", report.sat_sat);
  row("&nbsp;&nbsp;unknown (conflict limit)", report.sat_unknown);
  row("&nbsp;&nbsp;output proofs", report.output_proofs);
  row("conflicts", report.conflicts);
  row("propagations", report.propagations);
  row("decisions", report.decisions);
  row("learned clauses", report.learned);
  row("classes created", report.class_created);
  row("class splits", report.class_split);
  row("class merges", report.class_merged);
  row("pattern batches", report.pattern_batches);
  row("splits from patterns", report.pattern_splits);
  row("certified ok", report.certified_ok);
  row("certified failed", report.certified_fail);
  row("heartbeats", report.heartbeats);
  row("pool tasks", report.task_runs);
  if (report.resource_samples > 0) row("peak RSS (kB)", report.peak_rss_kb);
  out << "</table>\n";

  out << "<h2>Phases</h2>\n<table>\n"
         "<tr><th>phase</th><th>total</th><th>self</th><th>enters</th>"
         "<th></th></tr>\n";
  std::uint64_t max_phase_us = 1;
  for (std::size_t phase = 1; phase < kNumPhases; ++phase)
    max_phase_us = std::max(max_phase_us, report.phases[phase].total_us);
  for (std::size_t phase = 1; phase < kNumPhases; ++phase) {
    const PhaseCost& cost = report.phases[phase];
    if (cost.enters == 0) continue;
    const std::uint64_t self =
        cost.total_us > cost.child_us ? cost.total_us - cost.child_us : 0;
    const int width = static_cast<int>(
        200.0 * static_cast<double>(cost.total_us) /
        static_cast<double>(max_phase_us));
    std::snprintf(line, sizeof line,
                  "<tr><td>%s</td><td>%s</td><td>%s</td><td>%" PRIu64
                  "</td><td style=\"text-align:left\">"
                  "<span class=\"bar\" style=\"width:%dpx\"></span></td></tr>\n",
                  phase_name(static_cast<PhaseId>(phase)),
                  format_duration_us(cost.total_us).c_str(),
                  format_duration_us(self).c_str(), cost.enters, width);
    out << line;
  }
  out << "</table>\n";

  if (!report.lanes.empty()) {
    out << "<h2>Worker lanes</h2>\n";
    std::uint64_t min_ns = 0, max_ns = 0;
    const bool have_span = lane_span(report, min_ns, max_ns);
    const std::uint64_t span_us = have_span ? (max_ns - min_ns) / 1000 : 0;
    std::snprintf(line, sizeof line,
                  "<p>%zu workers, %" PRIu64 " pool tasks over %s. Filled "
                  "stretches are task execution; gaps are idle or stolen-away "
                  "time.</p>\n",
                  report.lanes.size(), report.task_runs,
                  format_duration_us(span_us).c_str());
    out << line;
    const CallDistribution lane_latency = lane_latency_distribution(report);
    if (lane_latency.count > 0) {
      std::snprintf(line, sizeof line,
                    "<p>Task latency: p50 %s, p90 %s, p99 %s, max %s.</p>\n",
                    format_duration_us(lane_latency.percentile(0.50)).c_str(),
                    format_duration_us(lane_latency.percentile(0.90)).c_str(),
                    format_duration_us(lane_latency.percentile(0.99)).c_str(),
                    format_duration_us(lane_latency.max).c_str());
      out << line;
    }
    out << "<table>\n<tr><th>worker</th><th>tasks</th><th>busy</th>"
           "<th>steals ok/try</th><th>lock blocks</th><th>timeline</th>"
           "</tr>\n";
    constexpr int kPixels = 600;
    for (const auto& [worker, lane] : report.lanes) {
      std::vector<bool> bins(kPixels, false);
      if (have_span)
        for (const LaneTask& task : lane.timeline)
          mark_lane_bins(bins, task, min_ns, max_ns);
      // Merge adjacent occupied pixels into one span each so the page
      // stays small no matter how many tasks the lane ran.
      std::string bars;
      int run_begin = -1;
      for (int i = 0; i <= kPixels; ++i) {
        const bool on = i < kPixels && bins[static_cast<std::size_t>(i)];
        if (on && run_begin < 0) run_begin = i;
        if (!on && run_begin >= 0) {
          char span_buf[128];
          std::snprintf(span_buf, sizeof span_buf,
                        "<span class=\"bar\" style=\"position:absolute;"
                        "left:%dpx;width:%dpx\"></span>",
                        run_begin, i - run_begin);
          bars += span_buf;
          run_begin = -1;
        }
      }
      std::snprintf(line, sizeof line,
                    "<tr><td>w%" PRIu64 "</td><td>%" PRIu64
                    "</td><td>%.1f%%</td><td>%" PRIu64 "/%" PRIu64
                    "</td><td>%" PRIu64 "</td>"
                    "<td style=\"text-align:left\"><div style=\""
                    "position:relative;height:11px;width:600px;"
                    "background:#eee\">",
                    worker, lane.tasks_run,
                    lane_busy_percent(lane, have_span, span_us),
                    lane.steal_successes, lane.steal_attempts,
                    lane.lock_blocks);
      out << line << bars << "</div></td></tr>\n";
    }
    out << "</table>\n";
  }

  out << "<h2>Top classes by SAT time</h2>\n<table>\n"
         "<tr><th>representative</th><th>SAT calls</th><th>SAT time</th>"
         "<th>conflicts</th><th>merges</th><th>disproofs</th>"
         "<th>max cone vars</th><th>created via</th></tr>\n";
  int shown = 0;
  for (const ClassRecord* record : rank_classes(report)) {
    if (shown >= options.top_k) break;
    if (record->sat_calls == 0 && record->splits == 0 && record->merges == 0)
      continue;
    std::snprintf(line, sizeof line,
                  "<tr><td>%" PRIu64 "</td><td>%" PRIu64 "</td><td>%s</td>"
                  "<td>%" PRIu64 "</td><td>%" PRIu64 "</td><td>%" PRIu64
                  "</td><td>%" PRIu64 "</td><td>%s</td></tr>\n",
                  record->rep, record->sat_calls,
                  format_duration_us(record->sat_time_us).c_str(),
                  record->conflicts, record->merges, record->disproofs,
                  record->max_cone_vars, source_name(record->created_by));
    out << line;
    ++shown;
  }
  out << "</table>\n";

  out << "<h2>Top SAT calls</h2>\n<table>\n"
         "<tr><th>target</th><th>verdict</th><th>duration</th>"
         "<th>conflicts</th><th>propagations</th><th>decisions</th>"
         "<th>cone vars</th><th>learned</th></tr>\n";
  shown = 0;
  for (const SatCallRecord* call : rank_calls(report)) {
    if (shown >= options.top_k) break;
    char pair[48];
    if (call->output_proof)
      std::snprintf(pair, sizeof pair, "output %" PRIu64, call->a);
    else
      std::snprintf(pair, sizeof pair, "(%" PRIu64 ", %" PRIu64 ")", call->a,
                    call->b);
    std::snprintf(line, sizeof line,
                  "<tr><td>%s</td><td>%s</td><td>%s</td><td>%" PRIu64
                  "</td><td>%" PRIu64 "</td><td>%" PRIu64 "</td><td>%" PRIu64
                  "</td><td>%" PRIu64 "</td></tr>\n",
                  pair, verdict_name(call->verdict),
                  format_duration_us(call->dur_us).c_str(), call->conflicts,
                  call->propagations, call->decisions, call->cone_vars,
                  call->learned);
    out << line;
    ++shown;
  }
  out << "</table>\n";

  out << "<h2>Pattern effectiveness</h2>\n<table>\n"
         "<tr><th>source</th><th>batches</th><th>guided patterns</th>"
         "<th>splits</th><th>time</th><th>splits/batch</th></tr>\n";
  for (const auto& [key, effect] : report.strategies) {
    const double per_batch =
        effect.batches == 0
            ? 0.0
            : static_cast<double>(effect.splits) /
                  static_cast<double>(effect.batches);
    std::snprintf(line, sizeof line,
                  "<tr><td>%s</td><td>%" PRIu64 "</td><td>%" PRIu64
                  "</td><td>%" PRIu64 "</td><td>%s</td><td>%.2f</td></tr>\n",
                  html_escape(strategy_label(key.first, key.second, options))
                      .c_str(),
                  effect.batches, effect.patterns, effect.splits,
                  format_duration_us(effect.time_us).c_str(), per_batch);
    out << line;
  }
  out << "</table>\n";

  if (report.solver_solve_stats > 0 || report.cone_fingerprints > 0) {
    out << "<h2>SAT hardness</h2>\n<table>\n"
           "<tr><th>metric</th><th>value</th></tr>\n";
    row("solver restarts", report.solver_restarts);
    row("learnt-DB reductions", report.solver_reduces);
    row("&nbsp;&nbsp;clauses deleted", report.reduce_deleted);
    row("budget hits", report.solver_budget_hits);
    row("inprocessing runs", report.solver_inprocess);
    if (report.solver_inprocess > 0) {
      row("&nbsp;&nbsp;clauses deleted", report.inprocess_deleted);
      row("&nbsp;&nbsp;strengthened/vivified", report.inprocess_strengthened);
      row("&nbsp;&nbsp;failed literals", report.inprocess_failed_lits);
      row("&nbsp;&nbsp;variables substituted", report.inprocess_substituted);
      row("&nbsp;&nbsp;variables eliminated", report.inprocess_eliminated);
    }
    row("cone fingerprints", report.cone_fingerprints);
    row("learnt clauses with LBD", report.lbd_count);
    if (report.lbd_count > 0) {
      std::snprintf(line, sizeof line,
                    "<tr><td>mean LBD</td><td>%.2f</td></tr>\n",
                    static_cast<double>(report.lbd_sum) /
                        static_cast<double>(report.lbd_count));
      out << line;
      row("max LBD", report.lbd_max);
    }
    out << "</table>\n";

    out << "<h2>Hardest cones</h2>\n<table>\n"
           "<tr><th>target</th><th>verdict</th><th>duration</th>"
           "<th>conflicts</th><th>restarts</th><th>support</th>"
           "<th>nodes</th><th>depth</th><th>arm</th></tr>\n";
    shown = 0;
    for (const SatCallRecord* call : rank_calls(report)) {
      if (shown >= options.top_k) break;
      std::snprintf(
          line, sizeof line,
          "<tr><td>%s</td><td>%s</td><td>%s</td><td>%" PRIu64
          "</td><td>%" PRIu64 "</td><td>%" PRIu64 "</td><td>%" PRIu64
          "</td><td>%" PRIu64 "</td><td>%s</td></tr>\n",
          call_target(*call).c_str(), verdict_name(call->verdict),
          format_duration_us(call->dur_us).c_str(), call->conflicts,
          call->restarts, call->cone_support, call->cone_nodes,
          call->cone_depth,
          call->has_fingerprint
              ? html_escape(arm_label(call->strategy_arm, options)).c_str()
              : "-");
      out << line;
      ++shown;
    }
    out << "</table>\n";

    std::array<std::uint64_t, Histogram::kNumBuckets> size_time{};
    std::array<std::uint64_t, Histogram::kNumBuckets> size_calls{};
    for (const SatCallRecord& call : report.calls) {
      if (!call.has_fingerprint) continue;
      const std::size_t bucket = Histogram::bucket_of(call.cone_nodes);
      size_time[bucket] += call.dur_us;
      size_calls[bucket] += 1;
    }
    std::uint64_t max_bucket_time = 1;
    for (const std::uint64_t t : size_time)
      max_bucket_time = std::max(max_bucket_time, t);
    out << "<h2>SAT time by cone size</h2>\n<table>\n"
           "<tr><th>internal nodes</th><th>calls</th><th>time</th>"
           "<th></th></tr>\n";
    for (std::size_t i = 0; i < size_time.size(); ++i) {
      if (size_calls[i] == 0) continue;
      const int width =
          static_cast<int>(200.0 * static_cast<double>(size_time[i]) /
                           static_cast<double>(max_bucket_time));
      std::snprintf(line, sizeof line,
                    "<tr><td>%s</td><td>%" PRIu64 "</td><td>%s</td>"
                    "<td style=\"text-align:left\"><span class=\"bar\" "
                    "style=\"width:%dpx\"></span></td></tr>\n",
                    bucket_range_label(i).c_str(), size_calls[i],
                    format_duration_us(size_time[i]).c_str(), width);
      out << line;
    }
    out << "</table>\n";
  }

  out << "</body></html>\n";
}

}  // namespace simgen::obs

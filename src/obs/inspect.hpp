/// \file inspect.hpp
/// \brief Post-mortem journal inspector: replays a sweep journal
/// (journal.hpp) into per-class lifecycle timelines, top-K cost
/// attributions, pattern-effectiveness breakdowns, folded stacks for
/// flamegraph tooling, and a self-contained HTML report.
///
/// Compiled unconditionally (including under SIMGEN_NO_TELEMETRY) so
/// `tools/sweep_inspect` can always replay journals recorded elsewhere.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/journal.hpp"

namespace simgen::obs {

/// One entry of a class's lifecycle, in journal order.
struct TimelineEntry {
  std::uint64_t t_ns = 0;
  EventKind kind = EventKind::kNone;
  std::uint8_t code = 0;      ///< Kind-specific (verdict / source).
  std::uint32_t dur_us = 0;   ///< For SAT calls / certifications.
  std::uint64_t detail = 0;   ///< Partner node, bucket count, ...
};

/// Aggregated per-class view, keyed by the class representative NodeId.
struct ClassRecord {
  std::uint64_t rep = 0;
  std::uint64_t first_ns = 0;          ///< First sighting.
  std::uint64_t last_ns = 0;           ///< Last event touching the class.
  std::uint64_t created_size = 0;      ///< Size at first creation.
  PatternSource created_by = PatternSource::kNone;
  std::uint64_t creations = 0;  ///< kClassCreated count (re-creations after
                                ///< splits keep the same rep).
  std::uint64_t splits = 0;     ///< Times this class split as the parent.
  std::uint64_t merges = 0;     ///< Nodes merged in via UNSAT proofs.
  std::uint64_t sat_calls = 0;
  std::uint64_t sat_time_us = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t disproofs = 0;  ///< SAT (inequivalent) verdicts.
  std::uint64_t max_cone_vars = 0;
  std::vector<TimelineEntry> timeline;
};

/// Aggregated view of one SAT call (already flat in the journal; copied
/// out so reports can sort without re-scanning).
struct SatCallRecord {
  std::uint64_t t_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  SatVerdict verdict = SatVerdict::kUnknown;
  bool output_proof = false;
  std::uint64_t conflicts = 0;
  std::uint64_t propagations = 0;
  std::uint64_t decisions = 0;
  std::uint64_t cone_vars = 0;
  std::uint64_t learned = 0;
  std::uint32_t dur_us = 0;
  /// Phase open at the time the call was journaled (PhaseId value).
  std::uint8_t phase = 0;

  // Solver introspection joined by (a, b, output_proof) from the format
  // >= 2 events; all-zero when the journal predates them.
  bool has_fingerprint = false;    ///< A kConeFingerprint was joined.
  std::uint8_t strategy_arm = 0;   ///< Guided-simulation arm (fingerprint).
  std::uint64_t cone_support = 0;  ///< Distinct PIs feeding the cone.
  std::uint64_t cone_nodes = 0;    ///< Internal nodes in the cone.
  std::uint64_t cone_depth = 0;    ///< Max logic level over the roots.
  bool has_solve_stats = false;    ///< A kSolverSolveStats was joined.
  std::uint64_t restarts = 0;      ///< Restarts inside this solve.
  std::uint64_t reduces = 0;       ///< Learnt-DB reductions inside it.
  std::uint64_t budget_hits = 0;   ///< kSolverBudget events (0 or 1).
  std::uint64_t lbd_sum = 0;       ///< Sum of learnt-clause LBDs.
  std::uint64_t lbd_max = 0;       ///< Max learnt-clause LBD.
};

/// One solver restart (kSolverRestart), in journal order, for the --sat
/// restart timeline.
struct SolverRestartRecord {
  std::uint64_t t_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool output_proof = false;
  std::uint64_t ordinal = 0;    ///< 1-based within its solve.
  std::uint64_t conflicts = 0;  ///< Conflicts so far in the solve.
  std::uint64_t learnt_db = 0;  ///< Learnt DB size at the restart.
};

/// Pattern effectiveness bucket, keyed by (source, strategy code).
struct StrategyEffect {
  std::uint64_t batches = 0;
  std::uint64_t patterns = 0;  ///< Guided patterns (0-filled for random).
  std::uint64_t splits = 0;    ///< Classes split by this source's batches.
  std::uint64_t time_us = 0;   ///< Simulate+refine wall time.
};

/// Per-phase wall time and self time (phase minus attributed children).
struct PhaseCost {
  std::uint64_t total_us = 0;
  std::uint64_t child_us = 0;  ///< SAT calls, batches, certs inside it.
  std::uint64_t enters = 0;
};

/// One executed pool task on a worker's lane (from kTaskRun). The event
/// is stamped at task *end*, so the task occupied
/// [t_end_ns - dur_us * 1000, t_end_ns] on its worker.
struct LaneTask {
  std::uint64_t t_end_ns = 0;
  std::uint32_t dur_us = 0;
  std::uint64_t task = 0;     ///< Task index within its batch.
  std::uint64_t payload = 0;  ///< Caller payload (e.g. representative).
  std::uint8_t kind_code = 0; ///< 0 sweep pair, 1 output proof, 2 bench cell.
};

/// Per-worker scheduler lane: the task timeline (kTaskRun) plus the
/// teardown rollup (kWorkerStats) when the run recorded one.
struct WorkerLane {
  std::uint64_t worker = 0;
  std::uint64_t tasks_run = 0;  ///< kTaskRun events on this lane.
  std::uint64_t busy_us = 0;    ///< Sum of kTaskRun durations.
  bool has_stats = false;       ///< A kWorkerStats rollup was seen.
  std::uint64_t stats_tasks = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  std::uint64_t stats_busy_us = 0;
  std::uint64_t stats_idle_us = 0;
  std::uint64_t lock_blocks = 0;
  std::vector<LaneTask> timeline;  ///< Journal order.
};

/// Everything the report writers need, built in one pass over a journal.
struct JournalReport {
  std::uint64_t num_events = 0;
  std::uint64_t span_ns = 0;  ///< Last minus first timestamp.
  bool truncated = false;     ///< Source file ended mid-record.

  // Totals mirroring the metrics-registry counters for the same run.
  std::uint64_t sat_calls = 0;
  std::uint64_t sat_sat = 0;       ///< Verdict SAT (disproven candidates).
  std::uint64_t sat_unsat = 0;     ///< Verdict UNSAT (proven).
  std::uint64_t sat_unknown = 0;   ///< Conflict-limited.
  std::uint64_t output_proofs = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t propagations = 0;
  std::uint64_t decisions = 0;
  std::uint64_t learned = 0;
  std::uint64_t class_created = 0;
  std::uint64_t class_split = 0;
  std::uint64_t class_merged = 0;
  std::uint64_t pattern_batches = 0;
  std::uint64_t pattern_splits = 0;
  std::uint64_t certified_ok = 0;
  std::uint64_t certified_fail = 0;
  std::uint64_t checked_lemmas = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t watchdog_fires = 0;
  std::uint64_t task_runs = 0;         ///< kTaskRun events (all lanes).
  std::uint64_t worker_stats = 0;      ///< kWorkerStats events.
  std::uint64_t resource_samples = 0;  ///< kResourceSample events.
  std::uint64_t peak_rss_kb = 0;       ///< Max over resource samples.

  // Solver introspection totals (journal format >= 2; zero otherwise).
  std::uint64_t solver_restarts = 0;     ///< kSolverRestart events.
  std::uint64_t solver_reduces = 0;      ///< kSolverReduce events.
  std::uint64_t solver_budget_hits = 0;  ///< kSolverBudget events.
  std::uint64_t solver_solve_stats = 0;  ///< kSolverSolveStats events.
  std::uint64_t cone_fingerprints = 0;   ///< kConeFingerprint events.
  std::uint64_t reduce_deleted = 0;      ///< Clauses deleted by reductions.
  std::uint64_t lbd_count = 0;  ///< Learnt clauses with a recorded LBD.
  std::uint64_t lbd_sum = 0;    ///< Sum of those LBDs.
  std::uint64_t lbd_max = 0;    ///< Max LBD seen in any solve.

  // Inprocessing totals (journal format >= 3; zero otherwise).
  std::uint64_t solver_inprocess = 0;        ///< kSolverInprocess events.
  std::uint64_t inprocess_deleted = 0;       ///< Clauses removed by passes.
  std::uint64_t inprocess_strengthened = 0;  ///< Strengthened + vivified.
  std::uint64_t inprocess_failed_lits = 0;   ///< Failed-literal units.
  std::uint64_t inprocess_substituted = 0;   ///< SCC-substituted variables.
  std::uint64_t inprocess_eliminated = 0;    ///< BVE-eliminated variables.
  std::uint64_t inprocess_us = 0;            ///< Time inside the passes.

  std::map<std::uint64_t, ClassRecord> classes;  ///< Keyed by rep.
  std::map<std::uint64_t, WorkerLane> lanes;     ///< Keyed by worker index.
  std::vector<SatCallRecord> calls;              ///< Journal order.
  std::vector<SolverRestartRecord> restart_timeline;  ///< Journal order.
  /// Keyed by (PatternSource value, strategy code).
  std::map<std::pair<std::uint8_t, std::uint8_t>, StrategyEffect> strategies;
  PhaseCost phases[kNumPhases];

  /// Folded flamegraph stacks (`frame;frame` → microseconds), built during
  /// the scan because frames depend on the phase open at event time.
  std::map<std::string, std::uint64_t> folded;
};

/// Options shared by the report writers.
struct InspectOptions {
  int top_k = 10;
  /// Optional pretty-printer for kPatternBatch strategy codes (the obs
  /// layer cannot see simgen's Strategy enum); nullptr prints "arm<N>".
  const char* (*strategy_namer)(std::uint8_t) = nullptr;
};

/// Replays \p events into the aggregate report. \p truncated is carried
/// into the report (from read_journal_file).
[[nodiscard]] JournalReport build_report(const std::vector<JournalEvent>& events,
                                         bool truncated = false);

/// Structural validation: every event kind/sub-code in range, run
/// begin/end pairing, phase nesting. Returns false and fills \p error
/// (if non-null) on the first violation.
bool check_journal(const std::vector<JournalEvent>& events,
                   std::string* error = nullptr);

/// Human-readable report: run summary, top-K classes and SAT calls,
/// pattern-effectiveness table, phase breakdown.
void write_text_report(std::ostream& out, const JournalReport& report,
                       const InspectOptions& options);

/// Lifecycle timeline of one class (\p rep) or, with rep == 0, of the
/// top-K most expensive classes.
void write_timeline(std::ostream& out, const JournalReport& report,
                    std::uint64_t rep, const InspectOptions& options);

/// Folded stacks (`frame;frame value` per line) compatible with
/// flamegraph.pl / speedscope. Values are microseconds.
void write_folded_stacks(std::ostream& out, const JournalReport& report,
                         const InspectOptions& options);

/// SAT hardness report (from the format >= 2 solver-introspection
/// events): solver totals, per-call log2 distributions with
/// p50/p90/p99, the top-K hardest cones with their structural
/// fingerprints, SAT time bucketed by cone size / strategy arm / phase,
/// and the restart timeline of the hardest cone. Degrades gracefully on
/// journals that predate the introspection events.
void write_sat_report(std::ostream& out, const JournalReport& report,
                      const InspectOptions& options);

/// Worker-lane timeline (from kTaskRun/kWorkerStats events): one line
/// per worker scaled to the lane span —
///   `  w<N> |##..##| tasks T busy P% steals S/A lock-blocks B`
/// — with '#' marking task execution, so tooling can parse the summary
/// fields back out of each lane line.
void write_lanes(std::ostream& out, const JournalReport& report,
                 const InspectOptions& options);

/// Self-contained HTML report (inline CSS, no external assets).
void write_html_report(std::ostream& out, const JournalReport& report,
                       const InspectOptions& options);

}  // namespace simgen::obs

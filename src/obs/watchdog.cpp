#include "obs/watchdog.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/pool_obs.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

namespace simgen::obs {

namespace {

struct ExitState {
  util::Mutex mutex;
  std::string trace_path SIMGEN_GUARDED_BY(mutex);
  std::string metrics_path SIMGEN_GUARDED_BY(mutex);
  std::atomic<bool> flushed{false};
  std::atomic<bool> flush_done{false};
  std::atomic<bool> atexit_registered{false};
  std::atomic<bool> watchdog_running{false};
  /// Signal number caught by the async-signal-safe handler; the watchdog
  /// thread polls it. 0 = none.
  std::atomic<int> pending_signal{0};

  static ExitState& get() {
    // Leaked so the atexit hook and detached watchdog thread can touch it
    // at any point of teardown.
    static ExitState* state = new ExitState();
    return *state;
  }
};

/// Async-signal-safe by construction: the handler body is exactly one
/// lock-free atomic store into the leaked ExitState singleton, whose
/// construction start_watchdog forces *before* installing the handler (the
/// ExitState::get() below cannot be the first call). Everything that needs
/// locks — journal flush, progress dump, file writes — happens later on the
/// watchdog thread, which polls pending_signal from a normal context. The
/// EXCLUDES annotation lets -Wthread-safety prove the handler can never
/// block on (or self-deadlock against) the ExitState mutex.
void signal_handler(int sig) SIMGEN_EXCLUDES(ExitState::get().mutex) {
  ExitState::get().pending_signal.store(sig, std::memory_order_release);
}

void dump_progress(const char* why) {
  SweepProgress& progress = sweep_progress();
  std::fprintf(stderr,
               "[simgen watchdog] %s: sweep %s — classes live %llu, nodes "
               "live %llu / resolved %llu, proved %llu, disproved %llu, "
               "unresolved %llu, SAT calls %llu, journal events %llu\n",
               why,
               progress.active.load(std::memory_order_acquire) ? "RUNNING"
                                                               : "idle",
               static_cast<unsigned long long>(
                   progress.classes_live.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   progress.live_nodes.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   progress.resolved_nodes.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   progress.proved.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   progress.disproved.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   progress.unresolved.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   progress.sat_calls.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   Journal::instance().events_written()));
#ifndef SIMGEN_NO_TELEMETRY
  const ResourceSample res = sample_resources();
  std::fprintf(stderr, "[simgen watchdog] rss %.1f MB (peak %.1f MB)\n",
               static_cast<double>(res.current_rss_kb) / 1024.0,
               static_cast<double>(res.peak_rss_kb) / 1024.0);
  // Mid-batch per-worker utilization of the registered pool (if any) —
  // the relaxed per-worker counters are safe to read while workers run.
  write_pool_utilization(stderr);
#endif
  std::fflush(stderr);
}

void watchdog_loop(WatchdogOptions options) {
  ExitState& state = ExitState::get();
  const auto deadline =
      options.timeout_seconds > 0.0
          ? std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(options.timeout_seconds))
          : std::chrono::steady_clock::time_point::max();
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    const int sig = state.pending_signal.load(std::memory_order_acquire);
    if (sig != 0) {
      journal_emit(EventKind::kWatchdog, 1, static_cast<std::uint64_t>(sig));
      dump_progress(sig == SIGINT ? "caught SIGINT" : "caught signal");
      flush_exit_outputs();
      // Hand the signal back under its default disposition so the exit
      // status says "killed by SIGINT/SIGTERM", as tools expect.
      std::signal(sig, SIG_DFL);
      std::raise(sig);
      return;  // Unreached for fatal signals.
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      journal_emit(EventKind::kWatchdog, 2, 0);
      dump_progress("timeout expired");
      flush_exit_outputs();
#ifdef __unix__
      _exit(options.timeout_exit_code);
#else
      std::_Exit(options.timeout_exit_code);
#endif
    }
  }
}

}  // namespace

SweepProgress& sweep_progress() noexcept {
  static SweepProgress* progress = new SweepProgress();
  return *progress;
}

void set_exit_outputs(const std::string& trace_path,
                      const std::string& metrics_path) {
  ExitState& state = ExitState::get();
  {
    const util::LockGuard lock(state.mutex);
    state.trace_path = trace_path;
    state.metrics_path = metrics_path;
  }
  if (!state.atexit_registered.exchange(true))
    std::atexit([] { flush_exit_outputs(); });
}

void flush_exit_outputs() {
  ExitState& state = ExitState::get();
  if (state.flushed.exchange(true)) {
    // Another thread (normal teardown vs watchdog vs atexit) is already
    // flushing. Wait for it: the watchdog re-raises a fatal signal right
    // after this returns, and returning early would kill the process with
    // the journal/trace half-written. Bounded in case the flusher died.
    for (int i = 0; i < 5000 && !state.flush_done.load(std::memory_order_acquire);
         ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return;
  }
  Journal::instance().close();
  std::string trace_path, metrics_path;
  {
    const util::LockGuard lock(state.mutex);
    trace_path = state.trace_path;
    metrics_path = state.metrics_path;
  }
  if (!trace_path.empty() &&
      !Tracer::instance().write_chrome_trace_file(trace_path))
    util::errorf("cannot write trace file %s", trace_path.c_str());
  if (!metrics_path.empty() && !write_metrics_file(metrics_path))
    util::errorf("cannot write metrics file %s", metrics_path.c_str());
  state.flush_done.store(true, std::memory_order_release);
}

bool exit_outputs_flushed() noexcept {
  return ExitState::get().flushed.load(std::memory_order_acquire);
}

bool start_watchdog(const WatchdogOptions& options) {
  if (!options.handle_signals && options.timeout_seconds <= 0.0) return false;
  ExitState& state = ExitState::get();
  if (state.watchdog_running.exchange(true)) return false;
  if (options.handle_signals) {
    std::signal(SIGINT, signal_handler);
    std::signal(SIGTERM, signal_handler);
  }
  std::thread(watchdog_loop, options).detach();
  return true;
}

}  // namespace simgen::obs

/// \file resource.hpp
/// \brief Process resource accounting: peak/current RSS sampling plus an
/// opt-in allocation counter.
///
/// The metrics registry attributes *time*; this module attributes
/// *memory*. `sample_resources()` reads the kernel's view of the process
/// (Linux: /proc/self/status VmRSS/VmHWM, elsewhere: getrusage peak), and
/// — when the process was started with SIMGEN_ALLOC_STATS set in the
/// environment — the cumulative allocation count and bytes observed by
/// the global operator new replacement in resource.cpp. Samples feed the
/// sweep heartbeats, the kResourceSample journal events, the res.*
/// gauges (and through them TelemetrySnapshot), and the BENCH_*.json
/// peak_rss_mb field.
///
/// Under SIMGEN_NO_TELEMETRY everything here folds to constant-returning
/// inline stubs and the allocation hooks are not compiled at all.
#pragma once

#include <cstdint>

namespace simgen::obs {

/// One point-in-time resource reading. RSS values are kilobytes (the
/// kernel's unit); allocation fields are cumulative since process start
/// and zero unless SIMGEN_ALLOC_STATS is set.
struct ResourceSample {
  std::uint64_t current_rss_kb = 0;
  std::uint64_t peak_rss_kb = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
};

#ifndef SIMGEN_NO_TELEMETRY

/// True when the process opted into allocation counting via the
/// SIMGEN_ALLOC_STATS environment variable (checked once).
[[nodiscard]] bool alloc_stats_enabled() noexcept;

/// Samples the current process's resource usage. Cheap (one /proc read);
/// fine to call from heartbeats. Never throws; unknown fields stay 0.
[[nodiscard]] ResourceSample sample_resources() noexcept;

/// Samples and publishes the reading as registry gauges —
/// res.current_rss_mb, res.peak_rss_mb, and (when allocation counting is
/// on) res.alloc_count / res.alloc_bytes — so resource state rides along
/// in every TelemetrySnapshot and metrics export. Returns the sample.
ResourceSample sample_resource_gauges();

#else

[[nodiscard]] inline constexpr bool alloc_stats_enabled() noexcept {
  return false;
}
[[nodiscard]] inline ResourceSample sample_resources() noexcept { return {}; }
inline ResourceSample sample_resource_gauges() { return {}; }

#endif  // SIMGEN_NO_TELEMETRY

}  // namespace simgen::obs

/// \file watchdog.hpp
/// \brief Exit-safe telemetry finalization, live sweep progress, and a
/// signal/timeout watchdog.
///
/// Three cooperating pieces so no run ever dies silently:
///
///  * Exit outputs: `set_exit_outputs` records where the trace and
///    metrics files should land; `flush_exit_outputs` (registered with
///    `std::atexit`, called by the CLI teardown paths and by the
///    watchdog) writes them exactly once and closes the journal, so an
///    interrupted run still leaves valid JSON on disk.
///  * SweepProgress: a struct of atomics the sweep loop updates in place;
///    the heartbeat printer and the watchdog's state dump read it from
///    another thread without synchronization beyond the atomics.
///  * Watchdog: a background thread that polls a signal flag set by
///    async-signal-safe SIGINT/SIGTERM handlers and an optional deadline.
///    On either trigger it journals a kWatchdog event, dumps the current
///    sweep/solver progress to stderr, flushes every telemetry output,
///    then re-raises the signal under the default disposition (preserving
///    the conventional "killed by SIGINT" exit status) or `_exit(124)`
///    on timeout.
///
/// Compiled in every build: under SIMGEN_NO_TELEMETRY the journal calls
/// are no-ops but signal handling, the state dump, and the (empty but
/// valid) metrics/trace files still work.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace simgen::obs {

/// Live progress of the current sweep, shared between the sweep loop
/// (single writer) and the heartbeat/watchdog readers.
struct SweepProgress {
  std::atomic<bool> active{false};         ///< A sweep loop is running.
  std::atomic<std::uint64_t> live_nodes{0};      ///< Nodes still in classes.
  std::atomic<std::uint64_t> resolved_nodes{0};  ///< Proved + disproved + given up.
  std::atomic<std::uint64_t> classes_live{0};
  std::atomic<std::uint64_t> proved{0};
  std::atomic<std::uint64_t> disproved{0};
  std::atomic<std::uint64_t> unresolved{0};
  std::atomic<std::uint64_t> sat_calls{0};

  /// Resets counts at sweep entry (single writer, relaxed is enough).
  void begin(std::uint64_t initial_live_nodes, std::uint64_t initial_classes) noexcept {
    live_nodes.store(initial_live_nodes, std::memory_order_relaxed);
    classes_live.store(initial_classes, std::memory_order_relaxed);
    resolved_nodes.store(0, std::memory_order_relaxed);
    proved.store(0, std::memory_order_relaxed);
    disproved.store(0, std::memory_order_relaxed);
    unresolved.store(0, std::memory_order_relaxed);
    sat_calls.store(0, std::memory_order_relaxed);
    active.store(true, std::memory_order_release);
  }
  void end() noexcept { active.store(false, std::memory_order_release); }
};

[[nodiscard]] SweepProgress& sweep_progress() noexcept;

/// Records the output paths the process should leave behind on any exit
/// (empty string = not requested) and registers the atexit finalizer.
/// Call once from the CLI after parsing flags.
void set_exit_outputs(const std::string& trace_path,
                      const std::string& metrics_path);

/// Writes the registered trace/metrics files, flushes and closes the
/// journal. Idempotent: only the first call does work, so the atexit
/// hook, CLI teardown, and the watchdog can all call it safely.
void flush_exit_outputs();

/// True once flush_exit_outputs has run (tests / diagnostics).
[[nodiscard]] bool exit_outputs_flushed() noexcept;

struct WatchdogOptions {
  bool handle_signals = true;    ///< Install SIGINT/SIGTERM handlers.
  double timeout_seconds = 0.0;  ///< 0 = no deadline.
  int timeout_exit_code = 124;   ///< Matches coreutils `timeout`.
};

/// Starts the watchdog thread (idempotent; returns false if it is
/// already running or nothing was requested). The thread is detached and
/// runs for the remainder of the process.
bool start_watchdog(const WatchdogOptions& options = {});

}  // namespace simgen::obs

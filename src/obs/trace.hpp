/// \file trace.hpp
/// \brief RAII phase/span tracer with Chrome trace-event JSON export.
///
/// Records nested timed scopes (CEC phases, sweep runs, individual SAT
/// calls, guided-simulation iterations) against one steady-clock epoch
/// and exports them in the Chrome trace-event format, loadable in
/// chrome://tracing and https://ui.perfetto.dev. Tracing is off by
/// default; when off, a Span construction is a single relaxed atomic
/// load. With SIMGEN_NO_TELEMETRY the enabled check is constexpr false
/// and every span compiles away entirely.
///
/// The tracer is fully thread-safe: sweep workers record SAT-call spans
/// concurrently with the coordinator's phase spans, all serialized on one
/// internal annotated mutex (see util/annotations.hpp for the analysis
/// this enables).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/stopwatch.hpp"

namespace simgen::obs {

#ifdef SIMGEN_NO_TELEMETRY
[[nodiscard]] constexpr bool tracing_enabled() noexcept { return false; }
#else
[[nodiscard]] bool tracing_enabled() noexcept;
#endif

/// Collects trace events against a process-wide steady epoch.
class Tracer {
 public:
  struct Event {
    std::string name;
    double ts_us = 0.0;   ///< Start offset from the epoch, microseconds.
    double dur_us = 0.0;  ///< Duration ("X" events), 0 for instants.
    int depth = 0;        ///< Nesting depth at begin time.
    char phase = 'X';     ///< Chrome phase: 'X' complete, 'i' instant.
    std::vector<std::pair<std::string, double>> args;
  };

  static Tracer& instance();

  /// Clears recorded events, restarts the epoch, and turns recording on.
  void enable();
  void disable();
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Begins a span; returns its event index for end_span/span_arg.
  /// Returns kNoSpan (and records nothing) while disabled.
  std::size_t begin_span(std::string_view name);
  void end_span(std::size_t index);
  /// Attaches a numeric argument, shown in the trace viewer's detail pane.
  void span_arg(std::size_t index, std::string_view key, double value);

  /// Records a zero-duration instant event. Its "since_last_ms" argument
  /// is the time since the previous instant (Stopwatch::lap over the
  /// epoch), which makes event spacing readable without a viewer.
  void instant(std::string_view name);

  [[nodiscard]] std::vector<Event> events() const;

  /// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void write_chrome_trace(std::ostream& out) const;
  /// Convenience file writer; returns false if the file cannot be written.
  bool write_chrome_trace_file(const std::string& path) const;

  static constexpr std::size_t kNoSpan = ~std::size_t{0};

 private:
  Tracer() = default;

  mutable util::Mutex mutex_;
  std::vector<Event> events_ SIMGEN_GUARDED_BY(mutex_);
  /// Indices of unfinished spans.
  std::vector<std::size_t> open_spans_ SIMGEN_GUARDED_BY(mutex_);
  /// Restarted under mutex_ in enable(); read under mutex_ thereafter.
  util::Stopwatch epoch_ SIMGEN_GUARDED_BY(mutex_);
  std::atomic<bool> enabled_{false};
};

/// RAII scope: records one complete ("X") trace event from construction
/// to destruction. Free when tracing is disabled or compiled out.
class Span {
 public:
  explicit Span(std::string_view name) {
    if (tracing_enabled()) index_ = Tracer::instance().begin_span(name);
  }
  ~Span() {
    if (index_ != Tracer::kNoSpan) Tracer::instance().end_span(index_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric argument to the span (no-op when disabled).
  void arg(std::string_view key, double value) {
    if (index_ != Tracer::kNoSpan)
      Tracer::instance().span_arg(index_, key, value);
  }

  /// Ends the span before scope exit (idempotent; the destructor then
  /// does nothing). Useful when one function hosts several phases.
  void close() {
    if (index_ != Tracer::kNoSpan) {
      Tracer::instance().end_span(index_);
      index_ = Tracer::kNoSpan;
    }
  }

 private:
  std::size_t index_ = Tracer::kNoSpan;
};

}  // namespace simgen::obs

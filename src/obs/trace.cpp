#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/metrics.hpp"

namespace simgen::obs {

#ifndef SIMGEN_NO_TELEMETRY
bool tracing_enabled() noexcept { return Tracer::instance().enabled(); }
#endif

Tracer& Tracer::instance() {
  // Leaked, like the metrics registry: spans in static storage may close
  // during program teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::enable() {
  const util::LockGuard lock(mutex_);
  events_.clear();
  open_spans_.clear();
  epoch_.start();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

std::size_t Tracer::begin_span(std::string_view name) {
  if (!enabled_.load(std::memory_order_relaxed)) return kNoSpan;
  const util::LockGuard lock(mutex_);
  const std::size_t index = events_.size();
  Event event;
  event.name = std::string(name);
  event.ts_us = epoch_.seconds() * 1e6;
  event.depth = static_cast<int>(open_spans_.size());
  events_.push_back(std::move(event));
  open_spans_.push_back(index);
  return index;
}

void Tracer::end_span(std::size_t index) {
  if (index == kNoSpan) return;
  const util::LockGuard lock(mutex_);
  if (index >= events_.size()) return;
  events_[index].dur_us = epoch_.seconds() * 1e6 - events_[index].ts_us;
  const auto it = std::find(open_spans_.rbegin(), open_spans_.rend(), index);
  if (it != open_spans_.rend()) open_spans_.erase(std::next(it).base());
}

void Tracer::span_arg(std::size_t index, std::string_view key, double value) {
  if (index == kNoSpan) return;
  const util::LockGuard lock(mutex_);
  if (index >= events_.size()) return;
  events_[index].args.emplace_back(std::string(key), value);
}

void Tracer::instant(std::string_view name) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const util::LockGuard lock(mutex_);
  Event event;
  event.name = std::string(name);
  event.phase = 'i';
  event.ts_us = epoch_.seconds() * 1e6;
  event.depth = static_cast<int>(open_spans_.size());
  event.args.emplace_back("since_last_ms", epoch_.lap() * 1e3);
  events_.push_back(std::move(event));
}

std::vector<Tracer::Event> Tracer::events() const {
  const util::LockGuard lock(mutex_);
  return events_;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  const util::LockGuard lock(mutex_);
  // Timestamps are microsecond offsets; default stream precision (6
  // significant digits) would round them after a few seconds of run.
  out.precision(15);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"simgen\"}}";
  for (const Event& event : events_) {
    out << ",\n{\"name\":\"" << detail::json_escape(event.name)
        << "\",\"cat\":\"simgen\",\"ph\":\"" << event.phase
        << "\",\"pid\":1,\"tid\":1,\"ts\":" << event.ts_us;
    if (event.phase == 'X') out << ",\"dur\":" << event.dur_us;
    if (event.phase == 'i') out << ",\"s\":\"t\"";
    if (!event.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i != 0) out << ',';
        out << '"' << detail::json_escape(event.args[i].first)
            << "\":" << detail::json_number(event.args[i].second);
      }
      out << '}';
    }
    out << '}';
  }
  out << "\n]}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace simgen::obs

#include "obs/journal.hpp"

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string_view>
#include <thread>

#include "util/mutex.hpp"

namespace simgen::obs {

namespace {

constexpr char kMagic[8] = {'S', 'G', 'J', 'R', 'N', 'L', '0', '1'};
/// Version history: 1 = original event set (kinds 0..15); 2 = solver
/// introspection kinds (kSolverRestart/kSolverReduce/kSolverBudget/
/// kConeFingerprint/kSolverSolveStats); 3 = inprocessing milestone
/// (kSolverInprocess). The event layout is unchanged, so the reader
/// accepts every version from 1 up to this.
constexpr std::uint32_t kFormatVersion = 3;

/// 32-byte binary file header; everything after it is raw little-endian
/// JournalEvent records.
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t event_size;
  std::uint64_t reserved0;
  std::uint64_t reserved1;
};
static_assert(sizeof(FileHeader) == 32);

bool path_is_jsonl(const std::string& path, JournalFormat format) {
  if (format == JournalFormat::kJsonl) return true;
  if (format == JournalFormat::kBinary) return false;
  const std::string_view suffix = ".jsonl";
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void write_binary_header(std::FILE* file) {
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kFormatVersion;
  header.event_size = sizeof(JournalEvent);
  std::fwrite(&header, sizeof header, 1, file);
}

void write_jsonl_header(std::FILE* file) {
  std::fprintf(file, "{\"simgen_journal\":%u,\"event_size\":%zu}\n",
               kFormatVersion, sizeof(JournalEvent));
}

void write_event_binary(std::FILE* file, const JournalEvent& event) {
  std::fwrite(&event, sizeof event, 1, file);
}

void write_event_jsonl(std::FILE* file, const JournalEvent& event) {
  std::fprintf(file,
               "{\"kind\":\"%s\",\"t_ns\":%" PRIu64 ",\"code\":%u,\"a\":%" PRIu64
               ",\"b\":%" PRIu64 ",\"v0\":%" PRIu64 ",\"v1\":%" PRIu64
               ",\"v2\":%" PRIu64 ",\"v3\":%" PRIu64
               ",\"dur_us\":%u,\"flags\":%u}\n",
               kind_name(event.kind), event.t_ns, event.code, event.a, event.b,
               event.v0, event.v1, event.v2, event.v3, event.dur_us,
               event.flags);
}

}  // namespace

const char* kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kNone: return "none";
    case EventKind::kRunBegin: return "run_begin";
    case EventKind::kRunEnd: return "run_end";
    case EventKind::kPhaseBegin: return "phase_begin";
    case EventKind::kPhaseEnd: return "phase_end";
    case EventKind::kClassCreated: return "class_created";
    case EventKind::kClassSplit: return "class_split";
    case EventKind::kClassMerged: return "class_merged";
    case EventKind::kSatCall: return "sat_call";
    case EventKind::kPatternBatch: return "pattern_batch";
    case EventKind::kCertified: return "certified";
    case EventKind::kHeartbeat: return "heartbeat";
    case EventKind::kWatchdog: return "watchdog";
    case EventKind::kTaskRun: return "task_run";
    case EventKind::kWorkerStats: return "worker_stats";
    case EventKind::kResourceSample: return "resource_sample";
    case EventKind::kSolverRestart: return "solver_restart";
    case EventKind::kSolverReduce: return "solver_reduce";
    case EventKind::kSolverBudget: return "solver_budget";
    case EventKind::kConeFingerprint: return "cone_fingerprint";
    case EventKind::kSolverSolveStats: return "solver_solve_stats";
    case EventKind::kSolverInprocess: return "solver_inprocess";
  }
  return "?";
}

const char* source_name(PatternSource source) noexcept {
  switch (source) {
    case PatternSource::kNone: return "none";
    case PatternSource::kRandom: return "random";
    case PatternSource::kSimGen: return "simgen";
    case PatternSource::kRevS: return "revs";
    case PatternSource::kCounterexample: return "cex";
  }
  return "?";
}

const char* phase_name(PhaseId phase) noexcept {
  switch (phase) {
    case PhaseId::kNone: return "none";
    case PhaseId::kRandomSim: return "random_sim";
    case PhaseId::kGuidedSim: return "guided_sim";
    case PhaseId::kSweep: return "sweep";
    case PhaseId::kOutputProofs: return "output_proofs";
    case PhaseId::kReduce: return "reduce";
  }
  return "?";
}

const char* verdict_name(SatVerdict verdict) noexcept {
  switch (verdict) {
    case SatVerdict::kSat: return "sat";
    case SatVerdict::kUnsat: return "unsat";
    case SatVerdict::kUnknown: return "unknown";
  }
  return "?";
}

#ifndef SIMGEN_NO_TELEMETRY

namespace {

/// Per-thread single-producer ring. The owning thread is the only writer
/// of `head` and the ring slots below it; consumers (the drain thread, or
/// a producer draining its own full ring) serialize on the sink mutex and
/// are the only writers of `tail`.
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = 1 << 13;  // 8192 events, 512 KiB
  static constexpr std::uint64_t kMask = kCapacity - 1;

  std::vector<JournalEvent> ring = std::vector<JournalEvent>(kCapacity);
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<bool> retired{false};
};

/// Process-wide writer state. Leaked, like the metrics registry, so
/// emits from static-storage destructors stay safe.
struct JournalState {
  /// True while recording. The release store in open() is the publication
  /// point for `epoch`; every reader that dereferences epoch-derived state
  /// must load this with acquire (see now_ns/emit).
  std::atomic<bool> recording{false};

  util::Mutex lifecycle_mutex;  ///< Serializes open/close.
  util::Mutex sink_mutex;       ///< Guards the file and all consumer sides.
  std::FILE* file SIMGEN_GUARDED_BY(sink_mutex) = nullptr;
  bool jsonl SIMGEN_GUARDED_BY(sink_mutex) = false;
  std::atomic<std::uint64_t> written{0};
  /// Written in open() before recording goes true (its release store
  /// publishes the value); read lock-free afterwards. Not guarded: the
  /// recording flag's acquire/release pair is the synchronization.
  std::chrono::steady_clock::time_point epoch{};

  util::Mutex buffers_mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers
      SIMGEN_GUARDED_BY(buffers_mutex);

  std::thread drain_thread SIMGEN_GUARDED_BY(lifecycle_mutex);
  std::atomic<bool> stop_drain{false};

  static JournalState& get() {
    static JournalState* state = new JournalState();
    return *state;
  }

  /// Moves every pending event to the file.
  void drain_locked() SIMGEN_REQUIRES(sink_mutex) {
    if (file == nullptr) return;
    std::vector<std::shared_ptr<ThreadBuffer>> snapshot;
    {
      const util::LockGuard lock(buffers_mutex);
      snapshot = buffers;
    }
    for (const auto& buffer : snapshot) {
      const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
      std::uint64_t tail = buffer->tail.load(std::memory_order_relaxed);
      std::uint64_t count = 0;
      while (tail != head) {
        const JournalEvent& event = buffer->ring[tail & ThreadBuffer::kMask];
        if (jsonl)
          write_event_jsonl(file, event);
        else
          write_event_binary(file, event);
        ++tail;
        ++count;
      }
      buffer->tail.store(tail, std::memory_order_release);
      written.fetch_add(count, std::memory_order_relaxed);
    }
    // Retired (thread-exited) buffers that are fully drained can go.
    const util::LockGuard lock(buffers_mutex);
    std::erase_if(buffers, [](const std::shared_ptr<ThreadBuffer>& buffer) {
      return buffer->retired.load(std::memory_order_acquire) &&
             buffer->head.load(std::memory_order_acquire) ==
                 buffer->tail.load(std::memory_order_acquire);
    });
  }
};

/// Registers this thread's ring on first use; marks it retired (for lazy
/// removal after the final drain) at thread exit.
struct ThreadBufferHolder {
  std::shared_ptr<ThreadBuffer> buffer = std::make_shared<ThreadBuffer>();
  ThreadBufferHolder() {
    JournalState& state = JournalState::get();
    const util::LockGuard lock(state.buffers_mutex);
    state.buffers.push_back(buffer);
  }
  ~ThreadBufferHolder() { buffer->retired.store(true, std::memory_order_release); }
};

ThreadBuffer& local_buffer() {
  thread_local ThreadBufferHolder holder;
  return *holder.buffer;
}

void drain_loop() {
  JournalState& state = JournalState::get();
  while (!state.stop_drain.load(std::memory_order_acquire)) {
    {
      const util::LockGuard lock(state.sink_mutex);
      state.drain_locked();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

bool journal_enabled() noexcept {
  return JournalState::get().recording.load(std::memory_order_relaxed);
}

Journal& Journal::instance() {
  static Journal* journal = new Journal();
  return *journal;
}

bool Journal::open(const std::string& path, JournalFormat format) {
  JournalState& state = JournalState::get();
  const util::LockGuard lifecycle(state.lifecycle_mutex);
  {
    const util::LockGuard lock(state.sink_mutex);
    if (state.file != nullptr) return false;
  }
  const bool jsonl = path_is_jsonl(path, format);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  if (jsonl)
    write_jsonl_header(file);
  else
    write_binary_header(file);
  {
    const util::LockGuard lock(state.sink_mutex);
    state.file = file;
    state.jsonl = jsonl;
    state.written.store(0, std::memory_order_relaxed);
    state.epoch = std::chrono::steady_clock::now();
  }
  state.stop_drain.store(false, std::memory_order_release);
  state.drain_thread = std::thread(drain_loop);
  state.recording.store(true, std::memory_order_release);
  return true;
}

void Journal::close() {
  JournalState& state = JournalState::get();
  const util::LockGuard lifecycle(state.lifecycle_mutex);
  {
    const util::LockGuard lock(state.sink_mutex);
    if (state.file == nullptr) return;
  }
  state.recording.store(false, std::memory_order_release);
  state.stop_drain.store(true, std::memory_order_release);
  if (state.drain_thread.joinable()) state.drain_thread.join();
  const util::LockGuard lock(state.sink_mutex);
  state.drain_locked();
  std::fclose(state.file);
  state.file = nullptr;
}

void Journal::flush() {
  JournalState& state = JournalState::get();
  const util::LockGuard lock(state.sink_mutex);
  if (state.file == nullptr) return;
  state.drain_locked();
  std::fflush(state.file);
}

bool Journal::is_open() const noexcept {
  return JournalState::get().recording.load(std::memory_order_acquire);
}

std::uint64_t Journal::now_ns() const noexcept {
  JournalState& state = JournalState::get();
  // Acquire pairs with the release store in open(): seeing recording ==
  // true guarantees the epoch written just before is visible. A relaxed
  // load here could read a stale epoch on a thread that never took a
  // journal lock (first emit after another thread opened the journal).
  if (!state.recording.load(std::memory_order_acquire)) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state.epoch)
          .count());
}

std::uint64_t Journal::events_written() const noexcept {
  return JournalState::get().written.load(std::memory_order_relaxed);
}

void Journal::emit(JournalEvent event) {
  JournalState& state = JournalState::get();
  // Acquire for the same epoch-publication reason as now_ns(): the t_ns
  // stamp below computes against state.epoch.
  if (!state.recording.load(std::memory_order_acquire)) return;
  if (event.t_ns == 0) event.t_ns = now_ns();
  ThreadBuffer& buffer = local_buffer();
  const std::uint64_t head = buffer.head.load(std::memory_order_relaxed);
  if (head - buffer.tail.load(std::memory_order_acquire) >=
      ThreadBuffer::kCapacity) {
    // Ring full: the drain thread fell behind. Drain synchronously (cold
    // path); afterwards the ring is empty again.
    const util::LockGuard lock(state.sink_mutex);
    state.drain_locked();
  }
  buffer.ring[head & ThreadBuffer::kMask] = event;
  buffer.head.store(head + 1, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// PatternScope (telemetry build)

namespace {
// Innermost active scope of this thread; refine results land in its
// accumulators.
thread_local PatternScope* t_pattern_scope = nullptr;
}  // namespace

PatternScope::PatternScope(PatternSource source, std::uint32_t patterns,
                           std::uint8_t strategy_code) noexcept {
  if (!journal_enabled()) return;
  active_ = true;
  source_ = source;
  patterns_ = patterns;
  strategy_code_ = strategy_code;
  start_ns_ = Journal::instance().now_ns();
  prev_ = t_pattern_scope;
  t_pattern_scope = this;
}

PatternScope::~PatternScope() {
  if (!active_) return;
  t_pattern_scope = prev_;
  if (!refined_ || !journal_enabled()) return;
  const std::uint64_t end_ns = Journal::instance().now_ns();
  JournalEvent event;
  event.kind = EventKind::kPatternBatch;
  event.code = static_cast<std::uint8_t>(source_);
  event.a = patterns_;
  event.b = width_words_;
  event.v0 = splits_;
  event.v1 = classes_live_;
  event.v2 = cost_;
  event.dur_us = saturate_us(static_cast<double>(end_ns - start_ns_) * 1e-9);
  event.flags = strategy_code_;
  event.t_ns = end_ns;
  Journal::instance().emit(event);
}

void PatternScope::record_refine(std::uint64_t splits,
                                 std::uint64_t classes_live,
                                 std::uint64_t cost,
                                 std::uint64_t width_words) noexcept {
  PatternScope* scope = t_pattern_scope;
  if (scope == nullptr) return;
  scope->refined_ = true;
  scope->splits_ += splits;
  scope->classes_live_ = classes_live;
  scope->cost_ = cost;
  if (width_words > scope->width_words_) scope->width_words_ = width_words;
}

PatternSource PatternScope::current_source() noexcept {
  const PatternScope* scope = t_pattern_scope;
  return scope == nullptr ? PatternSource::kNone : scope->source_;
}

#else  // SIMGEN_NO_TELEMETRY: the writer compiles to nothing.

Journal& Journal::instance() {
  static Journal* journal = new Journal();
  return *journal;
}

bool Journal::open(const std::string&, JournalFormat) { return false; }
void Journal::close() {}
void Journal::flush() {}
bool Journal::is_open() const noexcept { return false; }
std::uint64_t Journal::now_ns() const noexcept { return 0; }
std::uint64_t Journal::events_written() const noexcept { return 0; }
void Journal::emit(JournalEvent) {}

PatternScope::PatternScope(PatternSource, std::uint32_t, std::uint8_t) noexcept {}
PatternScope::~PatternScope() = default;
void PatternScope::record_refine(std::uint64_t, std::uint64_t, std::uint64_t,
                                 std::uint64_t) noexcept {}
PatternSource PatternScope::current_source() noexcept {
  return PatternSource::kNone;
}

#endif  // SIMGEN_NO_TELEMETRY

// ---------------------------------------------------------------------------
// Reader / standalone writer (available in every build)

namespace {

EventKind kind_from_name(std::string_view name) {
  for (std::uint8_t k = 0;
       k <= static_cast<std::uint8_t>(EventKind::kSolverInprocess); ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == kind_name(kind)) return kind;
  }
  return EventKind::kNone;
}

/// Minimal parser for the journal's own JSONL lines: a flat object of
/// string/number values. Strict enough to catch truncation/corruption.
class LineParser {
 public:
  explicit LineParser(std::string_view text) : text_(text) {}

  bool parse(JournalEvent& event, bool& is_header) {
    skip_ws();
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;  // empty object
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (key == "simgen_journal") is_header = true;
      if (peek() == '"') {
        std::string value;
        if (!parse_string(value)) return false;
        if (key == "kind") event.kind = kind_from_name(value);
      } else {
        std::uint64_t value = 0;
        if (!parse_number(value)) return false;
        assign(event, key, value);
      }
      skip_ws();
      if (consume(',')) {
        skip_ws();
        continue;
      }
      if (consume('}')) break;
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static void assign(JournalEvent& event, const std::string& key,
                     std::uint64_t value) {
    if (key == "t_ns") event.t_ns = value;
    else if (key == "code") event.code = static_cast<std::uint8_t>(value);
    else if (key == "a") event.a = value;
    else if (key == "b") event.b = value;
    else if (key == "v0") event.v0 = value;
    else if (key == "v1") event.v1 = value;
    else if (key == "v2") event.v2 = value;
    else if (key == "v3") event.v3 = value;
    else if (key == "dur_us") event.dur_us = static_cast<std::uint32_t>(value);
    else if (key == "flags") event.flags = static_cast<std::uint16_t>(value);
    // Unknown numeric keys are tolerated (forward compatibility).
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    return consume('"');
  }
  bool parse_number(std::uint64_t& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0))
      ++pos_;
    if (pos_ == start) return false;
    out = std::strtoull(std::string(text_.substr(start, pos_ - start)).c_str(),
                        nullptr, 10);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool read_journal_file(const std::string& path, std::vector<JournalEvent>& out,
                       std::string* error, bool* truncated) {
  out.clear();
  if (truncated != nullptr) *truncated = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();
  if (data.empty()) return fail(error, "empty file");

  if (data.size() >= sizeof kMagic &&
      std::memcmp(data.data(), kMagic, sizeof kMagic) == 0) {
    if (data.size() < sizeof(FileHeader))
      return fail(error, "truncated header");
    FileHeader header{};
    std::memcpy(&header, data.data(), sizeof header);
    if (header.version < 1 || header.version > kFormatVersion)
      return fail(error, "unsupported journal version " +
                             std::to_string(header.version));
    if (header.event_size != sizeof(JournalEvent))
      return fail(error, "unexpected event size " +
                             std::to_string(header.event_size));
    const std::size_t payload = data.size() - sizeof(FileHeader);
    const std::size_t count = payload / sizeof(JournalEvent);
    if (payload % sizeof(JournalEvent) != 0 && truncated != nullptr)
      *truncated = true;
    out.resize(count);
    if (count > 0)
      std::memcpy(out.data(), data.data() + sizeof(FileHeader),
                  count * sizeof(JournalEvent));
    return true;
  }

  if (data[0] == '{') {
    std::size_t line_no = 0;
    std::size_t begin = 0;
    while (begin < data.size()) {
      std::size_t end = data.find('\n', begin);
      const bool has_newline = end != std::string::npos;
      if (!has_newline) end = data.size();
      const std::string_view line(data.data() + begin, end - begin);
      begin = end + 1;
      ++line_no;
      if (line.empty() ||
          line.find_first_not_of(" \t\r") == std::string_view::npos)
        continue;
      JournalEvent event;
      bool is_header = false;
      LineParser parser(line);
      if (!parser.parse(event, is_header)) {
        // An unterminated final line is an interrupted write, not
        // corruption: report truncation and keep what parsed. A
        // newline-terminated line was fully written, so a parse failure
        // there is corruption no matter where it sits.
        if (!has_newline) {
          if (truncated != nullptr) *truncated = true;
          return true;
        }
        return fail(error, "malformed JSONL at line " + std::to_string(line_no));
      }
      if (!is_header) out.push_back(event);
    }
    return true;
  }
  return fail(error, "not a simgen journal (bad magic)");
}

bool write_journal_file(const std::string& path,
                        const std::vector<JournalEvent>& events,
                        JournalFormat format) {
  const bool jsonl = path_is_jsonl(path, format);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  if (jsonl)
    write_jsonl_header(file);
  else
    write_binary_header(file);
  for (const JournalEvent& event : events) {
    if (jsonl)
      write_event_jsonl(file, event);
    else
      write_event_binary(file, event);
  }
  const bool ok = std::fflush(file) == 0 && std::ferror(file) == 0;
  std::fclose(file);
  return ok;
}

}  // namespace simgen::obs

#include "network/mffc.hpp"

#include <algorithm>

namespace simgen::net {

MffcInfo compute_mffc(const Network& network, NodeId root) {
  MffcInfo info;
  info.root = root;
  if (!network.is_lut(root)) return info;  // PIs/constants/POs: empty MFFC.

  // Dereference simulation: a fanin joins the cone when all of its fanouts
  // are already inside, i.e. its external reference count drops to zero.
  std::vector<std::uint32_t> refs(network.num_nodes(), 0);
  std::vector<bool> member(network.num_nodes(), false);
  info.members.push_back(root);
  member[root] = true;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    for (NodeId fanin : network.fanins(node)) {
      if (!network.is_lut(fanin)) continue;
      if (member[fanin]) continue;
      if (refs[fanin] == 0)
        refs[fanin] = static_cast<std::uint32_t>(network.fanouts(fanin).size());
      if (--refs[fanin] == 0) {
        member[fanin] = true;
        info.members.push_back(fanin);
        stack.push_back(fanin);
      }
    }
  }
  std::sort(info.members.begin(), info.members.end());

  // Leaves: members none of whose fanins is a member (the first cone nodes
  // on any PI-to-cone path, per the paper's cone terminology).
  for (NodeId node : info.members) {
    bool has_member_fanin = false;
    for (NodeId fanin : network.fanins(node)) {
      if (member[fanin]) {
        has_member_fanin = true;
        break;
      }
    }
    if (!has_member_fanin) info.leaves.push_back(node);
  }

  // Equation 2: average distance from each leaf to the cone output.
  if (!info.leaves.empty()) {
    const unsigned root_level = network.level(root);
    double total = 0.0;
    for (NodeId leaf : info.leaves)
      total += static_cast<double>(root_level - network.level(leaf));
    info.depth = total / static_cast<double>(info.leaves.size());
  }
  return info;
}

double MffcDepthCache::depth(NodeId node) const {
  double& slot = depth_[node];
  if (slot == kUnknown) slot = compute_mffc(network_, node).depth;
  return slot;
}

}  // namespace simgen::net

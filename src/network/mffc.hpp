/// \file mffc.hpp
/// \brief Maximum Fanout-Free Cone computation (paper Sections 2.1 and 5).
///
/// The MFFC of a node n is the largest fanin sub-cone all of whose internal
/// paths to the POs pass through n. SimGen's MFFC decision heuristic scores
/// truth-table rows by the depth (Equation 2) of the MFFCs rooted at the
/// fanins of the node under decision: deep MFFCs are safe to constrain
/// (conflicts cannot leak out), shallow/absent ones should receive DCs.
#pragma once

#include <vector>

#include "network/network.hpp"

namespace simgen::net {

/// MFFC of one node, with the derived quantities Equation 2 needs.
struct MffcInfo {
  NodeId root = kNullNode;
  std::vector<NodeId> members;  ///< Internal nodes of the cone, root included.
  std::vector<NodeId> leaves;   ///< Members with no member fanin (paper 2.1).
  double depth = 0.0;           ///< Equation 2: mean level(root)-level(leaf).
};

/// Computes the MFFC of \p root by reference-count dereferencing. PIs and
/// constants never join an MFFC. For a PI/constant root the MFFC is empty
/// with depth 0.
[[nodiscard]] MffcInfo compute_mffc(const Network& network, NodeId root);

/// Lazily computed, cached per-node MFFC depths. The decision heuristic
/// queries depths for every fanin of every node it scores, so caching is
/// what keeps the AI+DC+MFFC strategy's runtime overhead at the "modest"
/// level Table 1 of the paper reports.
class MffcDepthCache {
 public:
  explicit MffcDepthCache(const Network& network)
      : network_(network),
        depth_(network.num_nodes(), kUnknown) {}

  /// MFFC depth of \p node per Equation 2 (0 for PIs and constants).
  [[nodiscard]] double depth(NodeId node) const;

 private:
  static constexpr double kUnknown = -1.0;
  const Network& network_;
  mutable std::vector<double> depth_;
};

}  // namespace simgen::net

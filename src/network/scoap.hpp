/// \file scoap.hpp
/// \brief SCOAP-style controllability analysis.
///
/// The classic testability measure from the ATPG literature the paper
/// draws on: CC0(n)/CC1(n) estimate how many input assignments it takes
/// to drive node n to 0/1. The gate-type rules of the original SCOAP are
/// generalized to arbitrary LUTs through their ISOP rows: driving the
/// node to v costs one plus the cheapest row of the v-plane, where a row
/// costs the sum of the controllabilities its literals demand.
///
/// SimGen uses these costs as an extension decision heuristic (pick rows
/// whose literals are easy to justify, see DecisionStrategy::
/// kDontCareScoap) and they are independently useful for test-point
/// analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"

namespace simgen::net {

/// Controllability-to-0 / to-1 per node; kUncontrollable marks values a
/// node can never take (e.g. CC1 of a constant-0 node).
struct ScoapCosts {
  static constexpr std::uint32_t kUncontrollable = 1u << 30;

  std::vector<std::uint32_t> cc0;
  std::vector<std::uint32_t> cc1;

  /// Cost of driving \p node to \p value.
  [[nodiscard]] std::uint32_t cost(NodeId node, bool value) const {
    return value ? cc1[node] : cc0[node];
  }
};

/// Computes CC0/CC1 for every node in one topological pass.
/// PIs cost 1 for either value; constants cost 0 for their value and
/// kUncontrollable for the other.
[[nodiscard]] ScoapCosts compute_scoap(const Network& network);

}  // namespace simgen::net

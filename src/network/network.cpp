#include "network/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/dcheck.hpp"

namespace simgen::net {

NodeId Network::add_pi(std::string name) {
  Node node;
  node.kind = NodeKind::kPi;
  node.name = std::move(name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  pis_.push_back(id);
  levels_valid_ = false;
  return id;
}

NodeId Network::add_constant(bool value) {
  NodeId& cached = const_node_[value ? 1 : 0];
  if (cached != kNullNode) return cached;
  Node node;
  node.kind = NodeKind::kConstant;
  node.constant_value = value;
  cached = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  levels_valid_ = false;
  return cached;
}

NodeId Network::add_lut(std::span<const NodeId> fanins, tt::TruthTable function,
                        std::string name) {
  if (function.num_vars() != fanins.size())
    throw std::invalid_argument("Network::add_lut: arity mismatch");
  for (NodeId fanin : fanins) {
    if (fanin >= nodes_.size())
      throw std::invalid_argument("Network::add_lut: fanin does not exist");
    if (nodes_[fanin].kind == NodeKind::kPo)
      throw std::invalid_argument("Network::add_lut: PO cannot be a fanin");
  }
  Node node;
  node.kind = NodeKind::kLut;
  node.fanins.assign(fanins.begin(), fanins.end());
  node.function = std::move(function);
  node.name = std::move(name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  SIMGEN_DCHECK(node.function.num_vars() <= tt::kMaxVars,
                "LUT arity exceeds the truth-table limit");
  nodes_.push_back(std::move(node));
  for (NodeId fanin : fanins) {
    SIMGEN_DCHECK(nodes_[fanin].kind != NodeKind::kPo,
                  "LUT fanin may not be a PO");
    nodes_[fanin].fanouts.push_back(id);
  }
  ++num_luts_;
  levels_valid_ = false;
  return id;
}

NodeId Network::add_po(NodeId driver, std::string name) {
  if (driver >= nodes_.size())
    throw std::invalid_argument("Network::add_po: driver does not exist");
  if (nodes_[driver].kind == NodeKind::kPo)
    throw std::invalid_argument("Network::add_po: PO cannot drive a PO");
  Node node;
  node.kind = NodeKind::kPo;
  node.fanins.push_back(driver);
  node.name = std::move(name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  nodes_[driver].fanouts.push_back(id);
  pos_.push_back(id);
  levels_valid_ = false;
  return id;
}

std::size_t Network::fanin_index(NodeId id, NodeId fanin) const {
  const auto& list = nodes_[id].fanins;
  const auto it = std::find(list.begin(), list.end(), fanin);
  return it == list.end() ? kNullNode : static_cast<std::size_t>(it - list.begin());
}

unsigned Network::level(NodeId id) const {
  ensure_levels();
  return levels_[id];
}

unsigned Network::depth() const {
  unsigned result = 0;
  for (NodeId po : pos_) result = std::max(result, level(po));
  return result;
}

std::vector<NodeId> Network::topological_order() const {
  std::vector<NodeId> order(nodes_.size());
  for (NodeId id{0}; id < nodes_.size(); ++id) order[id] = id;
  return order;
}

void Network::ensure_levels() const {
  if (levels_valid_) return;
  levels_.assign(nodes_.size(), 0);
  for (NodeId id{0}; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    unsigned lev = 0;
    for (NodeId fanin : node.fanins) lev = std::max(lev, levels_[fanin] + 1);
    // POs are transparent name points: they sit at their driver's level.
    if (node.kind == NodeKind::kPo) lev = node.fanins.empty() ? 0 : levels_[node.fanins[0]];
    levels_[id] = lev;
  }
  levels_valid_ = true;
}

// Network::check_invariants() is implemented in src/check/lint.cpp on top
// of the structural lint registry (see network.hpp).

}  // namespace simgen::net

#include "network/analysis.hpp"

#include <algorithm>
#include <cstdio>

namespace simgen::net {
namespace {

// Iterative post-order DFS over fanins. Appends newly visited nodes to
// `out`; `visited` persists across roots for the multi-root overload.
void dfs_from(const Network& network, NodeId root, std::vector<bool>& visited,
              std::vector<NodeId>& out) {
  if (visited[root]) return;
  // Stack entries: (node, next fanin index to expand).
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(root, 0);
  visited[root] = true;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    const auto fanins = network.fanins(node);
    if (next < fanins.size()) {
      const NodeId fanin = fanins[next++];
      if (!visited[fanin]) {
        visited[fanin] = true;
        stack.emplace_back(fanin, 0);
      }
    } else {
      out.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

std::vector<NodeId> fanin_cone_dfs(const Network& network, NodeId root) {
  return fanin_cone_dfs(network, std::span(&root, 1));
}

std::vector<NodeId> fanin_cone_dfs(const Network& network,
                                   std::span<const NodeId> roots) {
  std::vector<bool> visited(network.num_nodes(), false);
  std::vector<NodeId> out;
  for (NodeId root : roots) dfs_from(network, root, visited, out);
  return out;
}

std::vector<NodeId> cone_pis(const Network& network, NodeId root) {
  std::vector<NodeId> result;
  for (NodeId node : fanin_cone_dfs(network, root))
    if (network.is_pi(node)) result.push_back(node);
  return result;
}

std::vector<NodeId> fanout_cone(const Network& network, NodeId root) {
  std::vector<bool> reached(network.num_nodes(), false);
  reached[root] = true;
  std::vector<NodeId> result{root};
  // Fanouts always have larger ids, so one forward sweep suffices.
  for (NodeId id = root; id < network.num_nodes(); ++id) {
    if (!reached[id]) continue;
    for (NodeId fanout : network.fanouts(id)) {
      if (!reached[fanout]) {
        reached[fanout] = true;
        result.push_back(fanout);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool in_fanin_cone(const Network& network, NodeId root, NodeId node) {
  if (node > root) return false;
  const auto cone = fanin_cone_dfs(network, root);
  return std::find(cone.begin(), cone.end(), node) != cone.end();
}

NetworkStats compute_stats(const Network& network) {
  NetworkStats stats;
  stats.num_pis = network.num_pis();
  stats.num_pos = network.num_pos();
  stats.num_luts = network.num_luts();
  stats.depth = network.depth();
  std::size_t fanin_total = 0;
  std::size_t fanout_total = 0;
  std::size_t fanout_nodes = 0;
  network.for_each_node([&](NodeId id) {
    if (network.is_lut(id)) fanin_total += network.fanins(id).size();
    if (!network.is_po(id)) {
      fanout_total += network.fanouts(id).size();
      ++fanout_nodes;
      stats.max_fanout =
          std::max<unsigned>(stats.max_fanout,
                             static_cast<unsigned>(network.fanouts(id).size()));
    }
  });
  if (stats.num_luts > 0)
    stats.avg_fanin = static_cast<double>(fanin_total) / static_cast<double>(stats.num_luts);
  if (fanout_nodes > 0)
    stats.avg_fanout = static_cast<double>(fanout_total) / static_cast<double>(fanout_nodes);
  return stats;
}

std::string to_string(const NetworkStats& stats) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "pis=%zu pos=%zu luts=%zu depth=%u avg_fanin=%.2f "
                "avg_fanout=%.2f max_fanout=%u",
                stats.num_pis, stats.num_pos, stats.num_luts, stats.depth,
                stats.avg_fanin, stats.avg_fanout, stats.max_fanout);
  return buffer;
}

}  // namespace simgen::net

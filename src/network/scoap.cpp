#include "network/scoap.hpp"

#include <algorithm>

#include "tt/isop.hpp"

namespace simgen::net {
namespace {

constexpr std::uint32_t kInf = ScoapCosts::kUncontrollable;

/// Cheapest row of \p cover: each literal demands its fanin's CC1 or CC0.
std::uint32_t cover_cost(const tt::Cover& cover, const Network& network,
                         NodeId node, const ScoapCosts& costs) {
  const auto fanins = network.fanins(node);
  std::uint32_t best = kInf;
  for (const tt::Cube& cube : cover.cubes) {
    std::uint64_t row_cost = 1;  // the node itself
    for (unsigned v = 0; v < fanins.size(); ++v) {
      if (!cube.has_literal(v)) continue;
      row_cost += costs.cost(fanins[v], cube.literal_value(v));
    }
    best = std::min<std::uint64_t>(best, std::min<std::uint64_t>(row_cost, kInf));
  }
  return best;
}

}  // namespace

ScoapCosts compute_scoap(const Network& network) {
  ScoapCosts costs;
  costs.cc0.assign(network.num_nodes(), kInf);
  costs.cc1.assign(network.num_nodes(), kInf);

  network.for_each_node([&](NodeId id) {
    const Node& node = network.node(id);
    switch (node.kind) {
      case NodeKind::kPi:
        costs.cc0[id] = 1;
        costs.cc1[id] = 1;
        break;
      case NodeKind::kConstant:
        costs.cc0[id] = node.constant_value ? kInf : 0;
        costs.cc1[id] = node.constant_value ? 0 : kInf;
        break;
      case NodeKind::kPo:
        costs.cc0[id] = costs.cc0[node.fanins[0]];
        costs.cc1[id] = costs.cc1[node.fanins[0]];
        break;
      case NodeKind::kLut: {
        const tt::RowSet rows = tt::compute_rows(node.function);
        costs.cc1[id] = cover_cost(rows.on, network, id, costs);
        costs.cc0[id] = cover_cost(rows.off, network, id, costs);
        break;
      }
    }
  });
  return costs;
}

}  // namespace simgen::net

/// \file analysis.hpp
/// \brief Structural queries over networks: cones, DFS orders, statistics.
///
/// These are the graph traversals Algorithm 1 of the paper relies on:
/// `fanin_cone_dfs` is its `dfs(targetNode)` (the listDfs variable), and
/// `cone_pis` supplies the PI set the `PIsSet` loop condition checks.
#pragma once

#include <string>
#include <vector>

#include "network/network.hpp"

namespace simgen::net {

/// Nodes of the transitive fanin cone of \p root (root included), in DFS
/// post-order from the root, i.e. fanins appear before their readers.
[[nodiscard]] std::vector<NodeId> fanin_cone_dfs(const Network& network, NodeId root);

/// Like fanin_cone_dfs but for several roots at once (deduplicated).
[[nodiscard]] std::vector<NodeId> fanin_cone_dfs(const Network& network,
                                                 std::span<const NodeId> roots);

/// Primary inputs reachable in the fanin cone of \p root.
[[nodiscard]] std::vector<NodeId> cone_pis(const Network& network, NodeId root);

/// Nodes of the transitive fanout cone of \p root (root included), in
/// topological (increasing id) order.
[[nodiscard]] std::vector<NodeId> fanout_cone(const Network& network, NodeId root);

/// True iff \p node lies in the transitive fanin cone of \p root.
[[nodiscard]] bool in_fanin_cone(const Network& network, NodeId root, NodeId node);

/// Summary statistics used by the benches and examples.
struct NetworkStats {
  std::size_t num_pis = 0;
  std::size_t num_pos = 0;
  std::size_t num_luts = 0;
  unsigned depth = 0;
  double avg_fanin = 0.0;
  double avg_fanout = 0.0;
  unsigned max_fanout = 0;
};

[[nodiscard]] NetworkStats compute_stats(const Network& network);

/// One-line human-readable rendering of the stats.
[[nodiscard]] std::string to_string(const NetworkStats& stats);

}  // namespace simgen::net

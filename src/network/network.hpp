/// \file network.hpp
/// \brief Generic K-LUT Boolean network (DAG of truth-table nodes).
///
/// This is the circuit representation the whole library operates on: the
/// LUT mapper produces it, the simulator evaluates it, SimGen propagates
/// values through it, and the CNF encoder translates it for the SAT
/// solver. It matches the paper's model (Section 2.1): a DAG whose nodes
/// compute single-output Boolean functions, with distinguished primary
/// inputs (no fanins) and primary outputs (no fanouts).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "tt/truth_table.hpp"
#include "util/strong_id.hpp"

namespace simgen::net {

/// Dense node identifier; also the index into all per-node side arrays.
/// A strong type (util::StrongId): constructing one from an integer is
/// explicit, decaying back for array indexing is implicit, and mixing it
/// with other index spaces (sat::Var, class indices) at a function
/// boundary is a compile error.
struct NodeIdTag {};
using NodeId = util::StrongId<NodeIdTag>;
inline constexpr NodeId kNullNode{std::numeric_limits<std::uint32_t>::max()};

enum class NodeKind : std::uint8_t {
  kConstant,  ///< Constant 0 or 1; no fanins.
  kPi,        ///< Primary input; no fanins.
  kLut,       ///< Internal node with a truth table over its fanins.
  kPo,        ///< Primary output; single fanin, identity function.
};

/// One network node. Plain data; invariants are maintained by Network.
struct Node {
  NodeKind kind = NodeKind::kLut;
  bool constant_value = false;            ///< Only for kConstant.
  std::vector<NodeId> fanins;             ///< Ordered; inputs of `function`.
  std::vector<NodeId> fanouts;            ///< Unordered readers.
  tt::TruthTable function{0};             ///< Only for kLut.
  std::string name;                       ///< Optional (I/O names, debug).
};

/// Append-only LUT network.
///
/// Nodes are created in topological order by construction (fanins must
/// exist before the node), which keeps levelization and simulation a
/// single forward pass. The class deliberately has no in-place rewriting:
/// transformations (mapping, stacking) build new networks.
class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  /// Adds a primary input and returns its id.
  NodeId add_pi(std::string name = {});

  /// Adds (or reuses) the constant node with the given value.
  NodeId add_constant(bool value);

  /// Adds an internal node computing \p function over \p fanins.
  /// \p function.num_vars() must equal fanins.size(); every fanin must be
  /// an existing non-PO node.
  NodeId add_lut(std::span<const NodeId> fanins, tt::TruthTable function,
                 std::string name = {});

  /// Adds a primary output reading \p driver.
  NodeId add_po(NodeId driver, std::string name = {});

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_pis() const noexcept { return pis_.size(); }
  [[nodiscard]] std::size_t num_pos() const noexcept { return pos_.size(); }
  /// Number of internal LUT nodes.
  [[nodiscard]] std::size_t num_luts() const noexcept { return num_luts_; }

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }

  /// Mutable node access for tests and low-level surgery. The class
  /// maintains no invariants across direct edits: run check_invariants()
  /// (or the src/check lint pass) after using this, and expect cached
  /// levels to be stale.
  [[nodiscard]] Node& mutable_node(NodeId id) { return nodes_[id]; }
  [[nodiscard]] std::span<const NodeId> pis() const noexcept { return pis_; }
  [[nodiscard]] std::span<const NodeId> pos() const noexcept { return pos_; }

  [[nodiscard]] bool is_pi(NodeId id) const { return nodes_[id].kind == NodeKind::kPi; }
  [[nodiscard]] bool is_po(NodeId id) const { return nodes_[id].kind == NodeKind::kPo; }
  [[nodiscard]] bool is_lut(NodeId id) const { return nodes_[id].kind == NodeKind::kLut; }
  [[nodiscard]] bool is_constant(NodeId id) const {
    return nodes_[id].kind == NodeKind::kConstant;
  }

  [[nodiscard]] std::span<const NodeId> fanins(NodeId id) const {
    return nodes_[id].fanins;
  }
  [[nodiscard]] std::span<const NodeId> fanouts(NodeId id) const {
    return nodes_[id].fanouts;
  }

  /// Index of \p fanin within node \p id's fanin list; kNullNode if absent.
  [[nodiscard]] std::size_t fanin_index(NodeId id, NodeId fanin) const;

  /// Logic level: PIs and constants are level 0; any other node is one
  /// more than its deepest fanin. Computed lazily and cached; adding nodes
  /// invalidates the cache.
  [[nodiscard]] unsigned level(NodeId id) const;

  /// Depth of the network: maximum PO level.
  [[nodiscard]] unsigned depth() const;

  /// All node ids in creation order, which is a valid topological order.
  [[nodiscard]] std::vector<NodeId> topological_order() const;

  /// Network name (benchmark name for generated circuits).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Calls \p fn(NodeId) for every node in creation (topological) order.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    for (NodeId id{0}; id < nodes_.size(); ++id) fn(id);
  }

  /// Calls \p fn(NodeId) for every internal LUT node in topological order.
  template <typename Fn>
  void for_each_lut(Fn&& fn) const {
    for (NodeId id{0}; id < nodes_.size(); ++id)
      if (nodes_[id].kind == NodeKind::kLut) fn(id);
  }

  /// Validates the full structural invariants — acyclic topological
  /// order, fanin/fanout symmetry, per-kind shape, truth-table arity,
  /// level consistency, PI/PO list agreement, constant canonicity — and
  /// throws std::logic_error with the lint report on breach. Implemented
  /// in src/check/lint.cpp on top of the lint registry; link
  /// simgen::check (or simgen::all) to use it.
  void check_invariants() const;

 private:
  void ensure_levels() const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> pis_;
  std::vector<NodeId> pos_;
  NodeId const_node_[2] = {kNullNode, kNullNode};
  std::size_t num_luts_ = 0;

  mutable std::vector<unsigned> levels_;
  mutable bool levels_valid_ = false;
};

}  // namespace simgen::net

/// \file campaign.hpp
/// \brief The fuzz campaign driver: generate, mutate, cross-check,
/// shrink, report.
///
/// One campaign iteration:
///   1. generate a base circuit (a benchgen AIG — mapped to 6-LUTs or
///      translated directly — or a raw random K-LUT network);
///   2. round-trip it through every serializer and demand equivalence;
///   3. derive an equivalence-preserving mutant and an injected-fault
///      mutant with a verified witness;
///   4. run the pair oracles (a sweeping arm — cycled per iteration so a
///      short run still covers all of Table 1 — the plain SAT miter, and
///      the BDD engine) and demand the expected verdicts;
///   5. on any mismatch: re-express the failure as a single-network
///      predicate, delta-debug it down, and write self-contained repro
///      artifacts.
///
/// Everything is a pure function of (seed, iteration): per-iteration RNG
/// streams are split from the base seed, verdict-log lines carry no
/// timings, and re-running the same seed reproduces the same circuits,
/// verdicts, and log bytes — the property the determinism tests pin down.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "fuzz/gen.hpp"
#include "fuzz/oracle.hpp"
#include "simgen/guided_sim.hpp"

namespace simgen::fuzz {

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 100;
  /// Index of the first iteration to run. Because every iteration is a
  /// pure function of (seed, index), `first_iteration = N, iterations = 1`
  /// re-runs exactly the iteration a failing campaign reported as N.
  std::uint64_t first_iteration = 0;
  /// Stop early after this much wall time (0 = no limit). Only affects
  /// how many iterations run, never their content.
  double max_seconds = 0.0;
  /// Cycle through all strategy arms (iteration i uses arm i mod 6);
  /// otherwise every iteration uses \p arm.
  bool cycle_arms = true;
  core::Strategy arm = core::Strategy::kAiDcMffc;
  /// Run every arm on every pair instead of one per iteration (slow).
  bool all_arms = false;
  bool certify = true;
  bool shrink = true;
  /// When > 1, cross-check every sweeping oracle against the parallel
  /// engine with this many workers (see PairOracleOptions::num_threads);
  /// verdict-log bytes are unchanged while the engines agree.
  unsigned num_threads = 1;
  /// Cross-check every sweeping oracle with inprocessing toggled on/off
  /// (see PairOracleOptions::inprocess_differential).
  bool inprocess_differential = false;
  /// Width-sweep differential: rerun every sweeping oracle under every
  /// available SIMD kernel at block widths 1 and 8 and demand
  /// byte-identical results (see PairOracleOptions::kernel_sweep).
  bool kernel_sweep = false;
  /// Where to write repro artifacts; empty disables writing.
  std::string artifact_dir;
  GenProfile profile;
  /// Live echo of verdict-log lines (nullptr = silent).
  std::FILE* echo = nullptr;
};

struct CampaignResult {
  std::uint64_t iterations = 0;
  std::uint64_t checks = 0;    ///< Individual oracle runs.
  std::uint64_t failures = 0;  ///< Oracle mismatches (0 = clean campaign).
  std::uint64_t eq_pairs = 0;
  std::uint64_t neq_pairs = 0;
  std::uint64_t roundtrips = 0;
  bool time_limited = false;   ///< Stopped by max_seconds.
  /// One line per iteration; deterministic bytes for a given
  /// (seed, iterations, arm configuration).
  std::string verdict_log;
  std::vector<std::string> artifacts;  ///< Repro paths written.
};

/// Runs the campaign. Never throws for engine failures (those become
/// verdict-log failures); throws only for harness-level errors
/// (unwritable artifact directory).
[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& options);

/// Replays a repro circuit (typically loaded from an artifact .blif):
/// runs every engine against the constant-0 reference plus the network
/// round trips, reporting one result per oracle. Failures reproduce the
/// original disagreement.
[[nodiscard]] std::vector<OracleResult> replay_network(
    const net::Network& network, std::uint64_t seed);

}  // namespace simgen::fuzz

#include "fuzz/campaign.hpp"

#include <exception>
#include <functional>
#include <iterator>
#include <optional>
#include <utility>

#include "aig/aig_to_network.hpp"
#include "benchgen/generator.hpp"
#include "fuzz/artifact.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/shrink.hpp"
#include "mapping/lut_mapper.hpp"
#include "obs/metrics.hpp"
#include "sweep/cec.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace simgen::fuzz {

namespace {

/// Campaign-wide telemetry; visible in --metrics-out dumps next to the
/// engine counters (eq.*, sat.*) the campaign exercises.
struct CampaignCounters {
  obs::Counter iterations{"fuzz.iterations"};
  obs::Counter checks{"fuzz.checks"};
  obs::Counter failures{"fuzz.failures"};
  obs::Counter artifacts{"fuzz.artifacts"};
  obs::Counter shrink_reductions{"fuzz.shrink.reductions"};
};

std::string interface_summary(const net::Network& network) {
  return "pis " + std::to_string(network.num_pis()) + " pos " +
         std::to_string(network.num_pos()) + " nodes " +
         std::to_string(network.num_nodes());
}

}  // namespace

CampaignResult run_campaign(const CampaignOptions& options) {
  CampaignResult result;
  CampaignCounters counters;
  util::Stopwatch timer;
  timer.start();

  const std::uint64_t end_iteration =
      options.first_iteration + options.iterations < options.first_iteration
          ? ~std::uint64_t{0}  // saturate instead of wrapping
          : options.first_iteration + options.iterations;
  for (std::uint64_t iter = options.first_iteration; iter < end_iteration;
       ++iter) {
    if (options.max_seconds > 0.0 && timer.seconds() > options.max_seconds) {
      result.time_limited = true;
      break;
    }
    ++result.iterations;
    counters.iterations.inc();

    // Every iteration is a pure function of (seed, iter): its RNG stream
    // and the engines' internal seeds both derive from this split, so a
    // re-run reproduces it without replaying earlier iterations.
    const std::uint64_t iter_seed =
        util::splitmix64(options.seed) ^ util::splitmix64(iter + 1);
    util::Rng rng(iter_seed);
    const core::Strategy arm =
        options.cycle_arms
            ? core::kAllStrategies[iter % std::size(core::kAllStrategies)]
            : options.arm;

    std::string line = "iter " + std::to_string(iter) + " arm " +
                       std::string(core::strategy_name(arm));

    /// Writes repro artifacts (full + shrunk) for a failing network.
    const auto write_artifacts = [&](const OracleResult& failure,
                                     const net::Network& network,
                                     const ShrinkPredicate& still_fails) {
      if (options.artifact_dir.empty()) return;
      ReproInfo info;
      info.seed = options.seed;
      info.iteration = iter;
      info.oracle = failure.name;
      info.detail = failure.detail;
      const std::string stem = "seed" + std::to_string(options.seed) +
                               "_iter" + std::to_string(iter) + "_" +
                               sanitize_stem(failure.name);
      result.artifacts.push_back(
          write_blif_repro(options.artifact_dir, stem, info, network));
      counters.artifacts.inc();
      if (options.shrink && still_fails && still_fails(network)) {
        const ShrinkResult shrunk = shrink_network(network, still_fails);
        counters.shrink_reductions.inc(shrunk.reductions);
        ReproInfo shrunk_info = info;
        shrunk_info.shrunk_from = network.num_nodes();
        result.artifacts.push_back(write_blif_repro(
            options.artifact_dir, stem + "_shrunk", shrunk_info,
            shrunk.network));
        counters.artifacts.inc();
      }
    };

    /// Scores one oracle result into the log/counters; \p on_fail runs
    /// artifact writing for mismatches.
    const auto record = [&](const OracleResult& oracle,
                            const std::function<void()>& on_fail) {
      ++result.checks;
      counters.checks.inc();
      line += " " + oracle.name;
      if (oracle.pass) {
        line += "=ok";
      } else {
        line += "=FAIL(" + oracle.detail + ")";
        ++result.failures;
        counters.failures.inc();
        if (on_fail) on_fail();
      }
    };

    try {
      // 1. Base circuit: benchgen AIG (mapped or direct) or raw LUT net.
      net::Network base;
      std::optional<aig::Aig> graph;
      if (rng.chance(0.5)) {
        const benchgen::CircuitSpec spec =
            random_spec(rng, options.profile);
        graph = benchgen::generate_circuit(spec);
        if (rng.flip()) {
          base = mapping::map_to_luts(*graph);
          line += " base mapped-aig ";
        } else {
          base = aig::to_network(*graph);
          line += " base direct-aig ";
        }
      } else {
        base = random_lut_network(rng, random_lut_options(rng, options.profile));
        line += " base lut ";
      }
      line += interface_summary(base) + " |";

      // 2. Serializer round trips.
      std::vector<OracleResult> roundtrips =
          check_roundtrips(base, iter_seed);
      if (graph) {
        std::vector<OracleResult> aiger =
            check_aiger_roundtrips(*graph, iter_seed);
        roundtrips.insert(roundtrips.end(),
                          std::make_move_iterator(aiger.begin()),
                          std::make_move_iterator(aiger.end()));
      }
      result.roundtrips += roundtrips.size();
      for (const OracleResult& oracle : roundtrips) {
        record(oracle, [&] {
          if (oracle.name == "rt-aag" || oracle.name == "rt-aig") {
            // AIG-level failure: dump the AIG itself; network-level
            // shrinking does not apply.
            if (!options.artifact_dir.empty()) {
              ReproInfo info;
              info.seed = options.seed;
              info.iteration = iter;
              info.oracle = oracle.name;
              info.detail = oracle.detail;
              result.artifacts.push_back(write_aag_repro(
                  options.artifact_dir,
                  "seed" + std::to_string(options.seed) + "_iter" +
                      std::to_string(iter) + "_" +
                      sanitize_stem(oracle.name),
                  info, *graph));
              counters.artifacts.inc();
            }
            return;
          }
          write_artifacts(oracle, base,
                          [&, name = oracle.name](const net::Network& cand) {
                            return roundtrip_fails(name, cand, iter_seed);
                          });
        });
      }

      // 3. Mutant pairs with known ground truth.
      PairOracleOptions pair_options;
      pair_options.seed = iter_seed;
      pair_options.all_arms = options.all_arms;
      pair_options.arm = arm;
      pair_options.certify = options.certify;
      pair_options.num_threads = options.num_threads;
      pair_options.inprocess_differential = options.inprocess_differential;
      pair_options.kernel_sweep = options.kernel_sweep;

      const auto check_mutant = [&](const Mutant& mutant,
                                    const char* tag) {
        line += std::string(" | ") + tag + "[" + mutant.description + "]";
        for (const OracleResult& oracle :
             check_pair(base, mutant, pair_options)) {
          record(oracle, [&] {
            // Re-express the pair disagreement as a single-network
            // property ("engine is wrong about miter-vs-0") so the
            // delta debugger can minimize it.
            const net::Network miter =
                sweep::make_miter(base, mutant.network).network;
            ShrinkPredicate predicate;
            if (oracle.name != "witness")
              predicate = [&, name = oracle.name](const net::Network& cand) {
                return oracle_disagrees(name, cand, iter_seed);
              };
            write_artifacts(oracle, miter, predicate);
          });
        }
      };

      Mutant equivalent = rewrite_equivalent(
          base, rng, 1 + static_cast<unsigned>(rng.below(3)));
      ++result.eq_pairs;
      check_mutant(equivalent, "eq");

      Mutant faulty = inject_fault(base, rng);
      ++result.neq_pairs;
      check_mutant(faulty, "neq");
    } catch (const std::exception& error) {
      // A throwing generator/harness step is itself a fuzz finding.
      line += std::string(" harness=FAIL(exception: ") + error.what() + ")";
      ++result.failures;
      counters.failures.inc();
    }

    result.verdict_log += line + "\n";
    if (options.echo != nullptr) {
      std::fputs((line + "\n").c_str(), options.echo);
      std::fflush(options.echo);
    }
  }
  return result;
}

std::vector<OracleResult> replay_network(const net::Network& network,
                                         std::uint64_t seed) {
  std::vector<OracleResult> results;
  std::vector<std::string> engines;
  for (const core::Strategy arm : core::kAllStrategies)
    engines.push_back("cec[" + std::string(core::strategy_name(arm)) + "]");
  engines.emplace_back("sat-miter");
  engines.emplace_back("bdd");
  for (const std::string& engine : engines) {
    OracleResult result;
    result.name = engine;
    result.pass = !oracle_disagrees(engine, network, seed);
    if (!result.pass)
      result.detail =
          "verdict disagrees with the trusted reference on miter-vs-const0";
    results.push_back(std::move(result));
  }
  for (OracleResult& roundtrip : check_roundtrips(network, seed))
    results.push_back(std::move(roundtrip));
  // Width-sweep leg: replay the network against its const-0 miter
  // reference under every available SIMD kernel and block width and
  // demand byte-identical CEC results. Committed repro artifacts that
  // stress counterexample resimulation (many disproven pairs per sweep)
  // regress here if staged witness lanes ever leak between batches or
  // the refinement order drifts with the lane width.
  {
    Mutant const0;
    const0.network = const0_reference(network);
    const0.equivalent = false;
    const0.witness.assign(network.num_pis(), false);
    const0.description = "miter-vs-const0 width sweep";
    PairOracleOptions sweep_options;
    sweep_options.seed = seed;
    sweep_options.kernel_sweep = true;
    // The artifact may genuinely be constant 0 (an EQ repro); probe the
    // ground truth with the trusted miter first.
    const0.equivalent = !miter_nonzero(network, seed);
    if (!const0.equivalent) {
      // Find a real witness by simulation so the ground-truth self-check
      // passes; fall back to skipping the leg if none surfaces quickly.
      bool found = false;
      for (std::uint64_t pattern = 0; pattern < 256 && !found; ++pattern) {
        std::vector<bool> inputs(network.num_pis());
        for (std::size_t i = 0; i < inputs.size(); ++i)
          inputs[i] = (util::splitmix64(pattern * 131 + i) & 1u) != 0;
        if (counterexample_valid(network, const0.network, inputs)) {
          const0.witness = std::move(inputs);
          found = true;
        }
      }
      if (!found) return results;
    }
    for (OracleResult& oracle : check_pair(network, const0, sweep_options))
      results.push_back(std::move(oracle));
  }
  return results;
}

}  // namespace simgen::fuzz

#include "fuzz/mutate.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/simulator.hpp"
#include "tt/isop.hpp"

namespace simgen::fuzz {

namespace {

using net::Network;
using net::NodeId;
using tt::TruthTable;

std::vector<NodeId> collect_luts(const Network& network) {
  std::vector<NodeId> luts;
  network.for_each_lut([&](NodeId id) { luts.push_back(id); });
  return luts;
}

/// Balanced OR of \p terms inside \p dst (chunks of up to 4 per level so
/// arbitrarily large covers never exceed the truth-table variable limit).
NodeId build_or_tree(Network& dst, std::vector<NodeId> terms) {
  if (terms.empty()) return dst.add_constant(false);
  while (terms.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i < terms.size(); i += 4) {
      const std::size_t n = std::min<std::size_t>(4, terms.size() - i);
      if (n == 1) {
        next.push_back(terms[i]);
        continue;
      }
      const std::span<const NodeId> group(terms.data() + i, n);
      next.push_back(dst.add_lut(
          group, TruthTable::or_gate(static_cast<unsigned>(n))));
    }
    terms = std::move(next);
  }
  return terms[0];
}

/// AND-of-literals node for one cube: fanins are the cube's literal
/// variables, polarities folded into the table.
NodeId build_cube_node(Network& dst, const tt::Cube& cube,
                       std::span<const NodeId> fanins, unsigned num_vars) {
  std::vector<NodeId> lits;
  std::vector<bool> polarity;
  for (unsigned v = 0; v < num_vars; ++v) {
    if (!cube.has_literal(v)) continue;
    lits.push_back(fanins[v]);
    polarity.push_back(cube.literal_value(v));
  }
  if (lits.empty()) return dst.add_constant(true);  // tautology cube
  const unsigned arity = static_cast<unsigned>(lits.size());
  TruthTable product = TruthTable::constant(arity, true);
  for (unsigned v = 0; v < arity; ++v) {
    const TruthTable proj = TruthTable::projection(arity, v);
    product &= polarity[v] ? proj : ~proj;
  }
  return dst.add_lut(lits, std::move(product));
}

/// Permutes \p function's variables: result(m) = function(m') where bit
/// perm[j] of m' is bit j of m — the right table for a node whose fanin j
/// is the original fanin perm[j].
TruthTable permute_table(const TruthTable& function,
                         std::span<const unsigned> perm) {
  TruthTable result(function.num_vars());
  for (std::uint64_t m = 0; m < function.num_bits(); ++m) {
    std::uint64_t original = 0;
    for (unsigned j = 0; j < function.num_vars(); ++j)
      original |= ((m >> j) & 1u) << perm[j];
    result.set_bit(m, function.get_bit(original));
  }
  return result;
}

using LutHook = std::function<NodeId(NodeId, std::span<const NodeId>,
                                     Network&)>;

/// ISOP re-expression: replace the victim with the two-level AND/OR
/// structure of its irredundant ON-set cover.
Network rewrite_isop(const Network& source, NodeId victim) {
  return copy_network(
      source, [&](NodeId id, std::span<const NodeId> fanins, Network& dst) {
        if (id != victim) return net::kNullNode;
        const TruthTable& function = source.node(id).function;
        if (function.is_const0()) return dst.add_constant(false);
        if (function.is_const1()) return dst.add_constant(true);
        const tt::Cover cover = tt::isop(function);
        std::vector<NodeId> terms;
        terms.reserve(cover.size());
        for (const tt::Cube& cube : cover.cubes)
          terms.push_back(
              build_cube_node(dst, cube, fanins, function.num_vars()));
        return build_or_tree(dst, std::move(terms));
      });
}

/// Shannon expansion of the victim around variable \p var:
/// f = mux(x_var, f|x=1, f|x=0), built as two cofactor LUTs and a mux3.
Network rewrite_shannon(const Network& source, NodeId victim, unsigned var) {
  return copy_network(
      source, [&](NodeId id, std::span<const NodeId> fanins, Network& dst) {
        if (id != victim) return net::kNullNode;
        const TruthTable& function = source.node(id).function;
        const NodeId n0 = dst.add_lut(fanins, function.cofactor0(var));
        const NodeId n1 = dst.add_lut(fanins, function.cofactor1(var));
        const NodeId mux_fanins[3] = {n0, n1, fanins[var]};
        return dst.add_lut(mux_fanins, TruthTable::mux3());
      });
}

/// Fanin permutation: shuffle the victim's fanin order and permute the
/// truth table to compensate. Functionally identical, structurally not
/// (the encoder, simulator, and hashers all see a different node).
Network rewrite_permute(const Network& source, NodeId victim,
                        util::Rng& rng) {
  const unsigned arity =
      static_cast<unsigned>(source.fanins(victim).size());
  std::vector<unsigned> perm(arity);
  for (unsigned i = 0; i < arity; ++i) perm[i] = i;
  for (unsigned i = arity - 1; i > 0; --i)
    std::swap(perm[i], perm[rng.below(i + 1)]);
  return copy_network(
      source, [&](NodeId id, std::span<const NodeId> fanins, Network& dst) {
        if (id != victim) return net::kNullNode;
        std::vector<NodeId> shuffled(arity);
        for (unsigned j = 0; j < arity; ++j) shuffled[j] = fanins[perm[j]];
        return dst.add_lut(shuffled,
                           permute_table(source.node(id).function, perm));
      });
}

/// Double inversion: splice NOT(NOT(victim)) after the victim. Readers see
/// a different driver that the sweeper must prove equivalent.
Network rewrite_double_not(const Network& source, NodeId victim) {
  return copy_network(
      source, [&](NodeId id, std::span<const NodeId> fanins, Network& dst) {
        if (id != victim) return net::kNullNode;
        const NodeId base =
            dst.add_lut(fanins, source.node(id).function);
        const NodeId inv_fanins[1] = {base};
        const NodeId inverted =
            dst.add_lut(inv_fanins, TruthTable::not_gate());
        const NodeId restore_fanins[1] = {inverted};
        return dst.add_lut(restore_fanins, TruthTable::not_gate());
      });
}

/// Fanout duplication: clone the victim and split its readers randomly
/// between the original and the clone — a genuine internal equivalence
/// pair the sweeper has to merge.
Network rewrite_duplicate(const Network& source, NodeId victim,
                          util::Rng& rng) {
  Network dst(source.name());
  std::vector<NodeId> map(source.num_nodes(), net::kNullNode);
  NodeId twin = net::kNullNode;
  const auto resolve = [&](NodeId fanin) {
    if (fanin == victim && twin != net::kNullNode && rng.flip()) return twin;
    return map[fanin];
  };
  source.for_each_node([&](NodeId id) {
    const net::Node& node = source.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi:
        map[id] = dst.add_pi(node.name);
        break;
      case net::NodeKind::kConstant:
        map[id] = dst.add_constant(node.constant_value);
        break;
      case net::NodeKind::kPo:
        map[id] = dst.add_po(resolve(node.fanins[0]), node.name);
        break;
      case net::NodeKind::kLut: {
        std::vector<NodeId> fanins;
        fanins.reserve(node.fanins.size());
        for (NodeId fanin : node.fanins) fanins.push_back(resolve(fanin));
        map[id] = dst.add_lut(fanins, node.function, node.name);
        if (id == victim)
          twin = dst.add_lut(fanins, node.function);
        break;
      }
    }
  });
  return dst;
}

/// Builds the mutant's network by flipping bit \p minterm of \p victim's
/// truth table.
Network flip_table_bit(const Network& source, NodeId victim,
                       unsigned minterm) {
  return copy_network(
      source, [&](NodeId id, std::span<const NodeId> fanins, Network& dst) {
        if (id != victim) return net::kNullNode;
        TruthTable function = source.node(id).function;
        function.set_bit(minterm, !function.get_bit(minterm));
        return dst.add_lut(fanins, std::move(function));
      });
}

/// Simulates \p network on the single input vector \p witness and reports
/// the PO value bits (bit 0 of each PO word).
std::vector<bool> po_values(const Network& network,
                            const std::vector<bool>& witness) {
  sim::Simulator simulator(network);
  std::vector<sim::PatternWord> words(network.num_pis());
  for (std::size_t i = 0; i < words.size(); ++i)
    words[i] = witness[i] ? 1u : 0u;
  simulator.simulate_word(words);
  std::vector<bool> values;
  values.reserve(network.num_pos());
  for (const NodeId po : network.pos())
    values.push_back(simulator.value_bit(po, 0));
  return values;
}

}  // namespace

Network copy_network(const Network& source, const LutHook& lut_hook) {
  Network dst(source.name());
  std::vector<NodeId> map(source.num_nodes(), net::kNullNode);
  source.for_each_node([&](NodeId id) {
    const net::Node& node = source.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi:
        map[id] = dst.add_pi(node.name);
        break;
      case net::NodeKind::kConstant:
        map[id] = dst.add_constant(node.constant_value);
        break;
      case net::NodeKind::kPo:
        map[id] = dst.add_po(map[node.fanins[0]], node.name);
        break;
      case net::NodeKind::kLut: {
        std::vector<NodeId> fanins;
        fanins.reserve(node.fanins.size());
        for (NodeId fanin : node.fanins) fanins.push_back(map[fanin]);
        NodeId replacement = net::kNullNode;
        if (lut_hook) replacement = lut_hook(id, fanins, dst);
        map[id] = replacement != net::kNullNode
                      ? replacement
                      : dst.add_lut(fanins, node.function, node.name);
        break;
      }
    }
  });
  return dst;
}

Mutant rewrite_equivalent(const Network& base, util::Rng& rng,
                          unsigned count) {
  Mutant mutant;
  mutant.network = copy_network(base, nullptr);
  mutant.equivalent = true;
  for (unsigned step = 0; step < count; ++step) {
    const std::vector<NodeId> luts = collect_luts(mutant.network);
    if (luts.empty()) break;  // nothing to rewrite; plain copy is still EQ
    const NodeId victim = luts[rng.below(luts.size())];
    const TruthTable& function = mutant.network.node(victim).function;
    if (!mutant.description.empty()) mutant.description += '+';
    switch (rng.below(5)) {
      case 0:
        mutant.network = rewrite_isop(mutant.network, victim);
        mutant.description += "isop(n" + std::to_string(victim) + ")";
        break;
      case 1:
        if (function.support_mask() != 0) {
          unsigned var = 0;
          while (!function.depends_on(var)) ++var;
          mutant.network = rewrite_shannon(mutant.network, victim, var);
          mutant.description += "shannon(n" + std::to_string(victim) + ")";
        } else {
          mutant.network = rewrite_double_not(mutant.network, victim);
          mutant.description += "notnot(n" + std::to_string(victim) + ")";
        }
        break;
      case 2:
        if (function.num_vars() >= 2) {
          mutant.network = rewrite_permute(mutant.network, victim, rng);
          mutant.description += "permute(n" + std::to_string(victim) + ")";
        } else {
          mutant.network = rewrite_isop(mutant.network, victim);
          mutant.description += "isop(n" + std::to_string(victim) + ")";
        }
        break;
      case 3:
        mutant.network = rewrite_double_not(mutant.network, victim);
        mutant.description += "notnot(n" + std::to_string(victim) + ")";
        break;
      default:
        mutant.network = rewrite_duplicate(mutant.network, victim, rng);
        mutant.description += "dup(n" + std::to_string(victim) + ")";
        break;
    }
  }
  if (mutant.description.empty()) mutant.description = "copy";
  return mutant;
}

Mutant inject_fault(const Network& base, util::Rng& rng) {
  const std::vector<NodeId> luts = collect_luts(base);
  const std::size_t num_pis = base.num_pis();

  const auto draw_witness = [&]() {
    std::vector<bool> witness(num_pis);
    for (std::size_t i = 0; i < num_pis; ++i) witness[i] = rng.flip();
    return witness;
  };

  // Preferred: flip a random LUT's table bit at the minterm its fanins
  // take under a random vector. The flip is guaranteed to change that
  // LUT's output on the vector; whether it reaches a PO depends on
  // observability, so verify by simulation and retry a few times. This
  // finds deep faults (the hardest case for the engines) most of the time.
  if (!luts.empty() && num_pis > 0) {
    for (unsigned attempt = 0; attempt < 16; ++attempt) {
      const NodeId victim = luts[rng.below(luts.size())];
      const std::vector<bool> witness = draw_witness();
      sim::Simulator probe(base);
      std::vector<sim::PatternWord> words(num_pis);
      for (std::size_t i = 0; i < num_pis; ++i)
        words[i] = witness[i] ? 1u : 0u;
      probe.simulate_word(words);
      unsigned minterm = 0;
      const auto fanins = base.fanins(victim);
      for (std::size_t i = 0; i < fanins.size(); ++i)
        minterm |=
            static_cast<unsigned>(probe.value(fanins[i]) & 1u) << i;
      Network mutated = flip_table_bit(base, victim, minterm);
      if (po_values(base, witness) != po_values(mutated, witness)) {
        Mutant mutant;
        mutant.network = std::move(mutated);
        mutant.equivalent = false;
        mutant.witness = witness;
        mutant.description = "fault(n" + std::to_string(victim) + "@" +
                             std::to_string(minterm) + ")";
        return mutant;
      }
    }
  }

  // Guaranteed fallback 1: flip the observable bit of a PO driver — the
  // minterm its fanins take under the chosen vector is a PO bit by
  // construction, so the witness always works.
  if (num_pis > 0) {
    for (const NodeId po : base.pos()) {
      const NodeId driver = base.fanins(po)[0];
      if (!base.is_lut(driver)) continue;
      const std::vector<bool> witness = draw_witness();
      sim::Simulator probe(base);
      std::vector<sim::PatternWord> words(num_pis);
      for (std::size_t i = 0; i < num_pis; ++i)
        words[i] = witness[i] ? 1u : 0u;
      probe.simulate_word(words);
      unsigned minterm = 0;
      const auto fanins = base.fanins(driver);
      for (std::size_t i = 0; i < fanins.size(); ++i)
        minterm |=
            static_cast<unsigned>(probe.value(fanins[i]) & 1u) << i;
      Mutant mutant;
      mutant.network = flip_table_bit(base, driver, minterm);
      mutant.equivalent = false;
      mutant.witness = witness;
      mutant.description = "po-fault(n" + std::to_string(driver) + "@" +
                           std::to_string(minterm) + ")";
      return mutant;
    }
  }

  // Guaranteed fallback 2 (degenerate networks whose POs read PIs or
  // constants directly): invert one PO's driver. NOT differs everywhere,
  // so any vector is a witness.
  if (base.num_pos() == 0)
    throw std::invalid_argument("inject_fault: network has no outputs");
  const std::size_t po_index = rng.below(base.num_pos());
  Network dst(base.name());
  std::vector<NodeId> map(base.num_nodes(), net::kNullNode);
  std::size_t seen_pos = 0;
  base.for_each_node([&](NodeId id) {
    const net::Node& node = base.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi:
        map[id] = dst.add_pi(node.name);
        break;
      case net::NodeKind::kConstant:
        map[id] = dst.add_constant(node.constant_value);
        break;
      case net::NodeKind::kLut: {
        std::vector<NodeId> fanins;
        for (NodeId fanin : node.fanins) fanins.push_back(map[fanin]);
        map[id] = dst.add_lut(fanins, node.function, node.name);
        break;
      }
      case net::NodeKind::kPo: {
        NodeId driver = map[node.fanins[0]];
        if (seen_pos++ == po_index) {
          if (dst.is_constant(driver)) {
            driver = dst.add_constant(!dst.node(driver).constant_value);
          } else {
            const NodeId inv_fanins[1] = {driver};
            driver = dst.add_lut(inv_fanins, TruthTable::not_gate());
          }
        }
        map[id] = dst.add_po(driver, node.name);
        break;
      }
    }
  });
  Mutant mutant;
  mutant.network = std::move(dst);
  mutant.equivalent = false;
  mutant.witness = std::vector<bool>(num_pis, false);
  mutant.description = "po-invert(po" + std::to_string(po_index) + ")";
  return mutant;
}

}  // namespace simgen::fuzz

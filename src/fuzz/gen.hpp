/// \file gen.hpp
/// \brief Random circuit generation for the differential fuzzing harness.
///
/// Two generator families feed the fuzz campaign:
///
///  1. Random AIG specs: seeded benchgen::CircuitSpec instances with
///     randomized interface sizes, gate budgets, styles, and injected
///     redundancy/near-miss rates — the same machinery the benchmark
///     suite uses, but with every knob drawn from a controllable range so
///     the campaign covers the whole parameter space instead of the
///     curated suite points.
///
///  2. Direct random K-LUT networks: arbitrary truth tables over
///     recency-biased fanin draws. These reach shapes LUT mapping never
///     produces — LUTs that ignore fanins, constant functions, duplicate
///     fanin references, deep single-fanout chains — exactly the inputs
///     that break parsers, encoders, and simulators in practice.
///
/// Everything here is deterministic given the Rng state: equal seeds give
/// equal circuits, which is what makes fuzz failures replayable.
#pragma once

#include <cstdint>

#include "benchgen/generator.hpp"
#include "network/network.hpp"
#include "util/rng.hpp"

namespace simgen::fuzz {

/// Knob ranges for one generated circuit. The campaign draws every
/// parameter uniformly from [min, max].
struct GenProfile {
  unsigned min_pis = 4;
  unsigned max_pis = 16;
  unsigned min_pos = 1;
  unsigned max_pos = 6;
  unsigned min_gates = 24;
  unsigned max_gates = 140;
  /// Direct LUT-network generation: fanin count per LUT in [1, max_fanin].
  unsigned max_lut_fanin = 5;
  /// Upper bounds for benchgen's injected redundancy / near-miss decoys.
  double max_redundancy = 0.10;
  double max_near_miss = 0.08;
};

/// Draws a random benchmark spec (AIG path) from \p profile.
[[nodiscard]] benchgen::CircuitSpec random_spec(util::Rng& rng,
                                                const GenProfile& profile);

/// Options for one direct random K-LUT network.
struct LutGenOptions {
  unsigned num_pis = 8;
  unsigned num_pos = 4;
  unsigned num_luts = 60;
  unsigned max_fanin = 5;
  /// Probability that a fanin draw prefers a recently created node; high
  /// values build depth, low values build width.
  double recent_bias = 0.7;
  /// Probability that a LUT's function is a completely random table (the
  /// remainder uses common gate functions, which keeps some realism).
  double random_table_rate = 0.5;
};

/// Draws randomized LutGenOptions from \p profile.
[[nodiscard]] LutGenOptions random_lut_options(util::Rng& rng,
                                               const GenProfile& profile);

/// Builds a random K-LUT network directly at the network level. The
/// result passes the structural lint error checks by construction
/// (dangling LUTs and duplicate fanins — legal warnings — do occur, on
/// purpose).
[[nodiscard]] net::Network random_lut_network(util::Rng& rng,
                                              const LutGenOptions& options);

}  // namespace simgen::fuzz

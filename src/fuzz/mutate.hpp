/// \file mutate.hpp
/// \brief Mutation engine: equivalence-preserving rewrites and
/// fault-injecting mutants with known counterexample witnesses.
///
/// The differential harness needs circuit *pairs* with a known expected
/// verdict. Equivalence-preserving rewrites produce structurally different
/// but functionally identical copies (strash-neutral restructures the
/// sweeper must prove, exactly like real synthesis redundancy):
///
///  * ISOP re-expression — a LUT is replaced by the two-level AND/OR
///    structure of its irredundant cover;
///  * Shannon expansion — a LUT becomes mux(x, f|x=1, f|x=0) over one of
///    its support variables;
///  * fanin permutation — fanins are shuffled and the truth table's
///    variables permuted to match;
///  * double inversion — two chained NOT LUTs are spliced after a node;
///  * fanout duplication — a multi-fanout LUT is cloned and its readers
///    split between the copies (a genuine internal equivalence pair).
///
/// Fault injection flips one *observable* truth-table bit: the minterm a
/// LUT's fanins take under a concrete simulated input vector, which makes
/// that vector a guaranteed counterexample witness the oracles can check
/// engines against.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "network/network.hpp"
#include "util/rng.hpp"

namespace simgen::fuzz {

/// One derived circuit plus ground truth about its relation to the base.
struct Mutant {
  net::Network network;
  bool equivalent = true;
  /// For inequivalent mutants: a PI assignment on which some PO differs
  /// from the base network (index i = value of PI i).
  std::vector<bool> witness;
  /// Human-readable provenance, e.g. "isop-restructure(n17)".
  std::string description;
};

/// Rebuilds \p source node by node. For each internal LUT, \p lut_hook may
/// return the replacement node id built inside \p dst (given the already
/// mapped fanins), or net::kNullNode to copy the LUT verbatim. PIs,
/// constants, and POs are always copied with their names.
net::Network copy_network(
    const net::Network& source,
    const std::function<net::NodeId(net::NodeId, std::span<const net::NodeId>,
                                    net::Network&)>& lut_hook);

/// Applies \p count random equivalence-preserving rewrites in sequence.
/// The result is functionally identical to \p base (expected verdict: EQ).
[[nodiscard]] Mutant rewrite_equivalent(const net::Network& base,
                                        util::Rng& rng, unsigned count = 1);

/// Builds an inequivalent mutant by flipping one observable truth-table
/// bit, together with a witness input vector on which the pair differs
/// (verified by simulation before returning; expected verdict: NEQ).
[[nodiscard]] Mutant inject_fault(const net::Network& base, util::Rng& rng);

}  // namespace simgen::fuzz

/// \file artifact.hpp
/// \brief Self-contained repro artifacts for fuzz failures.
///
/// Every mismatch the campaign finds is written out as a file a human (or
/// CI) can replay without the fuzzer's RNG state: a `.blif` whose comment
/// header records the seed, iteration, failing oracle, failure detail,
/// and the exact replay command line. The BLIF parser strips `#` comments,
/// so the artifact is directly loadable by every tool in the repo; AIGER
/// artifacts carry the same header in the format's trailing comment
/// section.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "aig/aig.hpp"
#include "network/network.hpp"

namespace simgen::fuzz {

/// Provenance recorded in every artifact header.
struct ReproInfo {
  std::uint64_t seed = 0;
  std::uint64_t iteration = 0;
  std::string oracle;   ///< OracleResult::name that failed.
  std::string detail;   ///< OracleResult::detail of the failure.
  /// Node count of the unshrunk circuit; 0 when this artifact *is* the
  /// unshrunk circuit.
  std::size_t shrunk_from = 0;
};

/// Filesystem-safe stem: non-alphanumerics collapse to '_'.
[[nodiscard]] std::string sanitize_stem(std::string_view text);

/// Writes `<dir>/<stem>.blif` (creating \p dir if needed) with a comment
/// header followed by the network; returns the path written.
std::string write_blif_repro(const std::string& dir, const std::string& stem,
                             const ReproInfo& info,
                             const net::Network& network);

/// Writes `<dir>/<stem>.aag` with the header in the AIGER comment
/// section; returns the path written.
std::string write_aag_repro(const std::string& dir, const std::string& stem,
                            const ReproInfo& info, const aig::Aig& graph);

}  // namespace simgen::fuzz

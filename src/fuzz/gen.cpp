#include "fuzz/gen.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace simgen::fuzz {

namespace {

unsigned draw_range(util::Rng& rng, unsigned lo, unsigned hi) {
  if (hi <= lo) return lo;
  return static_cast<unsigned>(rng.in_range(lo, hi));
}

/// Random truth table over \p num_vars inputs: fully random words, tail
/// bits masked by from_words.
tt::TruthTable random_table(util::Rng& rng, unsigned num_vars) {
  const std::size_t words = num_vars <= 6 ? 1 : (1u << (num_vars - 6));
  std::vector<std::uint64_t> data(words);
  for (auto& word : data) word = rng();
  return tt::TruthTable::from_words(num_vars, data);
}

/// A "realistic" gate function of \p arity inputs.
tt::TruthTable gate_table(util::Rng& rng, unsigned arity) {
  switch (rng.below(6)) {
    case 0: return tt::TruthTable::and_gate(arity);
    case 1: return tt::TruthTable::or_gate(arity);
    case 2: return tt::TruthTable::nand_gate(arity);
    case 3: return tt::TruthTable::nor_gate(arity);
    case 4: return tt::TruthTable::xor_gate(arity);
    default: return ~tt::TruthTable::xor_gate(arity);
  }
}

}  // namespace

benchgen::CircuitSpec random_spec(util::Rng& rng, const GenProfile& profile) {
  benchgen::CircuitSpec spec;
  spec.num_pis = draw_range(rng, profile.min_pis, profile.max_pis);
  spec.num_pos = draw_range(rng, profile.min_pos, profile.max_pos);
  spec.num_gates = draw_range(rng, profile.min_gates, profile.max_gates);
  switch (rng.below(3)) {
    case 0: spec.style = benchgen::CircuitStyle::kControl; break;
    case 1: spec.style = benchgen::CircuitStyle::kArithmetic; break;
    default: spec.style = benchgen::CircuitStyle::kRandomLogic; break;
  }
  spec.redundancy = rng.uniform01() * profile.max_redundancy;
  spec.near_miss = rng.uniform01() * profile.max_near_miss;
  spec.seed = rng();
  if (spec.seed == 0) spec.seed = 1;  // 0 means "derive from name".
  spec.name = "fuzz";
  return spec;
}

LutGenOptions random_lut_options(util::Rng& rng, const GenProfile& profile) {
  LutGenOptions options;
  options.num_pis = draw_range(rng, profile.min_pis, profile.max_pis);
  options.num_pos = draw_range(rng, profile.min_pos, profile.max_pos);
  // LUT counts track the gate budget loosely (a LUT covers a few gates).
  options.num_luts = std::max(4u, draw_range(rng, profile.min_gates,
                                             profile.max_gates) /
                                      2);
  options.max_fanin =
      std::min<unsigned>(profile.max_lut_fanin, 1 + rng.below(6));
  options.recent_bias = 0.3 + 0.6 * rng.uniform01();
  options.random_table_rate = rng.uniform01();
  return options;
}

net::Network random_lut_network(util::Rng& rng, const LutGenOptions& options) {
  net::Network network("fuzz_lut");
  // Pool of usable driver nodes (PIs, constants, LUTs), in creation order
  // so recency bias works like the AIG generator's operand pool.
  std::vector<net::NodeId> pool;
  pool.reserve(options.num_pis + options.num_luts + 2);
  for (unsigned i = 0; i < options.num_pis; ++i)
    pool.push_back(network.add_pi("pi" + std::to_string(i)));
  // Constants occasionally feed LUTs; that exercises the constant-driver
  // paths of the writers, encoders, and the mapper-facing code.
  if (rng.chance(0.25)) pool.push_back(network.add_constant(rng.flip()));

  const auto draw = [&]() -> net::NodeId {
    if (pool.size() > 12 && rng.chance(options.recent_bias))
      return pool[pool.size() - 1 - rng.below(12)];
    return pool[rng.below(pool.size())];
  };

  for (unsigned g = 0; g < options.num_luts; ++g) {
    const unsigned arity =
        1 + static_cast<unsigned>(rng.below(options.max_fanin));
    std::vector<net::NodeId> fanins;
    fanins.reserve(arity);
    for (unsigned i = 0; i < arity; ++i) fanins.push_back(draw());
    tt::TruthTable function = rng.chance(options.random_table_rate)
                                  ? random_table(rng, arity)
                                  : gate_table(rng, arity);
    pool.push_back(network.add_lut(fanins, std::move(function)));
  }

  // POs: prefer recent LUTs so most of the circuit is observable, but any
  // pool node (including a PI or constant) is a legal driver.
  for (unsigned i = 0; i < options.num_pos; ++i)
    network.add_po(draw(), "po" + std::to_string(i));
  return network;
}

}  // namespace simgen::fuzz

#include "fuzz/artifact.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "io/aiger.hpp"
#include "io/blif.hpp"

namespace simgen::fuzz {

namespace {

/// The human-facing header lines, without comment markers.
std::string header_lines(const ReproInfo& info, const std::string& file) {
  std::string text;
  text += "simgen_fuzz repro artifact\n";
  text += "seed: " + std::to_string(info.seed) + "\n";
  text += "iteration: " + std::to_string(info.iteration) + "\n";
  text += "oracle: " + info.oracle + "\n";
  if (!info.detail.empty()) text += "detail: " + info.detail + "\n";
  if (info.shrunk_from != 0)
    text += "shrunk from " + std::to_string(info.shrunk_from) + " nodes\n";
  text += "replay: simgen_fuzz --replay " + file + "\n";
  return text;
}

std::string prefix_lines(const std::string& lines, const char* marker) {
  std::string out;
  std::size_t start = 0;
  while (start < lines.size()) {
    std::size_t end = lines.find('\n', start);
    if (end == std::string::npos) end = lines.size();
    out += marker;
    out.append(lines, start, end - start);
    out += '\n';
    start = end + 1;
  }
  return out;
}

std::string write_file(const std::string& dir, const std::string& file,
                       const std::string& content) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + file;
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write repro artifact: " + path);
  out << content;
  if (!out.flush())
    throw std::runtime_error("write failed for repro artifact: " + path);
  return path;
}

}  // namespace

std::string sanitize_stem(std::string_view text) {
  std::string stem;
  stem.reserve(text.size());
  for (const char c : text)
    stem += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  while (!stem.empty() && stem.back() == '_') stem.pop_back();
  return stem.empty() ? std::string("repro") : stem;
}

std::string write_blif_repro(const std::string& dir, const std::string& stem,
                             const ReproInfo& info,
                             const net::Network& network) {
  const std::string file = stem + ".blif";
  const std::string content = prefix_lines(header_lines(info, file), "# ") +
                              io::write_blif_string(network);
  return write_file(dir, file, content);
}

std::string write_aag_repro(const std::string& dir, const std::string& stem,
                            const ReproInfo& info, const aig::Aig& graph) {
  const std::string file = stem + ".aag";
  std::string content = io::write_aiger_string(graph, /*binary=*/false);
  // AIGER carries free-form comments after a line holding just "c".
  if (content.empty() || content.back() != '\n') content += '\n';
  content += "c\n" + header_lines(info, file);
  return write_file(dir, file, content);
}

}  // namespace simgen::fuzz

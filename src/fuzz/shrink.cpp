#include "fuzz/shrink.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fuzz/mutate.hpp"

namespace simgen::fuzz {

namespace {

using net::Network;
using net::NodeId;
using tt::TruthTable;

/// Removes variable \p var from \p table (which must not depend on it):
/// bit m of the result is the table bit with a 0 inserted at position var.
TruthTable remove_var(const TruthTable& table, unsigned var) {
  TruthTable result(table.num_vars() - 1);
  for (std::uint64_t m = 0; m < result.num_bits(); ++m) {
    const std::uint64_t low = m & ((1ull << var) - 1);
    const std::uint64_t high = (m >> var) << (var + 1);
    result.set_bit(m, table.get_bit(high | low));
  }
  return result;
}

std::vector<std::size_t> all_po_indices(const Network& network) {
  std::vector<std::size_t> indices(network.num_pos());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return indices;
}

/// Replaces LUT \p victim by a constant, then drops the dead cone.
Network replace_by_constant(const Network& source, NodeId victim,
                            bool value) {
  Network replaced = copy_network(
      source, [&](NodeId id, std::span<const NodeId>, Network& dst) {
        return id == victim ? dst.add_constant(value) : net::kNullNode;
      });
  return extract_cone(replaced, all_po_indices(replaced));
}

/// Replaces LUT \p victim by its \p fanin_index-th fanin.
Network replace_by_fanin(const Network& source, NodeId victim,
                         std::size_t fanin_index) {
  Network replaced = copy_network(
      source,
      [&](NodeId id, std::span<const NodeId> fanins, Network& dst) {
        (void)dst;
        return id == victim ? fanins[fanin_index] : net::kNullNode;
      });
  return extract_cone(replaced, all_po_indices(replaced));
}

/// Semantics-preserving cleanup: every LUT loses the fanins outside its
/// functional support (the truth table shrinks with them); LUTs with
/// empty support become constants.
Network prune_supports(const Network& source) {
  Network pruned = copy_network(
      source,
      [&](NodeId id, std::span<const NodeId> fanins, Network& dst) {
        const TruthTable& function = source.node(id).function;
        const unsigned arity = function.num_vars();
        const std::uint32_t support = function.support_mask();
        if (arity == 0) return dst.add_constant(function.get_bit(0));
        if (support == (arity >= 32 ? ~0u : (1u << arity) - 1))
          return net::kNullNode;  // full support: keep verbatim
        if (support == 0) return dst.add_constant(function.get_bit(0));
        TruthTable reduced = function;
        std::vector<NodeId> kept;
        kept.reserve(arity);
        for (unsigned v = 0; v < arity; ++v)
          if ((support >> v) & 1u) kept.push_back(fanins[v]);
        for (unsigned v = arity; v-- > 0;)
          if (((support >> v) & 1u) == 0) reduced = remove_var(reduced, v);
        return dst.add_lut(kept, std::move(reduced));
      });
  return extract_cone(pruned, all_po_indices(pruned));
}

}  // namespace

Network extract_cone(const Network& network,
                     std::span<const std::size_t> po_indices) {
  std::vector<bool> keep(network.num_nodes(), false);
  std::vector<NodeId> stack;
  for (const std::size_t index : po_indices) {
    const NodeId po = network.pos()[index];
    if (!keep[po]) {
      keep[po] = true;
      stack.push_back(po);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const NodeId fanin : network.fanins(id)) {
      if (keep[fanin]) continue;
      keep[fanin] = true;
      stack.push_back(fanin);
    }
  }

  Network cone(network.name());
  std::vector<NodeId> map(network.num_nodes(), net::kNullNode);
  network.for_each_node([&](NodeId id) {
    if (!keep[id]) return;
    const net::Node& node = network.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi:
        map[id] = cone.add_pi(node.name);
        break;
      case net::NodeKind::kConstant:
        map[id] = cone.add_constant(node.constant_value);
        break;
      case net::NodeKind::kPo:
        map[id] = cone.add_po(map[node.fanins[0]], node.name);
        break;
      case net::NodeKind::kLut: {
        std::vector<NodeId> fanins;
        fanins.reserve(node.fanins.size());
        for (const NodeId fanin : node.fanins) fanins.push_back(map[fanin]);
        map[id] = cone.add_lut(fanins, node.function, node.name);
        break;
      }
    }
  });
  return cone;
}

ShrinkResult shrink_network(const Network& failing,
                            const ShrinkPredicate& still_fails,
                            const ShrinkOptions& options) {
  ShrinkResult result;
  const auto check = [&](const Network& candidate) {
    if (result.predicate_calls >= options.max_predicate_calls) return false;
    ++result.predicate_calls;
    return still_fails(candidate);
  };

  if (!check(failing))
    throw std::invalid_argument(
        "shrink_network: predicate does not hold on the input");
  result.network = copy_network(failing, nullptr);

  // Step 0: drop anything outside the PO cones — free if the predicate
  // survives, which it almost always does.
  {
    Network cleaned = extract_cone(result.network,
                                   all_po_indices(result.network));
    if (cleaned.num_nodes() < result.network.num_nodes() && check(cleaned)) {
      result.network = std::move(cleaned);
      ++result.reductions;
    }
  }

  bool improved = true;
  while (improved && result.rounds < options.max_rounds) {
    ++result.rounds;
    improved = false;

    // PO subsetting: halves first (big bites), then singles.
    bool po_retry = true;
    while (po_retry && result.network.num_pos() > 1) {
      po_retry = false;
      const std::size_t n = result.network.num_pos();
      std::vector<std::vector<std::size_t>> subsets;
      std::vector<std::size_t> first, second;
      for (std::size_t i = 0; i < n; ++i)
        (i < n / 2 ? first : second).push_back(i);
      if (!first.empty() && first.size() < n) subsets.push_back(first);
      if (!second.empty() && second.size() < n) subsets.push_back(second);
      for (std::size_t i = 0; i < n; ++i)
        subsets.push_back({i});
      for (const auto& subset : subsets) {
        Network candidate = extract_cone(result.network, subset);
        if (candidate.num_nodes() < result.network.num_nodes() &&
            check(candidate)) {
          result.network = std::move(candidate);
          ++result.reductions;
          improved = po_retry = true;
          break;
        }
      }
    }

    // Node replacements, outputs-first (reverse creation order reaches
    // the roots of big cones early). Restart the scan after every
    // acceptance — node ids change with the rebuild.
    bool node_retry = true;
    while (node_retry) {
      node_retry = false;
      std::vector<NodeId> luts;
      result.network.for_each_lut([&](NodeId id) { luts.push_back(id); });
      std::reverse(luts.begin(), luts.end());
      for (const NodeId victim : luts) {
        const std::size_t arity = result.network.fanins(victim).size();
        std::vector<Network> candidates;
        candidates.push_back(replace_by_constant(result.network, victim, false));
        candidates.push_back(replace_by_constant(result.network, victim, true));
        for (std::size_t i = 0; i < arity; ++i)
          candidates.push_back(replace_by_fanin(result.network, victim, i));
        for (Network& candidate : candidates) {
          if (candidate.num_nodes() < result.network.num_nodes() &&
              check(candidate)) {
            result.network = std::move(candidate);
            ++result.reductions;
            improved = node_retry = true;
            break;
          }
        }
        if (node_retry) break;
        if (result.predicate_calls >= options.max_predicate_calls) break;
      }
      if (result.predicate_calls >= options.max_predicate_calls) break;
    }

    // Support pruning: semantics-preserving, but still gated on the
    // predicate (the failure might be structural, not functional).
    {
      Network candidate = prune_supports(result.network);
      if (candidate.num_nodes() < result.network.num_nodes() &&
          check(candidate)) {
        result.network = std::move(candidate);
        ++result.reductions;
        improved = true;
      }
    }

    if (result.predicate_calls >= options.max_predicate_calls) break;
  }
  return result;
}

}  // namespace simgen::fuzz

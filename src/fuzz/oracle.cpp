#include "fuzz/oracle.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "aig/aig_to_network.hpp"
#include "bdd/network_bdd.hpp"
#include "check/lint.hpp"
#include "io/aiger.hpp"
#include "io/bench.hpp"
#include "io/blif.hpp"
#include "sim/pattern_block.hpp"
#include "sim/simulator.hpp"
#include "sweep/cec.hpp"

namespace simgen::fuzz {

namespace {

using net::Network;

/// Full sweeping options for one strategy arm.
sweep::CecOptions arm_options(core::Strategy arm, std::uint64_t seed,
                              bool certify) {
  sweep::CecOptions options;
  options.seed = seed;
  options.guided_strategy = arm;
  options.certify = certify;
  return options;
}

/// Plain SAT miter: no simulation prepass, no guidance, no internal
/// sweeping — every output goes to the solver monolithically. The
/// baseline the sweeping flow must agree with.
sweep::CecOptions sat_miter_options(std::uint64_t seed, bool certify) {
  sweep::CecOptions options;
  options.seed = seed;
  options.random_rounds = 0;
  options.use_guided_simulation = false;
  options.sweep_internal_nodes = false;
  options.certify = certify;
  return options;
}

/// Cheap CEC used to compare a parsed round-trip result with its source.
sweep::CecOptions roundtrip_cec_options(std::uint64_t seed) {
  sweep::CecOptions options;
  options.seed = seed;
  options.random_rounds = 4;
  options.use_guided_simulation = false;
  options.sweep_internal_nodes = false;
  return options;
}

/// Three-way rendering of a CEC verdict for oracle failure details:
/// undecided must not masquerade as NEQ or it misdirects triage.
const char* verdict_str(const sweep::CecResult& verdict) {
  if (verdict.undecided) return "UNDECIDED";
  return verdict.equivalent ? "EQ" : "NEQ";
}

/// Runs one sweeping-engine oracle on the pair and scores it against the
/// expected verdict. With \p cross_check_threads > 1 the same check is
/// rerun on the parallel engine and the two verdicts must agree — the
/// differential leg that pins the parallel sweeper to the sequential one.
/// With \p cross_check_inprocess the check is also rerun with solver
/// inprocessing disabled; the passes are equivalence-preserving, so any
/// verdict drift (or a counterexample that stops simulating to a
/// difference) is an inprocessing soundness bug. With
/// \p cross_check_kernels the check is rerun under every available SIMD
/// kernel at block widths 1 and 8, and the rerun CecResult must be
/// byte-identical to the default run's.
OracleResult run_cec_oracle(std::string name, const Network& base,
                            const Mutant& mutant,
                            const sweep::CecOptions& options,
                            unsigned cross_check_threads = 1,
                            bool cross_check_inprocess = false,
                            bool cross_check_kernels = false) {
  OracleResult result;
  result.name = std::move(name);
  try {
    const sweep::CecResult verdict =
        sweep::check_equivalence(base, mutant.network, options);
    if (verdict.equivalent != mutant.equivalent) {
      result.pass = false;
      result.detail = std::string("verdict ") + verdict_str(verdict) +
                      ", expected " + (mutant.equivalent ? "EQ" : "NEQ") +
                      " [" + mutant.description + "]";
      return result;
    }
    if (!verdict.equivalent &&
        !counterexample_valid(base, mutant.network, verdict.counterexample)) {
      result.pass = false;
      result.detail = "counterexample does not simulate to a difference";
      return result;
    }
    if (cross_check_threads > 1) {
      sweep::CecOptions parallel_options = options;
      parallel_options.num_threads = cross_check_threads;
      const sweep::CecResult parallel_verdict =
          sweep::check_equivalence(base, mutant.network, parallel_options);
      if (parallel_verdict.equivalent != verdict.equivalent ||
          parallel_verdict.undecided != verdict.undecided) {
        result.pass = false;
        result.detail = std::string("parallel engine verdict ") +
                        verdict_str(parallel_verdict) +
                        " disagrees with single-thread " + verdict_str(verdict) +
                        " [" + mutant.description + "]";
        return result;
      }
      if (!parallel_verdict.equivalent &&
          !counterexample_valid(base, mutant.network,
                                parallel_verdict.counterexample)) {
        result.pass = false;
        result.detail =
            "parallel engine counterexample does not simulate to a difference";
        return result;
      }
    }
    if (cross_check_inprocess) {
      sweep::CecOptions plain_options = options;
      plain_options.sweep.inprocess = !options.sweep.inprocess;
      const sweep::CecResult plain_verdict =
          sweep::check_equivalence(base, mutant.network, plain_options);
      if (plain_verdict.equivalent != verdict.equivalent ||
          plain_verdict.undecided != verdict.undecided) {
        result.pass = false;
        result.detail = std::string("inprocess=") +
                        (plain_options.sweep.inprocess ? "on" : "off") +
                        " verdict " + verdict_str(plain_verdict) +
                        " disagrees with inprocess=" +
                        (options.sweep.inprocess ? "on" : "off") + " " +
                        verdict_str(verdict) + " [" + mutant.description + "]";
        return result;
      }
      if (!plain_verdict.equivalent &&
          !counterexample_valid(base, mutant.network,
                                plain_verdict.counterexample)) {
        result.pass = false;
        result.detail = std::string("inprocess=") +
                        (plain_options.sweep.inprocess ? "on" : "off") +
                        " counterexample does not simulate to a difference";
        return result;
      }
    }
    if (cross_check_kernels) {
      // Width-sweep oracle: the whole CecResult must be a function of the
      // seed alone, never of the kernel ISA or the block width, so every
      // rerun is compared byte-for-byte — counterexample bits and all
      // sweep counts included, not just the EQ/NEQ verdict.
      for (const sim::SimKernel kernel :
           {sim::SimKernel::kScalar, sim::SimKernel::kAvx2,
            sim::SimKernel::kAvx512}) {
        if (!sim::sim_kernel_available(kernel)) continue;
        for (const std::size_t width : {std::size_t{1}, std::size_t{8}}) {
          const sim::ScopedSimConfig scoped(kernel, width);
          const sweep::CecResult swept =
              sweep::check_equivalence(base, mutant.network, options);
          const bool identical =
              swept.equivalent == verdict.equivalent &&
              swept.undecided == verdict.undecided &&
              swept.counterexample == verdict.counterexample &&
              swept.outputs_proven == verdict.outputs_proven &&
              swept.unresolved_outputs == verdict.unresolved_outputs &&
              swept.sweep_stats.sat_calls == verdict.sweep_stats.sat_calls &&
              swept.sweep_stats.proven_equivalent ==
                  verdict.sweep_stats.proven_equivalent &&
              swept.sweep_stats.disproven == verdict.sweep_stats.disproven &&
              swept.sweep_stats.unresolved == verdict.sweep_stats.unresolved &&
              swept.sweep_stats.resimulations ==
                  verdict.sweep_stats.resimulations &&
              swept.sweep_stats.proven_pairs ==
                  verdict.sweep_stats.proven_pairs;
          if (!identical) {
            result.pass = false;
            result.detail = std::string("kernel ") +
                            std::string(sim::sim_kernel_name(kernel)) +
                            " width " + std::to_string(width) + " verdict " +
                            verdict_str(swept) +
                            " not byte-identical to default run " +
                            verdict_str(verdict) + " [" + mutant.description +
                            "]";
            return result;
          }
        }
      }
    }
    result.pass = true;
  } catch (const std::exception& error) {
    result.pass = false;
    result.detail = std::string("exception: ") + error.what();
  }
  return result;
}

/// Round-trip scoring shared by every format: lint the parsed network,
/// then CEC it against the original.
OracleResult score_roundtrip(std::string name, const Network& original,
                             const Network& parsed, std::uint64_t seed) {
  OracleResult result;
  result.name = std::move(name);
  try {
    const check::LintReport lint = check::lint_network(parsed);
    if (lint.has_errors()) {
      result.pass = false;
      result.detail = "parsed network fails lint: " + lint.to_string();
      return result;
    }
    const sweep::CecResult verdict = sweep::check_equivalence(
        original, parsed, roundtrip_cec_options(seed));
    if (!verdict.equivalent) {
      result.pass = false;
      result.detail = "parsed network not equivalent to original";
      return result;
    }
    result.pass = true;
  } catch (const std::exception& error) {
    result.pass = false;
    result.detail = std::string("exception: ") + error.what();
  }
  return result;
}

enum class Verdict { kEq, kNeq, kError };

/// Named-engine verdict on (a, b); exceptions map to kError so the
/// shrinker can also preserve "this input makes the engine throw".
Verdict engine_verdict(const std::string& oracle_name, const Network& a,
                       const Network& b, std::uint64_t seed) {
  try {
    if (oracle_name == "bdd") {
      const bdd::BddCecResult verdict = bdd::bdd_check_equivalence(a, b);
      if (!verdict.completed) return Verdict::kError;
      return verdict.equivalent ? Verdict::kEq : Verdict::kNeq;
    }
    sweep::CecOptions options;
    if (oracle_name == "sat-miter") {
      // Certify here too: a disagreement that only manifests as a failed
      // DRAT certification must survive replay and shrinking.
      options = sat_miter_options(seed, /*certify=*/true);
    } else if (oracle_name.rfind("cec[", 0) == 0 &&
               oracle_name.back() == ']') {
      const std::string arm_name =
          oracle_name.substr(4, oracle_name.size() - 5);
      bool found = false;
      for (const core::Strategy arm : core::kAllStrategies) {
        if (core::strategy_name(arm) == arm_name) {
          options = arm_options(arm, seed, /*certify=*/true);
          found = true;
          break;
        }
      }
      if (!found) return Verdict::kError;
    } else {
      return Verdict::kError;
    }
    return sweep::check_equivalence(a, b, options).equivalent ? Verdict::kEq
                                                              : Verdict::kNeq;
  } catch (const std::exception&) {
    return Verdict::kError;
  }
}

}  // namespace

std::vector<bool> simulate_outputs(const Network& network,
                                   const std::vector<bool>& inputs) {
  if (inputs.size() != network.num_pis())
    throw std::invalid_argument("simulate_outputs: wrong input vector size");
  sim::Simulator simulator(network);
  std::vector<sim::PatternWord> words(network.num_pis());
  for (std::size_t i = 0; i < words.size(); ++i)
    words[i] = inputs[i] ? 1u : 0u;
  simulator.simulate_word(words);
  std::vector<bool> outputs;
  outputs.reserve(network.num_pos());
  for (const net::NodeId po : network.pos())
    outputs.push_back(simulator.value_bit(po, 0));
  return outputs;
}

bool counterexample_valid(const Network& a, const Network& b,
                          const std::vector<bool>& inputs) {
  if (inputs.size() != a.num_pis() || a.num_pis() != b.num_pis()) return false;
  return simulate_outputs(a, inputs) != simulate_outputs(b, inputs);
}

std::vector<OracleResult> check_pair(const Network& base,
                                     const Mutant& mutant,
                                     const PairOracleOptions& options) {
  std::vector<OracleResult> results;

  // Ground-truth self-check first: an NEQ mutant must carry a witness
  // that actually distinguishes the pair — otherwise the harness itself
  // is broken and every downstream verdict is noise.
  if (!mutant.equivalent) {
    OracleResult witness;
    witness.name = "witness";
    witness.pass = counterexample_valid(base, mutant.network, mutant.witness);
    if (!witness.pass)
      witness.detail = "stored witness does not distinguish the pair [" +
                       mutant.description + "]";
    results.push_back(std::move(witness));
  }

  // Sweeping-flow arms.
  if (options.all_arms) {
    for (const core::Strategy arm : core::kAllStrategies)
      results.push_back(run_cec_oracle(
          "cec[" + std::string(core::strategy_name(arm)) + "]", base, mutant,
          arm_options(arm, options.seed, options.certify),
          options.num_threads, options.inprocess_differential,
          options.kernel_sweep));
  } else {
    results.push_back(run_cec_oracle(
        "cec[" + std::string(core::strategy_name(options.arm)) + "]", base,
        mutant, arm_options(options.arm, options.seed, options.certify),
        options.num_threads, options.inprocess_differential,
        options.kernel_sweep));
  }

  // Plain SAT miter.
  results.push_back(run_cec_oracle(
      "sat-miter", base, mutant,
      sat_miter_options(options.seed, options.certify),
      options.num_threads, options.inprocess_differential,
      options.kernel_sweep));

  // BDD engine. Node-limit blow-up is a pass (the engine is *allowed* to
  // give up), but a completed wrong verdict is a mismatch.
  {
    OracleResult result;
    result.name = "bdd";
    try {
      const bdd::BddCecResult verdict = bdd::bdd_check_equivalence(
          base, mutant.network, options.bdd_node_limit);
      if (!verdict.completed) {
        result.pass = true;
        result.detail = "incomplete";
      } else if (verdict.equivalent != mutant.equivalent) {
        result.pass = false;
        result.detail = std::string("verdict ") +
                        (verdict.equivalent ? "EQ" : "NEQ") + ", expected " +
                        (mutant.equivalent ? "EQ" : "NEQ") + " [" +
                        mutant.description + "]";
      } else if (!verdict.equivalent &&
                 !counterexample_valid(base, mutant.network,
                                       verdict.counterexample)) {
        result.pass = false;
        result.detail = "BDD counterexample does not simulate";
      } else {
        result.pass = true;
      }
    } catch (const std::exception& error) {
      result.pass = false;
      result.detail = std::string("exception: ") + error.what();
    }
    results.push_back(std::move(result));
  }

  return results;
}

std::vector<OracleResult> check_roundtrips(const Network& network,
                                           std::uint64_t seed) {
  std::vector<OracleResult> results;
  {
    OracleResult result;
    try {
      const Network parsed =
          io::read_blif_string(io::write_blif_string(network));
      result = score_roundtrip("rt-blif", network, parsed, seed);
    } catch (const std::exception& error) {
      result.name = "rt-blif";
      result.pass = false;
      result.detail = std::string("exception: ") + error.what();
    }
    results.push_back(std::move(result));
  }
  {
    OracleResult result;
    try {
      const Network parsed =
          io::read_bench_string(io::write_bench_string(network));
      result = score_roundtrip("rt-bench", network, parsed, seed);
    } catch (const std::exception& error) {
      result.name = "rt-bench";
      result.pass = false;
      result.detail = std::string("exception: ") + error.what();
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::vector<OracleResult> check_aiger_roundtrips(const aig::Aig& graph,
                                                 std::uint64_t seed) {
  const Network reference = aig::to_network(graph);
  std::vector<OracleResult> results;
  for (const bool binary : {false, true}) {
    const char* name = binary ? "rt-aig" : "rt-aag";
    OracleResult result;
    try {
      const aig::Aig parsed =
          io::read_aiger_string(io::write_aiger_string(graph, binary));
      result =
          score_roundtrip(name, reference, aig::to_network(parsed), seed);
    } catch (const std::exception& error) {
      result.name = name;
      result.pass = false;
      result.detail = std::string("exception: ") + error.what();
    }
    results.push_back(std::move(result));
  }
  return results;
}

Network const0_reference(const Network& like) {
  Network reference(like.name() + "_const0");
  for (const net::NodeId pi : like.pis())
    reference.add_pi(like.node(pi).name);
  const net::NodeId zero = reference.add_constant(false);
  for (const net::NodeId po : like.pos())
    reference.add_po(zero, like.node(po).name);
  return reference;
}

bool oracle_disagrees(const std::string& oracle_name, const Network& network,
                      std::uint64_t seed) {
  const Network zero = const0_reference(network);
  const Verdict suspect = engine_verdict(oracle_name, network, zero, seed);
  // Trusted reference: BDD when it completes (canonical), otherwise the
  // plain SAT miter — and the other way around when the suspect is one of
  // the reference engines itself.
  Verdict reference;
  if (oracle_name == "bdd") {
    reference = engine_verdict("sat-miter", network, zero, seed);
  } else {
    reference = engine_verdict("bdd", network, zero, seed);
    if (reference == Verdict::kError)
      reference = engine_verdict(
          oracle_name == "sat-miter" ? "cec[AI+DC+MFFC]" : "sat-miter",
          network, zero, seed);
  }
  if (reference == Verdict::kError) return false;  // no trusted baseline
  return suspect != reference;
}

bool miter_nonzero(const Network& network, std::uint64_t seed) {
  return engine_verdict("sat-miter", network, const0_reference(network),
                        seed) == Verdict::kNeq;
}

bool roundtrip_fails(const std::string& name, const Network& network,
                     std::uint64_t seed) {
  for (const OracleResult& result : check_roundtrips(network, seed))
    if (result.name == name) return !result.pass;
  return false;
}

}  // namespace simgen::fuzz

/// \file shrink.hpp
/// \brief Delta-debugging minimizer for failing fuzz circuits.
///
/// A raw fuzz failure is a hundred-node circuit; the bug it witnesses
/// usually needs five of them. The shrinker greedily applies
/// predicate-preserving reductions until a fixpoint:
///
///  * PO reduction — keep only half (then one) of the outputs and the
///    cone that feeds them;
///  * node-to-constant — replace an internal LUT by constant 0 or 1;
///  * node-to-fanin — replace an internal LUT by one of its fanins;
///  * truth-table simplification — drop fanins outside the functional
///    support, shrinking the table with them;
///  * cone extraction — after every accepted reduction, dead nodes and
///    unused PIs are removed.
///
/// Each candidate reduction is kept only if the caller's predicate still
/// holds ("the oracle still disagrees", "the parser still throws", ...),
/// so the final circuit provably preserves the failure. Classic
/// delta debugging, specialized to DAG circuits.
#pragma once

#include <cstddef>
#include <functional>

#include "network/network.hpp"

namespace simgen::fuzz {

/// Returns true while the candidate still exhibits the failure. Must be
/// deterministic; it is called O(nodes) times per round.
using ShrinkPredicate = std::function<bool(const net::Network&)>;

struct ShrinkOptions {
  /// Fixpoint bound: rounds stop early when no reduction is accepted.
  unsigned max_rounds = 8;
  /// Hard bound on predicate evaluations (each may run a full CEC).
  std::size_t max_predicate_calls = 10000;
};

struct ShrinkResult {
  net::Network network;           ///< The minimized failing circuit.
  std::size_t rounds = 0;         ///< Improvement rounds executed.
  std::size_t reductions = 0;     ///< Accepted reductions.
  std::size_t predicate_calls = 0;
};

/// Keeps only the cone of the listed PO indices: nodes unreachable from
/// them and PIs outside their support are dropped. Exposed for tests.
[[nodiscard]] net::Network extract_cone(const net::Network& network,
                                        std::span<const std::size_t> po_indices);

/// Minimizes \p failing while \p still_fails holds. Requires
/// still_fails(failing) to be true on entry (throws std::invalid_argument
/// otherwise — shrinking a non-failure hides harness bugs).
[[nodiscard]] ShrinkResult shrink_network(const net::Network& failing,
                                          const ShrinkPredicate& still_fails,
                                          const ShrinkOptions& options = {});

}  // namespace simgen::fuzz

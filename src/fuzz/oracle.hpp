/// \file oracle.hpp
/// \brief Differential oracles: cross-check every engine on circuits with
/// known ground truth.
///
/// The harness owns the ground truth (a mutant is equivalent or carries a
/// verified counterexample witness), so every engine disagreement is a
/// bug by construction — in the engine, in the generator, or in the
/// oracle itself, all of which we want to know about. Three oracle
/// families:
///
///  * pair oracles — run sweep::check_equivalence (any or all strategy
///    arms, DRAT-certified), the BDD engine, and a plain SAT miter on a
///    (base, mutant) pair and demand the expected EQ/NEQ verdict; NEQ
///    counterexamples are re-verified by simulation;
///  * round-trip oracles — write the circuit through every serializer
///    (BLIF, BENCH, AIGER ascii+binary), parse it back, lint the result,
///    and CEC it against the original;
///  * shrink support — re-expressing a pair failure as a single-network
///    predicate ("the named oracle still gives the wrong verdict against
///    a constant-0 reference") so the delta debugger can minimize it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "fuzz/mutate.hpp"
#include "network/network.hpp"
#include "simgen/guided_sim.hpp"

namespace simgen::fuzz {

/// Outcome of one oracle run. Details never contain timings, so logs
/// built from them are byte-stable across runs.
struct OracleResult {
  std::string name;    ///< "cec[AI+DC]", "sat-miter", "bdd", "rt-blif", ...
  bool pass = false;
  std::string detail;  ///< Empty on pass; the mismatch description on fail.
};

struct PairOracleOptions {
  std::uint64_t seed = 1;
  /// Run every strategy arm (expensive) instead of just \p arm.
  bool all_arms = false;
  core::Strategy arm = core::Strategy::kAiDcMffc;
  /// DRAT-certify every UNSAT verdict inside the sweeping oracles.
  bool certify = true;
  /// BDD manager bound; blow-up is reported as a pass with detail
  /// "incomplete", never as a failure.
  std::size_t bdd_node_limit = 1u << 20;
  /// When > 1, every sweeping oracle is run twice — single-thread, then
  /// with this many worker threads — and any verdict disagreement is an
  /// oracle failure. Oracle names and verdict-log bytes stay identical to
  /// a single-thread campaign while both engines agree.
  unsigned num_threads = 1;
  /// Rerun every sweeping oracle with solver inprocessing toggled (on vs
  /// off) and fail on any verdict disagreement or non-simulating
  /// counterexample. The inprocessing passes are equivalence-preserving,
  /// so the two runs must agree on every pair; like num_threads, oracle
  /// names and verdict-log bytes are unchanged while they do.
  bool inprocess_differential = false;
  /// Width-sweep differential: rerun every sweeping oracle under every
  /// available simulation kernel (scalar/AVX2/AVX-512) at block widths 1
  /// and 8 and demand *byte-identical* results — verdict, counterexample
  /// bits, outputs proven, and every sweep count. The wide data path is
  /// contractually invisible (DESIGN.md "Wide simulation"), so any drift
  /// is a kernel or refinement-ordering bug. Unavailable ISAs are
  /// skipped, keeping the campaign green on any host.
  bool kernel_sweep = false;
};

/// Simulates \p network on one input vector; returns the PO value bits.
[[nodiscard]] std::vector<bool> simulate_outputs(
    const net::Network& network, const std::vector<bool>& inputs);

/// True iff \p inputs drives some PO pair of \p a / \p b apart.
[[nodiscard]] bool counterexample_valid(const net::Network& a,
                                        const net::Network& b,
                                        const std::vector<bool>& inputs);

/// Runs the pair oracles on (base, mutant): selected sweep arms, plain
/// SAT miter, BDD engine, and witness validation for NEQ mutants.
[[nodiscard]] std::vector<OracleResult> check_pair(
    const net::Network& base, const Mutant& mutant,
    const PairOracleOptions& options);

/// Runs the BLIF and BENCH writer->reader->lint->CEC round trips.
[[nodiscard]] std::vector<OracleResult> check_roundtrips(
    const net::Network& network, std::uint64_t seed);

/// Runs the AIGER ascii and binary round trips on an AIG (compared after
/// direct network translation).
[[nodiscard]] std::vector<OracleResult> check_aiger_roundtrips(
    const aig::Aig& graph, std::uint64_t seed);

/// A network with the same PI/PO interface as \p like whose outputs are
/// all constant 0. CEC of a miter against this reference answers "is the
/// miter constant 0?", which turns any pair disagreement into a
/// single-network property the shrinker can minimize.
[[nodiscard]] net::Network const0_reference(const net::Network& like);

/// Re-runs the oracle named \p oracle_name (an OracleResult::name) on
/// (network vs const0_reference(network)) and compares its verdict with a
/// trusted reference engine (BDD when it completes, otherwise the plain
/// SAT miter — or the reverse when the suspect *is* one of those).
/// Returns true while the disagreement persists — the shrink predicate.
[[nodiscard]] bool oracle_disagrees(const std::string& oracle_name,
                                    const net::Network& network,
                                    std::uint64_t seed);

/// True iff the plain SAT miter proves \p network differs from constant
/// 0 somewhere. The shrink predicate for injected-fault miters: the
/// miter of a faulty pair must stay nonzero through every reduction.
[[nodiscard]] bool miter_nonzero(const net::Network& network,
                                 std::uint64_t seed);

/// Re-runs the round-trip oracle named \p name ("rt-blif"/"rt-bench") on
/// \p network; returns true while it still fails — the shrink predicate
/// for serialization failures.
[[nodiscard]] bool roundtrip_fails(const std::string& name,
                                   const net::Network& network,
                                   std::uint64_t seed);

}  // namespace simgen::fuzz

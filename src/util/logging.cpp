#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <optional>
#include <string>

namespace simgen::util {
namespace {

/// SIMGEN_LOG_LEVEL overrides the default threshold (set_log_level still
/// wins if called later), so bench drivers can be quieted or verbosed
/// without recompiling or new flags.
LogLevel initial_log_level() noexcept {
  const char* env = std::getenv("SIMGEN_LOG_LEVEL");
  if (env != nullptr) {
    if (const std::optional<LogLevel> level = parse_log_level(env))
      return *level;
    std::fprintf(stderr,
                 "[simgen] ignoring invalid SIMGEN_LOG_LEVEL=%s "
                 "(want debug|info|warn|error|off or 0-4)\n",
                 env);
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_log_level()};

constexpr const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: break;
  }
  return "?    ";
}

/// Wall-clock "HH:MM:SS.mmm" for the line prefix. The display clock is
/// deliberately system_clock (human-readable local time); all *timing* in
/// the library goes through util::Stopwatch's steady_clock.
void format_timestamp(char (&buffer)[16]) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_buffer{};
  localtime_r(&seconds, &tm_buffer);
  std::snprintf(buffer, sizeof buffer, "%02d:%02d:%02d.%03d", tm_buffer.tm_hour,
                tm_buffer.tm_min, tm_buffer.tm_sec, static_cast<int>(millis));
}

/// Small per-thread ordinal for the line prefix: assigned lazily on the
/// thread's first log line, so the main thread is usually t1 and worker
/// ordinals stay short regardless of the OS thread-id width.
std::atomic<unsigned> g_next_thread_ordinal{0};
thread_local unsigned t_log_ordinal = 0;
thread_local int t_worker_index = -1;

unsigned thread_log_ordinal() noexcept {
  if (t_log_ordinal == 0)
    t_log_ordinal = g_next_thread_ordinal.fetch_add(1,
                                                    std::memory_order_relaxed) +
                    1;
  return t_log_ordinal;
}

void vlogf(LogLevel level, const char* fmt, std::va_list args) {
  // The level check lives in every entry point *before* any formatting
  // work; this copy of it only guards direct vlogf callers.
  if (level < log_level()) return;
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed < 0) return;
  std::string buffer(static_cast<std::size_t>(needed) + 1, '\0');
  std::vsnprintf(buffer.data(), buffer.size(), fmt, args);
  buffer.resize(static_cast<std::size_t>(needed));
  log_line(level, buffer);
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view text) noexcept {
  if (text == "debug" || text == "0") return LogLevel::kDebug;
  if (text == "info" || text == "1") return LogLevel::kInfo;
  if (text == "warn" || text == "warning" || text == "2") return LogLevel::kWarn;
  if (text == "error" || text == "3") return LogLevel::kError;
  if (text == "off" || text == "none" || text == "4") return LogLevel::kOff;
  return std::nullopt;
}

void set_thread_worker_index(int index) noexcept {
  t_worker_index = index < 0 ? -1 : index;
}

int thread_worker_index() noexcept { return t_worker_index; }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  char timestamp[16];
  format_timestamp(timestamp);
  char thread_tag[24];
  if (t_worker_index >= 0)
    std::snprintf(thread_tag, sizeof thread_tag, "t%u/w%d",
                  thread_log_ordinal(), t_worker_index);
  else
    std::snprintf(thread_tag, sizeof thread_tag, "t%u", thread_log_ordinal());
  std::fprintf(stderr, "[simgen %s %s %s] %.*s\n", timestamp, level_tag(level),
               thread_tag, static_cast<int>(message.size()), message.data());
}

// Each entry point tests the threshold before va_start so a suppressed
// message (the common case for debugf) never touches its arguments, let
// alone formats them.
#define SIMGEN_DEFINE_LOG_FN(name, level)          \
  void name(const char* fmt, ...) {                \
    if ((level) < log_level()) return;             \
    std::va_list args;                             \
    va_start(args, fmt);                           \
    vlogf(level, fmt, args);                       \
    va_end(args);                                  \
  }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  std::va_list args;
  va_start(args, fmt);
  vlogf(level, fmt, args);
  va_end(args);
}

SIMGEN_DEFINE_LOG_FN(debugf, LogLevel::kDebug)
SIMGEN_DEFINE_LOG_FN(infof, LogLevel::kInfo)
SIMGEN_DEFINE_LOG_FN(warnf, LogLevel::kWarn)
SIMGEN_DEFINE_LOG_FN(errorf, LogLevel::kError)

#undef SIMGEN_DEFINE_LOG_FN

}  // namespace simgen::util

#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace simgen::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

constexpr const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: break;
  }
  return "?    ";
}

void vlogf(LogLevel level, const char* fmt, std::va_list args) {
  if (level < log_level()) return;
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed < 0) return;
  std::string buffer(static_cast<std::size_t>(needed) + 1, '\0');
  std::vsnprintf(buffer.data(), buffer.size(), fmt, args);
  buffer.resize(static_cast<std::size_t>(needed));
  log_line(level, buffer);
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[simgen %s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}

#define SIMGEN_DEFINE_LOG_FN(name, level)          \
  void name(const char* fmt, ...) {                \
    std::va_list args;                             \
    va_start(args, fmt);                           \
    vlogf(level, fmt, args);                       \
    va_end(args);                                  \
  }

void logf(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlogf(level, fmt, args);
  va_end(args);
}

SIMGEN_DEFINE_LOG_FN(debugf, LogLevel::kDebug)
SIMGEN_DEFINE_LOG_FN(infof, LogLevel::kInfo)
SIMGEN_DEFINE_LOG_FN(warnf, LogLevel::kWarn)
SIMGEN_DEFINE_LOG_FN(errorf, LogLevel::kError)

#undef SIMGEN_DEFINE_LOG_FN

}  // namespace simgen::util

/// \file strong_id.hpp
/// \brief Tagged index wrapper: distinct ID types over one integer rep.
///
/// SimGen juggles several dense 32-bit index spaces at once — network
/// node ids, SAT variables, literal codes, equivalence-class indices —
/// and plain `using X = std::uint32_t` aliases let any of them silently
/// stand in for any other at a function boundary (the classic
/// swapped-arguments bug survives every test that happens to pass equal
/// values). StrongId<Tag> makes each space a distinct type:
///
///   struct NodeIdTag {};
///   using NodeId = util::StrongId<NodeIdTag>;
///
/// Design rules (see DESIGN.md "Static analysis" for the migration
/// guide):
///  * Construction from an integer is explicit — `NodeId id = 3;` is a
///    compile error, `NodeId id{3};` states intent.
///  * Conversion *to* the underlying integer is implicit, so the
///    overwhelmingly common uses — indexing a side array
///    (`values[node]`), comparing against a size, widening into a
///    uint64 journal operand — stay untouched. The cost is that
///    *expression-level* mixing (`node + var`) still compiles by decay;
///    the `simgen-id-type-mixing` clang-tidy check closes that gap,
///    which is exactly the split the static-analysis layer is built
///    around: the type system enforces boundaries, the tidy plugin
///    enforces expressions.
///  * ++ / -- are provided (dense ids are loop counters); arithmetic is
///    not — `id + offset` decays to the underlying type and must be
///    re-wrapped explicitly, keeping derived indices visibly deliberate.
///  * Passing a StrongId through printf-style varargs is a -Wformat
///    error (it is a class type): write `id.value()`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace simgen::util {

template <typename Tag, typename Underlying = std::uint32_t>
class StrongId {
  static_assert(std::is_unsigned_v<Underlying>,
                "SimGen index spaces are dense unsigned ranges");

 public:
  using underlying_type = Underlying;
  using tag_type = Tag;

  constexpr StrongId() = default;

  /// Explicit on purpose: every integer-to-id conversion is a claim that
  /// the integer really is an index of *this* space. Accepts any integral
  /// type (loop bounds are usually std::size_t) and truncates like the
  /// aliases it replaces did.
  template <typename Int, typename = std::enable_if_t<std::is_integral_v<Int>>>
  explicit constexpr StrongId(Int value) noexcept
      : value_(static_cast<Underlying>(value)) {}

  /// Implicit decay to the underlying integer: array indexing,
  /// size comparisons, and widening conversions keep working.
  constexpr operator Underlying() const noexcept { return value_; }

  [[nodiscard]] constexpr Underlying value() const noexcept { return value_; }

  constexpr StrongId& operator++() noexcept {
    ++value_;
    return *this;
  }
  constexpr StrongId operator++(int) noexcept {
    const StrongId old = *this;
    ++value_;
    return old;
  }
  constexpr StrongId& operator--() noexcept {
    --value_;
    return *this;
  }
  constexpr StrongId operator--(int) noexcept {
    const StrongId old = *this;
    --value_;
    return old;
  }

  friend constexpr bool operator==(StrongId, StrongId) noexcept = default;
  friend constexpr auto operator<=>(StrongId, StrongId) noexcept = default;

 private:
  Underlying value_ = 0;
};

}  // namespace simgen::util

/// Hash support so StrongId keys work in unordered containers.
template <typename Tag, typename Underlying>
struct std::hash<simgen::util::StrongId<Tag, Underlying>> {
  std::size_t operator()(
      simgen::util::StrongId<Tag, Underlying> id) const noexcept {
    return std::hash<Underlying>{}(id.value());
  }
};

#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <thread>

#ifndef SIMGEN_NO_TELEMETRY
#include <atomic>
#include <bit>
#include <chrono>
#endif

#include "util/logging.hpp"
#include "util/mutex.hpp"

namespace simgen::util {

unsigned resolve_num_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

#ifndef SIMGEN_NO_TELEMETRY
namespace {

std::uint64_t profile_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Same bucketing as obs::Histogram::bucket_of, restated here because
/// util sits below obs in the layering.
constexpr std::size_t latency_bucket_of(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

/// Lock guard that counts contention: try_lock first, and only when that
/// fails (someone else holds the queue) fall back to a blocking lock.
/// The two counters are the *calling* worker's accumulators — a block
/// means "this worker stalled", wherever the queue belongs.
class SIMGEN_SCOPED_CAPABILITY ProfiledLockGuard {
 public:
  ProfiledLockGuard(Mutex& mutex, std::atomic<std::uint64_t>& acquires,
                    std::atomic<std::uint64_t>& blocks) SIMGEN_ACQUIRE(mutex)
      : mutex_(mutex) {
    if (!mutex.try_lock()) {
      blocks.fetch_add(1, std::memory_order_relaxed);
      mutex.lock();
    }
    acquires.fetch_add(1, std::memory_order_relaxed);
  }
  ~ProfiledLockGuard() SIMGEN_RELEASE() { mutex_.unlock(); }
  ProfiledLockGuard(const ProfiledLockGuard&) = delete;
  ProfiledLockGuard& operator=(const ProfiledLockGuard&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace

WorkerProfile PoolProfile::totals() const {
  WorkerProfile sum;
  for (const WorkerProfile& worker : workers) {
    sum.tasks += worker.tasks;
    sum.steal_attempts += worker.steal_attempts;
    sum.steal_successes += worker.steal_successes;
    sum.lock_acquires += worker.lock_acquires;
    sum.lock_blocks += worker.lock_blocks;
    sum.busy_ns += worker.busy_ns;
    sum.idle_ns += worker.idle_ns;
    sum.queue_depth_samples += worker.queue_depth_samples;
    sum.queue_depth_sum += worker.queue_depth_sum;
    sum.max_queue_depth = std::max(sum.max_queue_depth, worker.max_queue_depth);
    sum.task_us_sum += worker.task_us_sum;
    for (std::size_t i = 0; i < WorkerProfile::kNumLatencyBuckets; ++i)
      sum.task_us_buckets[i] += worker.task_us_buckets[i];
  }
  return sum;
}
#endif  // SIMGEN_NO_TELEMETRY

struct ThreadPool::Impl {
  /// One mutex-guarded deque per worker. The owner pops from the back
  /// (LIFO, cache-warm), thieves steal from the front (FIFO, so the
  /// oldest work travels). Each entry carries the epoch of the batch it
  /// was seeded for: a worker that went to sleep during batch N can wake
  /// and pop a batch-N+1 task before noticing the epoch bump, and the
  /// tag is what tells it to re-read batch_fn instead of invoking the
  /// (destroyed) previous batch's function.
  struct Item {
    std::uint64_t epoch;
    std::size_t task;
  };
  struct Queue {
    Mutex mutex;
    std::deque<Item> tasks SIMGEN_GUARDED_BY(mutex);
  };

#ifndef SIMGEN_NO_TELEMETRY
  /// Live per-worker accumulators. Each non-bucket field is written only
  /// by its owning worker; everything is a relaxed atomic so profile()
  /// and the watchdog can read mid-batch without a data race. One cache
  /// line per worker keeps the hot-path increments free of false
  /// sharing.
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steal_attempts{0};
    std::atomic<std::uint64_t> steal_successes{0};
    std::atomic<std::uint64_t> lock_acquires{0};
    std::atomic<std::uint64_t> lock_blocks{0};
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> queue_depth_samples{0};
    std::atomic<std::uint64_t> queue_depth_sum{0};
    std::atomic<std::uint64_t> max_queue_depth{0};
    std::atomic<std::uint64_t> task_us_sum{0};
    /// Timestamp (profile_now_ns) when this worker last became idle, or 0
    /// while it is inside a task body. Lives here — not as a worker_loop
    /// local — so settle_idle() can close the open idle interval after
    /// the last task of a run (the §13 trailing-idle tail).
    std::atomic<std::uint64_t> idle_since{0};
    std::array<std::atomic<std::uint64_t>, WorkerProfile::kNumLatencyBuckets>
        task_us_buckets{};
  };
#endif

  explicit Impl(unsigned num_threads)
      : queues(num_threads)
#ifndef SIMGEN_NO_TELEMETRY
        ,
        counters(num_threads)
#endif
  {
    workers.reserve(num_threads);
    for (unsigned w = 0; w < num_threads; ++w)
      workers.emplace_back([this, w] { worker_loop(w); });
  }

  ~Impl() {
    {
      LockGuard lock(mutex);
      shutting_down = true;
    }
    work_available.notify_all();
    for (std::thread& worker : workers) worker.join();
  }

  void run_tasks(std::size_t num_tasks,
                 const std::function<void(std::size_t, unsigned)>& fn) {
    if (num_tasks == 0) return;
    const unsigned n = static_cast<unsigned>(workers.size());
    {
      LockGuard lock(mutex);
      batch_fn = &fn;
      pending = num_tasks;
      failed_task = num_tasks;  // sentinel: no failure yet
      failure = nullptr;
      ++epoch;  // wakes every worker exactly once per batch
#ifndef SIMGEN_NO_TELEMETRY
      batches.fetch_add(1, std::memory_order_relaxed);
      pending_live.store(num_tasks, std::memory_order_relaxed);
#endif
      // Seed the deques block-cyclically so neighbouring (same-class,
      // similar-cone) tasks start on the same worker and stealing only
      // happens at the tail of the batch. The previous batch drained
      // completely (pending hit 0 implies every index was popped), so the
      // deques are empty here; clear() is belt and braces.
      const std::size_t block = (num_tasks + n - 1) / n;
      for (unsigned w = 0; w < n; ++w) {
        LockGuard queue_lock(queues[w].mutex);
        queues[w].tasks.clear();
        const std::size_t begin = static_cast<std::size_t>(w) * block;
        const std::size_t end = std::min(begin + block, num_tasks);
        for (std::size_t task = begin; task < end; ++task)
          queues[w].tasks.push_back(Item{epoch, task});
      }
    }
    work_available.notify_all();
    LockGuard lock(mutex);
    while (pending != 0) batch_done.wait(mutex);
    if (failure) {
      std::exception_ptr error = failure;
      failure = nullptr;
      std::rethrow_exception(error);
    }
  }

  /// Pops a task for worker \p self: own deque first, then steals.
  bool try_pop(unsigned self, Item& item) {
#ifndef SIMGEN_NO_TELEMETRY
    WorkerCounters& mine = counters[self];
    {
      ProfiledLockGuard lock(queues[self].mutex, mine.lock_acquires,
                             mine.lock_blocks);
      if (!queues[self].tasks.empty()) {
        // Depth sampled at pop time (popped task included): the seeding
        // block shows up on the first pop, drain shows the tail.
        const std::uint64_t depth = queues[self].tasks.size();
        mine.queue_depth_samples.fetch_add(1, std::memory_order_relaxed);
        mine.queue_depth_sum.fetch_add(depth, std::memory_order_relaxed);
        if (depth > mine.max_queue_depth.load(std::memory_order_relaxed))
          mine.max_queue_depth.store(depth, std::memory_order_relaxed);
        item = queues[self].tasks.back();
        queues[self].tasks.pop_back();
        return true;
      }
    }
    const unsigned n = static_cast<unsigned>(queues.size());
    for (unsigned offset = 1; offset < n; ++offset) {
      const unsigned victim = (self + offset) % n;
      mine.steal_attempts.fetch_add(1, std::memory_order_relaxed);
      ProfiledLockGuard lock(queues[victim].mutex, mine.lock_acquires,
                             mine.lock_blocks);
      if (!queues[victim].tasks.empty()) {
        mine.steal_successes.fetch_add(1, std::memory_order_relaxed);
        item = queues[victim].tasks.front();
        queues[victim].tasks.pop_front();
        return true;
      }
    }
    return false;
#else
    {
      LockGuard lock(queues[self].mutex);
      if (!queues[self].tasks.empty()) {
        item = queues[self].tasks.back();
        queues[self].tasks.pop_back();
        return true;
      }
    }
    const unsigned n = static_cast<unsigned>(queues.size());
    for (unsigned offset = 1; offset < n; ++offset) {
      const unsigned victim = (self + offset) % n;
      LockGuard lock(queues[victim].mutex);
      if (!queues[victim].tasks.empty()) {
        item = queues[victim].tasks.front();
        queues[victim].tasks.pop_front();
        return true;
      }
    }
    return false;
#endif
  }

  void worker_loop(unsigned self) {
    // Log attribution (util::logf prefixes): this OS thread *is* worker
    // `self` for the pool's whole lifetime.
    set_thread_worker_index(static_cast<int>(self));
    std::uint64_t seen_epoch = 0;
#ifndef SIMGEN_NO_TELEMETRY
    counters[self].idle_since.store(profile_now_ns(),
                                    std::memory_order_relaxed);
#endif
    while (true) {
      const std::function<void(std::size_t, unsigned)>* fn = nullptr;
      {
        LockGuard lock(mutex);
        while (!shutting_down && epoch == seen_epoch) work_available.wait(mutex);
        if (shutting_down) return;
        seen_epoch = epoch;
        fn = batch_fn;
      }
      Item item{0, 0};
      while (try_pop(self, item)) {
        if (item.epoch != seen_epoch) {
          // Stale wake: we captured fn for an earlier batch, that batch
          // completed while we were descheduled, and this task belongs to
          // a batch issued since. The popped task holds its own batch
          // pending (run_tasks cannot return until it is executed and
          // decremented), so the current batch_fn is alive and is this
          // task's function — re-read it under the lock.
          LockGuard lock(mutex);
          seen_epoch = item.epoch;
          fn = batch_fn;
        }
        // No pool or queue lock is held across the task invocation: a
        // task is free to block (SAT calls run for seconds) or to submit
        // telemetry that takes unrelated locks, without stalling stealing
        // or the other workers. -Wthread-safety verifies this: fn is a
        // local copy, and every guarded access below reacquires `mutex`.
        const std::size_t task = item.task;
#ifndef SIMGEN_NO_TELEMETRY
        const std::uint64_t task_begin = profile_now_ns();
        {
          // exchange(0) marks the worker busy; settle_idle() may have
          // already closed part of this interval, in which case the
          // stamp it left behind is where our accounting resumes.
          const std::uint64_t idle_since = counters[self].idle_since.exchange(
              0, std::memory_order_relaxed);
          if (idle_since != 0 && task_begin > idle_since)
            counters[self].idle_ns.fetch_add(task_begin - idle_since,
                                             std::memory_order_relaxed);
        }
#endif
        try {
          (*fn)(task, self);
        } catch (...) {
          LockGuard lock(mutex);
          // Keep the lowest-index failure so rethrowing is deterministic
          // regardless of which worker hit its exception first.
          if (task < failed_task) {
            failed_task = task;
            failure = std::current_exception();
          }
        }
#ifndef SIMGEN_NO_TELEMETRY
        {
          const std::uint64_t task_end = profile_now_ns();
          const std::uint64_t dur_ns = task_end - task_begin;
          const std::uint64_t dur_us = dur_ns / 1000;
          WorkerCounters& mine = counters[self];
          mine.tasks.fetch_add(1, std::memory_order_relaxed);
          mine.busy_ns.fetch_add(dur_ns, std::memory_order_relaxed);
          mine.task_us_sum.fetch_add(dur_us, std::memory_order_relaxed);
          mine.task_us_buckets[latency_bucket_of(dur_us)].fetch_add(
              1, std::memory_order_relaxed);
          mine.idle_since.store(task_end, std::memory_order_relaxed);
        }
#endif
        LockGuard lock(mutex);
        --pending;
#ifndef SIMGEN_NO_TELEMETRY
        pending_live.store(pending, std::memory_order_relaxed);
#endif
        if (pending == 0) {
          batch_done.notify_all();
          break;
        }
      }
      // Deques drained (remaining tasks, if any, are in flight on other
      // workers and cannot be stolen): sleep until the next batch.
    }
  }

  /// Pool-wide batch state. `mutex` orders batch handoff (epoch bump +
  /// batch_fn publication) against worker wakes and completion counting;
  /// the per-queue mutexes above only guard their own deque.
  Mutex mutex;
  CondVar work_available;
  CondVar batch_done;
  std::vector<Queue> queues;    ///< Sized in the ctor, const thereafter.
  std::vector<std::thread> workers;  ///< Written only in ctor/dtor.
#ifndef SIMGEN_NO_TELEMETRY
  std::vector<WorkerCounters> counters;  ///< Sized in the ctor, see above.
  std::atomic<std::uint64_t> batches{0};
  /// Relaxed mirror of `pending` so heartbeats and the watchdog can read
  /// the live queue depth without touching the pool mutex.
  std::atomic<std::size_t> pending_live{0};
#endif
  /// Borrowed pointer to the caller's batch function. Valid from batch
  /// publication until `pending` hits 0 (run_tasks keeps the referent
  /// alive exactly that long); workers re-read it under `mutex` whenever
  /// a popped task's epoch tag disagrees with their wake epoch.
  const std::function<void(std::size_t, unsigned)>* batch_fn
      SIMGEN_GUARDED_BY(mutex) = nullptr;
  std::uint64_t epoch SIMGEN_GUARDED_BY(mutex) = 0;
  std::size_t pending SIMGEN_GUARDED_BY(mutex) = 0;
  std::size_t failed_task SIMGEN_GUARDED_BY(mutex) = 0;
  std::exception_ptr failure SIMGEN_GUARDED_BY(mutex) = nullptr;
  bool shutting_down SIMGEN_GUARDED_BY(mutex) = false;
};

ThreadPool::ThreadPool(unsigned num_threads)
    : impl_(new Impl(resolve_num_threads(num_threads))) {}

ThreadPool::~ThreadPool() { delete impl_; }

unsigned ThreadPool::num_threads() const noexcept {
  return static_cast<unsigned>(impl_->workers.size());
}

void ThreadPool::run_tasks(
    std::size_t num_tasks,
    const std::function<void(std::size_t, unsigned)>& fn) {
  impl_->run_tasks(num_tasks, fn);
}

#ifndef SIMGEN_NO_TELEMETRY
PoolProfile ThreadPool::profile() const {
  PoolProfile snapshot;
  snapshot.batches = impl_->batches.load(std::memory_order_relaxed);
  snapshot.workers.resize(impl_->counters.size());
  for (std::size_t w = 0; w < impl_->counters.size(); ++w) {
    const Impl::WorkerCounters& live = impl_->counters[w];
    WorkerProfile& out = snapshot.workers[w];
    out.tasks = live.tasks.load(std::memory_order_relaxed);
    out.steal_attempts = live.steal_attempts.load(std::memory_order_relaxed);
    out.steal_successes = live.steal_successes.load(std::memory_order_relaxed);
    out.lock_acquires = live.lock_acquires.load(std::memory_order_relaxed);
    out.lock_blocks = live.lock_blocks.load(std::memory_order_relaxed);
    out.busy_ns = live.busy_ns.load(std::memory_order_relaxed);
    out.idle_ns = live.idle_ns.load(std::memory_order_relaxed);
    out.queue_depth_samples =
        live.queue_depth_samples.load(std::memory_order_relaxed);
    out.queue_depth_sum = live.queue_depth_sum.load(std::memory_order_relaxed);
    out.max_queue_depth = live.max_queue_depth.load(std::memory_order_relaxed);
    out.task_us_sum = live.task_us_sum.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < WorkerProfile::kNumLatencyBuckets; ++i)
      out.task_us_buckets[i] =
          live.task_us_buckets[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

std::size_t ThreadPool::pending_tasks() const noexcept {
  return impl_->pending_live.load(std::memory_order_relaxed);
}

void ThreadPool::settle_idle() const noexcept {
  const std::uint64_t now = profile_now_ns();
  for (Impl::WorkerCounters& worker : impl_->counters) {
    const std::uint64_t since =
        worker.idle_since.exchange(now, std::memory_order_relaxed);
    if (since != 0) {
      if (now > since)
        worker.idle_ns.fetch_add(now - since, std::memory_order_relaxed);
    } else {
      // The worker is inside a task body: it owes no idle time, so undo
      // the stamp we just planted — unless the task finished in between,
      // in which case the worker's own end-stamp already replaced it and
      // must win.
      std::uint64_t expected = now;
      worker.idle_since.compare_exchange_strong(expected, 0,
                                                std::memory_order_relaxed);
    }
  }
}
#endif  // SIMGEN_NO_TELEMETRY

}  // namespace simgen::util

#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <thread>

#include "util/mutex.hpp"

namespace simgen::util {

unsigned resolve_num_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

struct ThreadPool::Impl {
  /// One mutex-guarded deque per worker. The owner pops from the back
  /// (LIFO, cache-warm), thieves steal from the front (FIFO, so the
  /// oldest work travels). Each entry carries the epoch of the batch it
  /// was seeded for: a worker that went to sleep during batch N can wake
  /// and pop a batch-N+1 task before noticing the epoch bump, and the
  /// tag is what tells it to re-read batch_fn instead of invoking the
  /// (destroyed) previous batch's function.
  struct Item {
    std::uint64_t epoch;
    std::size_t task;
  };
  struct Queue {
    Mutex mutex;
    std::deque<Item> tasks SIMGEN_GUARDED_BY(mutex);
  };

  explicit Impl(unsigned num_threads) : queues(num_threads) {
    workers.reserve(num_threads);
    for (unsigned w = 0; w < num_threads; ++w)
      workers.emplace_back([this, w] { worker_loop(w); });
  }

  ~Impl() {
    {
      LockGuard lock(mutex);
      shutting_down = true;
    }
    work_available.notify_all();
    for (std::thread& worker : workers) worker.join();
  }

  void run_tasks(std::size_t num_tasks,
                 const std::function<void(std::size_t, unsigned)>& fn) {
    if (num_tasks == 0) return;
    const unsigned n = static_cast<unsigned>(workers.size());
    {
      LockGuard lock(mutex);
      batch_fn = &fn;
      pending = num_tasks;
      failed_task = num_tasks;  // sentinel: no failure yet
      failure = nullptr;
      ++epoch;  // wakes every worker exactly once per batch
      // Seed the deques block-cyclically so neighbouring (same-class,
      // similar-cone) tasks start on the same worker and stealing only
      // happens at the tail of the batch. The previous batch drained
      // completely (pending hit 0 implies every index was popped), so the
      // deques are empty here; clear() is belt and braces.
      const std::size_t block = (num_tasks + n - 1) / n;
      for (unsigned w = 0; w < n; ++w) {
        LockGuard queue_lock(queues[w].mutex);
        queues[w].tasks.clear();
        const std::size_t begin = static_cast<std::size_t>(w) * block;
        const std::size_t end = std::min(begin + block, num_tasks);
        for (std::size_t task = begin; task < end; ++task)
          queues[w].tasks.push_back(Item{epoch, task});
      }
    }
    work_available.notify_all();
    LockGuard lock(mutex);
    while (pending != 0) batch_done.wait(mutex);
    if (failure) {
      std::exception_ptr error = failure;
      failure = nullptr;
      std::rethrow_exception(error);
    }
  }

  /// Pops a task for worker \p self: own deque first, then steals.
  bool try_pop(unsigned self, Item& item) {
    {
      LockGuard lock(queues[self].mutex);
      if (!queues[self].tasks.empty()) {
        item = queues[self].tasks.back();
        queues[self].tasks.pop_back();
        return true;
      }
    }
    const unsigned n = static_cast<unsigned>(queues.size());
    for (unsigned offset = 1; offset < n; ++offset) {
      const unsigned victim = (self + offset) % n;
      LockGuard lock(queues[victim].mutex);
      if (!queues[victim].tasks.empty()) {
        item = queues[victim].tasks.front();
        queues[victim].tasks.pop_front();
        return true;
      }
    }
    return false;
  }

  void worker_loop(unsigned self) {
    std::uint64_t seen_epoch = 0;
    while (true) {
      const std::function<void(std::size_t, unsigned)>* fn = nullptr;
      {
        LockGuard lock(mutex);
        while (!shutting_down && epoch == seen_epoch) work_available.wait(mutex);
        if (shutting_down) return;
        seen_epoch = epoch;
        fn = batch_fn;
      }
      Item item{0, 0};
      while (try_pop(self, item)) {
        if (item.epoch != seen_epoch) {
          // Stale wake: we captured fn for an earlier batch, that batch
          // completed while we were descheduled, and this task belongs to
          // a batch issued since. The popped task holds its own batch
          // pending (run_tasks cannot return until it is executed and
          // decremented), so the current batch_fn is alive and is this
          // task's function — re-read it under the lock.
          LockGuard lock(mutex);
          seen_epoch = item.epoch;
          fn = batch_fn;
        }
        // No pool or queue lock is held across the task invocation: a
        // task is free to block (SAT calls run for seconds) or to submit
        // telemetry that takes unrelated locks, without stalling stealing
        // or the other workers. -Wthread-safety verifies this: fn is a
        // local copy, and every guarded access below reacquires `mutex`.
        const std::size_t task = item.task;
        try {
          (*fn)(task, self);
        } catch (...) {
          LockGuard lock(mutex);
          // Keep the lowest-index failure so rethrowing is deterministic
          // regardless of which worker hit its exception first.
          if (task < failed_task) {
            failed_task = task;
            failure = std::current_exception();
          }
        }
        LockGuard lock(mutex);
        if (--pending == 0) {
          batch_done.notify_all();
          break;
        }
      }
      // Deques drained (remaining tasks, if any, are in flight on other
      // workers and cannot be stolen): sleep until the next batch.
    }
  }

  /// Pool-wide batch state. `mutex` orders batch handoff (epoch bump +
  /// batch_fn publication) against worker wakes and completion counting;
  /// the per-queue mutexes above only guard their own deque.
  Mutex mutex;
  CondVar work_available;
  CondVar batch_done;
  std::vector<Queue> queues;    ///< Sized in the ctor, const thereafter.
  std::vector<std::thread> workers;  ///< Written only in ctor/dtor.
  /// Borrowed pointer to the caller's batch function. Valid from batch
  /// publication until `pending` hits 0 (run_tasks keeps the referent
  /// alive exactly that long); workers re-read it under `mutex` whenever
  /// a popped task's epoch tag disagrees with their wake epoch.
  const std::function<void(std::size_t, unsigned)>* batch_fn
      SIMGEN_GUARDED_BY(mutex) = nullptr;
  std::uint64_t epoch SIMGEN_GUARDED_BY(mutex) = 0;
  std::size_t pending SIMGEN_GUARDED_BY(mutex) = 0;
  std::size_t failed_task SIMGEN_GUARDED_BY(mutex) = 0;
  std::exception_ptr failure SIMGEN_GUARDED_BY(mutex) = nullptr;
  bool shutting_down SIMGEN_GUARDED_BY(mutex) = false;
};

ThreadPool::ThreadPool(unsigned num_threads)
    : impl_(new Impl(resolve_num_threads(num_threads))) {}

ThreadPool::~ThreadPool() { delete impl_; }

unsigned ThreadPool::num_threads() const noexcept {
  return static_cast<unsigned>(impl_->workers.size());
}

void ThreadPool::run_tasks(
    std::size_t num_tasks,
    const std::function<void(std::size_t, unsigned)>& fn) {
  impl_->run_tasks(num_tasks, fn);
}

}  // namespace simgen::util

/// \file thread_pool.hpp
/// \brief Work-stealing thread pool for the parallel sweep engine.
///
/// The sweeping flow produces batches of independent proof obligations
/// (one candidate pair, one fanin cone, one solver each); this pool runs
/// such a batch across a fixed set of worker threads and blocks the
/// caller until every task finished. Design constraints:
///
///  * Deterministic task identity: tasks are indices [0, n). The pool
///    guarantees nothing about *which* worker runs a task or in what
///    order — parallel callers must make each task a pure function of its
///    index and reduce the results in index order afterwards.
///  * Work stealing with per-worker deques guarded by plain mutexes. The
///    tasks this pool exists for are SAT calls (microseconds to seconds),
///    so queue overhead is noise; plain locks keep the pool trivially
///    ThreadSanitizer-clean.
///  * Exceptions propagate: if tasks throw, run_tasks rethrows the one
///    with the lowest task index on the calling thread, after all workers
///    have drained (so the failure surface is deterministic too).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace simgen::util {

/// Resolves a --threads style request: 0 means "auto" (the hardware
/// concurrency, at least 1), anything else is taken literally.
[[nodiscard]] unsigned resolve_num_threads(unsigned requested) noexcept;

/// Fixed-size pool of worker threads executing indexed task batches.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (0 = auto, see resolve_num_threads).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned num_threads() const noexcept;

  /// Runs fn(task_index, worker_index) for every task_index in
  /// [0, num_tasks), distributing the indices across the workers
  /// (block-cyclic seeding, then stealing). Blocks until all tasks are
  /// done. worker_index < num_threads() identifies the executing worker
  /// so callers can keep per-worker scratch (simulators, buffers) without
  /// locking. Rethrows the lowest-index task exception, if any.
  void run_tasks(std::size_t num_tasks,
                 const std::function<void(std::size_t, unsigned)>& fn);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace simgen::util

/// \file thread_pool.hpp
/// \brief Work-stealing thread pool for the parallel sweep engine.
///
/// The sweeping flow produces batches of independent proof obligations
/// (one candidate pair, one fanin cone, one solver each); this pool runs
/// such a batch across a fixed set of worker threads and blocks the
/// caller until every task finished. Design constraints:
///
///  * Deterministic task identity: tasks are indices [0, n). The pool
///    guarantees nothing about *which* worker runs a task or in what
///    order — parallel callers must make each task a pure function of its
///    index and reduce the results in index order afterwards.
///  * Work stealing with per-worker deques guarded by plain mutexes. The
///    tasks this pool exists for are SAT calls (microseconds to seconds),
///    so queue overhead is noise; plain locks keep the pool trivially
///    ThreadSanitizer-clean.
///  * Exceptions propagate: if tasks throw, run_tasks rethrows the one
///    with the lowest task index on the calling thread, after all workers
///    have drained (so the failure surface is deterministic too).
///  * Scheduler profiling (per-worker task/steal/latency/contention
///    accumulators, see profile()) is compiled out entirely under
///    SIMGEN_NO_TELEMETRY: the counters, the clock reads, and the
///    snapshot API all vanish, leaving the seed pool byte-for-byte.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

#ifndef SIMGEN_NO_TELEMETRY
#include <array>
#include <cstdint>
#endif

namespace simgen::util {

/// Resolves a --threads style request: 0 means "auto" (the hardware
/// concurrency, at least 1), anything else is taken literally.
[[nodiscard]] unsigned resolve_num_threads(unsigned requested) noexcept;

#ifndef SIMGEN_NO_TELEMETRY
/// Point-in-time snapshot of one worker's scheduler counters. All fields
/// accumulate over the pool's lifetime (across batches); the obs layer
/// diffs or rolls them up as needed. Latencies use the same log2
/// bucketing as obs::Histogram: bucket 0 holds the value 0, bucket
/// i >= 1 holds microsecond latencies in [2^(i-1), 2^i - 1].
struct WorkerProfile {
  static constexpr std::size_t kNumLatencyBuckets = 65;

  std::uint64_t tasks = 0;             ///< Tasks this worker executed.
  std::uint64_t steal_attempts = 0;    ///< Victim queues probed.
  std::uint64_t steal_successes = 0;   ///< Probes that yielded a task.
  std::uint64_t lock_acquires = 0;     ///< Queue-mutex acquisitions.
  std::uint64_t lock_blocks = 0;       ///< ... of which try_lock failed.
  std::uint64_t busy_ns = 0;           ///< Time inside task bodies.
  std::uint64_t idle_ns = 0;           ///< Time waiting or stealing.
  std::uint64_t queue_depth_samples = 0;  ///< Own-queue depth samples.
  std::uint64_t queue_depth_sum = 0;      ///< Sum over those samples.
  std::uint64_t max_queue_depth = 0;      ///< Largest depth observed.
  std::uint64_t task_us_sum = 0;          ///< Sum of task latencies (us).
  std::array<std::uint64_t, kNumLatencyBuckets> task_us_buckets{};
};

/// Snapshot of the whole pool: one WorkerProfile per worker plus the
/// batch count. Safe to take while batches are running (counters are
/// relaxed atomics underneath), so the watchdog can dump utilization
/// mid-sweep; a quiescent pool yields exact values.
struct PoolProfile {
  std::uint64_t batches = 0;
  std::vector<WorkerProfile> workers;

  /// Element-wise sum over workers (max for max_queue_depth).
  [[nodiscard]] WorkerProfile totals() const;
};
#endif  // SIMGEN_NO_TELEMETRY

/// Fixed-size pool of worker threads executing indexed task batches.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (0 = auto, see resolve_num_threads).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned num_threads() const noexcept;

  /// Runs fn(task_index, worker_index) for every task_index in
  /// [0, num_tasks), distributing the indices across the workers
  /// (block-cyclic seeding, then stealing). Blocks until all tasks are
  /// done. worker_index < num_threads() identifies the executing worker
  /// so callers can keep per-worker scratch (simulators, buffers) without
  /// locking. Rethrows the lowest-index task exception, if any.
  void run_tasks(std::size_t num_tasks,
                 const std::function<void(std::size_t, unsigned)>& fn);

#ifndef SIMGEN_NO_TELEMETRY
  /// Snapshots the per-worker scheduler counters. Callable at any time,
  /// including from other threads while a batch runs (relaxed reads of
  /// live accumulators — values may trail the workers slightly).
  [[nodiscard]] PoolProfile profile() const;

  /// Tasks of the current batch not yet finished (queued + in flight);
  /// 0 between batches. Readable asynchronously (heartbeats, watchdog).
  [[nodiscard]] std::size_t pending_tasks() const noexcept;

  /// Closes every worker's open idle interval — the tail since its last
  /// task ended (or since worker start, if it never ran one) — folding
  /// it into idle_ns as if the interval ended now. Without this, the
  /// trailing idle after a worker's final task is never accounted and
  /// utilization reads high for workers that finished early. Idempotent
  /// (settled time is never double-counted) and safe while a batch runs
  /// (a worker mid-task is left untouched), but meant to be called
  /// between batches, right before a final profile() snapshot.
  void settle_idle() const noexcept;
#endif

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace simgen::util

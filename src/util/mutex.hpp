/// \file mutex.hpp
/// \brief Annotated mutex / lock-guard / condition-variable wrappers.
///
/// Thin, zero-overhead wrappers over the std synchronization primitives
/// carrying the Clang Thread Safety Analysis attributes from
/// util/annotations.hpp. All multi-threaded SimGen code outside this
/// directory must use these instead of raw std::mutex/std::lock_guard —
/// the `simgen-no-naked-mutex` clang-tidy check enforces it — so that
/// `-Wthread-safety -Werror` (the static-analysis CI leg) can prove lock
/// discipline over every shared structure at compile time.
///
/// The condition-variable API is deliberately predicate-free:
///
///   util::LockGuard lock(mutex_);
///   while (pending_ != 0) done_.wait(mutex_);
///
/// Keeping the predicate loop in the caller means every read of guarded
/// state is in a scope the analysis can see under the held lock; a
/// predicate lambda would be analyzed as a separate unlocked function and
/// produce false positives on every guarded member it touches.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace simgen::util {

/// Annotated exclusive mutex. Same cost and semantics as std::mutex.
class SIMGEN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SIMGEN_ACQUIRE() { mutex_.lock(); }
  void unlock() SIMGEN_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() SIMGEN_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock for util::Mutex, annotated as a scoped capability so the
/// analysis treats the guarded scope as "mutex held".
class SIMGEN_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) SIMGEN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() SIMGEN_RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable working with util::Mutex. wait() atomically
/// releases and reacquires the mutex around the underlying wait, exactly
/// like std::condition_variable — the caller keeps (and the analysis
/// keeps believing in) its LockGuard across the call, which is sound
/// because the capability is held again whenever control is in the
/// caller's frame.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible: always wait in a
  /// `while (!predicate)` loop under the held lock).
  void wait(Mutex& mutex) SIMGEN_REQUIRES(mutex) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the caller's LockGuard remains the
    // one true owner. std::mutex carries no analysis attributes, so this
    // body needs no analysis escape.
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace simgen::util

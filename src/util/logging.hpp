/// \file logging.hpp
/// \brief Minimal leveled logging for the flow drivers and benches.
///
/// The library core never logs on hot paths; logging exists so the example
/// applications and experiment harnesses can narrate the sweeping flow.
/// printf-style formatting is used (the toolchain predates std::format).
#pragma once

#include <optional>
#include <string_view>

namespace simgen::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded. The
/// initial threshold is kWarn, overridable by the SIMGEN_LOG_LEVEL
/// environment variable ("debug", "info", "warn", "error", "off", or the
/// numeric levels 0-4) — an explicit set_log_level still wins afterwards.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses a level name or digit as accepted by SIMGEN_LOG_LEVEL; empty
/// optional on unrecognized input.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text) noexcept;

/// Emits one line to stderr if \p level passes the threshold. Lines carry
/// a wall-clock timestamp, severity tag, and thread tag — a small ordinal
/// assigned on the thread's first log line, plus the pool worker index
/// when the thread registered one (see set_thread_worker_index):
///   [simgen 12:34:56.789 info  t1] message        (plain thread)
///   [simgen 12:34:56.789 info  t3/w2] message     (pool worker 2)
/// Multithreaded sweep logs interleave; the tag is what makes each line
/// attributable to a worker lane.
void log_line(LogLevel level, std::string_view message);

/// Registers the calling thread as pool worker \p index (< 0 clears the
/// registration). Called by util::ThreadPool for its worker threads so
/// every log line from inside a pool task carries the worker index.
void set_thread_worker_index(int index) noexcept;
[[nodiscard]] int thread_worker_index() noexcept;  ///< -1 when unset.

/// printf-style logging at a given level.
[[gnu::format(printf, 2, 3)]]
void logf(LogLevel level, const char* fmt, ...);

[[gnu::format(printf, 1, 2)]] void debugf(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void infof(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void warnf(const char* fmt, ...);
[[gnu::format(printf, 1, 2)]] void errorf(const char* fmt, ...);

}  // namespace simgen::util

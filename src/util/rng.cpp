#include "util/rng.hpp"

namespace simgen::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

}  // namespace simgen::util

#include "util/dcheck.hpp"

#include <cstdio>
#include <cstdlib>

namespace simgen::util {

void dcheck_fail(const char* condition, const char* message, const char* file,
                 int line) noexcept {
  std::fprintf(stderr, "dcheck failed: %s (%s) at %s:%d\n", condition, message,
               file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace simgen::util

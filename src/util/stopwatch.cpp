#include "util/stopwatch.hpp"

// Stopwatch and ScopedTimer are header-only; this translation unit anchors
// the module library so every subsystem links the same object set.
namespace simgen::util {
namespace {
[[maybe_unused]] constexpr int kAnchor = 0;
}  // namespace
}  // namespace simgen::util

/// \file annotations.hpp
/// \brief Clang Thread Safety Analysis annotation macros.
///
/// Wrappers over Clang's `-Wthread-safety` attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so lock
/// discipline is *proven at compile time* instead of sampled at runtime:
/// TSan only catches the interleavings the test suite happens to
/// schedule, while these annotations make "member X is only touched under
/// mutex M" a compile error to violate, on every path, including the ones
/// no test reaches.
///
/// Usage pattern (see util/mutex.hpp for the annotated primitives):
///
///   class Coordinator {
///     util::Mutex mutex_;
///     std::vector<Item> items_ SIMGEN_GUARDED_BY(mutex_);
///     void push(Item item) {
///       util::LockGuard lock(mutex_);
///       items_.push_back(std::move(item));   // OK: lock held.
///     }
///     void drain_locked() SIMGEN_REQUIRES(mutex_);  // caller holds it.
///   };
///
/// Every macro expands to nothing on non-Clang compilers (GCC builds are
/// unaffected) and under SIMGEN_NO_THREAD_SAFETY_ANALYSIS_MACROS (escape
/// hatch for exotic toolchains). The analysis itself only runs when the
/// build adds `-Wthread-safety` (the `static-analysis` CI leg does, with
/// `-Werror`).
#pragma once

#if defined(__clang__) && !defined(SIMGEN_NO_THREAD_SAFETY_ANALYSIS_MACROS) && \
    defined(__has_attribute)
#if __has_attribute(capability)
#define SIMGEN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef SIMGEN_THREAD_ANNOTATION
#define SIMGEN_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex", "role", ...).
#define SIMGEN_CAPABILITY(x) SIMGEN_THREAD_ANNOTATION(capability(x))

/// Marks a RAII type that acquires a capability in its constructor and
/// releases it in its destructor (LockGuard).
#define SIMGEN_SCOPED_CAPABILITY SIMGEN_THREAD_ANNOTATION(scoped_lockable)

/// Data member: may only be read or written while holding \p x.
#define SIMGEN_GUARDED_BY(x) SIMGEN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding \p x
/// (the pointer itself is unguarded).
#define SIMGEN_PT_GUARDED_BY(x) SIMGEN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the caller must hold the capability (and still
/// holds it on return).
#define SIMGEN_REQUIRES(...) \
  SIMGEN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define SIMGEN_ACQUIRE(...) \
  SIMGEN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held.
#define SIMGEN_RELEASE(...) \
  SIMGEN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns \p result first arg.
#define SIMGEN_TRY_ACQUIRE(...) \
  SIMGEN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the capability held (it will take it
/// itself, or it must never block on it — e.g. a signal-adjacent path).
#define SIMGEN_EXCLUDES(...) \
  SIMGEN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to a capability (accessor pattern).
#define SIMGEN_RETURN_CAPABILITY(x) SIMGEN_THREAD_ANNOTATION(lock_returned(x))

/// Declares a required acquisition order between two capabilities.
#define SIMGEN_ACQUIRED_BEFORE(...) \
  SIMGEN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SIMGEN_ACQUIRED_AFTER(...) \
  SIMGEN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Turns the analysis off for one function. Use ONLY where the analysis
/// cannot express a sound pattern (the async-signal path in
/// obs/watchdog.cpp); every use must carry a comment saying why.
#define SIMGEN_NO_THREAD_SAFETY_ANALYSIS \
  SIMGEN_THREAD_ANNOTATION(no_thread_safety_analysis)

/// \file dcheck.hpp
/// \brief Cheap debug-build assertions for structural self-checking.
///
/// SIMGEN_DCHECK is the library's internal sanity-check primitive: active
/// in debug builds (NDEBUG not defined), compiled to nothing in release
/// builds, so hot paths can assert liberally. Unlike assert(), a failing
/// SIMGEN_DCHECK prints a formatted message with the source location
/// before aborting, which makes CI sanitizer logs actionable.
#pragma once

namespace simgen::util {

/// Prints "dcheck failed: <condition> (<message>) at <file>:<line>" to
/// stderr and aborts. Out of line so the macro expansion stays tiny.
[[noreturn]] void dcheck_fail(const char* condition, const char* message,
                              const char* file, int line) noexcept;

}  // namespace simgen::util

#ifndef NDEBUG
#define SIMGEN_DCHECK_ENABLED 1
/// Debug-build assertion with a human-readable message.
#define SIMGEN_DCHECK(condition, message)                                   \
  do {                                                                      \
    if (!(condition))                                                       \
      ::simgen::util::dcheck_fail(#condition, (message), __FILE__, __LINE__); \
  } while (false)
#else
#define SIMGEN_DCHECK_ENABLED 0
#define SIMGEN_DCHECK(condition, message) \
  do {                                    \
  } while (false)
#endif

/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (random simulation, random
/// decision policies, benchmark generation) draw from Rng so that every
/// experiment is reproducible from a single 64-bit seed. The generator is
/// xoshiro256** seeded via splitmix64, which has excellent statistical
/// quality at a fraction of the cost of std::mt19937_64.
#pragma once

#include <cstdint>
#include <string_view>

namespace simgen::util {

/// Scrambles a 64-bit value into a well-distributed 64-bit value.
/// Used for seeding and for deterministic name->seed hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a hash of a string; used to derive per-benchmark seeds from names.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// xoshiro256** pseudo-random generator.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can be used
/// with <random> distributions, though the convenience members below cover
/// every use inside this library.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose stream is fully determined by \p seed.
  explicit Rng(std::uint64_t seed = 0x5eedu) noexcept { reseed(seed); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x++);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  /// Next 64 uniformly random bits.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). \p bound must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw: true with probability \p p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Fair coin flip.
  bool flip() noexcept { return ((*this)() >> 63) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace simgen::util

/// \file stopwatch.hpp
/// \brief Wall-clock timing used by the sweeping flow and the benches.
///
/// All paper metrics that involve runtime (simulation runtime, SAT time)
/// are accumulated through Stopwatch so that the accounting is uniform.
#pragma once

#include <chrono>
#include <cstdint>

namespace simgen::util {

/// Monotonic stopwatch with pause/resume accumulation.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  /// Starts (or restarts) timing from zero.
  void start() noexcept {
    accumulated_ = Clock::duration::zero();
    lap_mark_ = Clock::time_point{};
    running_ = true;
    begin_ = Clock::now();
  }

  /// Resumes timing without clearing the accumulated total.
  void resume() noexcept {
    if (running_) return;
    running_ = true;
    begin_ = Clock::now();
  }

  /// Stops timing; elapsed time so far is retained.
  void stop() noexcept {
    if (!running_) return;
    accumulated_ += Clock::now() - begin_;
    running_ = false;
  }

  /// Total accumulated time in seconds.
  [[nodiscard]] double seconds() const noexcept {
    auto total = accumulated_;
    if (running_) total += Clock::now() - begin_;
    return std::chrono::duration<double>(total).count();
  }

  /// Total accumulated time in milliseconds.
  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

  /// Seconds elapsed since the previous lap() — or since start()/resume()
  /// if none — and advances the lap marker. The watch keeps running; only
  /// meaningful on a running watch. Used by the span tracer for
  /// inter-event spacing and by the benches for per-phase splits.
  [[nodiscard]] double lap() noexcept {
    const Clock::time_point now = Clock::now();
    const Clock::time_point mark =
        lap_mark_ == Clock::time_point{} ? begin_ : lap_mark_;
    lap_mark_ = now;
    return std::chrono::duration<double>(now - mark).count();
  }

 private:
  Clock::duration accumulated_{Clock::duration::zero()};
  Clock::time_point begin_{};
  Clock::time_point lap_mark_{};
  bool running_ = false;
};

/// RAII guard that resumes a stopwatch on construction and stops it on
/// destruction; used to attribute time to the paper's per-phase buckets.
class ScopedTimer {
 public:
  explicit ScopedTimer(Stopwatch& watch) noexcept : watch_(watch) {
    watch_.resume();
  }
  ~ScopedTimer() { watch_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch& watch_;
};

}  // namespace simgen::util

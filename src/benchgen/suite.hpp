/// \file suite.hpp
/// \brief The 42-benchmark evaluation suite and the stacked variants.
///
/// Names follow the paper's Table 2 (VTR / MCNC, EPFL, ITC'99). Interface
/// widths and styles are modeled on the original circuits; node counts are
/// scaled to laptop runtimes (see DESIGN.md, substitutions). Seeds derive
/// from the names, so the whole evaluation is reproducible bit-for-bit.
#pragma once

#include <span>
#include <string_view>

#include "benchgen/generator.hpp"

namespace simgen::benchgen {

/// All 42 benchmark specs, in the paper's Table 2 order.
[[nodiscard]] std::span<const CircuitSpec> benchmark_suite();

/// Looks up a spec by name; nullptr if unknown.
[[nodiscard]] const CircuitSpec* find_benchmark(std::string_view name);

/// A benchmark stacked on itself (paper Section 6.4, ABC &putontop).
struct StackedSpec {
  std::string_view base;  ///< Name of the base benchmark.
  unsigned copies = 1;    ///< Number of stacked instances.
};

/// The 9 stacked configurations of Table 2 (bottom), e.g. alu4 x 15.
[[nodiscard]] std::span<const StackedSpec> stacked_suite();

/// Generates the stacked AIG for one StackedSpec.
[[nodiscard]] aig::Aig generate_stacked(const StackedSpec& spec);

}  // namespace simgen::benchgen

#include "benchgen/generator.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace simgen::benchgen {
namespace {

using aig::Aig;
using aig::Lit;

/// Operand pool with recency bias: drawing mostly recent literals builds
/// depth, occasional old draws create reconvergent fanout.
class OperandPool {
 public:
  explicit OperandPool(util::Rng& rng) : rng_(rng) {}

  void push(Lit lit) { pool_.push_back(lit); }

  Lit draw() {
    // 70%: one of the most recent 24 literals; 30%: uniform over all.
    std::size_t index;
    if (pool_.size() > 24 && rng_.chance(0.7)) {
      index = pool_.size() - 1 - rng_.below(24);
    } else {
      index = rng_.below(pool_.size());
    }
    const Lit lit = pool_[index];
    return rng_.flip() ? aig::lit_not(lit) : lit;
  }

  /// A literal that is not (up to complement) \p avoid, when possible.
  Lit draw_other(Lit avoid) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const Lit lit = draw();
      if (aig::lit_node(lit) != aig::lit_node(avoid)) return lit;
    }
    return draw();
  }

  [[nodiscard]] std::size_t size() const noexcept { return pool_.size(); }
  [[nodiscard]] Lit at(std::size_t index) const { return pool_[index]; }

 private:
  util::Rng& rng_;
  std::vector<Lit> pool_;
};

/// Per-style opcode distribution (cumulative percentages).
struct OpMix {
  unsigned and_or = 50;   ///< 2-input and/or/nand/nor.
  unsigned xor_like = 15; ///< xor/xnor.
  unsigned mux = 15;      ///< 2:1 mux.
  unsigned maj = 5;       ///< majority-of-3.
  unsigned wide = 15;     ///< wide and/or macro (3..8 operands).
};

OpMix mix_for(CircuitStyle style) {
  switch (style) {
    case CircuitStyle::kControl:
      return OpMix{55, 5, 25, 2, 13};
    case CircuitStyle::kArithmetic:
      return OpMix{30, 40, 10, 15, 5};
    case CircuitStyle::kRandomLogic:
      return OpMix{35, 8, 7, 2, 48};
  }
  return OpMix{};
}

/// Emits one random gate and returns its literal.
Lit random_gate(Aig& graph, OperandPool& pool, util::Rng& rng, const OpMix& mix) {
  const unsigned roll = static_cast<unsigned>(rng.below(100));
  const Lit a = pool.draw();
  if (roll < mix.and_or) {
    const Lit b = pool.draw_other(a);
    const Lit base = graph.and2(a, b);
    return rng.flip() ? aig::lit_not(base) : base;  // and/nand (or via complements)
  }
  if (roll < mix.and_or + mix.xor_like) {
    const Lit b = pool.draw_other(a);
    return graph.xor2(a, b);
  }
  if (roll < mix.and_or + mix.xor_like + mix.mux) {
    const Lit s = pool.draw();
    const Lit t = pool.draw_other(s);
    const Lit e = pool.draw_other(s);
    return graph.mux(s, t, e);
  }
  if (roll < mix.and_or + mix.xor_like + mix.mux + mix.maj) {
    const Lit b = pool.draw_other(a);
    const Lit c = pool.draw_other(a);
    return graph.maj3(a, b, c);
  }
  // Wide and/or macro: biased deep signal, hard for random simulation.
  const unsigned width = 3 + static_cast<unsigned>(rng.below(6));
  Lit acc = a;
  for (unsigned i = 1; i < width; ++i) acc = graph.and2(acc, pool.draw_other(acc));
  return rng.flip() ? aig::lit_not(acc) : acc;  // wide-AND or wide-OR (De Morgan)
}

/// Rebuilds the cone of \p lit with PI \p var fixed to \p value
/// (structural cofactor). Memoized per call; constants fold away inside
/// and2, so the rebuilt cone differs structurally from the original.
Lit build_cofactor(Aig& graph, Lit lit, std::uint32_t var_node, bool value,
                   std::unordered_map<std::uint32_t, Lit>& memo) {
  const std::uint32_t node = aig::lit_node(lit);
  Lit result;
  if (node == var_node) {
    result = value ? aig::kLitTrue : aig::kLitFalse;
  } else if (!graph.is_and(node)) {
    result = aig::make_lit(node, false);
  } else if (const auto it = memo.find(node); it != memo.end()) {
    result = it->second;
  } else {
    const Lit f0 = build_cofactor(graph, graph.fanin0(node), var_node, value, memo);
    const Lit f1 = build_cofactor(graph, graph.fanin1(node), var_node, value, memo);
    result = graph.and2(f0, f1);
    memo.emplace(node, result);
  }
  return aig::lit_complemented(lit) ? aig::lit_not(result) : result;
}

/// PIs in the transitive fanin cone of \p lit.
std::vector<std::uint32_t> cone_pis(const Aig& graph, Lit lit) {
  std::vector<std::uint32_t> pis;
  std::vector<bool> seen(graph.num_nodes(), false);
  std::vector<std::uint32_t> stack{aig::lit_node(lit)};
  seen[stack[0]] = true;
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    if (graph.is_pi(node)) {
      pis.push_back(node);
      continue;
    }
    if (!graph.is_and(node)) continue;
    for (const Lit fanin : {graph.fanin0(node), graph.fanin1(node)}) {
      const std::uint32_t fanin_node = aig::lit_node(fanin);
      if (!seen[fanin_node]) {
        seen[fanin_node] = true;
        stack.push_back(fanin_node);
      }
    }
  }
  return pis;
}

/// Rebuilds \p target as a Shannon expansion over one of its support PIs:
/// mux(x, f|x=1, f|x=0). The result computes the same function through a
/// structurally independent top — the target's own output node is not in
/// the rebuilt cone, exactly like the duplicated logic real synthesis
/// flows leave behind. Falls back to \p target when no support PI exists.
Lit shannon_rebuild(Aig& graph, util::Rng& rng, Lit target) {
  const std::vector<std::uint32_t> support = cone_pis(graph, target);
  if (support.empty()) return target;
  const std::uint32_t var_node = support[rng.below(support.size())];
  std::unordered_map<std::uint32_t, Lit> memo0, memo1;
  const Lit c0 = build_cofactor(graph, target, var_node, false, memo0);
  const Lit c1 = build_cofactor(graph, target, var_node, true, memo1);
  return graph.mux(aig::make_lit(var_node, false), c1, c0);
}

/// Builds a functionally-equal, structurally-different re-expression of
/// \p target. Structural hashing cannot collapse any of these identities,
/// so the pair (target, result) lands in one simulation class and must be
/// proven by the sweeper. Shannon rebuilds dominate the mix: they produce
/// structurally *independent* equivalences (neither node in the other's
/// cone), the common case for real duplicated logic; the parasitic
/// absorption/xor identities are kept as a minority seasoning.
Lit redundant_copy(Aig& graph, OperandPool& pool, util::Rng& rng, Lit target) {
  switch (rng.below(4)) {
    case 0: {  // absorption: f == f & (f | g)
      const Lit g = pool.draw_other(target);
      return graph.and2(target, graph.or2(target, g));
    }
    case 1: {  // xor masking: f == (f ^ g) ^ g
      const Lit g = pool.draw_other(target);
      return graph.xor2(graph.xor2(target, g), g);
    }
    default:  // Shannon expansion (structurally independent)
      return shannon_rebuild(graph, rng, target);
  }
}

/// Builds a node equal to \p target everywhere except on one rare input
/// cube (an AND of 7..9 PI literals). Random simulation almost never
/// separates the pair; justification-based simulation can.
Lit near_miss_copy(Aig& graph, util::Rng& rng, Lit target) {
  const std::size_t num_pis = graph.num_pis();
  // Distinct PIs make the cube's on-probability exactly 2^-width; a
  // repeated PI with mixed polarity would fold the cube to constant 0
  // and the "decoy" would strash back into the target.
  const unsigned width = static_cast<unsigned>(
      std::min<std::size_t>(11 + rng.below(3), num_pis));
  std::vector<std::size_t> indices(num_pis);
  for (std::size_t i = 0; i < num_pis; ++i) indices[i] = i;
  Lit cube = aig::kLitTrue;
  for (unsigned i = 0; i < width; ++i) {
    const std::size_t pick = i + rng.below(num_pis - i);
    std::swap(indices[i], indices[pick]);
    const Lit pi = graph.pi_lit(indices[i]);
    cube = graph.and2(cube, rng.flip() ? aig::lit_not(pi) : pi);
  }
  // Perturb a structurally independent rebuild of the target (so the
  // decoy is not parasitically downstream of it), up or down:
  // f' = rebuild(f) | cube  or  f' = rebuild(f) & !cube.
  const Lit base = shannon_rebuild(graph, rng, target);
  return rng.flip() ? graph.or2(base, cube)
                    : graph.and2(base, aig::lit_not(cube));
}

}  // namespace

Aig generate_circuit(const CircuitSpec& spec) {
  const std::uint64_t seed =
      spec.seed != 0 ? spec.seed : util::splitmix64(util::fnv1a(spec.name));
  util::Rng rng(seed);
  Aig graph(spec.name);

  OperandPool pool(rng);
  for (unsigned i = 0; i < spec.num_pis; ++i)
    pool.push(graph.add_pi("pi" + std::to_string(i)));

  const OpMix mix = mix_for(spec.style);
  std::vector<Lit> redundant_outputs;
  while (graph.num_ands() < spec.num_gates) {
    Lit lit;
    const double roll = rng.uniform01();
    if (graph.num_ands() > 32 && roll < spec.redundancy) {
      // Re-express an existing signal; keep it in circulation so later
      // gates give the equivalent pair real fanout. Targets come from the
      // shallow third of the pool: synthesis redundancy is local, and the
      // resulting equivalence miters stay SAT-tractable (the paper's
      // sweeper proves thousands of such pairs in milliseconds).
      const Lit target = pool.at(rng.below(1 + pool.size() / 3));
      lit = redundant_copy(graph, pool, rng, target);
      redundant_outputs.push_back(lit);
    } else if (graph.num_ands() > 32 &&
               roll < spec.redundancy + spec.near_miss) {
      // Near-miss decoys may sit anywhere in the cone: disproving them is
      // a SAT (not UNSAT) query, which stays cheap at any depth.
      const Lit target = pool.at(rng.below(pool.size()));
      lit = near_miss_copy(graph, rng, target);
      redundant_outputs.push_back(lit);
    } else {
      lit = random_gate(graph, pool, rng, mix);
    }
    pool.push(lit);
  }

  // POs: dangling signals first (nothing generated should be dead), then
  // recent pool draws. Redundant outputs are prioritized so the injected
  // equivalences always stay inside the PO cones.
  std::vector<std::uint32_t> fanout_count(graph.num_nodes(), 0);
  graph.for_each_and([&](std::uint32_t node) {
    ++fanout_count[aig::lit_node(graph.fanin0(node))];
    ++fanout_count[aig::lit_node(graph.fanin1(node))];
  });
  std::vector<Lit> po_candidates;
  std::unordered_map<std::uint32_t, bool> po_taken;  // node -> already a PO
  const auto push_candidate = [&](Lit lit) {
    auto [it, inserted] = po_taken.emplace(aig::lit_node(lit), true);
    if (inserted) po_candidates.push_back(lit);
  };
  for (Lit lit : redundant_outputs)
    if (fanout_count[aig::lit_node(lit)] == 0) push_candidate(lit);
  graph.for_each_and([&](std::uint32_t node) {
    if (fanout_count[node] == 0) push_candidate(aig::make_lit(node, false));
  });
  std::size_t next_candidate = 0;
  for (unsigned i = 0; i < spec.num_pos; ++i) {
    Lit po;
    if (next_candidate < po_candidates.size()) {
      po = po_candidates[next_candidate++];
    } else {
      // Distinct PO drivers keep putontop stacks from folding away: a
      // duplicated PO literal would alias two inputs of the copy above.
      po = pool.draw();
      for (int attempt = 0; attempt < 16 && po_taken.contains(aig::lit_node(po));
           ++attempt)
        po = pool.draw();
      po_taken.emplace(aig::lit_node(po), true);
    }
    graph.add_po(po, "po" + std::to_string(i));
  }
  // Surplus dangling signals beyond num_pos are folded into the last POs
  // pairwise so no generated logic is unreachable from the outputs.
  if (next_candidate < po_candidates.size() && spec.num_pos > 0) {
    // Re-register extra candidates by XOR-compacting them into one extra PO.
    Lit acc = po_candidates[next_candidate++];
    while (next_candidate < po_candidates.size())
      acc = graph.xor2(acc, po_candidates[next_candidate++]);
    graph.add_po(acc, "po_compact");
  }
  graph.check_invariants();
  return graph;
}

net::Network generate_mapped(const CircuitSpec& spec,
                             const mapping::MapperOptions& mapper) {
  return mapping::map_to_luts(generate_circuit(spec), mapper);
}

}  // namespace simgen::benchgen

#include "benchgen/suite.hpp"

#include <stdexcept>
#include <vector>

#include "aig/putontop.hpp"

namespace simgen::benchgen {
namespace {

using enum CircuitStyle;

// Interface widths follow the original circuits (large ITC'99/EPFL
// interfaces are scaled down proportionally); gate counts are scaled to
// laptop runtimes. Styles: MCNC PLA-derived circuits are kRandomLogic,
// EPFL arithmetic is kArithmetic, ITC'99 and the EPFL control circuits
// are kControl.
// Arithmetic circuits are kept smaller than the control/PLA ones: their
// xor/majority-dominated miters are the classic worst case for CDCL (the
// paper's log2 row shows the same effect at 1.4e6 ms of SAT time).
const std::vector<CircuitSpec> kSuite = {
    {"alu4", 14, 8, 700, kRandomLogic, 0.06, 0.11, 0},
    {"apex1", 45, 45, 900, kRandomLogic, 0.06, 0.11, 0},
    {"apex2", 38, 3, 800, kRandomLogic, 0.07, 0.12, 0},
    {"apex3", 54, 50, 900, kRandomLogic, 0.06, 0.11, 0},
    {"apex4", 9, 19, 1200, kRandomLogic, 0.05, 0.10, 0},
    {"apex5", 114, 88, 700, kRandomLogic, 0.06, 0.11, 0},
    {"cordic", 23, 2, 600, kArithmetic, 0.06, 0.11, 0},
    {"cps", 24, 109, 700, kRandomLogic, 0.07, 0.12, 0},
    {"dalu", 75, 16, 600, kControl, 0.06, 0.11, 0},
    {"des", 180, 170, 1400, kControl, 0.05, 0.10, 0},
    {"e64", 65, 65, 400, kRandomLogic, 0.06, 0.11, 0},
    {"ex1010", 10, 10, 1700, kRandomLogic, 0.05, 0.10, 0},
    {"ex5p", 8, 63, 700, kRandomLogic, 0.06, 0.11, 0},
    {"i10", 160, 140, 1000, kControl, 0.06, 0.11, 0},
    {"k2", 45, 45, 700, kRandomLogic, 0.06, 0.11, 0},
    {"misex3", 14, 14, 800, kRandomLogic, 0.06, 0.11, 0},
    {"misex3c", 14, 14, 500, kRandomLogic, 0.06, 0.11, 0},
    {"pdc", 16, 40, 1500, kRandomLogic, 0.05, 0.10, 0},
    {"seq", 41, 35, 900, kRandomLogic, 0.06, 0.11, 0},
    {"spla", 16, 46, 1300, kRandomLogic, 0.05, 0.10, 0},
    {"table3", 14, 14, 800, kRandomLogic, 0.06, 0.11, 0},
    {"table5", 17, 15, 800, kRandomLogic, 0.06, 0.11, 0},
    {"sin", 24, 25, 1000, kArithmetic, 0.05, 0.10, 0},
    {"square", 64, 127, 900, kArithmetic, 0.05, 0.10, 0},
    {"arbiter", 128, 65, 2400, kControl, 0.05, 0.10, 0},
    {"dec", 8, 256, 400, kRandomLogic, 0.08, 0.12, 0},
    {"m_ctrl", 180, 160, 3200, kControl, 0.05, 0.10, 0},
    {"priority", 128, 8, 600, kControl, 0.07, 0.11, 0},
    {"voter", 120, 1, 1100, kArithmetic, 0.05, 0.10, 0},
    {"log2", 32, 32, 1300, kArithmetic, 0.05, 0.10, 0},
    {"b14_C", 90, 90, 1500, kControl, 0.05, 0.10, 0},
    {"b14_C2", 90, 90, 1400, kControl, 0.05, 0.10, 0},
    {"b15_C", 120, 120, 2400, kControl, 0.05, 0.10, 0},
    {"b15_C2", 120, 120, 2300, kControl, 0.05, 0.10, 0},
    {"b17_C", 200, 200, 4200, kControl, 0.04, 0.10, 0},
    {"b17_C2", 200, 200, 4000, kControl, 0.04, 0.10, 0},
    {"b20_C", 120, 120, 2700, kControl, 0.05, 0.10, 0},
    {"b20_C2", 120, 120, 2600, kControl, 0.05, 0.10, 0},
    {"b21_C", 120, 120, 2700, kControl, 0.05, 0.10, 0},
    {"b21_C2", 120, 120, 2600, kControl, 0.05, 0.10, 0},
    {"b22_C", 150, 150, 3400, kControl, 0.05, 0.10, 0},
    {"b22_C2", 150, 150, 3300, kControl, 0.05, 0.10, 0},
};

// Paper Table 2 (bottom): stacked benchmarks with their copy counts.
const std::vector<StackedSpec> kStacked = {
    {"alu4", 15},   {"square", 7},  {"arbiter", 15}, {"b15_C2", 8},
    {"b17_C", 5},   {"b17_C2", 5},  {"b20_C2", 8},   {"b21_C2", 8},
    {"b22_C", 6},
};

}  // namespace

std::span<const CircuitSpec> benchmark_suite() { return kSuite; }

const CircuitSpec* find_benchmark(std::string_view name) {
  for (const CircuitSpec& spec : kSuite)
    if (spec.name == name) return &spec;
  return nullptr;
}

std::span<const StackedSpec> stacked_suite() { return kStacked; }

aig::Aig generate_stacked(const StackedSpec& spec) {
  const CircuitSpec* base = find_benchmark(spec.base);
  if (base == nullptr)
    throw std::invalid_argument("generate_stacked: unknown benchmark " +
                                std::string(spec.base));
  return aig::put_on_top(generate_circuit(*base), spec.copies);
}

}  // namespace simgen::benchgen

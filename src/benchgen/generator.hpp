/// \file generator.hpp
/// \brief Deterministic synthetic circuit generation with injected
/// functional redundancy.
///
/// The VTR / EPFL / ITC'99 benchmark files the paper evaluates on are not
/// redistributable inside this repository, so the suite is reproduced by
/// construction: each named benchmark maps to a seeded generator spec
/// whose interface size and structural style follow the original circuit.
/// Two properties matter for the experiments and are engineered in:
///
///  1. Genuine internal equivalences. With probability `redundancy`, a new
///     node is a structurally different re-expression of an existing node
///     (absorption laws, xor-masking, mux duplication, Shannon expansion)
///     that structural hashing cannot collapse — SAT sweeping must prove
///     these, exactly like the redundancies real synthesis flows leave.
///
///  2. Random-resistant classes. Wide AND/OR macro gates create deeply
///     biased signals that uniform random simulation almost never toggles,
///     so distinct nodes share signatures for many rounds — the local
///     minimum of paper Figure 7 that guided simulation (RevS / SimGen)
///     exists to escape.
///
///  3. Near-miss decoys. With probability `near_miss`, a new node is a
///     copy of an existing signal perturbed only on a rare input cube
///     (f | AND(7..9 literals) or f & !AND(...)). The pair is NOT
///     equivalent, but uniform random patterns almost never hit the
///     separating cube, so the pair survives random refinement and — if
///     simulation cannot split it — costs a full SAT disproof. Guided
///     simulation can justify the rare cube directly; every decoy it
///     splits is a SAT call saved, which is precisely the effect the
///     paper's Tables 1-2 measure.
#pragma once

#include <cstdint>
#include <string>

#include "aig/aig.hpp"
#include "mapping/lut_mapper.hpp"
#include "network/network.hpp"

namespace simgen::benchgen {

/// Structural flavour of a generated circuit.
enum class CircuitStyle : std::uint8_t {
  kControl,     ///< mux/and-or dominated, moderate depth (ITC'99-like).
  kArithmetic,  ///< xor/maj dominated, deep (EPFL arithmetic-like).
  kRandomLogic, ///< wide-cube two-level flavour (MCNC PLA-like).
};

/// Recipe for one synthetic benchmark.
struct CircuitSpec {
  std::string name;
  unsigned num_pis = 16;
  unsigned num_pos = 8;
  unsigned num_gates = 500;    ///< Target AND-node count before mapping.
  CircuitStyle style = CircuitStyle::kControl;
  double redundancy = 0.06;    ///< Fraction of redundant re-expressions.
  double near_miss = 0.05;     ///< Fraction of near-miss decoy nodes.
  std::uint64_t seed = 0;      ///< 0 = derive from name.
};

/// Generates the AIG for \p spec. Deterministic: equal specs (including
/// seed derivation from the name) produce identical graphs.
[[nodiscard]] aig::Aig generate_circuit(const CircuitSpec& spec);

/// Convenience: generate and LUT-map in one step, mirroring the paper's
/// "if -K 6" preprocessing.
[[nodiscard]] net::Network generate_mapped(
    const CircuitSpec& spec, const mapping::MapperOptions& mapper = {});

}  // namespace simgen::benchgen

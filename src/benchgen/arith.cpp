#include "benchgen/arith.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace simgen::benchgen {
namespace {

using aig::Aig;
using aig::Lit;

/// prefix + index, built with += — GCC 12's -Wrestrict misfires on
/// concatenating a string literal with a std::to_string temporary at -O3
/// (GCC bug 105651).
std::string indexed(const char* prefix, unsigned index) {
  std::string name = prefix;
  name += std::to_string(index);
  return name;
}

struct FullAdder {
  Lit sum;
  Lit carry;
};

FullAdder full_adder(Aig& graph, Lit a, Lit b, Lit cin) {
  const Lit ab = graph.xor2(a, b);
  return FullAdder{graph.xor2(ab, cin),
                   graph.or2(graph.and2(a, b), graph.and2(ab, cin))};
}

struct AdderInputs {
  std::vector<Lit> a, b;
  Lit cin;
};

AdderInputs add_adder_inputs(Aig& graph, unsigned width) {
  AdderInputs in;
  for (unsigned i = 0; i < width; ++i)
    in.a.push_back(graph.add_pi(indexed("a", i)));
  for (unsigned i = 0; i < width; ++i)
    in.b.push_back(graph.add_pi(indexed("b", i)));
  in.cin = graph.add_pi("cin");
  return in;
}

/// Ripple chain over given inputs starting from \p carry; returns sums
/// and the final carry.
std::pair<std::vector<Lit>, Lit> ripple(Aig& graph, const std::vector<Lit>& a,
                                        const std::vector<Lit>& b, Lit carry) {
  std::vector<Lit> sums;
  sums.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const FullAdder fa = full_adder(graph, a[i], b[i], carry);
    sums.push_back(fa.sum);
    carry = fa.carry;
  }
  return {std::move(sums), carry};
}

void check_width(unsigned width) {
  if (width == 0) throw std::invalid_argument("arith: width must be positive");
}

}  // namespace

Aig build_ripple_carry_adder(unsigned width) {
  check_width(width);
  Aig graph(indexed("rca", width));
  const AdderInputs in = add_adder_inputs(graph, width);
  const auto [sums, cout] = ripple(graph, in.a, in.b, in.cin);
  for (unsigned i = 0; i < width; ++i)
    graph.add_po(sums[i], indexed("sum", i));
  graph.add_po(cout, "cout");
  return graph;
}

Aig build_carry_select_adder(unsigned width, unsigned block_width) {
  check_width(width);
  if (block_width == 0)
    throw std::invalid_argument("arith: block width must be positive");
  Aig graph(indexed("csa", width));
  const AdderInputs in = add_adder_inputs(graph, width);

  std::vector<Lit> sums;
  Lit carry = in.cin;
  for (unsigned base = 0; base < width; base += block_width) {
    const unsigned end = std::min(base + block_width, width);
    const std::vector<Lit> block_a(in.a.begin() + base, in.a.begin() + end);
    const std::vector<Lit> block_b(in.b.begin() + base, in.b.begin() + end);
    // Compute the block for both possible incoming carries, then select.
    const auto [sums0, carry0] = ripple(graph, block_a, block_b, aig::kLitFalse);
    const auto [sums1, carry1] = ripple(graph, block_a, block_b, aig::kLitTrue);
    for (std::size_t i = 0; i < sums0.size(); ++i)
      sums.push_back(graph.mux(carry, sums1[i], sums0[i]));
    carry = graph.mux(carry, carry1, carry0);
  }
  for (unsigned i = 0; i < width; ++i)
    graph.add_po(sums[i], indexed("sum", i));
  graph.add_po(carry, "cout");
  return graph;
}

Aig build_array_multiplier(unsigned width) {
  check_width(width);
  Aig graph(indexed("mul", width));
  std::vector<Lit> a, b;
  for (unsigned i = 0; i < width; ++i)
    a.push_back(graph.add_pi(indexed("a", i)));
  for (unsigned i = 0; i < width; ++i)
    b.push_back(graph.add_pi(indexed("b", i)));

  // Accumulate partial products row by row with ripple additions.
  // acc holds product bits [row .. row+width-1] plus a carry chain.
  std::vector<Lit> product(2 * width, aig::kLitFalse);
  std::vector<Lit> acc(width, aig::kLitFalse);  // running upper bits
  for (unsigned row = 0; row < width; ++row) {
    // Partial product row: a[i] & b[row].
    Lit carry = aig::kLitFalse;
    std::vector<Lit> next(width, aig::kLitFalse);
    for (unsigned i = 0; i < width; ++i) {
      const Lit pp = graph.and2(a[i], b[row]);
      const FullAdder fa = full_adder(graph, acc[i], pp, carry);
      if (i == 0)
        product[row] = fa.sum;
      else
        next[i - 1] = fa.sum;
      carry = fa.carry;
    }
    next[width - 1] = carry;
    acc = std::move(next);
  }
  for (unsigned i = 0; i < width; ++i) product[width + i] = acc[i];
  for (unsigned i = 0; i < 2 * width; ++i)
    graph.add_po(product[i], indexed("p", i));
  return graph;
}

Aig build_comparator(unsigned width) {
  check_width(width);
  Aig graph(indexed("cmp", width));
  std::vector<Lit> a, b;
  for (unsigned i = 0; i < width; ++i)
    a.push_back(graph.add_pi(indexed("a", i)));
  for (unsigned i = 0; i < width; ++i)
    b.push_back(graph.add_pi(indexed("b", i)));

  // MSB-first scan: lt/gt latch at the first differing bit.
  Lit lt = aig::kLitFalse;
  Lit gt = aig::kLitFalse;
  Lit eq = aig::kLitTrue;
  for (unsigned i = width; i-- > 0;) {
    const Lit ai = a[i];
    const Lit bi = b[i];
    lt = graph.or2(lt, graph.and2(eq, graph.and2(aig::lit_not(ai), bi)));
    gt = graph.or2(gt, graph.and2(eq, graph.and2(ai, aig::lit_not(bi))));
    eq = graph.and2(eq, graph.xnor2(ai, bi));
  }
  graph.add_po(lt, "lt");
  graph.add_po(eq, "eq");
  graph.add_po(gt, "gt");
  return graph;
}

Aig build_popcount(unsigned width) {
  check_width(width);
  Aig graph(indexed("popcount", width));
  std::vector<Lit> inputs;
  for (unsigned i = 0; i < width; ++i)
    inputs.push_back(graph.add_pi(indexed("x", i)));

  // Binary counter accumulation: add each input into a ripple counter.
  unsigned bits = 1;
  while ((1u << bits) < width + 1) ++bits;
  std::vector<Lit> count(bits, aig::kLitFalse);
  for (const Lit input : inputs) {
    Lit carry = input;
    for (unsigned i = 0; i < bits && carry != aig::kLitFalse; ++i) {
      const Lit sum = graph.xor2(count[i], carry);
      carry = graph.and2(count[i], carry);
      count[i] = sum;
    }
  }
  for (unsigned i = 0; i < bits; ++i)
    graph.add_po(count[i], indexed("c", i));
  return graph;
}

}  // namespace simgen::benchgen

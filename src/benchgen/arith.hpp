/// \file arith.hpp
/// \brief Structured arithmetic circuit builders.
///
/// Real adders, multipliers, and comparators with known functional
/// specifications. They complement the randomized suite in two roles:
/// as ground-truth circuits for tests (the AIG must compute word
/// arithmetic exactly), and as natural CEC workloads — two structurally
/// different implementations of the same arithmetic function are the
/// textbook equivalence-checking problem (see examples/adder_cec.cpp).
#pragma once

#include <cstdint>

#include "aig/aig.hpp"

namespace simgen::benchgen {

/// Ripple-carry adder: PIs a[0..width-1], b[0..width-1], cin; POs
/// sum[0..width-1], cout.
[[nodiscard]] aig::Aig build_ripple_carry_adder(unsigned width);

/// Carry-select adder over \p width bits (blocks of \p block_width,
/// each upper block computed for both carry values and selected).
/// Structurally very different from ripple-carry, functionally equal —
/// the intended CEC counterpart. Same interface as the ripple adder.
[[nodiscard]] aig::Aig build_carry_select_adder(unsigned width,
                                                unsigned block_width = 3);

/// Array multiplier: PIs a[0..width-1], b[0..width-1]; POs
/// p[0..2*width-1].
[[nodiscard]] aig::Aig build_array_multiplier(unsigned width);

/// Unsigned comparator: PIs a[...], b[...]; POs lt, eq, gt.
[[nodiscard]] aig::Aig build_comparator(unsigned width);

/// Population count of \p width inputs; POs are the binary count
/// (ceil(log2(width+1)) bits, LSB first). Built from full adders.
[[nodiscard]] aig::Aig build_popcount(unsigned width);

}  // namespace simgen::benchgen

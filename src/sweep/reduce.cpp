#include "sweep/reduce.hpp"

#include <vector>

namespace simgen::sweep {
namespace {

/// Union-find over node ids with the smallest id as representative (ids
/// are topological, so the representative is always the shallower node —
/// merging toward it can never create a cycle).
class UnionFind {
 public:
  explicit UnionFind(std::size_t size) : parent_(size) {
    for (std::size_t i = 0; i < size; ++i)
      parent_[i] = static_cast<net::NodeId>(i);
  }

  net::NodeId find(net::NodeId node) {
    while (parent_[node] != node) {
      parent_[node] = parent_[parent_[node]];
      node = parent_[node];
    }
    return node;
  }

  void merge(net::NodeId a, net::NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a < b)
      parent_[b] = a;
    else
      parent_[a] = b;
  }

 private:
  std::vector<net::NodeId> parent_;
};

/// Shared rebuild: \p representative maps every node to the node whose
/// logic should stand in for it (identity when nothing was merged).
net::Network rebuild(const net::Network& network,
                     const std::vector<net::NodeId>& representative,
                     ReductionStats* stats) {
  // Pass 1: mark the nodes reachable from the POs through representative
  // edges.
  std::vector<bool> needed(network.num_nodes(), false);
  std::vector<net::NodeId> stack;
  const auto require = [&](net::NodeId node) {
    const net::NodeId rep = representative[node];
    if (needed[rep]) return;
    needed[rep] = true;
    stack.push_back(rep);
  };
  for (const net::NodeId po : network.pos()) require(network.fanins(po)[0]);
  while (!stack.empty()) {
    const net::NodeId node = stack.back();
    stack.pop_back();
    for (const net::NodeId fanin : network.fanins(node)) require(fanin);
  }

  // Pass 2: rebuild in topological order. All PIs are preserved so the
  // interface stays intact even if some became dead.
  net::Network reduced(network.name());
  std::vector<net::NodeId> map(network.num_nodes(), net::kNullNode);
  std::size_t merged = 0;
  std::size_t removed = 0;
  network.for_each_node([&](net::NodeId id) {
    const auto& node = network.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi:
        map[id] = reduced.add_pi(node.name);
        break;
      case net::NodeKind::kConstant:
        if (needed[id]) map[id] = reduced.add_constant(node.constant_value);
        break;
      case net::NodeKind::kLut: {
        if (representative[id] != id) {
          ++merged;
          ++removed;
          map[id] = map[representative[id]];
          break;
        }
        if (!needed[id]) {
          ++removed;
          break;
        }
        std::vector<net::NodeId> fanins;
        fanins.reserve(node.fanins.size());
        for (const net::NodeId fanin : node.fanins)
          fanins.push_back(map[representative[fanin]]);
        map[id] = reduced.add_lut(fanins, node.function, node.name);
        break;
      }
      case net::NodeKind::kPo:
        map[id] = reduced.add_po(map[representative[node.fanins[0]]], node.name);
        break;
    }
  });
  reduced.check_invariants();
  if (stats != nullptr) {
    stats->merged_nodes = merged;
    stats->removed_luts = removed;
  }
  return reduced;
}

}  // namespace

net::Network reduce_network(
    const net::Network& network,
    std::span<const std::pair<net::NodeId, net::NodeId>> proven_pairs,
    ReductionStats* stats) {
  UnionFind classes(network.num_nodes());
  for (const auto& [a, b] : proven_pairs) classes.merge(a, b);
  std::vector<net::NodeId> representative(network.num_nodes());
  for (net::NodeId id{0}; id < network.num_nodes(); ++id)
    representative[id] = classes.find(id);
  return rebuild(network, representative, stats);
}

net::Network remove_dead_logic(const net::Network& network,
                               ReductionStats* stats) {
  std::vector<net::NodeId> identity(network.num_nodes());
  for (net::NodeId id{0}; id < network.num_nodes(); ++id) identity[id] = id;
  return rebuild(network, identity, stats);
}

}  // namespace simgen::sweep

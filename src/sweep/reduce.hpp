/// \file reduce.hpp
/// \brief Network reduction from proven equivalences.
///
/// Sweeping is not only a CEC accelerator: the paper's Section 2.2 lists
/// logic optimization, technology-mapping choices, and ECO synthesis as
/// its consumers. This module closes that loop: given the pairs a Sweeper
/// proved equivalent, it rebuilds the network with every class collapsed
/// onto one representative and all logic that became unreachable dropped.
#pragma once

#include <span>
#include <utility>

#include "network/network.hpp"

namespace simgen::sweep {

struct ReductionStats {
  std::size_t merged_nodes = 0;   ///< Nodes redirected to a representative.
  std::size_t removed_luts = 0;   ///< LUTs dropped (merged or unreachable).
};

/// Rebuilds \p network with each proven pair merged (the second node of
/// every pair is replaced by the first, transitively, via union-find on
/// the pairs) and dead logic removed. PIs and POs are preserved in order;
/// the result is functionally equivalent by construction *if* the pairs
/// are true equivalences — pass only SAT-proven pairs (Sweeper::proven_pairs).
[[nodiscard]] net::Network reduce_network(
    const net::Network& network,
    std::span<const std::pair<net::NodeId, net::NodeId>> proven_pairs,
    ReductionStats* stats = nullptr);

/// Convenience: removes only unreachable logic (no merging).
[[nodiscard]] net::Network remove_dead_logic(const net::Network& network,
                                             ReductionStats* stats = nullptr);

}  // namespace simgen::sweep

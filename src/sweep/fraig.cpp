#include "sweep/fraig.hpp"

#include "check/lint.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "sim/random_sim.hpp"

namespace simgen::sweep {

FraigResult fraig(const net::Network& network, const FraigOptions& options) {
  obs::Span fraig_span("fraig.run");
  SIMGEN_DEBUG_LINT(network, "fraig: input network");
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);

  sim::RandomSimOptions random_options;
  random_options.max_rounds = options.random_rounds;
  random_options.seed = options.seed;
  sim::run_random_simulation(simulator, classes, random_options);
  const std::uint64_t cost_after_random = classes.cost();

  if (options.use_guided_simulation && !classes.fully_refined()) {
    obs::Span guided_span("fraig.guided_sim");
    core::GuidedSimOptions guided;
    guided.strategy = options.guided_strategy;
    guided.iterations = options.guided_iterations;
    guided.seed = options.seed;
    core::run_guided_simulation(simulator, classes, guided);
    guided_span.arg("cost_after", static_cast<double>(classes.cost()));
  }
  const std::uint64_t cost_after_guided = classes.cost();

  SIMGEN_DEBUG_LINT(classes, network, &simulator,
                    "fraig: classes before sweeping");

  SweepOptions sweep_options = options.sweep;
  sweep_options.seed = options.seed;
  Sweeper sweeper(network, sweep_options);
  SweepResult sweep_stats = sweeper.run(classes, simulator);

  ReductionStats reduction;
  net::Network reduced;
  {
    obs::Span reduce_span("fraig.reduce");
    obs::PhaseScope reduce_phase(obs::PhaseId::kReduce);
    reduced = reduce_network(network, sweep_stats.proven_pairs, &reduction);
    reduce_span.arg("merged_nodes", static_cast<double>(reduction.merged_nodes));
    reduce_phase.set_result(reduction.merged_nodes, 0);
  }
  SIMGEN_DEBUG_LINT(reduced, "fraig: reduced network");

  fraig_span.arg("cost_after_random", static_cast<double>(cost_after_random));
  fraig_span.arg("cost_after_guided", static_cast<double>(cost_after_guided));
  return FraigResult{std::move(reduced), std::move(sweep_stats), reduction,
                     cost_after_random, cost_after_guided};
}

}  // namespace simgen::sweep

/// \file sweeper.hpp
/// \brief SAT sweeping: prove or refute candidate node equivalences.
///
/// The verification half of the paper's Figure 2 flow. The sweeper walks
/// the simulation-equivalence classes, picks (representative, candidate)
/// pairs, and asks the SAT solver for an input on which they differ:
///  * UNSAT — the pair is proven equivalent; the candidate is merged into
///    the representative (and, optionally, an equality clause strengthens
///    future proofs, fraig-style);
///  * SAT — the model is a counterexample the random generator could not
///    produce; it is simulated back through the network to split this and
///    other classes (with optional 1-distance neighbours, cf. Mishchenko
///    et al.).
/// SAT calls and SAT time are counted exactly as reported in the paper's
/// Table 2 / Figures 5-6.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "check/drat.hpp"
#include "network/network.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"
#include "sim/eqclass.hpp"
#include "sim/simulator.hpp"

namespace simgen::sweep {

struct SweepOptions {
  std::uint64_t seed = 1;
  /// Per-call conflict budget; 0 = unlimited. Pairs hitting the budget are
  /// dropped from their class and counted as unresolved.
  std::uint64_t conflict_limit = 0;
  /// Conflict budget for the CEC output proofs, separate from
  /// conflict_limit: output proofs are must-decide, so 0 (unlimited) is
  /// the correct default even when candidate pairs run under a tight
  /// budget. An output proof that still hits this budget makes the CEC
  /// verdict "undecided" (see CecResult), never a crash.
  std::uint64_t output_proof_conflict_limit = 0;
  /// Sweep worker threads. 1 (the default) runs the sequential engine,
  /// byte-identical to previous releases; 0 means one worker per hardware
  /// thread; N >= 2 runs the round-based parallel engine, whose results
  /// are a deterministic function of the seed alone — identical for every
  /// thread count >= 2 (see DESIGN.md "Parallel sweeping").
  unsigned num_threads = 1;
  /// Add (a == b) clauses for proven pairs to speed up later proofs.
  bool add_equality_clauses = true;
  /// Fill the 63 spare pattern slots of a counterexample word with
  /// 1-distance neighbours (single random PI flips, cf. Mishchenko et
  /// al.) before resimulating. On by default: the neighbourhood patterns
  /// split many classes per disproof and keep sweeping tractable, exactly
  /// like the counterexample packing production sweepers perform.
  bool distance_one_fill = true;
  /// Log a DRAT proof of every solver derivation and independently
  /// certify each UNSAT verdict with the in-repo backward checker before
  /// trusting it (see src/check/drat.hpp). An uncertifiable verdict
  /// throws std::logic_error instead of silently merging a class.
  bool certify = false;
  /// Seconds between heartbeat progress lines (classes live, nodes
  /// resolved, SAT calls, ETA) during run(). Printed at info level and
  /// journaled as kHeartbeat events; 0 disables.
  double progress_interval = 0.0;
  /// Run the solver's inprocessing layer (subsumption, vivification,
  /// failed-literal probing, ...) between restarts. Equivalence-
  /// preserving passes only on the sweeping encoding (every encoder
  /// variable is frozen), so verdicts and counterexamples are unaffected;
  /// off reproduces the plain CDCL behaviour (--no-inprocess escape
  /// hatch in the CLI tools).
  bool inprocess = true;
  /// Guided-simulation strategy arm (core::Strategy numeric value) that
  /// produced the classes being swept. Purely observational: recorded as
  /// the sub-code of every kConeFingerprint journal event so the SAT
  /// hardness report can bucket solve cost by arm.
  std::uint8_t strategy_code = 0;
};

/// Structural fingerprint of the combined transitive-fanin cone of up to
/// two roots — the shape handed to the SAT solver for one call, captured
/// so the hardness report can correlate solve cost with cone structure.
struct ConeFingerprint {
  std::uint64_t support = 0;  ///< Distinct PIs in the cone.
  std::uint64_t nodes = 0;    ///< Distinct internal (LUT) nodes, roots included.
  std::uint64_t depth = 0;    ///< Max logic level over the roots.
};

/// Walks the combined fanin cone of \p a (and \p b unless kNullNode).
[[nodiscard]] ConeFingerprint fingerprint_cone(const net::Network& network,
                                               net::NodeId a,
                                               net::NodeId b = net::kNullNode);

/// Journals one kConeFingerprint event for the SAT call keyed by
/// (\p journal_a, \p journal_b, \p output_proof) — the same key the
/// adjacent kSatCall event carries, so the inspector joins them without
/// relying on event adjacency. The cone is fingerprinted from the roots
/// \p root_a / \p root_b (for candidate pairs these equal the journal
/// key; for output proofs the key is the PO ordinal while the root is
/// the miter PO node). No-op when no journal is recording.
void emit_cone_fingerprint(const net::Network& network, net::NodeId root_a,
                           net::NodeId root_b, std::uint64_t journal_a,
                           std::uint64_t journal_b, std::uint8_t strategy_code,
                           bool output_proof);

struct SweepResult {
  std::uint64_t sat_calls = 0;
  std::uint64_t proven_equivalent = 0;   ///< UNSAT outcomes.
  std::uint64_t disproven = 0;           ///< SAT outcomes (counterexamples).
  std::uint64_t unresolved = 0;          ///< Conflict-limited outcomes.
  std::uint64_t certified_unsat = 0;     ///< UNSAT verdicts DRAT-certified.
  std::uint64_t inprocess_runs = 0;      ///< Solver inprocessing runs.
  double sat_seconds = 0.0;              ///< Time inside Solver::solve only.
  std::uint64_t resimulations = 0;
  std::vector<std::pair<net::NodeId, net::NodeId>> proven_pairs;
};

/// Incremental SAT sweeping over one network. The solver and encoder
/// persist across calls, so cones are encoded once and learned clauses
/// carry over — sweeping a class pair-by-pair stays cheap.
class Sweeper {
 public:
  Sweeper(const net::Network& network, SweepOptions options);

  /// Sweeps until every class is gone: all candidate pairs proven
  /// equivalent, split by counterexamples, or dropped as unresolved.
  /// \p simulator is used for counterexample resimulation.
  SweepResult run(sim::EquivClasses& classes, sim::Simulator& simulator);

  /// Proves or refutes a single pair. Returns the raw solver verdict and,
  /// for SAT, leaves the counterexample accessible via last_model_vector().
  sat::Result check_pair(net::NodeId a, net::NodeId b);

  /// PI vector of the last SAT verdict. PIs outside the solved cone
  /// (unencoded) are filled with random bits drawn from a stream keyed
  /// only by (options.seed, salt) — never from shared sweeper state — so
  /// the same solve yields byte-identical witnesses regardless of what
  /// was solved before it. Callers pass a distinct salt per logical
  /// witness (the CEC output path uses the PO id).
  [[nodiscard]] std::vector<bool> last_model_vector(std::uint64_t salt = 0);

  [[nodiscard]] sat::Solver& solver() noexcept { return solver_; }
  [[nodiscard]] sat::CnfEncoder& encoder() noexcept { return encoder_; }
  [[nodiscard]] const SweepResult& totals() const noexcept { return totals_; }

  /// The attached proof certifier; nullptr unless options.certify is set.
  [[nodiscard]] const check::Certifier* certifier() const noexcept {
    return certifier_.get();
  }

  /// Certifies one UNSAT verdict given under \p assumptions; throws
  /// std::logic_error if the logged proof does not check out. No-op
  /// without an attached certifier. Used internally after every UNSAT
  /// pair and by the CEC driver for the output proofs. \p journal_a /
  /// \p journal_b / \p output_proof only annotate the kCertified journal
  /// event (the target pair, or the PO index for output proofs).
  void certify_unsat(std::span<const sat::Lit> assumptions,
                     std::uint64_t journal_a = 0, std::uint64_t journal_b = 0,
                     bool output_proof = false);

 private:
  /// Seed of the deterministic witness stream for one SAT outcome: a pure
  /// function of (options.seed, a, b). The pre-block sweeper drew witness
  /// fill bits from the shared member Rng, which made every witness
  /// depend on how many draws *earlier* pairs had consumed — disprove an
  /// unrelated pair first and the next witness changed bytes. Keying the
  /// stream per call removes that history dependence (regression:
  /// SweeperTest.WitnessIsHistoryIndependent).
  [[nodiscard]] std::uint64_t witness_seed(std::uint64_t a,
                                           std::uint64_t b) const noexcept;

  void resimulate_counterexample(std::span<const sim::PatternWord> pi_words,
                                 sim::EquivClasses& classes,
                                 sim::Simulator& simulator);

  /// The round-based parallel engine behind run() when the resolved
  /// thread count is >= 2: snapshots all candidate pairs, discharges each
  /// on a worker with its own cone-local solver/encoder, and applies the
  /// outcomes in deterministic task order.
  SweepResult run_parallel(sim::EquivClasses& classes,
                           sim::Simulator& simulator, unsigned num_threads);

  /// Totals accumulated since \p before, as returned by run().
  [[nodiscard]] SweepResult delta_since(const SweepResult& before) const;

  const net::Network& network_;
  SweepOptions options_;
  sat::Solver solver_;
  // The certifier mirrors every clause the solver sees, so it must be
  // attached before the encoder (or anything else) can add clauses.
  std::unique_ptr<check::Certifier> certifier_;
  sat::CnfEncoder encoder_;
  SweepResult totals_;  ///< Accumulated across run() and check_pair() calls.
};

}  // namespace simgen::sweep

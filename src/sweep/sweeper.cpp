#include "sweep/sweeper.hpp"

#include <span>
#include <stdexcept>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/pool_obs.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace simgen::sweep {

namespace {

obs::SatVerdict to_verdict(sat::Result result) noexcept {
  switch (result) {
    case sat::Result::kSat: return obs::SatVerdict::kSat;
    case sat::Result::kUnsat: return obs::SatVerdict::kUnsat;
    case sat::Result::kUnknown: return obs::SatVerdict::kUnknown;
  }
  return obs::SatVerdict::kUnknown;
}

/// One counterexample as simulation words: pattern 0 is the SAT model
/// (unencoded PIs filled from \p rng, so every PI has a deterministic
/// value — nothing is inherited from whatever pattern occupied the word
/// before), patterns 1..63 optionally flip one random PI each (1-distance
/// neighbours, cf. Mishchenko et al.). Shared by the sequential engine
/// and the parallel workers; \p rng must be freshly seeded per witness
/// (Sweeper::witness_seed or the task stream) to keep witnesses
/// history-independent.
std::vector<sim::PatternWord> build_witness_words(const net::Network& network,
                                                  const sat::CnfEncoder& encoder,
                                                  const sat::Solver& solver,
                                                  bool distance_one_fill,
                                                  util::Rng& rng) {
  const std::size_t num_pis = network.num_pis();
  std::vector<sim::PatternWord> words(num_pis, 0);
  for (std::size_t i = 0; i < num_pis; ++i) {
    const net::NodeId pi = network.pis()[i];
    const bool bit = encoder.is_encoded(pi)
                         ? solver.model_value(encoder.var_of(pi))
                         : rng.flip();
    if (bit) words[i] = ~sim::PatternWord{0};
  }
  if (distance_one_fill && num_pis > 0) {
    for (unsigned pattern = 1; pattern < 64; ++pattern) {
      const std::size_t flip = rng.below(num_pis);
      words[flip] ^= sim::PatternWord{1} << pattern;
    }
  }
  return words;
}

}  // namespace

ConeFingerprint fingerprint_cone(const net::Network& network, net::NodeId a,
                                 net::NodeId b) {
  ConeFingerprint fp;
  std::vector<bool> visited(network.num_nodes(), false);
  std::vector<net::NodeId> stack;
  const auto push_root = [&](net::NodeId root) {
    if (root == net::kNullNode) return;
    stack.push_back(root);
    const std::uint64_t level = network.level(root);
    if (level > fp.depth) fp.depth = level;
  };
  push_root(a);
  push_root(b);
  while (!stack.empty()) {
    const net::NodeId node = stack.back();
    stack.pop_back();
    if (visited[node]) continue;
    visited[node] = true;
    if (network.is_pi(node)) {
      ++fp.support;
      continue;
    }
    if (network.is_constant(node)) continue;
    if (network.is_lut(node)) ++fp.nodes;
    for (const net::NodeId fanin : network.fanins(node)) stack.push_back(fanin);
  }
  return fp;
}

void emit_cone_fingerprint(const net::Network& network, net::NodeId root_a,
                           net::NodeId root_b, std::uint64_t journal_a,
                           std::uint64_t journal_b, std::uint8_t strategy_code,
                           bool output_proof) {
  if (!obs::journal_enabled()) return;
  const ConeFingerprint fp = fingerprint_cone(network, root_a, root_b);
  obs::journal_emit(obs::EventKind::kConeFingerprint, strategy_code, journal_a,
                    journal_b, fp.support, fp.nodes, fp.depth, 0, 0,
                    output_proof ? 1 : 0);
}

Sweeper::Sweeper(const net::Network& network, SweepOptions options)
    : network_(network),
      options_(options),
      certifier_(options.certify ? std::make_unique<check::Certifier>(solver_)
                                 : nullptr),
      encoder_(network, solver_) {
  solver_.set_conflict_limit(options_.conflict_limit);
  if (!options_.inprocess) {
    sat::InprocessConfig config = solver_.inprocess_config();
    config.enabled = false;
    solver_.set_inprocess_config(config);
  }
}

void Sweeper::certify_unsat(std::span<const sat::Lit> assumptions,
                            std::uint64_t journal_a, std::uint64_t journal_b,
                            bool output_proof) {
  if (!certifier_) return;
  const bool journal = obs::journal_enabled();
  std::uint64_t lemmas0 = 0, rups0 = 0, props0 = 0;
  util::Stopwatch watch;
  if (journal) {
    const check::DratStats& stats = certifier_->stats();
    lemmas0 = stats.checked_lemmas.value();
    rups0 = stats.rup_checks.value();
    props0 = stats.propagations.value();
    watch.start();
  }
  const bool ok = certifier_->certify_unsat(assumptions);
  if (journal) {
    const check::DratStats& stats = certifier_->stats();
    obs::journal_emit(obs::EventKind::kCertified, ok ? 1 : 0, journal_a,
                      journal_b, stats.checked_lemmas.value() - lemmas0,
                      stats.rup_checks.value() - rups0,
                      stats.propagations.value() - props0, 0,
                      obs::saturate_us(watch.seconds()),
                      output_proof ? 1 : 0);
  }
  if (!ok)
    throw std::logic_error(
        "sweeper: UNSAT verdict failed DRAT certification");
  ++totals_.certified_unsat;
  static obs::Counter& certified = obs::counter("sweep.certified_unsat");
  certified.inc();
}

sat::Result Sweeper::check_pair(net::NodeId a, net::NodeId b) {
  // Solver cost baselines for the journal's per-call deltas; the
  // num_vars delta across encode+solve is the newly encoded cone size.
  const bool journal = obs::journal_enabled();
  std::uint64_t conflicts0 = 0, props0 = 0, decisions0 = 0, learned0 = 0;
  std::uint64_t vars0 = 0;
  if (journal) {
    const sat::SolverStats& stats = solver_.stats();
    conflicts0 = stats.conflicts.value();
    props0 = stats.propagations.value();
    decisions0 = stats.decisions.value();
    learned0 = stats.learned_clauses.value();
    vars0 = solver_.num_vars();
  }

  const sat::Var var_a = encoder_.ensure_encoded(a);
  const sat::Var var_b = encoder_.ensure_encoded(b);

  // Fresh miter variable t <-> (a xor b); one solve call per pair, as the
  // paper counts SAT calls.
  const sat::Var t = solver_.new_var();
  solver_.set_frozen(t);  // pinned by later solves; BVE must not touch it
  solver_.add_clause({sat::neg(t), sat::pos(var_a), sat::pos(var_b)});
  solver_.add_clause({sat::neg(t), sat::neg(var_a), sat::neg(var_b)});
  solver_.add_clause({sat::pos(t), sat::pos(var_a), sat::neg(var_b)});
  solver_.add_clause({sat::pos(t), sat::neg(var_a), sat::pos(var_b)});

  emit_cone_fingerprint(network_, a, b, a, b, options_.strategy_code,
                        /*output_proof=*/false);
#ifndef SIMGEN_NO_TELEMETRY
  solver_.set_introspection_context(a, b, /*output_proof=*/false);
#endif
  util::Stopwatch watch;
  watch.start();
  sat::Result verdict;
  const std::uint64_t inprocess_before = solver_.stats().inprocess_runs.value();
  {
    obs::Span solve_span("sweep.sat_solve");
    verdict = solver_.solve({sat::pos(t)});
    solve_span.arg("conflicts",
                   static_cast<double>(solver_.stats().conflicts.value()));
  }
  watch.stop();
  totals_.inprocess_runs +=
      solver_.stats().inprocess_runs.value() - inprocess_before;
#ifndef SIMGEN_NO_TELEMETRY
  solver_.clear_introspection_context();
#endif
  ++totals_.sat_calls;
  totals_.sat_seconds += watch.seconds();
  static obs::Counter& sat_calls = obs::counter("sweep.sat_calls");
  sat_calls.inc();

  if (journal) {
    const sat::SolverStats& stats = solver_.stats();
    obs::journal_emit(
        obs::EventKind::kSatCall,
        static_cast<std::uint8_t>(to_verdict(verdict)), a, b,
        stats.conflicts.value() - conflicts0,
        stats.propagations.value() - props0,
        stats.decisions.value() - decisions0,
        obs::pack_cone_learned(solver_.num_vars() - vars0,
                               stats.learned_clauses.value() - learned0),
        obs::saturate_us(watch.seconds()));
  }

  switch (verdict) {
    case sat::Result::kUnsat: {
      // Certify before trusting: the merge (and the equality clauses
      // strengthening later proofs) must rest on a checked derivation.
      const sat::Lit assumption = sat::pos(t);
      certify_unsat({&assumption, 1}, a, b);
      if (journal) obs::journal_emit(obs::EventKind::kClassMerged, 0, a, b);
      ++totals_.proven_equivalent;
      totals_.proven_pairs.emplace_back(a, b);
      static obs::Counter& proven = obs::counter("sweep.proven");
      proven.inc();
      if (options_.add_equality_clauses) {
        solver_.add_clause({sat::pos(var_a), sat::neg(var_b)});
        solver_.add_clause({sat::neg(var_a), sat::pos(var_b)});
        static obs::Counter& eq_clauses = obs::counter("sweep.equality_clauses");
        eq_clauses.inc(2);
      }
      // The t-miter of a proven pair is dead weight; pin it false so the
      // solver never branches on it again.
      solver_.add_clause({sat::neg(t)});
      break;
    }
    case sat::Result::kSat: {
      ++totals_.disproven;
      static obs::Counter& disproven = obs::counter("sweep.disproven");
      disproven.inc();
      break;
    }
    case sat::Result::kUnknown: {
      ++totals_.unresolved;
      static obs::Counter& unresolved = obs::counter("sweep.unresolved");
      unresolved.inc();
      solver_.add_clause({sat::neg(t)});
      break;
    }
  }
  return verdict;
}

std::uint64_t Sweeper::witness_seed(std::uint64_t a,
                                    std::uint64_t b) const noexcept {
  return util::splitmix64(options_.seed ^ 0x5feeb001dull) ^
         util::splitmix64((a + 1) * 0x9e3779b97f4a7c15ull) ^
         util::splitmix64((b + 2) * 0xbf58476d1ce4e5b9ull);
}

std::vector<bool> Sweeper::last_model_vector(std::uint64_t salt) {
  util::Rng rng(witness_seed(salt, ~std::uint64_t{0}));
  std::vector<bool> vector(network_.num_pis());
  for (std::size_t i = 0; i < network_.num_pis(); ++i) {
    const net::NodeId pi = network_.pis()[i];
    vector[i] = encoder_.is_encoded(pi)
                    ? solver_.model_value(encoder_.var_of(pi))
                    : rng.flip();
  }
  return vector;
}

void Sweeper::resimulate_counterexample(
    std::span<const sim::PatternWord> pi_words, sim::EquivClasses& classes,
    sim::Simulator& simulator) {
  {
    obs::PatternScope scope(obs::PatternSource::kCounterexample, 1);
    simulator.simulate_word(pi_words);
    classes.refine(simulator);
  }
  ++totals_.resimulations;
  static obs::Counter& resims = obs::counter("sweep.resimulations");
  resims.inc();
  obs::Tracer::instance().instant("sweep.counterexample");
}

SweepResult Sweeper::run(sim::EquivClasses& classes, sim::Simulator& simulator) {
  const unsigned num_threads = util::resolve_num_threads(options_.num_threads);
  if (num_threads > 1) return run_parallel(classes, simulator, num_threads);

  obs::Span span("sweep.run");
  obs::PhaseScope phase(obs::PhaseId::kSweep);
  span.arg("classes_in", static_cast<double>(classes.num_classes()));
  const SweepResult before = totals_;

  // Live progress, readable by the heartbeat below and by the watchdog
  // thread's state dump.
  obs::SweepProgress& progress = obs::sweep_progress();
  const std::uint64_t initial_live = classes.num_live_nodes();
  progress.begin(initial_live, classes.num_classes());
  util::Stopwatch watch;
  watch.start();
  double next_heartbeat = options_.progress_interval;

  while (!classes.fully_refined()) {
    // Prove pairs in topological order (shallowest candidate first), the
    // fraig sweep schedule: equality clauses learned for shallow pairs
    // become lemmas that keep the deep miters tractable.
    sim::ClassId best_class{0};
    net::NodeId best_candidate = net::kNullNode;
    for (sim::ClassId c{0}; c < classes.num_classes(); ++c) {
      const net::NodeId candidate_here = classes.class_members(c)[1];
      if (candidate_here < best_candidate) {
        best_candidate = candidate_here;
        best_class = c;
      }
    }
    const auto members = classes.class_members(best_class);
    const net::NodeId representative = members[0];
    const net::NodeId candidate = members[1];
    const sat::Result verdict = check_pair(representative, candidate);
    switch (verdict) {
      case sat::Result::kUnsat:
        // Proven equivalent: merge the candidate into the representative.
        classes.remove_node(candidate);
        break;
      case sat::Result::kSat: {
        // Counterexample: by construction it distinguishes the pair, so
        // refinement is guaranteed to make progress on this class. The
        // witness stream is keyed per pair, like the parallel engine's
        // per-task streams.
        util::Rng rng(witness_seed(representative, candidate));
        resimulate_counterexample(
            build_witness_words(network_, encoder_, solver_,
                                options_.distance_one_fill, rng),
            classes, simulator);
        break;
      }
      case sat::Result::kUnknown:
        classes.remove_node(candidate);
        break;
    }

    const std::uint64_t live = classes.num_live_nodes();
    const std::uint64_t resolved = initial_live - live;
    progress.live_nodes.store(live, std::memory_order_relaxed);
    progress.classes_live.store(classes.num_classes(), std::memory_order_relaxed);
    progress.resolved_nodes.store(resolved, std::memory_order_relaxed);
    progress.proved.store(totals_.proven_equivalent - before.proven_equivalent,
                          std::memory_order_relaxed);
    progress.disproved.store(totals_.disproven - before.disproven,
                             std::memory_order_relaxed);
    progress.unresolved.store(totals_.unresolved - before.unresolved,
                              std::memory_order_relaxed);
    progress.sat_calls.store(totals_.sat_calls - before.sat_calls,
                             std::memory_order_relaxed);

    if (options_.progress_interval > 0.0 &&
        watch.seconds() >= next_heartbeat) {
      const double elapsed = watch.seconds();
      while (next_heartbeat <= elapsed) next_heartbeat += options_.progress_interval;
      const double rate = resolved > 0 ? static_cast<double>(resolved) / elapsed : 0.0;
      const double eta = rate > 0.0 ? static_cast<double>(live) / rate : 0.0;
      util::infof(
          "sweep: %zu classes live, %llu/%llu nodes resolved, "
          "proved %llu, disproved %llu, %llu SAT calls, %.1fs elapsed, "
          "ETA %.1fs",
          classes.num_classes(), static_cast<unsigned long long>(resolved),
          static_cast<unsigned long long>(initial_live),
          static_cast<unsigned long long>(totals_.proven_equivalent -
                                          before.proven_equivalent),
          static_cast<unsigned long long>(totals_.disproven - before.disproven),
          static_cast<unsigned long long>(totals_.sat_calls - before.sat_calls),
          elapsed, eta);
#ifndef SIMGEN_NO_TELEMETRY
      const obs::ResourceSample res = obs::sample_resource_gauges();
      util::infof("sweep: rss %.1f MB (peak %.1f MB), pool queue depth %llu",
                  static_cast<double>(res.current_rss_kb) / 1024.0,
                  static_cast<double>(res.peak_rss_kb) / 1024.0,
                  static_cast<unsigned long long>(
                      obs::current_pool_queue_depth()));
#endif
      if (obs::journal_enabled()) {
        obs::journal_emit(
            obs::EventKind::kHeartbeat, 0, live, resolved,
            classes.num_classes(),
            totals_.proven_equivalent - before.proven_equivalent,
            totals_.disproven - before.disproven,
            totals_.sat_calls - before.sat_calls, obs::saturate_us(elapsed));
#ifndef SIMGEN_NO_TELEMETRY
        obs::journal_emit(obs::EventKind::kResourceSample, 0,
                          res.current_rss_kb, res.peak_rss_kb, res.alloc_count,
                          res.alloc_bytes);
#endif
        // Keep the on-disk journal near-complete so a kill right after a
        // heartbeat loses almost nothing.
        obs::Journal::instance().flush();
      }
    }
  }

  progress.end();
  phase.set_result(classes.cost(), classes.num_classes());
  span.arg("sat_calls",
           static_cast<double>(totals_.sat_calls - before.sat_calls));
  return delta_since(before);
}

SweepResult Sweeper::run_parallel(sim::EquivClasses& classes,
                                  sim::Simulator& simulator,
                                  unsigned num_threads) {
  obs::Span span("sweep.run");
  obs::PhaseScope phase(obs::PhaseId::kSweep);
  span.arg("classes_in", static_cast<double>(classes.num_classes()));
  span.arg("threads", static_cast<double>(num_threads));
  const SweepResult before = totals_;

  obs::SweepProgress& progress = obs::sweep_progress();
  const std::uint64_t initial_live = classes.num_live_nodes();
  progress.begin(initial_live, classes.num_classes());
  util::Stopwatch watch;
  watch.start();
  double next_heartbeat = options_.progress_interval;

  util::ThreadPool pool(num_threads);
  // Declared after the pool so it unregisters (and exports the pool.*
  // metrics plus per-worker journal rollups) before the pool dies.
  const obs::PoolProfileScope pool_scope(pool);

  // One candidate pair discharged on one worker with one throwaway
  // cone-local solver. The outcome is a pure function of the task fields
  // and the round-start proven-pair snapshot, so results are identical
  // for every worker count and schedule.
  struct PairTask {
    net::NodeId rep = net::kNullNode;
    net::NodeId cand = net::kNullNode;
    std::uint64_t rng_seed = 0;  ///< Seeds counterexample fill patterns.
  };
  struct PairOutcome {
    sat::Result verdict = sat::Result::kUnknown;
    bool certified_ok = true;
    double solve_seconds = 0.0;
    std::uint64_t inprocess_runs = 0;
    /// SAT only: counterexample PI words (one per PI, in PI order),
    /// packed into the coordinator's wide resimulation block below.
    std::vector<sim::PatternWord> witness;
  };

  // Batched counterexample resimulation: SAT witnesses accumulate into
  // one staging block (word w of PI row i at staging[i*W + w]) and a
  // single wide simulate pass splits classes for up to W disproofs at
  // once. Determinism contract: the staging block is flushed before any
  // class mutation (UNSAT merge, UNKNOWN drop) and refined word-by-word
  // in task order, so the sequence of partition operations — and the
  // journal it produces — is exactly the block_words == 1 sequence. The
  // staging buffer is zeroed after every flush so no lane can leak a
  // previous batch's patterns.
  const std::size_t block_words = simulator.block_words();
  const std::size_t num_pis = network_.num_pis();
  std::vector<sim::PatternWord> cex_staging(num_pis * block_words, 0);
  std::size_t cex_pending = 0;
  const auto flush_witnesses = [&] {
    if (cex_pending == 0) return;
    simulator.simulate_block(cex_staging, cex_pending);
    for (std::size_t w = 0; w < cex_pending; ++w) {
      {
        obs::PatternScope scope(obs::PatternSource::kCounterexample, 1);
        classes.refine_word(simulator, w);
      }
      ++totals_.resimulations;
      static obs::Counter& resims = obs::counter("sweep.resimulations");
      resims.inc();
      obs::Tracer::instance().instant("sweep.counterexample");
    }
    std::fill(cex_staging.begin(), cex_staging.end(), sim::PatternWord{0});
    cex_pending = 0;
  };

  // Monotone across rounds so every task in the whole run draws from its
  // own deterministic random stream.
  std::uint64_t task_sequence = 0;
  std::uint64_t round_index = 0;

  while (!classes.fully_refined()) {
    ++round_index;
    // Snapshot every candidate pair of the current partition, in class
    // order: (members[0], members[i]) for each class. Every member is
    // either merged away, dropped, or split apart from its representative
    // by its own counterexample, so each round strictly refines.
    std::vector<PairTask> tasks;
    for (sim::ClassId c{0}; c < classes.num_classes(); ++c) {
      const auto members = classes.class_members(c);
      for (std::size_t i = 1; i < members.size(); ++i) {
        PairTask task;
        task.rep = members[0];
        task.cand = members[i];
        task.rng_seed = util::splitmix64(options_.seed) ^
                        util::splitmix64(0x7a3a11edull + task_sequence);
        ++task_sequence;
        tasks.push_back(task);
      }
    }

    // Round-start snapshot of the proven equalities: workers inject them
    // as clauses into their cone-local solvers (fraig-style
    // strengthening). Snapshotting keeps the injected set independent of
    // reduction progress mid-round.
    const std::vector<std::pair<net::NodeId, net::NodeId>> proven =
        totals_.proven_pairs;
    // Coordinator/worker sharing discipline (lock-free by partitioning,
    // which is why nothing here carries a GUARDED_BY):
    //  * tasks, proven, network_, options_ — read-only inside the batch;
    //  * outcomes[index]               — written only by the worker that
    //    owns task `index` (disjoint elements, no two tasks share one);
    //  * worker_sims[worker]           — touched only by worker `worker`;
    //  * totals_, classes              — coordinator-only, never from a
    //    worker.
    // run_tasks is a full barrier: everything the workers wrote is
    // visible (and exclusively owned) here when it returns, so the
    // reduction below needs no synchronization at all.
    std::vector<PairOutcome> outcomes(tasks.size());

    pool.run_tasks(tasks.size(), [&](std::size_t index, unsigned worker) {
      const PairTask& task = tasks[index];
      PairOutcome& out = outcomes[index];
      util::Stopwatch task_watch;
      if (obs::journal_enabled()) task_watch.start();

      sat::Solver solver;
      solver.set_conflict_limit(options_.conflict_limit);
      if (!options_.inprocess) {
        sat::InprocessConfig config = solver.inprocess_config();
        config.enabled = false;
        solver.set_inprocess_config(config);
      }
      // Attached before the encoder so the certifier mirrors every clause.
      std::unique_ptr<check::Certifier> certifier;
      if (options_.certify)
        certifier = std::make_unique<check::Certifier>(solver);
      sat::CnfEncoder encoder(network_, solver);
      const sat::Var var_a = encoder.ensure_encoded(task.rep);
      const sat::Var var_b = encoder.ensure_encoded(task.cand);
      if (options_.add_equality_clauses) {
        std::uint64_t injected = 0;
        for (const auto& [x, y] : proven) {
          if (!encoder.is_encoded(x) || !encoder.is_encoded(y)) continue;
          const sat::Var vx = encoder.var_of(x);
          const sat::Var vy = encoder.var_of(y);
          solver.add_clause({sat::pos(vx), sat::neg(vy)});
          solver.add_clause({sat::neg(vx), sat::pos(vy)});
          injected += 2;
        }
        if (injected != 0) {
          static obs::Counter& eq_clauses =
              obs::counter("sweep.equality_clauses");
          eq_clauses.inc(injected);
        }
      }

      const sat::Var t = solver.new_var();
      solver.set_frozen(t);
      solver.add_clause({sat::neg(t), sat::pos(var_a), sat::pos(var_b)});
      solver.add_clause({sat::neg(t), sat::neg(var_a), sat::neg(var_b)});
      solver.add_clause({sat::pos(t), sat::pos(var_a), sat::neg(var_b)});
      solver.add_clause({sat::pos(t), sat::neg(var_a), sat::pos(var_b)});

      emit_cone_fingerprint(network_, task.rep, task.cand, task.rep, task.cand,
                            options_.strategy_code, /*output_proof=*/false);
#ifndef SIMGEN_NO_TELEMETRY
      solver.set_introspection_context(task.rep, task.cand,
                                       /*output_proof=*/false);
#endif
      util::Stopwatch solve_watch;
      solve_watch.start();
      out.verdict = solver.solve({sat::pos(t)});
      solve_watch.stop();
      out.solve_seconds = solve_watch.seconds();
      // Fresh solver per task: the absolute counter is this task's count.
      out.inprocess_runs = solver.stats().inprocess_runs.value();
#ifndef SIMGEN_NO_TELEMETRY
      solver.clear_introspection_context();
#endif

      if (obs::journal_enabled()) {
        // Fresh solver: absolute stats are already per-call deltas, and
        // num_vars is the whole (freshly encoded) cone.
        const sat::SolverStats& stats = solver.stats();
        obs::journal_emit(
            obs::EventKind::kSatCall,
            static_cast<std::uint8_t>(to_verdict(out.verdict)), task.rep,
            task.cand, stats.conflicts.value(), stats.propagations.value(),
            stats.decisions.value(),
            obs::pack_cone_learned(solver.num_vars(),
                                   stats.learned_clauses.value()),
            obs::saturate_us(out.solve_seconds));
      }

      if (out.verdict == sat::Result::kUnsat && certifier) {
        const sat::Lit assumption = sat::pos(t);
        util::Stopwatch certify_watch;
        certify_watch.start();
        out.certified_ok = certifier->certify_unsat({&assumption, 1});
        certify_watch.stop();
        if (obs::journal_enabled()) {
          const check::DratStats& stats = certifier->stats();
          obs::journal_emit(obs::EventKind::kCertified,
                            out.certified_ok ? 1 : 0, task.rep, task.cand,
                            stats.checked_lemmas.value(),
                            stats.rup_checks.value(),
                            stats.propagations.value(), 0,
                            obs::saturate_us(certify_watch.seconds()));
        }
      } else if (out.verdict == sat::Result::kSat) {
        // Build the counterexample words exactly like the sequential
        // engine (model bits, random fill for unencoded PIs, 1-distance
        // neighbours) but from the task's own random stream. The worker
        // only builds the PI words; the coordinator batch-resimulates.
        util::Rng rng(task.rng_seed);
        out.witness = build_witness_words(network_, encoder, solver,
                                          options_.distance_one_fill, rng);
      }

      if (obs::journal_enabled()) {
        // Stamped at task end: the task occupied [t_ns - dur_us*1000, t_ns]
        // on lane `worker` (code 0 = sweep pair).
        obs::journal_emit(obs::EventKind::kTaskRun, 0, index, worker,
                          round_index, task.rep, 0, 0,
                          obs::saturate_us(task_watch.seconds()));
      }
    });

    // Deterministic reduction: apply the outcomes in task order on this
    // thread. Merges and refinements are order-sensitive; everything the
    // workers did is not.
    for (std::size_t index = 0; index < tasks.size(); ++index) {
      const PairTask& task = tasks[index];
      PairOutcome& out = outcomes[index];
      ++totals_.sat_calls;
      totals_.sat_seconds += out.solve_seconds;
      totals_.inprocess_runs += out.inprocess_runs;
      static obs::Counter& sat_calls = obs::counter("sweep.sat_calls");
      sat_calls.inc();
      switch (out.verdict) {
        case sat::Result::kUnsat: {
          // Pending witnesses precede this merge in task order; apply
          // them before the partition mutates.
          flush_witnesses();
          if (options_.certify) {
            if (!out.certified_ok)
              throw std::logic_error(
                  "sweeper: UNSAT verdict failed DRAT certification");
            ++totals_.certified_unsat;
            static obs::Counter& certified =
                obs::counter("sweep.certified_unsat");
            certified.inc();
          }
          if (obs::journal_enabled())
            obs::journal_emit(obs::EventKind::kClassMerged, 0, task.rep,
                              task.cand);
          ++totals_.proven_equivalent;
          totals_.proven_pairs.emplace_back(task.rep, task.cand);
          static obs::Counter& proven_counter = obs::counter("sweep.proven");
          proven_counter.inc();
          classes.remove_node(task.cand);
          break;
        }
        case sat::Result::kSat: {
          ++totals_.disproven;
          static obs::Counter& disproven = obs::counter("sweep.disproven");
          disproven.inc();
          for (std::size_t i = 0; i < num_pis; ++i)
            cex_staging[i * block_words + cex_pending] = out.witness[i];
          ++cex_pending;
          if (cex_pending == block_words) flush_witnesses();
          break;
        }
        case sat::Result::kUnknown: {
          flush_witnesses();
          ++totals_.unresolved;
          static obs::Counter& unresolved = obs::counter("sweep.unresolved");
          unresolved.inc();
          classes.remove_node(task.cand);
          break;
        }
      }
    }
    // Trailing witnesses of the round (the paper's Eq. 5 cost and the
    // next round's pair snapshot must see every split).
    flush_witnesses();

    const std::uint64_t live = classes.num_live_nodes();
    const std::uint64_t resolved = initial_live - live;
    progress.live_nodes.store(live, std::memory_order_relaxed);
    progress.classes_live.store(classes.num_classes(), std::memory_order_relaxed);
    progress.resolved_nodes.store(resolved, std::memory_order_relaxed);
    progress.proved.store(totals_.proven_equivalent - before.proven_equivalent,
                          std::memory_order_relaxed);
    progress.disproved.store(totals_.disproven - before.disproven,
                             std::memory_order_relaxed);
    progress.unresolved.store(totals_.unresolved - before.unresolved,
                              std::memory_order_relaxed);
    progress.sat_calls.store(totals_.sat_calls - before.sat_calls,
                             std::memory_order_relaxed);

    if (options_.progress_interval > 0.0 && watch.seconds() >= next_heartbeat) {
      const double elapsed = watch.seconds();
      while (next_heartbeat <= elapsed)
        next_heartbeat += options_.progress_interval;
      const double rate =
          resolved > 0 ? static_cast<double>(resolved) / elapsed : 0.0;
      const double eta = rate > 0.0 ? static_cast<double>(live) / rate : 0.0;
      util::infof(
          "sweep[%u threads]: %zu classes live, %llu/%llu nodes resolved, "
          "proved %llu, disproved %llu, %llu SAT calls, %.1fs elapsed, "
          "ETA %.1fs",
          pool.num_threads(), classes.num_classes(),
          static_cast<unsigned long long>(resolved),
          static_cast<unsigned long long>(initial_live),
          static_cast<unsigned long long>(totals_.proven_equivalent -
                                          before.proven_equivalent),
          static_cast<unsigned long long>(totals_.disproven - before.disproven),
          static_cast<unsigned long long>(totals_.sat_calls - before.sat_calls),
          elapsed, eta);
#ifndef SIMGEN_NO_TELEMETRY
      const obs::ResourceSample res = obs::sample_resource_gauges();
      util::infof(
          "sweep[%u threads]: rss %.1f MB (peak %.1f MB), queue depth %llu",
          pool.num_threads(), static_cast<double>(res.current_rss_kb) / 1024.0,
          static_cast<double>(res.peak_rss_kb) / 1024.0,
          static_cast<unsigned long long>(pool.pending_tasks()));
#endif
      if (obs::journal_enabled()) {
        obs::journal_emit(
            obs::EventKind::kHeartbeat, 0, live, resolved,
            classes.num_classes(),
            totals_.proven_equivalent - before.proven_equivalent,
            totals_.disproven - before.disproven,
            totals_.sat_calls - before.sat_calls, obs::saturate_us(elapsed));
#ifndef SIMGEN_NO_TELEMETRY
        obs::journal_emit(obs::EventKind::kResourceSample, 0,
                          res.current_rss_kb, res.peak_rss_kb, res.alloc_count,
                          res.alloc_bytes);
#endif
        obs::Journal::instance().flush();
      }
    }
  }

  progress.end();
  phase.set_result(classes.cost(), classes.num_classes());
  span.arg("sat_calls",
           static_cast<double>(totals_.sat_calls - before.sat_calls));
  return delta_since(before);
}

SweepResult Sweeper::delta_since(const SweepResult& before) const {
  SweepResult delta = totals_;
  delta.sat_calls -= before.sat_calls;
  delta.proven_equivalent -= before.proven_equivalent;
  delta.disproven -= before.disproven;
  delta.unresolved -= before.unresolved;
  delta.certified_unsat -= before.certified_unsat;
  delta.inprocess_runs -= before.inprocess_runs;
  delta.sat_seconds -= before.sat_seconds;
  delta.resimulations -= before.resimulations;
  delta.proven_pairs.erase(delta.proven_pairs.begin(),
                           delta.proven_pairs.begin() +
                               static_cast<std::ptrdiff_t>(before.proven_pairs.size()));
  return delta;
}

}  // namespace simgen::sweep

#include "sweep/sweeper.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace simgen::sweep {

Sweeper::Sweeper(const net::Network& network, SweepOptions options)
    : network_(network),
      options_(options),
      certifier_(options.certify ? std::make_unique<check::Certifier>(solver_)
                                 : nullptr),
      encoder_(network, solver_),
      rng_(util::splitmix64(options.seed) ^ 0x5feebull) {
  solver_.set_conflict_limit(options_.conflict_limit);
}

void Sweeper::certify_unsat(std::span<const sat::Lit> assumptions) {
  if (!certifier_) return;
  if (!certifier_->certify_unsat(assumptions))
    throw std::logic_error(
        "sweeper: UNSAT verdict failed DRAT certification");
  ++totals_.certified_unsat;
  static obs::Counter& certified = obs::counter("sweep.certified_unsat");
  certified.inc();
}

sat::Result Sweeper::check_pair(net::NodeId a, net::NodeId b) {
  const sat::Var var_a = encoder_.ensure_encoded(a);
  const sat::Var var_b = encoder_.ensure_encoded(b);

  // Fresh miter variable t <-> (a xor b); one solve call per pair, as the
  // paper counts SAT calls.
  const sat::Var t = solver_.new_var();
  solver_.add_clause({sat::neg(t), sat::pos(var_a), sat::pos(var_b)});
  solver_.add_clause({sat::neg(t), sat::neg(var_a), sat::neg(var_b)});
  solver_.add_clause({sat::pos(t), sat::pos(var_a), sat::neg(var_b)});
  solver_.add_clause({sat::pos(t), sat::neg(var_a), sat::pos(var_b)});

  util::Stopwatch watch;
  watch.start();
  sat::Result verdict;
  {
    obs::Span solve_span("sweep.sat_solve");
    verdict = solver_.solve({sat::pos(t)});
    solve_span.arg("conflicts",
                   static_cast<double>(solver_.stats().conflicts.value()));
  }
  watch.stop();
  ++totals_.sat_calls;
  totals_.sat_seconds += watch.seconds();
  static obs::Counter& sat_calls = obs::counter("sweep.sat_calls");
  sat_calls.inc();

  switch (verdict) {
    case sat::Result::kUnsat: {
      // Certify before trusting: the merge (and the equality clauses
      // strengthening later proofs) must rest on a checked derivation.
      const sat::Lit assumption = sat::pos(t);
      certify_unsat({&assumption, 1});
      ++totals_.proven_equivalent;
      totals_.proven_pairs.emplace_back(a, b);
      static obs::Counter& proven = obs::counter("sweep.proven");
      proven.inc();
      if (options_.add_equality_clauses) {
        solver_.add_clause({sat::pos(var_a), sat::neg(var_b)});
        solver_.add_clause({sat::neg(var_a), sat::pos(var_b)});
        static obs::Counter& eq_clauses = obs::counter("sweep.equality_clauses");
        eq_clauses.inc(2);
      }
      // The t-miter of a proven pair is dead weight; pin it false so the
      // solver never branches on it again.
      solver_.add_clause({sat::neg(t)});
      break;
    }
    case sat::Result::kSat: {
      ++totals_.disproven;
      static obs::Counter& disproven = obs::counter("sweep.disproven");
      disproven.inc();
      break;
    }
    case sat::Result::kUnknown: {
      ++totals_.unresolved;
      static obs::Counter& unresolved = obs::counter("sweep.unresolved");
      unresolved.inc();
      solver_.add_clause({sat::neg(t)});
      break;
    }
  }
  return verdict;
}

std::vector<bool> Sweeper::last_model_vector() {
  std::vector<bool> vector(network_.num_pis());
  for (std::size_t i = 0; i < network_.num_pis(); ++i) {
    const net::NodeId pi = network_.pis()[i];
    vector[i] = encoder_.is_encoded(pi)
                    ? solver_.model_value(encoder_.var_of(pi))
                    : rng_.flip();
  }
  return vector;
}

void Sweeper::resimulate_counterexample(const std::vector<bool>& vector,
                                        sim::EquivClasses& classes,
                                        sim::Simulator& simulator) {
  const std::size_t num_pis = network_.num_pis();
  std::vector<sim::PatternWord> words(num_pis, 0);
  for (std::size_t i = 0; i < num_pis; ++i)
    if (vector[i]) words[i] = ~sim::PatternWord{0};
  if (options_.distance_one_fill && num_pis > 0) {
    // Patterns 1..63 flip one random PI each: cheap neighbourhood
    // exploration around the counterexample (1-distance vectors).
    for (unsigned pattern = 1; pattern < 64; ++pattern) {
      const std::size_t flip = rng_.below(num_pis);
      words[flip] ^= sim::PatternWord{1} << pattern;
    }
  }
  simulator.simulate_word(words);
  classes.refine(simulator);
  ++totals_.resimulations;
  static obs::Counter& resims = obs::counter("sweep.resimulations");
  resims.inc();
  obs::Tracer::instance().instant("sweep.counterexample");
}

SweepResult Sweeper::run(sim::EquivClasses& classes, sim::Simulator& simulator) {
  obs::Span span("sweep.run");
  span.arg("classes_in", static_cast<double>(classes.num_classes()));
  const SweepResult before = totals_;
  while (!classes.fully_refined()) {
    // Prove pairs in topological order (shallowest candidate first), the
    // fraig sweep schedule: equality clauses learned for shallow pairs
    // become lemmas that keep the deep miters tractable.
    std::size_t best_class = 0;
    net::NodeId best_candidate = net::kNullNode;
    for (std::size_t c = 0; c < classes.num_classes(); ++c) {
      const net::NodeId candidate_here = classes.class_members(c)[1];
      if (candidate_here < best_candidate) {
        best_candidate = candidate_here;
        best_class = c;
      }
    }
    const auto members = classes.class_members(best_class);
    const net::NodeId representative = members[0];
    const net::NodeId candidate = members[1];
    const sat::Result verdict = check_pair(representative, candidate);
    switch (verdict) {
      case sat::Result::kUnsat:
        // Proven equivalent: merge the candidate into the representative.
        classes.remove_node(candidate);
        break;
      case sat::Result::kSat:
        // Counterexample: by construction it distinguishes the pair, so
        // refinement is guaranteed to make progress on this class.
        resimulate_counterexample(last_model_vector(), classes, simulator);
        break;
      case sat::Result::kUnknown:
        classes.remove_node(candidate);
        break;
    }
  }

  span.arg("sat_calls",
           static_cast<double>(totals_.sat_calls - before.sat_calls));
  SweepResult delta = totals_;
  delta.sat_calls -= before.sat_calls;
  delta.proven_equivalent -= before.proven_equivalent;
  delta.disproven -= before.disproven;
  delta.unresolved -= before.unresolved;
  delta.certified_unsat -= before.certified_unsat;
  delta.sat_seconds -= before.sat_seconds;
  delta.resimulations -= before.resimulations;
  delta.proven_pairs.erase(delta.proven_pairs.begin(),
                           delta.proven_pairs.begin() +
                               static_cast<std::ptrdiff_t>(before.proven_pairs.size()));
  return delta;
}

}  // namespace simgen::sweep

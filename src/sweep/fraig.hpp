/// \file fraig.hpp
/// \brief The functional-reduction ("fraig") operator: one call that runs
/// the complete Figure 2 flow — random simulation, SimGen-guided
/// simulation, SAT sweeping — and returns the network with every proven
/// equivalence merged and dead logic removed.
///
/// This is the deliverable the surrounding applications (logic
/// optimization, ECO, mapping with choices; paper Section 2.2) consume:
/// a functionally reduced netlist plus the full accounting of how it was
/// obtained.
#pragma once

#include "network/network.hpp"
#include "simgen/guided_sim.hpp"
#include "sweep/reduce.hpp"
#include "sweep/sweeper.hpp"

namespace simgen::sweep {

struct FraigOptions {
  std::uint64_t seed = 1;
  std::size_t random_rounds = 8;
  bool use_guided_simulation = true;
  core::Strategy guided_strategy = core::Strategy::kAiDcMffc;
  std::size_t guided_iterations = 20;
  SweepOptions sweep;
};

struct FraigResult {
  net::Network network;          ///< The functionally reduced network.
  SweepResult sweep_stats;       ///< SAT accounting of the proving phase.
  ReductionStats reduction;      ///< Merge/removal accounting.
  std::uint64_t cost_after_random = 0;
  std::uint64_t cost_after_guided = 0;
};

/// Runs the full flow on \p network and returns the reduced equivalent.
[[nodiscard]] FraigResult fraig(const net::Network& network,
                                const FraigOptions& options = {});

}  // namespace simgen::sweep

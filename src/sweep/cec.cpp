#include "sweep/cec.hpp"

#include <array>
#include <bit>
#include <memory>
#include <stdexcept>
#include <utility>

#include "check/lint.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/pool_obs.hpp"
#include "obs/trace.hpp"
#include "sim/random_sim.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace simgen::sweep {

Miter make_miter(const net::Network& a, const net::Network& b) {
  if (a.num_pis() != b.num_pis())
    throw std::invalid_argument("make_miter: PI count mismatch");
  if (a.num_pos() != b.num_pos())
    throw std::invalid_argument("make_miter: PO count mismatch");

  Miter miter;
  miter.network.set_name(a.name() + "_vs_" + b.name());
  miter.map_a.assign(a.num_nodes(), net::kNullNode);
  miter.map_b.assign(b.num_nodes(), net::kNullNode);

  // Shared PIs (correspondence by index).
  std::vector<net::NodeId> shared_pis;
  shared_pis.reserve(a.num_pis());
  for (std::size_t i = 0; i < a.num_pis(); ++i)
    shared_pis.push_back(miter.network.add_pi(a.node(a.pis()[i]).name));

  const auto copy_logic = [&](const net::Network& source,
                              std::vector<net::NodeId>& map) {
    for (std::size_t i = 0; i < source.num_pis(); ++i)
      map[source.pis()[i]] = shared_pis[i];
    source.for_each_node([&](net::NodeId id) {
      if (source.is_constant(id)) {
        map[id] = miter.network.add_constant(source.node(id).constant_value);
      } else if (source.is_lut(id)) {
        std::vector<net::NodeId> fanins;
        fanins.reserve(source.fanins(id).size());
        for (net::NodeId fanin : source.fanins(id)) fanins.push_back(map[fanin]);
        map[id] = miter.network.add_lut(fanins, source.node(id).function);
      }
    });
  };
  copy_logic(a, miter.map_a);
  copy_logic(b, miter.map_b);

  // One XOR node + PO per output pair.
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    const net::NodeId driver_a = miter.map_a[a.fanins(a.pos()[i])[0]];
    const net::NodeId driver_b = miter.map_b[b.fanins(b.pos()[i])[0]];
    const std::array<net::NodeId, 2> fanins{driver_a, driver_b};
    const net::NodeId diff =
        miter.network.add_lut(fanins, tt::TruthTable::xor_gate(2));
    miter.network.add_po(diff, "diff" + std::to_string(i));
  }
  return miter;
}

namespace {

/// Extracts pattern \p bit of the last simulated word as a PI vector.
std::vector<bool> pattern_of_bit(const sim::Simulator& simulator, unsigned bit) {
  const net::Network& network = simulator.network();
  std::vector<bool> vector(network.num_pis());
  for (std::size_t i = 0; i < network.num_pis(); ++i)
    vector[i] = (simulator.value(network.pis()[i]) >> bit) & 1u;
  return vector;
}

/// True iff any miter PO is 1 under \p vector (single-pattern check).
bool violates(sim::Simulator& simulator, const std::vector<bool>& vector) {
  const net::Network& network = simulator.network();
  std::vector<sim::PatternWord> words(network.num_pis(), 0);
  for (std::size_t i = 0; i < network.num_pis(); ++i)
    if (vector[i]) words[i] = 1;
  simulator.simulate_word(words);
  for (net::NodeId po : network.pos())
    if (simulator.value(po) & 1u) return true;
  return false;
}

}  // namespace

CecResult check_equivalence(const net::Network& a, const net::Network& b,
                            const CecOptions& options) {
  obs::Span cec_span("cec.check_equivalence");
  util::Stopwatch total;
  total.start();
  CecResult result;

  Miter miter = make_miter(a, b);
  SIMGEN_DEBUG_LINT(miter.network, "cec: freshly built miter");
  sim::Simulator simulator(miter.network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(miter.network);

  if (obs::journal_enabled()) {
    std::uint64_t num_luts = 0;
    miter.network.for_each_lut([&num_luts](net::NodeId) { ++num_luts; });
    obs::journal_emit(obs::EventKind::kRunBegin, 0, miter.network.num_pis(),
                      miter.network.num_nodes(), num_luts,
                      miter.network.num_pos());
  }
  const auto journal_run_end = [](const CecResult& r) {
    if (obs::journal_enabled())
      obs::journal_emit(
          obs::EventKind::kRunEnd,
          r.undecided ? 2 : (r.equivalent ? std::uint8_t{1} : std::uint8_t{0}),
          0, 0, r.outputs_proven, r.unresolved_outputs);
  };

  // Phase 1: random simulation. Any nonzero miter output word is already
  // a counterexample — report it without touching the solver. Rounds are
  // simulated a block at a time but refined and scanned one word at a
  // time, with word w of the block being global round `round + w` keyed
  // only by (seed, pi, round): partitions, journals, and the first
  // counterexample found are identical at every block width.
  obs::Span random_span("cec.random_sim");
  {
    obs::PhaseScope random_phase(obs::PhaseId::kRandomSim);
    std::size_t round = 0;
    while (round < options.random_rounds) {
      const std::size_t chunk =
          std::min(simulator.block_words(), options.random_rounds - round);
      simulator.simulate_random_block(options.seed, round, chunk);
      for (std::size_t w = 0; w < chunk; ++w) {
        {
          obs::PatternScope batch(obs::PatternSource::kRandom, 0);
          classes.refine_word(simulator, w);
        }
        simulator.set_observed_word(w);
        ++round;
        for (net::NodeId po : miter.network.pos()) {
          const sim::PatternWord word = simulator.value_word(po, w);
          if (word != 0) {
            const auto bit = static_cast<unsigned>(std::countr_zero(word));
            result.counterexample = pattern_of_bit(simulator, bit);
            result.equivalent = false;
            total.stop();
            result.total_seconds = total.seconds();
            journal_run_end(result);
            return result;
          }
        }
      }
    }
    random_phase.set_result(classes.cost(), classes.num_classes());
  }

  random_span.arg("cost_after", static_cast<double>(classes.cost()));
  random_span.close();
  obs::set_gauge("cec.cost_after_random", static_cast<double>(classes.cost()));
  SIMGEN_DEBUG_LINT(classes, miter.network, &simulator,
                    "cec: classes after random simulation");

  // Phase 2: guided simulation splits the classes random patterns cannot.
  if (options.use_guided_simulation && !classes.fully_refined()) {
    obs::Span guided_span("cec.guided_sim");
    core::GuidedSimOptions guided;
    guided.strategy = options.guided_strategy;
    guided.iterations = options.guided_iterations;
    guided.seed = options.seed;
    run_guided_simulation(simulator, classes, guided);
    guided_span.arg("cost_after", static_cast<double>(classes.cost()));
  }

  obs::set_gauge("cec.cost_after_guided", static_cast<double>(classes.cost()));
  SIMGEN_DEBUG_LINT(classes, miter.network, &simulator,
                    "cec: classes after guided simulation");

  // Phase 3: SAT sweeping of the internal nodes; proven equalities are
  // added as clauses and make the output proofs cheap.
  SweepOptions sweep_options = options.sweep;
  sweep_options.seed = options.seed;
  sweep_options.certify = sweep_options.certify || options.certify;
  // Stamp the configured guided-simulation arm into every cone
  // fingerprint so the SAT report can slice hardness by arm.
  sweep_options.strategy_code =
      static_cast<std::uint8_t>(options.guided_strategy);
  if (options.num_threads != 1 && sweep_options.num_threads == 1)
    sweep_options.num_threads = options.num_threads;
  const unsigned num_threads =
      util::resolve_num_threads(sweep_options.num_threads);
  Sweeper sweeper(miter.network, sweep_options);
  if (options.sweep_internal_nodes) {
    obs::Span sweep_span("cec.sweep");
    result.sweep_stats = sweeper.run(classes, simulator);
    sweep_span.arg("sat_calls",
                   static_cast<double>(result.sweep_stats.sat_calls));
  }

  // Phase 4: prove each miter output constant-0. Output proofs run under
  // their own conflict budget (output_proof_conflict_limit, unlimited by
  // default): a tight candidate-pair budget must not make the final
  // verdict undecidable, and a budgeted output proof that still times out
  // yields an "undecided" verdict instead of a crash.
  obs::Span outputs_span("cec.output_proofs");
  obs::PhaseScope outputs_phase(obs::PhaseId::kOutputProofs);
  if (num_threads > 1) {
    // Parallel output proofs: one cone-local solver per PO, proven
    // equalities injected as clauses, outcomes reduced in PO order (the
    // lowest-PO counterexample wins, deterministically).
    struct OutputOutcome {
      sat::Result verdict = sat::Result::kUnknown;
      bool certified_ok = true;
      double solve_seconds = 0.0;
      std::vector<bool> counterexample;
    };
    const std::vector<net::NodeId> pos_list(miter.network.pos().begin(),
                                            miter.network.pos().end());
    const std::vector<std::pair<net::NodeId, net::NodeId>>& proven =
        sweeper.totals().proven_pairs;
    std::vector<OutputOutcome> outcomes(pos_list.size());
    util::ThreadPool pool(num_threads);
    const obs::PoolProfileScope pool_scope(pool);
    pool.run_tasks(pos_list.size(), [&](std::size_t index, unsigned worker) {
      const net::NodeId po = pos_list[index];
      OutputOutcome& out = outcomes[index];
      util::Stopwatch task_watch;
      if (obs::journal_enabled()) task_watch.start();
      sat::Solver solver;
      solver.set_conflict_limit(sweep_options.output_proof_conflict_limit);
      if (!sweep_options.inprocess) {
        sat::InprocessConfig config = solver.inprocess_config();
        config.enabled = false;
        solver.set_inprocess_config(config);
      }
      std::unique_ptr<check::Certifier> certifier;
      if (sweep_options.certify)
        certifier = std::make_unique<check::Certifier>(solver);
      sat::CnfEncoder encoder(miter.network, solver);
      const sat::Var po_var = encoder.ensure_encoded(po);
      if (sweep_options.add_equality_clauses) {
        for (const auto& [x, y] : proven) {
          if (!encoder.is_encoded(x) || !encoder.is_encoded(y)) continue;
          const sat::Var vx = encoder.var_of(x);
          const sat::Var vy = encoder.var_of(y);
          solver.add_clause({sat::pos(vx), sat::neg(vy)});
          solver.add_clause({sat::neg(vx), sat::pos(vy)});
        }
      }
      emit_cone_fingerprint(miter.network, po, net::kNullNode, po, 0,
                            sweep_options.strategy_code, /*output_proof=*/true);
#ifndef SIMGEN_NO_TELEMETRY
      solver.set_introspection_context(po, 0, /*output_proof=*/true);
#endif
      util::Stopwatch watch;
      watch.start();
      out.verdict = solver.solve({sat::pos(po_var)});
      watch.stop();
      out.solve_seconds = watch.seconds();
#ifndef SIMGEN_NO_TELEMETRY
      solver.clear_introspection_context();
#endif
      if (obs::journal_enabled()) {
        const sat::SolverStats& stats = solver.stats();
        const std::uint8_t code =
            out.verdict == sat::Result::kSat
                ? static_cast<std::uint8_t>(obs::SatVerdict::kSat)
                : (out.verdict == sat::Result::kUnsat
                       ? static_cast<std::uint8_t>(obs::SatVerdict::kUnsat)
                       : static_cast<std::uint8_t>(obs::SatVerdict::kUnknown));
        obs::journal_emit(
            obs::EventKind::kSatCall, code, po, 0, stats.conflicts.value(),
            stats.propagations.value(), stats.decisions.value(),
            obs::pack_cone_learned(solver.num_vars(),
                                   stats.learned_clauses.value()),
            obs::saturate_us(out.solve_seconds), /*flags=*/1);
      }
      if (out.verdict == sat::Result::kSat) {
        // Fill unencoded PIs deterministically from a per-PO stream.
        util::Rng po_rng(util::splitmix64(options.seed) ^
                         util::splitmix64(0x0c37a11edull + index));
        out.counterexample.resize(miter.network.num_pis());
        for (std::size_t i = 0; i < miter.network.num_pis(); ++i) {
          const net::NodeId pi = miter.network.pis()[i];
          out.counterexample[i] = encoder.is_encoded(pi)
                                      ? solver.model_value(encoder.var_of(pi))
                                      : po_rng.flip();
        }
      } else if (out.verdict == sat::Result::kUnsat && certifier) {
        const sat::Lit assumption = sat::pos(po_var);
        util::Stopwatch certify_watch;
        certify_watch.start();
        out.certified_ok = certifier->certify_unsat({&assumption, 1});
        certify_watch.stop();
        if (obs::journal_enabled()) {
          const check::DratStats& stats = certifier->stats();
          obs::journal_emit(obs::EventKind::kCertified,
                            out.certified_ok ? 1 : 0, po, 0,
                            stats.checked_lemmas.value(),
                            stats.rup_checks.value(),
                            stats.propagations.value(), 0,
                            obs::saturate_us(certify_watch.seconds()),
                            /*flags=*/1);
        }
      }
      if (obs::journal_enabled()) {
        // Stamped at task end (code 1 = output proof); the payload is the
        // PO node so lanes can be joined back to kSatCall events.
        obs::journal_emit(obs::EventKind::kTaskRun, 1, index, worker,
                          /*round=*/0, po, 0, 0,
                          obs::saturate_us(task_watch.seconds()));
      }
    });
    for (std::size_t index = 0; index < pos_list.size(); ++index) {
      OutputOutcome& out = outcomes[index];
      ++result.output_sat_calls;
      result.output_sat_seconds += out.solve_seconds;
      if (out.verdict == sat::Result::kSat) {
        result.counterexample = std::move(out.counterexample);
        if (!violates(simulator, result.counterexample))
          throw std::logic_error(
              "cec: SAT counterexample failed re-simulation");
        result.equivalent = false;
        result.undecided = false;
        // A counterexample decides the run: earlier budget-limited output
        // proofs are moot, and CecResult documents unresolved_outputs as
        // nonzero only when undecided.
        result.unresolved_outputs = 0;
        total.stop();
        result.total_seconds = total.seconds();
        journal_run_end(result);
        return result;
      }
      if (out.verdict == sat::Result::kUnknown) {
        ++result.unresolved_outputs;
        continue;
      }
      if (sweep_options.certify) {
        if (!out.certified_ok)
          throw std::logic_error(
              "sweeper: UNSAT verdict failed DRAT certification");
        ++result.certified_outputs;
      }
      ++result.outputs_proven;
    }
  } else {
    sweeper.solver().set_conflict_limit(
        sweep_options.output_proof_conflict_limit);
    for (net::NodeId po : miter.network.pos()) {
      const bool journal = obs::journal_enabled();
      std::uint64_t conflicts0 = 0, props0 = 0, decisions0 = 0, learned0 = 0;
      std::uint64_t vars0 = 0;
      if (journal) {
        const sat::SolverStats& stats = sweeper.solver().stats();
        conflicts0 = stats.conflicts.value();
        props0 = stats.propagations.value();
        decisions0 = stats.decisions.value();
        learned0 = stats.learned_clauses.value();
        vars0 = sweeper.solver().num_vars();
      }
      const sat::Var po_var = sweeper.encoder().ensure_encoded(po);
      emit_cone_fingerprint(miter.network, po, net::kNullNode, po, 0,
                            sweep_options.strategy_code, /*output_proof=*/true);
#ifndef SIMGEN_NO_TELEMETRY
      sweeper.solver().set_introspection_context(po, 0, /*output_proof=*/true);
#endif
      util::Stopwatch watch;
      watch.start();
      const sat::Result verdict = sweeper.solver().solve({sat::pos(po_var)});
      watch.stop();
#ifndef SIMGEN_NO_TELEMETRY
      sweeper.solver().clear_introspection_context();
#endif
      ++result.output_sat_calls;
      result.output_sat_seconds += watch.seconds();
      if (journal) {
        const sat::SolverStats& stats = sweeper.solver().stats();
        const std::uint8_t code =
            verdict == sat::Result::kSat
                ? static_cast<std::uint8_t>(obs::SatVerdict::kSat)
                : (verdict == sat::Result::kUnsat
                       ? static_cast<std::uint8_t>(obs::SatVerdict::kUnsat)
                       : static_cast<std::uint8_t>(obs::SatVerdict::kUnknown));
        obs::journal_emit(
            obs::EventKind::kSatCall, code, po, 0,
            stats.conflicts.value() - conflicts0,
            stats.propagations.value() - props0,
            stats.decisions.value() - decisions0,
            obs::pack_cone_learned(sweeper.solver().num_vars() - vars0,
                                   stats.learned_clauses.value() - learned0),
            obs::saturate_us(watch.seconds()), /*flags=*/1);
      }
      if (verdict == sat::Result::kSat) {
        result.counterexample =
            sweeper.last_model_vector(static_cast<std::uint64_t>(po));
        if (!violates(simulator, result.counterexample))
          throw std::logic_error("cec: SAT counterexample failed re-simulation");
        result.equivalent = false;
        result.undecided = false;
        // See the parallel path: a counterexample decides the run, so the
        // unresolved_outputs invariant (nonzero only when undecided) holds.
        result.unresolved_outputs = 0;
        total.stop();
        result.total_seconds = total.seconds();
        journal_run_end(result);
        return result;
      }
      if (verdict == sat::Result::kUnknown) {
        // Conflict-limited output proof: record it and keep going — a
        // later output may still yield a counterexample, and a partial
        // verdict with a proper journal run-end beats a crash.
        ++result.unresolved_outputs;
        continue;
      }
      // Certify the output proof itself: UNSAT under {po} means the logged
      // derivation must entail (~po).
      if (sweeper.certifier() != nullptr) {
        const sat::Lit assumption = sat::pos(po_var);
        sweeper.certify_unsat({&assumption, 1}, po, 0, /*output_proof=*/true);
        ++result.certified_outputs;
      }
      ++result.outputs_proven;
    }
  }

  result.undecided = result.unresolved_outputs > 0;
  result.equivalent = !result.undecided;
  total.stop();
  result.total_seconds = total.seconds();
  journal_run_end(result);
  return result;
}

}  // namespace simgen::sweep

/// \file cec.hpp
/// \brief Combinational equivalence checking of two networks.
///
/// The end-to-end application of the whole stack: two circuits with
/// matching interfaces are joined into a miter (shared PIs, one XOR node
/// per PO pair), simulation splits the internal equivalence classes,
/// SimGen-guided vectors split the stubborn ones, SAT sweeping proves the
/// survivors, and finally each miter output is proven unsatisfiable (or a
/// counterexample is produced and verified by simulation).
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"
#include "simgen/guided_sim.hpp"
#include "sweep/sweeper.hpp"

namespace simgen::sweep {

/// Miter of two networks plus node maps back to the operands.
struct Miter {
  net::Network network;
  std::vector<net::NodeId> map_a;  ///< a's node id -> miter node id.
  std::vector<net::NodeId> map_b;  ///< b's node id -> miter node id.
};

/// Builds the miter. Requires equal PI and PO counts (correspondence by
/// index); throws std::invalid_argument otherwise.
[[nodiscard]] Miter make_miter(const net::Network& a, const net::Network& b);

struct CecOptions {
  std::uint64_t seed = 1;
  std::size_t random_rounds = 8;          ///< Random-simulation prepass.
  bool use_guided_simulation = true;      ///< Run SimGen before sweeping.
  core::Strategy guided_strategy = core::Strategy::kAiDcMffc;
  std::size_t guided_iterations = 20;
  bool sweep_internal_nodes = true;       ///< Prove internal equivalences first.
  /// DRAT-certify every UNSAT verdict — internal merges and the final
  /// output proofs — with the in-repo backward checker. Forwarded into
  /// sweep.certify; an uncertifiable verdict throws std::logic_error.
  bool certify = false;
  /// Worker threads for the sweep and the output proofs. 1 (default) is
  /// the sequential flow; 0 = one per hardware thread; N >= 2 enables the
  /// deterministic parallel engine. Forwarded into sweep.num_threads
  /// (unless that is itself set to a non-default value).
  unsigned num_threads = 1;
  SweepOptions sweep;
};

struct CecResult {
  bool equivalent = false;
  /// True when the checker could not decide: some output proof hit the
  /// conflict budget (SweepOptions::output_proof_conflict_limit) and no
  /// counterexample was found either. equivalent is false but means
  /// "unknown", not "not equivalent" — counterexample is empty.
  bool undecided = false;
  /// Output proofs that hit the conflict budget. Nonzero only when
  /// undecided: if a later output yields a counterexample, the run is
  /// decided NOT EQUIVALENT and this count is reset to 0.
  std::size_t unresolved_outputs = 0;
  /// On non-equivalence: a PI assignment on which some PO pair differs
  /// (verified by simulation before being returned).
  std::vector<bool> counterexample;
  std::size_t outputs_proven = 0;
  /// Output proofs DRAT-certified (== outputs_proven when certifying).
  std::uint64_t certified_outputs = 0;
  SweepResult sweep_stats;   ///< Internal-node sweeping statistics.
  std::uint64_t output_sat_calls = 0;
  double output_sat_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Checks functional equivalence of \p a and \p b.
[[nodiscard]] CecResult check_equivalence(const net::Network& a,
                                          const net::Network& b,
                                          const CecOptions& options = {});

}  // namespace simgen::sweep

/// \file adder_cec.cpp
/// \brief The textbook CEC exercise: prove a ripple-carry adder and a
/// carry-select adder equivalent — or catch a planted bug.
///
/// Usage:
///   ./adder_cec [width]          (default 12)
///   ./adder_cec [width] --bug    (flip one gate and show the witness)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simgen_all.hpp"

using namespace simgen;

int main(int argc, char** argv) {
  const unsigned width =
      argc > 1 ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10)) : 12;
  const bool plant_bug = argc > 2 && std::strcmp(argv[2], "--bug") == 0;

  const aig::Aig rca = benchgen::build_ripple_carry_adder(width);
  aig::Aig csa = benchgen::build_carry_select_adder(width, 4);
  std::printf("ripple-carry : %zu AND nodes, depth %u\n", rca.num_ands(),
              rca.depth());
  std::printf("carry-select : %zu AND nodes, depth %u\n", csa.num_ands(),
              csa.depth());

  net::Network a = mapping::map_to_luts(rca);
  net::Network b = mapping::map_to_luts(csa);

  if (plant_bug) {
    // Rebuild b with one LUT truth-table bit flipped: a single-minterm
    // bug, the classic hard case for random simulation.
    net::Network buggy("csa_buggy");
    std::vector<net::NodeId> map(b.num_nodes());
    bool flipped = false;
    b.for_each_node([&](net::NodeId id) {
      const auto& node = b.node(id);
      switch (node.kind) {
        case net::NodeKind::kPi: map[id] = buggy.add_pi(node.name); break;
        case net::NodeKind::kConstant:
          map[id] = buggy.add_constant(node.constant_value);
          break;
        case net::NodeKind::kPo:
          map[id] = buggy.add_po(map[node.fanins[0]], node.name);
          break;
        case net::NodeKind::kLut: {
          std::vector<net::NodeId> fanins;
          for (const net::NodeId fanin : node.fanins)
            fanins.push_back(map[fanin]);
          tt::TruthTable function = node.function;
          if (!flipped && node.fanins.size() >= 4) {
            function.set_bit(function.num_bits() - 1,
                             !function.get_bit(function.num_bits() - 1));
            flipped = true;
          }
          map[id] = buggy.add_lut(fanins, function);
          break;
        }
      }
    });
    b = std::move(buggy);
    std::printf("planted a single-minterm bug in one carry-select LUT\n");
  }

  std::printf("\nchecking equivalence (%zu vs %zu LUTs)...\n", a.num_luts(),
              b.num_luts());
  const sweep::CecResult result = sweep::check_equivalence(a, b, {});
  if (result.equivalent) {
    std::printf("EQUIVALENT: %zu outputs proven, %llu internal pairs proven "
                "equivalent, %llu sweep SAT calls, %.1f ms total\n",
                result.outputs_proven,
                static_cast<unsigned long long>(result.sweep_stats.proven_equivalent),
                static_cast<unsigned long long>(result.sweep_stats.sat_calls),
                result.total_seconds * 1e3);
  } else {
    std::printf("NOT EQUIVALENT. Counterexample:\n  a=");
    std::uint64_t va = 0, vb = 0;
    for (unsigned i = 0; i < width; ++i) {
      if (result.counterexample[i]) va |= 1ull << i;
      if (result.counterexample[width + i]) vb |= 1ull << i;
    }
    const bool cin = result.counterexample[2 * width];
    std::printf("%llu b=%llu cin=%d  (expected sum %llu)\n",
                static_cast<unsigned long long>(va),
                static_cast<unsigned long long>(vb), cin ? 1 : 0,
                static_cast<unsigned long long>(va + vb + (cin ? 1 : 0)));
  }
  return 0;
}

/// \file export_suite.cpp
/// \brief Materializes the 42-benchmark evaluation suite as circuit files.
///
/// Writes each benchmark (and optionally the stacked variants) as BLIF,
/// AIGER, and Verilog so the suite can be consumed by external tools —
/// and so experiments here can be cross-checked against other sweepers.
///
/// Usage:  ./export_suite [output-dir] [--stacked]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "simgen_all.hpp"

using namespace simgen;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "suite_export";
  const bool with_stacked = argc > 2 && std::strcmp(argv[2], "--stacked") == 0;
  std::filesystem::create_directories(out_dir);

  std::size_t files = 0;
  for (const benchgen::CircuitSpec& spec : benchgen::benchmark_suite()) {
    const aig::Aig graph = benchgen::generate_circuit(spec);
    const net::Network network = mapping::map_to_luts(graph);
    const std::string base = out_dir + "/" + spec.name;
    io::write_aiger_file(graph, base + ".aig", /*binary=*/true);
    io::write_blif_file(network, base + ".blif");
    io::write_verilog_file(network, base + ".v");
    files += 3;
    std::printf("%-10s %6zu ANDs -> %5zu LUTs (depth %u)\n", spec.name.c_str(),
                graph.num_ands(), network.num_luts(), network.depth());
  }

  if (with_stacked) {
    for (const benchgen::StackedSpec& spec : benchgen::stacked_suite()) {
      const aig::Aig graph = benchgen::generate_stacked(spec);
      const std::string base = out_dir + "/" + std::string(spec.base) + "_x" +
                               std::to_string(spec.copies);
      io::write_aiger_file(graph, base + ".aig", /*binary=*/true);
      ++files;
      std::printf("%-14s %7zu ANDs (stacked)\n",
                  (std::string(spec.base) + "_x" + std::to_string(spec.copies))
                      .c_str(),
                  graph.num_ands());
    }
  }
  std::printf("\nwrote %zu files to %s/\n", files, out_dir.c_str());
  return 0;
}

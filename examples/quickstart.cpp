/// \file quickstart.cpp
/// \brief Smallest end-to-end tour of the library: build a circuit, watch
/// random simulation stall, split the remaining classes with SimGen, and
/// prove the survivors with SAT sweeping.
///
/// Run:  ./quickstart
#include <cstdio>

#include "simgen_all.hpp"

using namespace simgen;

int main() {
  // 1. Get a LUT network. Normally you would parse BLIF/AIGER/BENCH
  //    (simgen::io) or map your own AIG (simgen::mapping); here we
  //    generate a small benchmark with known internal redundancy.
  benchgen::CircuitSpec spec;
  spec.name = "quickstart";
  spec.num_pis = 16;
  spec.num_pos = 8;
  spec.num_gates = 400;
  spec.redundancy = 0.08;  // plant provably-equivalent node pairs
  spec.near_miss = 0.05;   // and pairs that differ on rare inputs only
  const net::Network network = benchgen::generate_mapped(spec);
  std::printf("circuit: %s\n", net::to_string(net::compute_stats(network)).c_str());

  // 2. Random simulation partitions the LUTs into equivalence classes
  //    (paper Figure 2, left). It is fast but plateaus quickly.
  sim::Simulator simulator(network);
  sim::EquivClasses classes = sim::EquivClasses::over_luts(network);
  sim::RandomSimOptions random_options;
  random_options.max_rounds = 2;  // stop early: leave work for SimGen
  const sim::RandomSimResult random_result =
      sim::run_random_simulation(simulator, classes, random_options);
  std::printf("random simulation: %zu rounds, cost (Eq.5) %llu -> %llu\n",
              random_result.rounds_run,
              static_cast<unsigned long long>(random_result.cost_per_round.front()),
              static_cast<unsigned long long>(classes.cost()));

  // 3. SimGen (AI+DC+MFFC): ATPG-style guided vectors split classes that
  //    random patterns cannot reach.
  core::GuidedSimOptions guided;
  guided.strategy = core::Strategy::kAiDcMffc;
  guided.iterations = 20;
  const core::GuidedSimResult guided_result =
      core::run_guided_simulation(simulator, classes, guided);
  std::printf("SimGen: %llu vectors, cost -> %llu (%.1f ms)\n",
              static_cast<unsigned long long>(guided_result.vectors_generated),
              static_cast<unsigned long long>(classes.cost()),
              guided_result.runtime_seconds * 1e3);

  // 4. SAT sweeping proves (or refutes) every surviving candidate pair.
  sweep::Sweeper sweeper(network, sweep::SweepOptions{});
  const sweep::SweepResult sweep_result = sweeper.run(classes, simulator);
  std::printf("sweeping: %llu SAT calls (%.1f ms), %llu proven equivalent, "
              "%llu disproven\n",
              static_cast<unsigned long long>(sweep_result.sat_calls),
              sweep_result.sat_seconds * 1e3,
              static_cast<unsigned long long>(sweep_result.proven_equivalent),
              static_cast<unsigned long long>(sweep_result.disproven));

  std::printf("done: every equivalence class resolved.\n");
  return 0;
}

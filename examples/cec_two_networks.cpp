/// \file cec_two_networks.cpp
/// \brief Combinational equivalence checking of two circuit files.
///
/// Usage:
///   ./cec_two_networks [options] golden.blif revised.blif
///   ./cec_two_networks [options] alu4        (seed benchmark self-check)
///   ./cec_two_networks [options]             (self-demo, no files needed)
///
/// Options:
///   --certify            DRAT-certify every UNSAT verdict
///   --threads N          sweep worker threads (1 = sequential engine,
///                        0 = one per hardware thread; results are
///                        deterministic for any N)
///   --output-conflict-limit N
///                        conflict budget per final output proof
///                        (0 = unlimited, the default); a proof that
///                        hits the budget makes the verdict UNDECIDED
///                        (exit 2) instead of running forever
///   --trace-out FILE     write a Chrome trace-event JSON of the run
///                        (load in chrome://tracing or ui.perfetto.dev)
///   --metrics-out FILE   write all telemetry counters/gauges/histograms
///                        as JSON Lines, one metric per line
///   --journal-out FILE   record every sweeping decision (class events,
///                        SAT calls, pattern batches, certifications) to a
///                        journal; replay with tools/sweep_inspect.
///                        ".jsonl" suffix selects the text format.
///   --progress SECONDS   print a heartbeat line (classes live, nodes
///                        resolved, SAT calls, ETA) on this interval
///   --timeout SECONDS    watchdog deadline: dump state, flush all
///                        telemetry outputs, exit 124
///
/// All telemetry outputs are flushed on SIGINT/SIGTERM and via atexit, so
/// an interrupted run still leaves valid, parseable files behind.
///
/// Exit codes: 0 = checked (equivalent or a verified counterexample),
/// 1 = error, 2 = undecided (an output proof hit the conflict budget).
///
/// Accepts BLIF (.blif), BENCH (.bench), and AIGER (.aig/.aag; mapped to
/// 6-LUTs before checking), or the name of a seed benchmark — the latter
/// checks its 6-LUT mapping against the direct AIG translation. With
/// --certify, every UNSAT verdict (internal merges and the final output
/// proofs) is DRAT-logged and certified by the in-repo backward checker
/// before it is trusted. Without arguments it demonstrates both a passing
/// check (a circuit against its re-synthesized self) and a failing one
/// (against a mutated copy), printing the counterexample.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "simgen_all.hpp"

using namespace simgen;

namespace {

net::Network load_network(const std::string& path) {
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  if (ends_with(".blif")) return io::read_blif_file(path);
  if (ends_with(".bench")) return io::read_bench_file(path);
  if (ends_with(".aig") || ends_with(".aag"))
    return mapping::map_to_luts(io::read_aiger_file(path));
  throw std::runtime_error("unsupported file extension: " + path);
}

/// Prints the verdict; returns the matching exit code (0 decided, 2
/// undecided).
int report(const sweep::CecResult& result, const net::Network& a) {
  if (result.undecided) {
    std::printf("UNDECIDED  (%zu of %zu output proofs hit the conflict "
                "budget; rerun with a larger "
                "output_proof_conflict_limit)\n",
                result.unresolved_outputs,
                result.unresolved_outputs + result.outputs_proven);
    return 2;
  }
  if (result.equivalent) {
    std::printf("EQUIVALENT  (%zu outputs proven, %llu sweep SAT calls, "
                "%.1f ms total)\n",
                result.outputs_proven,
                static_cast<unsigned long long>(result.sweep_stats.sat_calls),
                result.total_seconds * 1e3);
    const std::uint64_t certified =
        result.sweep_stats.certified_unsat + result.certified_outputs;
    if (certified > 0)
      std::printf("  certified: %llu UNSAT verdicts (%llu merges + %llu "
                  "output proofs) checked against the DRAT log\n",
                  static_cast<unsigned long long>(certified),
                  static_cast<unsigned long long>(
                      result.sweep_stats.certified_unsat),
                  static_cast<unsigned long long>(result.certified_outputs));
    return 0;
  }
  std::printf("NOT EQUIVALENT — counterexample (PI assignment):\n  ");
  for (std::size_t i = 0; i < result.counterexample.size(); ++i) {
    const net::NodeId pi = a.pis()[i];
    const std::string& name = a.node(pi).name;
    std::printf("%s=%d ", name.empty() ? ("pi" + std::to_string(i)).c_str()
                                       : name.c_str(),
                result.counterexample[i] ? 1 : 0);
    if (i % 8 == 7) std::printf("\n  ");
  }
  std::printf("\n");
  return 0;
}

int self_demo(const sweep::CecOptions& options) {
  std::printf("no files given — running the built-in demonstration\n\n");
  benchgen::CircuitSpec spec;
  spec.name = "cec_demo";
  spec.num_pis = 12;
  spec.num_pos = 6;
  spec.num_gates = 300;
  const aig::Aig golden_aig = benchgen::generate_circuit(spec);

  // Passing check: the 6-LUT mapping against the direct AIG translation —
  // structurally very different, functionally identical.
  const net::Network mapped = mapping::map_to_luts(golden_aig);
  const net::Network direct = aig::to_network(golden_aig);
  std::printf("[1] mapped (%zu LUTs) vs direct (%zu LUTs): ",
              mapped.num_luts(), direct.num_luts());
  int rc = report(sweep::check_equivalence(mapped, direct, options), mapped);

  // Failing check: flip one *observable* truth-table bit in a copy — the
  // bit a PO driver produces under the all-zero input. (Flipping an
  // arbitrary bit is not enough: cut-based mapping leaves many table
  // entries at input combinations the correlated fanins can never take,
  // and a mutation there is functionally invisible.)
  sim::Simulator probe(mapped);
  probe.simulate_word(std::vector<sim::PatternWord>(mapped.num_pis(), 0));
  net::NodeId victim = net::kNullNode;
  unsigned minterm = 0;
  for (const net::NodeId po : mapped.pos()) {
    const net::NodeId driver = mapped.fanins(po)[0];
    if (!mapped.is_lut(driver)) continue;
    victim = driver;
    const auto fanins = mapped.fanins(driver);
    for (std::size_t i = 0; i < fanins.size(); ++i)
      minterm |= static_cast<unsigned>(probe.value(fanins[i]) & 1u) << i;
    break;
  }

  net::Network mutated("mutant");
  std::vector<net::NodeId> map(mapped.num_nodes());
  mapped.for_each_node([&](net::NodeId id) {
    const auto& node = mapped.node(id);
    switch (node.kind) {
      case net::NodeKind::kPi: map[id] = mutated.add_pi(node.name); break;
      case net::NodeKind::kConstant:
        map[id] = mutated.add_constant(node.constant_value);
        break;
      case net::NodeKind::kPo: map[id] = mutated.add_po(map[node.fanins[0]]); break;
      case net::NodeKind::kLut: {
        std::vector<net::NodeId> fanins;
        for (net::NodeId fanin : node.fanins) fanins.push_back(map[fanin]);
        tt::TruthTable function = node.function;
        if (id == victim) function.set_bit(minterm, !function.get_bit(minterm));
        map[id] = mutated.add_lut(fanins, function);
        break;
      }
    }
  });
  std::printf("\n[2] mapped vs single-bit mutant: ");
  const int rc2 =
      report(sweep::check_equivalence(mapped, mutated, options), mapped);
  return rc != 0 ? rc : rc2;
}

int run_files(const std::vector<std::string>& args,
              const sweep::CecOptions& options) {
  net::Network a;
  net::Network b;
  if (args.size() == 1) {
    // Single argument: a seed benchmark name. Self-check its 6-LUT
    // mapping against the direct AIG translation.
    const benchgen::CircuitSpec* spec = benchgen::find_benchmark(args[0]);
    if (spec == nullptr)
      throw std::runtime_error("unknown benchmark name: " + args[0]);
    const aig::Aig graph = benchgen::generate_circuit(*spec);
    a = mapping::map_to_luts(graph);
    b = aig::to_network(graph);
    std::printf("%s: mapped (%zu LUTs) vs direct (%zu LUTs)\n",
                args[0].c_str(), a.num_luts(), b.num_luts());
  } else {
    a = load_network(args[0]);
    b = load_network(args[1]);
    std::printf("A: %s\nB: %s\n",
                net::to_string(net::compute_stats(a)).c_str(),
                net::to_string(net::compute_stats(b)).c_str());
  }
  return report(sweep::check_equivalence(a, b, options), a);
}

}  // namespace

int main(int argc, char** argv) {
  // The shared telemetry CLI strips --trace-out/--metrics-out/
  // --journal-out/--progress/--timeout, wires the exit finalizer and
  // watchdog, and flushes every requested output at destruction.
  obs::TelemetryCli telemetry(argc, argv);
  std::vector<std::string> args;
  sweep::CecOptions options;
  options.guided_strategy = core::Strategy::kAiDcMffc;
  options.sweep.progress_interval = telemetry.progress_interval();
  options.num_threads = telemetry.num_threads();
  options.sweep.inprocess = telemetry.inprocess();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--certify") == 0) {
      options.certify = true;
    } else if (std::strcmp(argv[i], "--output-conflict-limit") == 0 &&
               i + 1 < argc) {
      options.sweep.output_proof_conflict_limit =
          std::strtoull(argv[++i], nullptr, 10);
    } else {
      args.emplace_back(argv[i]);
    }
  }
  int rc = 0;
  try {
    if (args.empty())
      rc = self_demo(options);
    else
      rc = run_files(args, options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    rc = 1;
  }
  return rc;
}

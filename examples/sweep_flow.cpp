/// \file sweep_flow.cpp
/// \brief The paper's Figure 2 flow as a configurable command-line tool:
/// run any simulation strategy against any suite benchmark (or your own
/// BLIF file) and print the per-iteration cost trajectory plus the final
/// SAT-sweeping statistics.
///
/// Usage:
///   ./sweep_flow [benchmark-or-file] [strategy] [iterations]
///     benchmark-or-file : suite name (default apex2) or a .blif path
///     strategy          : RevS | SI+RD | AI+RD | AI+DC | AI+DC+MFFC
///                         (default AI+DC+MFFC)
///     iterations        : guided iterations (default 20)
///
/// Examples:
///   ./sweep_flow cps RevS
///   ./sweep_flow my_design.blif AI+DC 30
#include <cstdio>
#include <cstdlib>
#include <string>

#include "simgen_all.hpp"

using namespace simgen;

namespace {

core::Strategy parse_strategy(const std::string& text) {
  for (const core::Strategy strategy : core::kAllStrategies)
    if (text == core::strategy_name(strategy)) return strategy;
  throw std::runtime_error("unknown strategy '" + text +
                           "' (use RevS, SI+RD, AI+RD, AI+DC, AI+DC+MFFC)");
}

net::Network load(const std::string& name) {
  if (name.size() > 5 && name.compare(name.size() - 5, 5, ".blif") == 0)
    return io::read_blif_file(name);
  const benchgen::CircuitSpec* spec = benchgen::find_benchmark(name);
  if (spec == nullptr) throw std::runtime_error("unknown benchmark " + name);
  return benchgen::generate_mapped(*spec);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string name = argc > 1 ? argv[1] : "apex2";
    const core::Strategy strategy =
        parse_strategy(argc > 2 ? argv[2] : "AI+DC+MFFC");
    const std::size_t iterations =
        argc > 3 ? static_cast<std::size_t>(std::strtoul(argv[3], nullptr, 10))
                 : 20;

    const net::Network network = load(name);
    std::printf("circuit %s: %s\n", network.name().c_str(),
                net::to_string(net::compute_stats(network)).c_str());
    std::printf("strategy: %s, %zu guided iterations\n\n",
                std::string(core::strategy_name(strategy)).c_str(), iterations);

    sim::Simulator simulator(network);
    sim::EquivClasses classes = sim::EquivClasses::over_luts(network);

    sim::RandomSimOptions random_options;
    random_options.max_rounds = 1;
    sim::run_random_simulation(simulator, classes, random_options);
    std::printf("after 1 random round: %zu classes, cost %llu\n",
                classes.num_classes(),
                static_cast<unsigned long long>(classes.cost()));

    core::GuidedSimOptions guided;
    guided.strategy = strategy;
    guided.iterations = iterations;
    const core::GuidedSimResult result =
        core::run_guided_simulation(simulator, classes, guided);
    std::printf("\nguided phase (%.1f ms, %llu vectors, %llu skipped):\n",
                result.runtime_seconds * 1e3,
                static_cast<unsigned long long>(result.vectors_generated),
                static_cast<unsigned long long>(result.vectors_skipped));
    for (std::size_t i = 0; i < result.cost_per_iteration.size(); ++i)
      std::printf("  iteration %2zu: cost %llu\n", i + 1,
                  static_cast<unsigned long long>(result.cost_per_iteration[i]));

    sweep::Sweeper sweeper(network, sweep::SweepOptions{});
    const sweep::SweepResult sweep_result = sweeper.run(classes, simulator);
    std::printf("\nSAT sweeping: %llu calls, %.2f ms, %llu proven, %llu "
                "disproven, %llu resimulations\n",
                static_cast<unsigned long long>(sweep_result.sat_calls),
                sweep_result.sat_seconds * 1e3,
                static_cast<unsigned long long>(sweep_result.proven_equivalent),
                static_cast<unsigned long long>(sweep_result.disproven),
                static_cast<unsigned long long>(sweep_result.resimulations));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}

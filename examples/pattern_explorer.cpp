/// \file pattern_explorer.cpp
/// \brief Didactic walk-through of SimGen's machinery on the paper's own
/// examples: Figure 1 (implication rescues reverse simulation), the
/// advanced-implication idea of Section 4, and the DC/MFFC decision
/// heuristics of Section 5, with every propagation step printed.
///
/// Run:  ./pattern_explorer
#include <array>
#include <cstdio>

#include "simgen_all.hpp"

using namespace simgen;
using core::TVal;

namespace {

void print_values(const core::NodeValues& values,
                  std::span<const net::NodeId> nodes,
                  std::span<const char* const> names) {
  std::printf("    ");
  for (std::size_t i = 0; i < nodes.size(); ++i)
    std::printf("%s=%c ", names[i], core::tval_char(values.get(nodes[i])));
  std::printf("\n");
}

void figure1_demo() {
  std::printf("== Paper Figure 1: z = AND(x, y), x = A & !B, y = NAND(!B, C) ==\n\n");
  net::Network network;
  const net::NodeId A = network.add_pi("A");
  const net::NodeId B = network.add_pi("B");
  const net::NodeId C = network.add_pi("C");
  const std::array<net::NodeId, 1> finv{B};
  const net::NodeId inv = network.add_lut(finv, tt::TruthTable::not_gate());
  const std::array<net::NodeId, 2> fx{A, B};
  const net::NodeId x = network.add_lut(
      fx, tt::TruthTable::projection(2, 0) & ~tt::TruthTable::projection(2, 1));
  const std::array<net::NodeId, 2> fy{inv, C};
  const net::NodeId y = network.add_lut(fy, tt::TruthTable::nand_gate(2));
  const std::array<net::NodeId, 2> fz{x, y};
  const net::NodeId z = network.add_lut(fz, tt::TruthTable::and_gate(2));
  network.add_po(z, "D");

  const std::array<net::NodeId, 7> nodes{A, B, C, inv, x, y, z};
  constexpr std::array<const char*, 7> names{"A", "B", "C", "inv", "x", "y", "z"};

  // Reverse simulation can guess the NAND row (0,0), which forces B=1 and
  // collides with x's requirement B=0 (Figure 1a).
  std::printf("reverse simulation, 12 attempts at driving z to 1:\n");
  core::ReverseSimulator reverse(network, 11);
  for (int attempt = 0; attempt < 12; ++attempt) {
    const auto result = reverse.generate({z, true}, {z, true});
    std::printf("  attempt %2d: %s\n", attempt + 1,
                result.success ? "success" : "collision at input B");
  }
  std::printf("  -> %llu/%llu attempts conflicted (the Figure 1a failure)\n\n",
              static_cast<unsigned long long>(reverse.stats().conflicts.value()),
              static_cast<unsigned long long>(reverse.stats().attempts.value()));

  // SimGen's implication resolves the same problem deterministically
  // (Figure 1c): B=0 implies inv=1 forward, which forces C=0 backward.
  std::printf("SimGen implication from z=1 (deterministic, Figure 1c):\n");
  const core::RowDatabase rows(network);
  core::NodeValues values(network.num_nodes());
  values.assign(z, TVal::kOne);
  print_values(values, nodes, names);
  const auto outcome = core::run_implications(
      network, rows, values, z, core::ImplicationStrategy::kSimple);
  print_values(values, nodes, names);
  std::printf("  -> %zu values implied, conflict=%s; the vector A=1 B=0 C=0 "
              "guarantees D=1\n\n",
              outcome.assignments, outcome.conflict ? "yes" : "no");
}

void advanced_implication_demo() {
  std::printf("== Section 4: advanced implication on majority(a, b, c) ==\n\n");
  net::Network network;
  const net::NodeId a = network.add_pi("a");
  const net::NodeId b = network.add_pi("b");
  const net::NodeId c = network.add_pi("c");
  const std::array<net::NodeId, 3> fm{a, b, c};
  const net::NodeId m = network.add_lut(fm, tt::TruthTable::majority3());
  network.add_po(m);

  const core::RowDatabase rows(network);
  std::printf("rows of majority(a,b,c):\n");
  for (const core::Row& row : rows.rows(m))
    std::printf("    %s -> %d\n", row.cube.to_string(3).c_str(), row.output ? 1 : 0);

  std::printf("\nassign a=1, b=1. Three ON rows match; no single row does.\n");
  for (const auto strategy : {core::ImplicationStrategy::kSimple,
                              core::ImplicationStrategy::kAdvanced}) {
    core::NodeValues values(network.num_nodes());
    values.assign(a, TVal::kOne);
    values.assign(b, TVal::kOne);
    core::run_implications(network, rows, values, a, strategy);
    std::printf("  %s implication: m=%c, c=%c\n",
                strategy == core::ImplicationStrategy::kSimple ? "simple  "
                                                               : "advanced",
                core::tval_char(values.get(m)), core::tval_char(values.get(c)));
  }
  std::printf("  -> only advanced implication deduces m=1 while leaving c "
              "free (Definition 4.1)\n\n");
}

void decision_demo() {
  std::printf("== Section 5: DC and MFFC decision heuristics ==\n\n");
  // f = (a & b) | c: ON rows {--1} (2 DCs) and {11-} (1 DC).
  net::Network network;
  const net::NodeId a = network.add_pi("a");
  const net::NodeId b = network.add_pi("b");
  const net::NodeId c = network.add_pi("c");
  const std::array<net::NodeId, 3> fg{a, b, c};
  const auto table =
      (tt::TruthTable::projection(3, 0) & tt::TruthTable::projection(3, 1)) |
      tt::TruthTable::projection(3, 2);
  const net::NodeId g = network.add_lut(fg, table, "g");
  network.add_po(g);

  const core::RowDatabase rows(network);
  const net::MffcDepthCache mffc(network);
  util::Rng rng(5);
  std::printf("decide g=1 200 times with each policy; which row wins?\n");
  for (const auto strategy :
       {core::DecisionStrategy::kRandom, core::DecisionStrategy::kDontCare}) {
    int chose_c_row = 0;
    for (int trial = 0; trial < 200; ++trial) {
      core::NodeValues values(network.num_nodes());
      values.assign(g, TVal::kOne);
      core::decide(network, rows, values, g, strategy, core::DecisionWeights{},
                   &mffc, rng);
      if (values.is_assigned(c) && !values.is_assigned(a)) ++chose_c_row;
    }
    std::printf("  %-8s: row {--1} chosen %3d/200, row {11-} %3d/200\n",
                strategy == core::DecisionStrategy::kRandom ? "random" : "DC",
                chose_c_row, 200 - chose_c_row);
  }
  std::printf("  -> the DC heuristic prefers the row that pins fewer inputs "
              "(Equation 1),\n     leaving a and b free for later targets.\n\n");
}

}  // namespace

int main() {
  figure1_demo();
  advanced_implication_demo();
  decision_demo();
  std::printf("See examples/sweep_flow.cpp for these pieces assembled into "
              "the full Figure 2 flow.\n");
  return 0;
}

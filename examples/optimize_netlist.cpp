/// \file optimize_netlist.cpp
/// \brief Functional netlist optimization with the fraig operator:
/// SimGen-guided sweeping proves internal equivalences and the network is
/// rebuilt with every duplicate merged.
///
/// Usage:
///   ./optimize_netlist input.blif [output.blif]
///   ./optimize_netlist [benchmark-name]      (e.g. ./optimize_netlist seq)
#include <cstdio>
#include <string>

#include "simgen_all.hpp"

using namespace simgen;

int main(int argc, char** argv) {
  try {
    const std::string input = argc > 1 ? argv[1] : "seq";
    net::Network network;
    if (input.size() > 5 && input.compare(input.size() - 5, 5, ".blif") == 0) {
      network = io::read_blif_file(input);
    } else {
      const benchgen::CircuitSpec* spec = benchgen::find_benchmark(input);
      if (spec == nullptr) {
        std::fprintf(stderr, "unknown benchmark %s\n", input.c_str());
        return 1;
      }
      benchgen::CircuitSpec boosted = *spec;
      boosted.redundancy = 0.12;  // give the optimizer something to find
      network = benchgen::generate_mapped(boosted);
    }
    std::printf("input : %s\n", net::to_string(net::compute_stats(network)).c_str());

    const sweep::FraigResult result = sweep::fraig(network);
    std::printf("flow  : cost %llu after random sim, %llu after SimGen; "
                "%llu SAT calls (%.1f ms)\n",
                static_cast<unsigned long long>(result.cost_after_random),
                static_cast<unsigned long long>(result.cost_after_guided),
                static_cast<unsigned long long>(result.sweep_stats.sat_calls),
                result.sweep_stats.sat_seconds * 1e3);
    std::printf("proof : %llu pairs proven equivalent, %zu LUTs removed\n",
                static_cast<unsigned long long>(
                    result.sweep_stats.proven_equivalent),
                result.reduction.removed_luts);
    std::printf("output: %s\n",
                net::to_string(net::compute_stats(result.network)).c_str());
    const double saved =
        100.0 *
        (1.0 - static_cast<double>(result.network.num_luts()) /
                   static_cast<double>(network.num_luts()));
    std::printf("saved : %.1f%% of the LUTs, function preserved "
                "(SAT-proven)\n",
                saved);

    if (argc > 2) {
      io::write_blif_file(result.network, argv[2]);
      std::printf("wrote %s\n", argv[2]);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}

/// \file atpg_justify.cpp
/// \brief SimGen as an ATPG justification engine.
///
/// The paper builds SimGen from ATPG ideas; this example closes the
/// circle and uses SimGen's generator for the ATPG activation step:
/// given an internal node and a desired value, find an input vector that
/// justifies it — the controllability half of a stuck-at test. For every
/// LUT of a benchmark it justifies both polarities and reports per-node
/// controllability, comparing SimGen's success rate and determinism with
/// plain reverse simulation.
///
/// Usage:  ./atpg_justify [benchmark] [attempts-per-node]
#include <cstdio>
#include <cstdlib>

#include "simgen_all.hpp"

using namespace simgen;

namespace {

/// Verifies that a (partial) vector really drives \p node to \p value for
/// any fill of the free PIs (8 random fills).
bool verify(const net::Network& network, const std::vector<core::TVal>& pi_values,
            net::NodeId node, bool value, util::Rng& rng) {
  sim::Simulator simulator(network);
  for (int fill = 0; fill < 8; ++fill) {
    std::vector<sim::PatternWord> words(network.num_pis());
    for (std::size_t i = 0; i < words.size(); ++i) {
      bool bit = false;
      switch (pi_values[i]) {
        case core::TVal::kZero: bit = false; break;
        case core::TVal::kOne: bit = true; break;
        case core::TVal::kUnknown: bit = rng.flip(); break;
      }
      words[i] = bit ? ~sim::PatternWord{0} : 0;
    }
    simulator.simulate_word(words);
    if ((simulator.value(node) & 1u) != static_cast<unsigned>(value))
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "alu4";
  const int attempts =
      argc > 2 ? static_cast<int>(std::strtol(argv[2], nullptr, 10)) : 3;

  const benchgen::CircuitSpec* spec = benchgen::find_benchmark(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", name);
    return 1;
  }
  const net::Network network = benchgen::generate_mapped(*spec);
  std::printf("%s: %s\n\n", name,
              net::to_string(net::compute_stats(network)).c_str());

  std::vector<net::NodeId> luts;
  network.for_each_lut([&](net::NodeId id) { luts.push_back(id); });

  core::PatternGenerator simgen_gen(
      network, core::generator_options_for(core::Strategy::kAiDcMffc), 1);
  core::ReverseSimulator revsim(network, 1);
  util::Rng verify_rng(99);

  std::size_t simgen_ok = 0, revsim_ok = 0, total = 0, unjustifiable = 0;
  std::size_t verified = 0;
  for (const net::NodeId node : luts) {
    for (const bool value : {false, true}) {
      ++total;
      // SimGen justification: Algorithm 1 with a single target.
      bool simgen_done = false;
      for (int attempt = 0; attempt < attempts && !simgen_done; ++attempt) {
        const core::Target target{node, value};
        const core::VectorResult result =
            simgen_gen.generate(std::span(&target, 1));
        simgen_done = (value ? result.satisfied_one : result.satisfied_zero) > 0;
        if (simgen_done && verify(network, result.pi_values, node, value,
                                  verify_rng))
          ++verified;
      }
      if (simgen_done) ++simgen_ok;

      // Reverse-simulation justification (same budget).
      bool revsim_done = false;
      for (int attempt = 0; attempt < attempts && !revsim_done; ++attempt)
        revsim_done = revsim.generate(core::Target{node, value},
                                      core::Target{node, value})
                          .success;
      if (revsim_done) ++revsim_ok;

      if (!simgen_done && !revsim_done) ++unjustifiable;
    }
  }

  std::printf("justification targets : %zu (both polarities of %zu LUTs)\n",
              total, luts.size());
  std::printf("SimGen justified      : %zu (%.1f%%), all %zu claimed vectors "
              "verified by simulation\n",
              simgen_ok, 100.0 * static_cast<double>(simgen_ok) /
                             static_cast<double>(total),
              verified);
  std::printf("reverse simulation    : %zu (%.1f%%)\n", revsim_ok,
              100.0 * static_cast<double>(revsim_ok) /
                  static_cast<double>(total));
  std::printf("justified by neither  : %zu (likely semantically constant "
              "nodes)\n",
              unjustifiable);
  std::printf("\nSimGen's surplus over reverse simulation is the paper's\n");
  std::printf("Section 1 story: implications avoid random-guess collisions.\n");
  return 0;
}

#!/usr/bin/env python3
"""Compare per-run BENCH_*.json files against a committed baseline.

Usage:
  compare_bench_json.py BASELINE_DIR CANDIDATE_DIR [--rtol R] [--atol A]

Every BENCH_<benchmark>__<strategy>.json in BASELINE_DIR must exist in
CANDIDATE_DIR with the same "benchmark" and "strategy" keys and with every
*count* field (cost_after_random, cost, sat_calls, proven, disproven,
unresolved) within the given relative/absolute tolerance. Timing fields
(sim_seconds, sat_seconds) are machine-dependent and ignored. Extra
candidate files are ignored, so the baseline can cover a subset.

Multithreaded runs gate with the same strictness: bench drivers
parallelize across whole (benchmark, strategy) cells while each flow
keeps the sequential sweep engine, so every count field is
thread-invariant by construction (only the ignored timing fields pick up
scheduling noise). The "num_threads" field each run records is compared
for information only — a count mismatch against a multithreaded
candidate is a real regression, never schedule noise, and is reported as
such.

Exit code 0 when everything matches, 1 on any mismatch, on a missing or
unreadable baseline/candidate file, or on a baseline directory with no
BENCH_*.json files at all — a gate that cannot read its baseline must
fail loudly, never skip.
"""
import argparse
import json
import sys
from pathlib import Path

EXACT_FIELDS = ("benchmark", "strategy")
COUNT_FIELDS = (
    "cost_after_random",
    "cost",
    "sat_calls",
    "proven",
    "disproven",
    "unresolved",
)


def within(value, base, rtol, atol):
    return abs(value - base) <= atol + rtol * abs(base)


def load_json(path, role):
    """Reads one BENCH json; returns (dict, None) or (None, error line)."""
    try:
        return json.loads(path.read_text()), None
    except OSError as error:
        return None, f"UNREADABLE {path.name}: cannot read {role}: {error}"
    except json.JSONDecodeError as error:
        return None, f"CORRUPT  {path.name}: {role} is not valid JSON: {error}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", type=Path)
    parser.add_argument("candidate_dir", type=Path)
    parser.add_argument("--rtol", type=float, default=0.0,
                        help="relative tolerance on count fields (default: exact)")
    parser.add_argument("--atol", type=float, default=0.0,
                        help="absolute tolerance on count fields (default: 0)")
    args = parser.parse_args()

    if not args.baseline_dir.is_dir():
        print(f"error: baseline directory {args.baseline_dir} does not exist",
              file=sys.stderr)
        return 1
    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json files in {args.baseline_dir}",
              file=sys.stderr)
        return 1

    failures = 0
    compared = 0
    for baseline_path in baselines:
        candidate_path = args.candidate_dir / baseline_path.name
        if not candidate_path.exists():
            print(f"MISSING  {baseline_path.name}: not produced by this run")
            failures += 1
            continue
        baseline, error = load_json(baseline_path, "baseline")
        if baseline is None:
            print(error)
            failures += 1
            continue
        candidate, error = load_json(candidate_path, "candidate")
        if candidate is None:
            print(error)
            failures += 1
            continue
        compared += 1
        base_threads = baseline.get("num_threads", 1)
        cand_threads = candidate.get("num_threads", 1)
        if base_threads != cand_threads:
            print(f"note     {baseline_path.name}: candidate ran with "
                  f"{cand_threads} bench threads (baseline {base_threads}); "
                  f"counts are thread-invariant and still gate exactly")
        for field in EXACT_FIELDS:
            if baseline.get(field) != candidate.get(field):
                print(f"MISMATCH {baseline_path.name}: {field} "
                      f"{candidate.get(field)!r} != baseline "
                      f"{baseline.get(field)!r}")
                failures += 1
        for field in COUNT_FIELDS:
            if field not in baseline:
                continue
            if field not in candidate:
                print(f"MISMATCH {baseline_path.name}: {field} missing")
                failures += 1
                continue
            if not within(candidate[field], baseline[field], args.rtol,
                          args.atol):
                print(f"MISMATCH {baseline_path.name}: {field} "
                      f"{candidate[field]} vs baseline {baseline[field]} "
                      f"(rtol={args.rtol}, atol={args.atol})")
                failures += 1

    if failures:
        print(f"{failures} mismatches across {compared} compared files",
              file=sys.stderr)
        return 1
    print(f"{compared} BENCH json files match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
